//! Offline stand-in for `serde`: the derives expand to nothing.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as an
//! annotation on plain-old-data types; no code path performs runtime
//! serialization. This proc-macro crate keeps those derives compiling
//! without pulling serde from crates.io (unavailable in the build
//! environment). Any attempt to actually *call* serde APIs fails to
//! compile, which is the intended gate.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

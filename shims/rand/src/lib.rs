//! Offline stand-in for the `rand` 0.8 API subset used in this workspace:
//! `rngs::SmallRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::{gen, gen_range, gen_bool, fill}`.
//!
//! `SmallRng` is an xorshift64* generator seeded through SplitMix64 —
//! statistically adequate for workload generation and deterministic per
//! seed, which is all the benchmarks and tests rely on.

use std::ops::Range;

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Values producible from a uniform bit stream (`rng.gen()`).
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (rand's convention).
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types samplable uniformly from a half-open range (`rng.gen_range(a..b)`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u128;
                // widening multiply rejection-free mapping (Lemire), 64-bit
                // stream is ample for the spans used here
                let x = rng.next_u64() as u128;
                let v = (x * span) >> 64;
                (range.start as u128).wrapping_add(v) as Self
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let x = rng.next_u64() as u128;
                let v = ((x * span) >> 64) as i128;
                (range.start as i128 + v) as Self
            }
        }
    )*};
}

impl_uniform_signed!(i32: u32, i64: u64, isize: usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty gen_range");
        let u = f64::from_rng(rng);
        range.start + u * (range.end - range.start)
    }
}

pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }

    fn fill(&mut self, dst: &mut [u8]) {
        for chunk in dst.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xorshift64* seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 scramble so adjacent seeds yield unrelated streams
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            Self {
                state: if z == 0 { 0x4D59_5DF4_D0F3_3173 } else { z },
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0u64..10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn f64_unit_interval_mean() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        for _ in 0..1000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }
}

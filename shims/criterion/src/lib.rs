//! Offline stand-in for `criterion`: wall-clock micro-benchmark harness
//! with the `criterion_group!`/`criterion_main!`/`Bencher` API surface
//! used by `crates/bench/benches/micro.rs`. Reports mean ns/iter to
//! stderr; no statistics, plots or baselines.

use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget: self.measurement_time,
            warm_up: self.warm_up_time,
            samples: self.sample_size,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.iters > 0 {
            let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
            eprintln!("bench {name:<40} {ns:>14.1} ns/iter ({} iters)", b.iters);
        } else {
            eprintln!("bench {name:<40} produced no measurements");
        }
        self
    }
}

pub struct Bencher {
    budget: Duration,
    warm_up: Duration,
    samples: usize,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // warm-up: run until the warm-up budget elapses
        let start = Instant::now();
        while start.elapsed() < self.warm_up {
            std::hint::black_box(routine());
        }
        // measurement: split the budget into samples of growing batches
        let per_sample = self.budget / self.samples as u32;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            let mut n = 0u64;
            while t0.elapsed() < per_sample {
                std::hint::black_box(routine());
                n += 1;
            }
            self.elapsed += t0.elapsed();
            self.iters += n;
        }
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let start = Instant::now();
        while start.elapsed() < self.warm_up {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        let per_sample = self.budget / self.samples as u32;
        for _ in 0..self.samples {
            let mut n = 0u64;
            let mut measured = Duration::ZERO;
            while measured < per_sample {
                let input = setup();
                let t0 = Instant::now();
                std::hint::black_box(routine(input));
                measured += t0.elapsed();
                n += 1;
            }
            self.elapsed += measured;
            self.iters += n;
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Offline stand-in for `proptest`: deterministic random testing with the
//! proptest macro/strategy API surface used by this workspace.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! inputs via `Debug` where available, but is not minimized), no
//! persistence files, and uniform rather than boundary-biased sampling.
//! Test functions, strategy combinators and assertions are source
//! compatible with the upstream API for everything the repo uses.

use std::rc::Rc;

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// xorshift64* — deterministic per test name, so failures reproduce.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self { state: seed | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Deterministic seed for a named test.
pub fn test_rng(name: &str) -> TestRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::new(h)
}

// ---------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

// ---------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 10000 consecutive values",
            self.whence
        );
    }
}

pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        Self(self.0.clone())
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// `prop_oneof!` support: uniform choice over boxed alternatives.
pub struct Union<V> {
    alts: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(alts: Vec<BoxedStrategy<V>>) -> Self {
        assert!(
            !alts.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Self { alts }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.alts.len() as u64) as usize;
        self.alts[i].generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---- primitive strategies -------------------------------------------

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // bit-pattern sampling: reaches subnormals/inf/NaN occasionally,
        // like upstream's any::<f64>()
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        loop {
            // bias toward ASCII, occasionally multi-byte scalars
            let c = if rng.below(4) == 0 {
                char::from_u32(rng.below(0x11_0000) as u32)
            } else {
                char::from_u32((0x20 + rng.below(0x5f)) as u32)
            };
            if let Some(c) = c {
                return c;
            }
        }
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---- ranges ----------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = ((rng.next_u64() as u128 * span) >> 64) as u128;
                (self.start as u128).wrapping_add(v) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                let v = ((rng.next_u64() as u128 * span) >> 64) as u128;
                (lo as u128).wrapping_add(v) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

// ---- tuples ----------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

// ---- strings ---------------------------------------------------------

/// String literals act as (very small) regex strategies. Only the shapes
/// used in-tree are recognized: `.{a,b}` (any chars, length a..=b);
/// anything else falls back to 0..=32 arbitrary chars.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 32));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

fn parse_dot_repeat(pat: &str) -> Option<(usize, usize)> {
    let body = pat.strip_prefix(".{")?.strip_suffix('}')?;
    let (a, b) = body.split_once(',')?;
    Some((a.trim().parse().ok()?, b.trim().parse().ok()?))
}

// ---- collections & misc namespaces ----------------------------------

pub mod collection {
    use super::{Strategy, TestRng};

    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1);
            let n = self.len.start + rng.below(span as u64) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }
}

pub mod bool_strategy {
    use super::{Strategy, TestRng};

    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod option_strategy {
    use super::{Strategy, TestRng};

    /// `prop::option::of` support: `None` one time in four, `Some`
    /// otherwise (matching proptest's default weighting).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::option::of`,
/// `prop::bool::ANY`).
pub mod prop {
    pub use super::collection;
    pub mod bool {
        pub use super::super::bool_strategy::{BoolAny, ANY};
    }
    pub mod option {
        pub use super::super::option_strategy::{of, OptionStrategy};
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "prop_assert failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err(format!(
                "prop_assert_eq failed: {:?} != {:?} at {}:{}",
                a,
                b,
                file!(),
                line!()
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err(format!(
                "prop_assert_ne failed: both {:?} at {}:{}",
                a,
                file!(),
                line!()
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($alt:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($alt)),+])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr); ) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident ( $($args:tt)* ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $crate::__proptest_bind!{ __rng, $($args)* }
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = __outcome {
                    panic!("proptest case {} failed: {}", __case, msg);
                }
            }
        }
        $crate::__proptest_fns!{ cfg = ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $pat:pat in $strat:expr) => {
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident, $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!{ $rng, $($rest)* }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_filters() {
        let mut rng = crate::test_rng("shim");
        for _ in 0..200 {
            let v = (3u32..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let w = (0usize..=5).generate(&mut rng);
            assert!(w <= 5);
        }
        let even = (0u64..100).prop_filter("even", |x| x % 2 == 0);
        for _ in 0..50 {
            assert_eq!(even.generate(&mut rng) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_machinery_works(a in 0u64..50, v in prop::collection::vec(any::<u8>(), 0..8)) {
            prop_assert!(a < 50);
            prop_assert!(v.len() < 8);
            let doubled = a * 2;
            prop_assert_eq!(doubled, a + a);
            prop_assert_ne!(doubled + 1, a + a);
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1u32), Just(2u32), (5u32..7).prop_map(|v| v)]) {
            prop_assert!(x == 1 || x == 2 || x == 5 || x == 6);
        }
    }
}

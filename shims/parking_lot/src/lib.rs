//! Offline stand-in for `parking_lot`: `Mutex`, `RwLock` and `Condvar`
//! with the parking_lot API (no lock poisoning, guards returned directly)
//! implemented over `std::sync`. A poisoned std lock means a thread
//! panicked while holding it; matching parking_lot semantics, we hand the
//! data back instead of propagating a second panic.

use std::sync::{self, TryLockError};
use std::time::Duration;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Self(sync::Mutex::new(t))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(t: T) -> Self {
        Self(sync::RwLock::new(t))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

/// Result of a timed wait: parking_lot exposes `timed_out()`.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// parking_lot signature: mutates the guard in place.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(guard, |g| self.0.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_guard(guard, |g| {
            let (g, r) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(|e| e.into_inner());
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

/// Temporarily move the guard out of `&mut` to thread it through the std
/// wait API (which consumes and returns it).
fn replace_guard<'a, T: ?Sized>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    // SAFETY-free swap: use Option dance via unsafe-free std::mem::replace is
    // impossible for guards (no default), so wrap in ManuallyDrop-style take
    // using ptr reads would be unsafe. Instead rely on the fact that we can
    // read the guard out with `std::ptr::read` only via unsafe; avoid that by
    // a small unsafe block documented below.
    // SAFETY: `slot` is valid for reads and writes; the value read out is
    // either returned by `f` (and written back) or `f` diverges by panic, in
    // which case the original guard has been consumed by the wait call and
    // the process is already unwinding through a poisoned-lock path.
    unsafe {
        let g = std::ptr::read(slot);
        let g = f(g);
        std::ptr::write(slot, g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_rwlock() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        let rw = RwLock::new(1);
        assert_eq!(*rw.read(), 1);
        *rw.write() = 2;
        assert_eq!(*rw.read(), 2);
    }

    #[test]
    fn condvar_signalling() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            *g = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        h.join().unwrap();
        assert!(*g);
    }
}

//! Offline stand-in for `rustc-hash`: the Fx hash algorithm (the same
//! multiply-xor mix used upstream) behind the usual `FxHashMap` /
//! `FxHashSet` aliases.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basics() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.len(), 2);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }
}

//! OLSP / business-intelligence: the Listing-3 aggregate ("how many people
//! over the threshold drive a matching car?") as a collective transaction,
//! verified against the sequential reference evaluation.
//!
//! ```text
//! cargo run -p gdi-examples --release --bin business_intelligence [scale]
//! ```

use gda::GdaDb;
use graphgen::{load_into, sized_config, GraphSpec, LpgConfig};
use rma::CostModel;
use workloads::bi2::{bi2, bi2_reference, Bi2Params};

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let nranks = 4;
    let spec = GraphSpec {
        scale,
        edge_factor: 8,
        seed: 99,
        lpg: LpgConfig {
            num_labels: 4,
            num_ptypes: 4,
            labels_per_vertex: 2,
            props_per_vertex: 3,
            edge_label_fraction: 1.0,
            ..Default::default()
        },
    };
    let params = Bi2Params {
        person_threshold: u64::MAX / 8,
        target_threshold: u64::MAX / 8,
        ..Default::default()
    };
    let expected = bi2_reference(&spec, &params);

    let cfg = sized_config(&spec, nranks);
    let (db, fabric) = GdaDb::with_fabric("bi", cfg, nranks, CostModel::default());
    let counts = fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let (meta, _) = load_into(&eng, &spec);
        ctx.barrier();
        let t0 = ctx.now_ns();
        let count = bi2(&eng, &spec, &meta, &params);
        ctx.barrier();
        if ctx.rank() == 0 {
            println!(
                "BI2 over 2^{scale} vertices on {nranks} ranks: count = {count} \
                 (simulated {:.4}s)",
                (ctx.now_ns() - t0) / 1e9
            );
        }
        // second BI shape: group-by-label aggregation with global top-k
        let groups = workloads::olsp::top_labels(&eng, &meta, 3);
        if ctx.rank() == 0 {
            println!("top labels by vertex count:");
            for g in &groups {
                println!(
                    "  label {:>3}: {:>6} vertices, mean(P0) = {:.3e}",
                    g.label.0, g.count, g.mean_p0
                );
            }
        }
        count
    });
    assert!(counts.iter().all(|&c| c == expected));
    println!("verified against sequential reference: {expected} — OK");
}

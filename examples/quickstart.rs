//! Quickstart: create a database, insert a tiny social graph through GDI
//! transactions, and run the paper's running-example query.
//!
//! ```text
//! cargo run -p gdi-examples --bin quickstart
//! ```

use gda::{GdaConfig, GdaDb};
use gdi::{
    AccessMode, AppVertexId, Datatype, EdgeOrientation, EntityType, Multiplicity, PropertyValue,
    SizeType,
};
use rma::CostModel;

fn main() {
    // a 4-process simulated RDMA machine
    let nranks = 4;
    let cfg = GdaConfig::default();
    let (db, fabric) = GdaDb::with_fabric("quickstart", cfg, nranks, CostModel::default());

    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();

        // rank 0 defines the schema-like metadata (replicated eventually)
        if ctx.rank() == 0 {
            eng.create_label("Person").unwrap();
            eng.create_label("Car").unwrap();
            eng.create_label("OWNS").unwrap();
            eng.create_ptype(
                "age",
                Datatype::Uint64,
                EntityType::Vertex,
                Multiplicity::Single,
                SizeType::Fixed,
                1,
            )
            .unwrap();
            eng.create_ptype(
                "color",
                Datatype::Char,
                EntityType::Vertex,
                Multiplicity::Single,
                SizeType::NoLimit,
                0,
            )
            .unwrap();
            eng.create_ptype(
                "name",
                Datatype::Char,
                EntityType::Vertex,
                Multiplicity::Single,
                SizeType::NoLimit,
                0,
            )
            .unwrap();
        }
        ctx.barrier();
        eng.refresh_meta();
        let meta = eng.meta();
        let person = meta.label_from_name("Person").unwrap();
        let car = meta.label_from_name("Car").unwrap();
        let owns = meta.label_from_name("OWNS").unwrap();
        let age = meta.ptype_from_name("age").unwrap();
        let color = meta.ptype_from_name("color").unwrap();
        let name = meta.ptype_from_name("name").unwrap();
        drop(meta);

        // rank 0 inserts people and cars in one write transaction
        if ctx.rank() == 0 {
            let tx = eng.begin(AccessMode::ReadWrite);
            // create_vertex returns the internal id (DPtr) immediately; the
            // app-id translation becomes visible to others at commit
            let mut people = Vec::new();
            for (id, who, years) in [(1u64, "Ada", 36u64), (2, "Grace", 45), (3, "Linus", 29)] {
                let v = tx.create_vertex(AppVertexId(id)).unwrap();
                tx.add_label(v, person).unwrap();
                tx.add_property(v, name, &PropertyValue::Text(who.into()))
                    .unwrap();
                tx.add_property(v, age, &PropertyValue::U64(years)).unwrap();
                people.push(v);
            }
            let mut cars = Vec::new();
            for (id, shade) in [(100u64, "red"), (101, "blue")] {
                let v = tx.create_vertex(AppVertexId(id)).unwrap();
                tx.add_label(v, car).unwrap();
                tx.add_property(v, color, &PropertyValue::Text(shade.into()))
                    .unwrap();
                cars.push(v);
            }
            // Ada owns the red car, Linus the blue one
            tx.add_edge(people[0], cars[0], Some(owns), true).unwrap();
            tx.add_edge(people[2], cars[1], Some(owns), true).unwrap();
            tx.commit().unwrap();
            println!("[rank 0] inserted 3 people, 2 cars, 2 OWNS edges");
        }
        ctx.barrier();

        // every rank answers the paper's query one-sidedly:
        // "how many people are over 30 and drive a red car?"
        let tx = eng.begin(AccessMode::ReadOnly);
        let mut count = 0;
        for id in 1..=3u64 {
            let v = tx.translate_vertex_id(AppVertexId(id)).unwrap();
            let Some(PropertyValue::U64(a)) = tx.property(v, age).unwrap() else {
                continue;
            };
            if a <= 30 {
                continue;
            }
            for nbr in tx
                .neighbors(v, EdgeOrientation::Outgoing, Some(owns))
                .unwrap()
            {
                if tx.has_label(nbr, car).unwrap() {
                    if let Some(PropertyValue::Text(c)) = tx.property(nbr, color).unwrap() {
                        if c == "red" {
                            count += 1;
                        }
                    }
                }
            }
        }
        tx.commit().unwrap();
        assert_eq!(count, 1, "exactly Ada matches");
        if ctx.rank() == 0 {
            println!("[all ranks] people over 30 driving a red car: {count}");
        }
        ctx.barrier();
    });
    println!(
        "quickstart OK — {} time {:.3} ms",
        if fabric.backend() == rma::BackendKind::Sim {
            "simulated"
        } else {
            "wall"
        },
        fabric.last_time_s() * 1e3
    );
}

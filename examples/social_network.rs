//! Interactive OLTP on a generated social network (the Listing 1 query):
//! load a Kronecker LPG graph, then answer "names of everyone a person is
//! friends with" while a LinkBench-style update stream runs on the other
//! ranks.
//!
//! ```text
//! cargo run -p gdi-examples --release --bin social_network [scale]
//! ```

use gda::GdaDb;
use gdi::{AccessMode, AppVertexId, EdgeOrientation, PropertyValue};
use graphgen::{load_into, sized_config, GraphSpec, LpgConfig};
use rma::CostModel;
use workloads::oltp::{run_oltp, Mix, OltpConfig};

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let nranks = 4;
    let spec = GraphSpec {
        scale,
        edge_factor: 8,
        seed: 2024,
        lpg: LpgConfig::default(),
    };
    let mut cfg = sized_config(&spec, nranks);
    cfg.blocks_per_rank += 4096;
    cfg.dht_heap_per_rank += 4096;
    let (db, fabric) = GdaDb::with_fabric("social", cfg, nranks, CostModel::default());

    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let (meta, rep) = load_into(&eng, &spec);
        let loaded = ctx.allreduce_sum_u64(rep.vertices as u64);
        if ctx.rank() == 0 {
            println!(
                "loaded {loaded} vertices / {} edges across {nranks} ranks",
                spec.n_edges()
            );
        }
        ctx.barrier();

        if ctx.rank() == 0 {
            // Listing 1: fetch the "names" of a person's friends — here,
            // property P0 of every neighbor over a labeled edge
            let person = AppVertexId(42 % spec.n_vertices());
            let tx = eng.begin(AccessMode::ReadOnly);
            let v = tx.translate_vertex_id(person).unwrap();
            let friends = tx.neighbors(v, EdgeOrientation::Any, None).unwrap();
            let mut names = Vec::new();
            for f in &friends {
                if let Some(PropertyValue::U64(n)) = tx.property(*f, meta.ptype(0)).unwrap_or(None)
                {
                    names.push(n);
                }
            }
            tx.commit().unwrap();
            println!(
                "[rank 0 / OLTP read] person {person} has {} friends, {} with a P0 'name'",
                friends.len(),
                names.len()
            );
        } else {
            // other ranks run a short LinkBench stream concurrently
            let r = run_oltp(
                &eng,
                &spec,
                &meta,
                &Mix::LINKBENCH,
                &OltpConfig {
                    ops_per_rank: 300,
                    seed: 7,
                },
            );
            println!(
                "[rank {} / LinkBench] {} committed, {} aborted ({:.2}% failed)",
                ctx.rank(),
                r.committed,
                r.aborted,
                r.failure_fraction() * 100.0
            );
        }
        ctx.barrier();
    });
    println!(
        "social_network OK — simulated makespan {:.3} ms",
        fabric.last_sim_time_s() * 1e3
    );
}

//! OLAP analytics with collective transactions: PageRank, WCC and BFS on
//! a generated graph (the Fig. 6 workloads), printing the top-ranked
//! vertices and component statistics.
//!
//! ```text
//! cargo run -p gdi-examples --release --bin analytics_pagerank [scale]
//! ```

use gda::GdaDb;
use graphgen::{load_into, sized_config, GraphSpec, LpgConfig};
use rma::CostModel;
use workloads::analytics::{bfs, build_view, pagerank, wcc_converged};

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);
    let nranks = 4;
    let spec = GraphSpec {
        scale,
        edge_factor: 16,
        seed: 7,
        lpg: LpgConfig::bare(),
    };
    let cfg = sized_config(&spec, nranks);
    let (db, fabric) = GdaDb::with_fabric("olap", cfg, nranks, CostModel::default());

    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        load_into(&eng, &spec);
        let apps = spec.vertices_for_rank(ctx.rank(), ctx.nranks());
        let view = build_view(&eng, &apps);

        // PageRank (paper parameters: 10 iterations, d = 0.85)
        let t0 = ctx.now_ns();
        let pr = pagerank(&eng, &view, 10, 0.85);
        ctx.barrier();
        let pr_s = (ctx.now_ns() - t0) / 1e9;

        // local top vertex → global top via allgather
        let (best_i, best) =
            pr.iter().enumerate().fold(
                (0, 0.0),
                |acc, (i, &v)| if v > acc.1 { (i, v) } else { acc },
            );
        let tops = ctx.allgather((view.apps.get(best_i).copied().unwrap_or(0), best));
        let global_top = tops
            .iter()
            .cloned()
            .fold((0u64, 0.0f64), |a, b| if b.1 > a.1 { b } else { a });

        // WCC to convergence
        let t1 = ctx.now_ns();
        let comp = wcc_converged(&eng, &view);
        ctx.barrier();
        let wcc_s = (ctx.now_ns() - t1) / 1e9;
        let giant = comp.iter().filter(|&&c| c == 0).count() as u64;
        let giant_total = ctx.allreduce_sum_u64(giant);

        // BFS from the hub
        let t2 = ctx.now_ns();
        let r = bfs(&eng, &view, global_top.0);
        ctx.barrier();
        let bfs_s = (ctx.now_ns() - t2) / 1e9;

        if ctx.rank() == 0 {
            println!(
                "graph: 2^{scale} vertices, {} edges, {nranks} ranks",
                spec.n_edges()
            );
            println!(
                "PageRank  ({pr_s:.4}s sim): top vertex v{} with score {:.3e}",
                global_top.0, global_top.1
            );
            println!("WCC       ({wcc_s:.4}s sim): component of v0 holds {giant_total} vertices");
            println!(
                "BFS       ({bfs_s:.4}s sim): from v{} reached {} vertices in {} levels",
                global_top.0, r.visited, r.levels
            );
        }
        ctx.barrier();
    });
    println!("analytics_pagerank OK");
}

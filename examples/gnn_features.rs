//! Graph neural network training on GDI (Listing 2): feature vectors live
//! as vertex properties; each convolution layer aggregates neighbor
//! features, applies an MLP + non-linearity and writes the result back in
//! a collective transaction.
//!
//! ```text
//! cargo run -p gdi-examples --release --bin gnn_features [scale] [k]
//! ```

use gda::GdaDb;
use graphgen::{load_into, sized_config, GraphSpec, LpgConfig};
use rma::CostModel;
use workloads::analytics::build_view;
use workloads::gnn::{init_features, install_feature_ptype, train_forward, GnnConfig};

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(9);
    let k: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let nranks = 4;
    let spec = GraphSpec {
        scale,
        edge_factor: 8,
        seed: 5,
        lpg: LpgConfig::bare(),
    };
    let gnn = GnnConfig {
        layers: 3,
        k,
        seed: 5,
    };
    let mut cfg = sized_config(&spec, nranks);
    cfg.blocks_per_rank = (cfg.blocks_per_rank
        + (spec.n_vertices() as usize / nranks) * (k * 8 / cfg.block_size + 2))
        .next_power_of_two();
    let (db, fabric) = GdaDb::with_fabric("gnn", cfg, nranks, CostModel::default());

    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        load_into(&eng, &spec);
        let apps = spec.vertices_for_rank(ctx.rank(), ctx.nranks());
        let view = build_view(&eng, &apps);
        let pt = install_feature_ptype(&eng, k);
        init_features(&eng, &view, pt, &gnn);
        ctx.barrier();
        let t0 = ctx.now_ns();
        let norms = train_forward(&eng, &view, pt, &gnn);
        ctx.barrier();
        if ctx.rank() == 0 {
            println!(
                "GNN forward pass: 2^{scale} vertices, k={k}, {} layers, {nranks} ranks",
                gnn.layers
            );
            for (l, n) in norms.iter().enumerate() {
                println!("  layer {l}: global feature norm {n:.4}");
            }
            println!("simulated time {:.4}s", (ctx.now_ns() - t0) / 1e9);
        }
        ctx.barrier();
    });
    println!("gnn_features OK");
}

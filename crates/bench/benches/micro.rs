//! Criterion micro-benchmarks of GDA's performance-critical building
//! blocks (§5): block acquire/release, DHT operations, distributed RW
//! locks, holder serialization, transaction begin/commit, and collective
//! primitives. These are the wall-clock counterparts of the work–depth
//! table in `gda::analysis`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use gda::blocks::BlockManager;
use gda::dht::Dht;
use gda::holder::{EdgeRecord, Holder};
use gda::locks::LockManager;
use gda::{DPtr, GdaConfig, GdaDb};
use gdi::{AccessMode, AppVertexId, Direction, LabelId, PTypeId, PropertyValue};
use rma::{CostModel, FabricBuilder};

fn bench_blocks(c: &mut Criterion) {
    let cfg = GdaConfig {
        blocks_per_rank: 1 << 15,
        ..GdaConfig::default()
    };
    let fabric = cfg.build_fabric(1, CostModel::zero());
    c.bench_function("block_acquire_release", |b| {
        let b = parking_lot::Mutex::new(b);
        fabric.run(|ctx| {
            let bm = BlockManager::new(ctx, cfg);
            bm.init_collective();
            b.lock().iter(|| {
                let dp = bm.acquire(0).unwrap();
                bm.release(black_box(dp));
            });
        });
    });
}

fn bench_dht(c: &mut Criterion) {
    let cfg = GdaConfig {
        dht_buckets_per_rank: 1 << 14,
        dht_heap_per_rank: 1 << 16,
        ..GdaConfig::default()
    };
    let fabric = cfg.build_fabric(1, CostModel::zero());
    c.bench_function("dht_insert_delete", |b| {
        let b = parking_lot::Mutex::new(b);
        fabric.run(|ctx| {
            let dht = Dht::new(ctx, cfg);
            dht.init_collective();
            let mut k = 0u64;
            b.lock().iter(|| {
                k += 1;
                dht.insert(k, k).unwrap();
                assert!(dht.delete(black_box(k)));
            });
        });
    });
    let fabric2 = cfg.build_fabric(1, CostModel::zero());
    c.bench_function("dht_lookup_hit", |b| {
        let b = parking_lot::Mutex::new(b);
        fabric2.run(|ctx| {
            let dht = Dht::new(ctx, cfg);
            dht.init_collective();
            for k in 0..10_000u64 {
                dht.insert(k, k * 2).unwrap();
            }
            let mut k = 0u64;
            b.lock().iter(|| {
                k = (k + 7) % 10_000;
                black_box(dht.lookup(black_box(k)))
            });
        });
    });
}

fn bench_locks(c: &mut Criterion) {
    let cfg = GdaConfig::default();
    let fabric = cfg.build_fabric(1, CostModel::zero());
    c.bench_function("rwlock_read_acquire_release", |b| {
        let b = parking_lot::Mutex::new(b);
        fabric.run(|ctx| {
            let lm = LockManager::new(ctx, cfg);
            let dp = DPtr::new(0, cfg.block_size as u64);
            b.lock().iter(|| {
                lm.acquire_read(black_box(dp)).unwrap();
                lm.release_read(dp);
            });
        });
    });
    let fabric2 = cfg.build_fabric(1, CostModel::zero());
    c.bench_function("rwlock_write_acquire_release", |b| {
        let b = parking_lot::Mutex::new(b);
        fabric2.run(|ctx| {
            let lm = LockManager::new(ctx, cfg);
            let dp = DPtr::new(0, cfg.block_size as u64);
            b.lock().iter(|| {
                lm.acquire_write(black_box(dp)).unwrap();
                lm.release_write(dp);
            });
        });
    });
}

fn bench_holder_codec(c: &mut Criterion) {
    let mut h = Holder::new_vertex(42);
    h.add_label(LabelId(5));
    for i in 0..16 {
        h.push_edge(EdgeRecord::lightweight(
            DPtr::new(0, 512 * (i + 1)),
            3,
            Direction::Out,
        ));
    }
    for i in 0..4u32 {
        h.add_property(PTypeId(3 + i), vec![7u8; 24]);
    }
    c.bench_function("holder_encode_16e_4p", |b| {
        b.iter(|| black_box(black_box(&h).encode()))
    });
    let bytes = h.encode();
    c.bench_function("holder_decode_16e_4p", |b| {
        b.iter(|| black_box(Holder::decode(black_box(&bytes))))
    });
}

fn bench_transactions(c: &mut Criterion) {
    let cfg = GdaConfig {
        blocks_per_rank: 1 << 15,
        dht_heap_per_rank: 1 << 16,
        dht_buckets_per_rank: 1 << 14,
        ..GdaConfig::default()
    };
    let (db, fabric) = GdaDb::with_fabric("bench", cfg, 1, CostModel::zero());
    c.bench_function("tx_create_delete_vertex_commit", |b| {
        let b = parking_lot::Mutex::new(b);
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            let mut id = 0u64;
            // resource-balanced: each iteration creates AND deletes, so the
            // block pool and DHT heap never exhaust regardless of the
            // iteration count criterion chooses
            b.lock().iter(|| {
                id += 1;
                let tx = eng.begin(AccessMode::ReadWrite);
                tx.create_vertex(AppVertexId(black_box(id))).unwrap();
                tx.commit().unwrap();
                let tx = eng.begin(AccessMode::ReadWrite);
                let v = tx.translate_vertex_id(AppVertexId(id)).unwrap();
                tx.delete_vertex(v).unwrap();
                tx.commit().unwrap();
            });
        });
    });
    let (db2, fabric2) = GdaDb::with_fabric("bench2", cfg, 1, CostModel::zero());
    c.bench_function("tx_read_vertex", |b| {
        let b = parking_lot::Mutex::new(b);
        fabric2.run(|ctx| {
            let eng = db2.attach(ctx);
            eng.init_collective();
            let age = eng
                .create_ptype(
                    "age",
                    gdi::Datatype::Uint64,
                    gdi::EntityType::Vertex,
                    gdi::Multiplicity::Single,
                    gdi::SizeType::Fixed,
                    1,
                )
                .unwrap_or_else(|_| eng.meta().ptype_from_name("age").unwrap());
            {
                // idempotent preload: criterion may invoke this closure
                // several times against the same database
                let tx = eng.begin(AccessMode::ReadWrite);
                for i in 0..1000u64 {
                    if let Ok(v) = tx.create_vertex(AppVertexId(i)) {
                        tx.add_property(v, age, &PropertyValue::U64(i)).unwrap();
                    }
                }
                tx.commit().unwrap();
            }
            let mut i = 0u64;
            b.lock().iter(|| {
                i = (i + 13) % 1000;
                let tx = eng.begin(AccessMode::ReadOnly);
                let v = tx.translate_vertex_id(AppVertexId(black_box(i))).unwrap();
                black_box(tx.property(v, age).unwrap());
                tx.commit().unwrap();
            });
        });
    });
}

fn bench_collectives(c: &mut Criterion) {
    for nranks in [2usize, 4] {
        let fabric = FabricBuilder::new(nranks).cost(CostModel::zero()).build();
        c.bench_function(&format!("allreduce_sum_p{nranks}"), |b| {
            let b = parking_lot::Mutex::new(b);
            fabric.run(|ctx| {
                if ctx.rank() == 0 {
                    b.lock()
                        .iter(|| black_box(ctx.allreduce_sum_u64(black_box(1))));
                } else {
                    // peers keep answering until rank 0 signals completion
                    loop {
                        let v = ctx.allreduce_sum_u64(0);
                        if v == u64::MAX {
                            break;
                        }
                    }
                }
                if ctx.rank() == 0 {
                    ctx.allreduce_sum_u64(u64::MAX); // release peers
                }
            });
        });
    }
}

fn bench_generator(c: &mut Criterion) {
    let spec = graphgen::GraphSpec::new(14, 99);
    c.bench_function("kronecker_edge_sample", |b| {
        let s = graphgen::KroneckerSampler::new(spec.scale, spec.seed);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(s.edge(black_box(i)))
        })
    });
    c.bench_function("lpg_vertex_assignment", |b| {
        let lpg = graphgen::LpgConfig::default();
        let mut v = 0u64;
        b.iter_batched(
            || {
                v += 1;
                v
            },
            |v| {
                black_box(lpg.vertex_label_indices(7, v));
                black_box(lpg.vertex_props(7, v));
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_blocks, bench_dht, bench_locks, bench_holder_codec, bench_transactions, bench_collectives, bench_generator
);
criterion_main!(benches);

//! # `gdi-bench` — the evaluation harness (§6)
//!
//! One binary per paper table/figure (`CONTRIBUTING.md` has the index).
//! This library holds the shared machinery: scenario runners for GDA and
//! the three baselines, weak/strong-scaling sweeps, environment-variable
//! sizing, and plain-text table output.
//!
//! ## Sizing
//!
//! Defaults are sized for a small host (the figures' *shape* is the
//! deliverable, not Piz Daint's absolute numbers). Override with:
//!
//! * `GDI_BENCH_RANKS` — comma-separated rank counts (default `1,2,4,8`)
//! * `GDI_BENCH_SCALE` — Kronecker scale of the *smallest* weak-scaling
//!   point / the fixed strong-scaling graph (default `10`)
//! * `GDI_BENCH_OPS` — OLTP transactions per rank (default `1000`)

use std::sync::Arc;

use gda::GdaDb;
use gdi::AccessMode;
use graphgen::{load_into, sized_config, GraphSpec, LpgConfig, LpgMeta};
use rma::{CostModel, RankCtx};
use workloads::analytics::build_view;
use workloads::oltp::{Mix, OltpConfig, OltpResult};

pub use rma::{BackendKind, BACKEND_ENV};

/// Sweep parameters, from the environment.
#[derive(Debug, Clone)]
pub struct RunParams {
    pub ranks: Vec<usize>,
    pub base_scale: u32,
    pub ops_per_rank: usize,
    pub seed: u64,
}

impl Default for RunParams {
    fn default() -> Self {
        Self {
            ranks: vec![1, 2, 4, 8],
            base_scale: 10,
            ops_per_rank: 1000,
            seed: 42,
        }
    }
}

impl RunParams {
    pub fn from_env() -> Self {
        let mut p = Self::default();
        if let Ok(r) = std::env::var("GDI_BENCH_RANKS") {
            let v: Vec<usize> = r.split(',').filter_map(|s| s.trim().parse().ok()).collect();
            if !v.is_empty() {
                p.ranks = v;
            }
        }
        if let Ok(s) = std::env::var("GDI_BENCH_SCALE") {
            if let Ok(s) = s.trim().parse() {
                p.base_scale = s;
            }
        }
        if let Ok(o) = std::env::var("GDI_BENCH_OPS") {
            if let Ok(o) = o.trim().parse() {
                p.ops_per_rank = o;
            }
        }
        p
    }

    /// Weak-scaling graph scale at `nranks` (dataset grows with machine).
    pub fn weak_scale(&self, nranks: usize) -> u32 {
        self.base_scale + rma::cost::log2_ceil(nranks)
    }
}

/// One point of a measured series.
#[derive(Debug, Clone)]
pub struct Point {
    pub nranks: usize,
    pub scale: u32,
    /// Primary metric (throughput in MQ/s or runtime in seconds).
    pub value: f64,
    /// Failed-transaction fraction (OLTP) or 0.
    pub fail_frac: f64,
}

/// A named series of points (one line in a figure).
#[derive(Debug, Clone)]
pub struct Series {
    pub name: String,
    pub points: Vec<Point>,
}

/// Render series as an aligned text table (the harness' "figure").
pub fn render_series(title: &str, metric: &str, series: &[Series]) -> String {
    let mut out = format!("### {title}\n");
    out.push_str(&format!(
        "{:<28} {:>7} {:>7} {:>14} {:>9}\n",
        "series", "ranks", "scale", metric, "failed%"
    ));
    for s in series {
        for p in &s.points {
            out.push_str(&format!(
                "{:<28} {:>7} {:>7} {:>14.6} {:>8.2}%\n",
                s.name,
                p.nranks,
                p.scale,
                p.value,
                p.fail_frac * 100.0
            ));
        }
    }
    out
}

/// Write a harness output file under `results/` (and echo to stdout).
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!("{name}.txt"));
    if let Err(e) = std::fs::write(&path, content) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        eprintln!("[written {}]", path.display());
    }
}

/// Write the machine-readable summary of a bench run to
/// `results/BENCH_<name>.json` (and echo a `BENCH_JSON` line to
/// stdout). Every `bench/bin/*` harness emits one, so the perf
/// trajectory is tracked across PRs by diffing committed JSON instead
/// of re-parsing text tables.
pub fn emit_json(name: &str, json: &str) {
    println!("BENCH_JSON {json}");
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!("BENCH_{name}.json"));
    if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        eprintln!("[written {}]", path.display());
    }
}

/// Serialize measured series into the standard bench-JSON shape:
/// `{"bench":name,"series":[{"name":..,"points":[{nranks,scale,value,fail_frac}..]}..]}`.
pub fn series_json(bench: &str, series: &[Series]) -> String {
    let mut out = format!("{{\"bench\":\"{bench}\",\"series\":[");
    for (si, s) in series.iter().enumerate() {
        if si > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"name\":\"{}\",\"points\":[", s.name));
        for (pi, p) in s.points.iter().enumerate() {
            if pi > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"nranks\":{},\"scale\":{},\"value\":{:.9},\"fail_frac\":{:.6}}}",
                p.nranks, p.scale, p.value, p.fail_frac
            ));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// [`emit_json`] for plain series sweeps (the fig/tab harness shape).
pub fn emit_series_json(bench: &str, series: &[Series]) {
    emit_json(bench, &series_json(bench, series));
}

/// [`emit_json`] that refuses to touch `results/` in smoke mode: the
/// committed `BENCH_<name>.json` files record **full** runs, and a CI
/// `--smoke` run must never clobber that trajectory with a smoke-sized
/// point. The `BENCH_JSON` stdout line is printed either way.
pub fn emit_json_unless_smoke(name: &str, json: &str, smoke: bool) {
    if smoke {
        println!("BENCH_JSON {json}");
    } else {
        emit_json(name, json);
    }
}

// ---------------------------------------------------------------------
// Backend selection (`--backend sim|wall|both`)
// ---------------------------------------------------------------------

/// Backends a harness run sweeps, from the `--backend sim|wall|both`
/// command-line flag (also accepted as `--backend=X`). Without the flag
/// the run follows the process default (`GDI_FABRIC_BACKEND`, else
/// simulated) — the committed-baseline behavior.
pub fn backend_selection() -> Vec<BackendKind> {
    backend_selection_from(std::env::args().skip(1))
}

fn backend_selection_from(args: impl Iterator<Item = String>) -> Vec<BackendKind> {
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        let value = if let Some(v) = a.strip_prefix("--backend=") {
            Some(v.to_string())
        } else if a == "--backend" {
            args.next()
        } else {
            None
        };
        if let Some(v) = value {
            return match v.trim().to_ascii_lowercase().as_str() {
                "both" => vec![BackendKind::Sim, BackendKind::Wall],
                other => vec![other
                    .parse()
                    .unwrap_or_else(|e: String| panic!("--backend: {e}"))],
            };
        }
    }
    vec![BackendKind::from_env()]
}

/// Command-line arguments (after the binary name) with the
/// `--backend ...` flag removed — for harnesses that read positional
/// modes via `args().nth(1)`.
pub fn args_without_backend() -> Vec<String> {
    let mut out = Vec::new();
    let mut args = std::env::args().skip(1).peekable();
    while let Some(a) = args.next() {
        if a.starts_with("--backend=") {
            continue;
        }
        if a == "--backend" {
            args.next();
            continue;
        }
        out.push(a);
    }
    out
}

/// Run `f` once per selected backend with `GDI_FABRIC_BACKEND` set
/// accordingly, so every fabric the closure builds (without an explicit
/// pin) runs on that backend. The previous value is restored afterwards.
/// Call from a harness `main` before spawning threads.
pub fn for_backends(selection: &[BackendKind], mut f: impl FnMut(BackendKind)) {
    let saved = std::env::var_os(BACKEND_ENV);
    for &backend in selection {
        std::env::set_var(BACKEND_ENV, backend.label());
        f(backend);
    }
    match saved {
        Some(v) => std::env::set_var(BACKEND_ENV, v),
        None => std::env::remove_var(BACKEND_ENV),
    }
}

/// Label a series with its backend: simulated names stay exactly as
/// committed in `results/BENCH_*.json`; wall-clock series get a `/wall`
/// suffix so nondeterministic hardware timings are never confused with
/// the LogGP baseline.
pub fn label_series(mut series: Series, backend: BackendKind) -> Series {
    if backend == BackendKind::Wall {
        series.name.push_str("/wall");
    }
    series
}

/// Build a graph spec for a sweep point.
pub fn spec_for(scale: u32, seed: u64, lpg: LpgConfig) -> GraphSpec {
    GraphSpec {
        scale,
        edge_factor: 16,
        seed,
        lpg,
    }
}

/// Run one scaling sweep over `params.ranks`: weak scaling grows the
/// graph with the machine, strong scaling fixes it at `base_scale`. The
/// runner returns `(metric value, failed-transaction fraction)` for one
/// point; use [`sweep_runtime`] for seconds-valued runners without a
/// failure channel. This is the shared core of every figure binary.
pub fn sweep(
    name: &str,
    params: &RunParams,
    weak: bool,
    lpg: LpgConfig,
    runner: impl Fn(usize, &GraphSpec) -> (f64, f64),
) -> Series {
    let mut points = Vec::new();
    for &nranks in &params.ranks {
        let scale = if weak {
            params.weak_scale(nranks)
        } else {
            params.base_scale
        };
        let spec = spec_for(scale, params.seed, lpg);
        let (value, fail) = runner(nranks, &spec);
        points.push(Point {
            nranks,
            scale,
            value,
            fail_frac: fail,
        });
        eprintln!(
            "  [{name}] P={nranks} s={scale}: {value:.6} ({:.2}% failed)",
            fail * 100.0
        );
    }
    Series {
        name: name.into(),
        points,
    }
}

/// [`sweep`] for runtime-valued runners (no failure fraction).
pub fn sweep_runtime(
    name: &str,
    params: &RunParams,
    weak: bool,
    lpg: LpgConfig,
    runner: impl Fn(usize, &GraphSpec) -> f64,
) -> Series {
    sweep(name, params, weak, lpg, |p, s| (runner(p, s), 0.0))
}

// ---------------------------------------------------------------------
// GDA runners
// ---------------------------------------------------------------------

/// Run a GDA OLTP mix: returns `(throughput MQ/s, failure fraction)`.
/// Runs on the process-default backend; see [`gda_oltp_on`] to pin one.
pub fn gda_oltp(nranks: usize, spec: &GraphSpec, mix: &Mix, ops: usize) -> (f64, f64) {
    gda_oltp_on(BackendKind::from_env(), nranks, spec, mix, ops)
}

/// [`gda_oltp`] pinned to an explicit fabric backend.
pub fn gda_oltp_on(
    backend: BackendKind,
    nranks: usize,
    spec: &GraphSpec,
    mix: &Mix,
    ops: usize,
) -> (f64, f64) {
    let cfg = oltp_sized_config(spec, nranks, ops);
    let (db, fabric) = GdaDb::with_fabric_on("bench", cfg, nranks, CostModel::default(), backend);
    let results = fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let (meta, _) = load_into(&eng, spec);
        ctx.barrier();
        workloads::oltp::run_oltp(
            &eng,
            spec,
            &meta,
            mix,
            &OltpConfig {
                ops_per_rank: ops,
                seed: spec.seed,
            },
        )
    });
    summarize_oltp(&results)
}

/// Size a config with headroom for OLTP-inserted vertices/edges.
pub fn oltp_sized_config(spec: &GraphSpec, nranks: usize, ops: usize) -> gda::GdaConfig {
    let mut cfg = sized_config(spec, nranks);
    let extra_blocks = (ops * 4).next_power_of_two();
    cfg.blocks_per_rank += extra_blocks;
    cfg.dht_heap_per_rank += (ops * 2).next_power_of_two();
    cfg
}

/// GDA OLTP with full per-op results (latency histograms for Fig. 5).
pub fn gda_oltp_detailed(
    nranks: usize,
    spec: &GraphSpec,
    mix: &Mix,
    ops: usize,
) -> Vec<OltpResult> {
    gda_oltp_detailed_on(BackendKind::from_env(), nranks, spec, mix, ops)
}

/// [`gda_oltp_detailed`] pinned to an explicit fabric backend.
pub fn gda_oltp_detailed_on(
    backend: BackendKind,
    nranks: usize,
    spec: &GraphSpec,
    mix: &Mix,
    ops: usize,
) -> Vec<OltpResult> {
    let cfg = oltp_sized_config(spec, nranks, ops);
    let (db, fabric) = GdaDb::with_fabric_on("bench", cfg, nranks, CostModel::default(), backend);
    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let (meta, _) = load_into(&eng, spec);
        ctx.barrier();
        workloads::oltp::run_oltp(
            &eng,
            spec,
            &meta,
            mix,
            &OltpConfig {
                ops_per_rank: ops,
                seed: spec.seed,
            },
        )
    })
}

/// Summarize per-rank OLTP results into `(MQ/s, failure fraction)`.
pub fn summarize_oltp(results: &[OltpResult]) -> (f64, f64) {
    let qps = workloads::oltp::throughput_qps(results);
    let committed: u64 = results.iter().map(|r| r.committed).sum();
    let aborted: u64 = results.iter().map(|r| r.aborted).sum();
    let fail = if committed + aborted == 0 {
        0.0
    } else {
        aborted as f64 / (committed + aborted) as f64
    };
    (qps / 1e6, fail)
}

/// The OLAP algorithms of Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OlapAlgo {
    Bfs,
    Pagerank,
    Cdlp,
    Wcc,
    Lcc,
    Khop(u32),
    Gnn { layers: usize, k: usize },
    Bi2,
}

impl OlapAlgo {
    pub fn name(&self) -> String {
        match self {
            OlapAlgo::Bfs => "BFS".into(),
            OlapAlgo::Pagerank => "PageRank (i=10, df=0.85)".into(),
            OlapAlgo::Cdlp => "CDLP (i=5)".into(),
            OlapAlgo::Wcc => "WCC (i=5)".into(),
            OlapAlgo::Lcc => "LCC".into(),
            OlapAlgo::Khop(k) => format!("{k}-Hop"),
            OlapAlgo::Gnn { layers, k } => format!("GNN (l={layers}, k={k})"),
            OlapAlgo::Bi2 => "BI2".into(),
        }
    }
}

/// Which OLAP view builder a run uses (the before/after axis of the
/// zero-transaction scan layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewMode {
    /// The tx-based reference path: a collective read transaction and
    /// one `neighbors` call per vertex (the differential oracle).
    Tx,
    /// The scan layer: `GdaRank::olap_view` — an epoch-validated CSR
    /// mirror built by one raw-window sweep.
    Scan,
}

/// Run one GDA OLAP/OLSP workload; returns the active-clock runtime in
/// seconds (max over ranks, measured between two barriers — simulated
/// on the LogGP backend, real elapsed on the wall backend).
pub fn gda_olap(nranks: usize, spec: &GraphSpec, algo: OlapAlgo) -> f64 {
    gda_olap_with(nranks, spec, algo, ViewMode::Tx)
}

/// [`gda_olap`] on the zero-transaction scan path (`gda::scan`).
pub fn gda_olap_scan(nranks: usize, spec: &GraphSpec, algo: OlapAlgo) -> f64 {
    gda_olap_with(nranks, spec, algo, ViewMode::Scan)
}

/// [`gda_olap`] with an explicit view builder.
pub fn gda_olap_with(nranks: usize, spec: &GraphSpec, algo: OlapAlgo, mode: ViewMode) -> f64 {
    gda_olap_on(BackendKind::from_env(), nranks, spec, algo, mode)
}

/// [`gda_olap_with`] pinned to an explicit fabric backend.
pub fn gda_olap_on(
    backend: BackendKind,
    nranks: usize,
    spec: &GraphSpec,
    algo: OlapAlgo,
    mode: ViewMode,
) -> f64 {
    let mut cfg = sized_config(spec, nranks);
    if let OlapAlgo::Gnn { k, .. } = algo {
        // feature vectors dominate storage
        let fv_blocks =
            (spec.n_vertices() as usize / nranks + 1) * (k * 8 / (cfg.block_size - 16) + 2);
        cfg.blocks_per_rank = (cfg.blocks_per_rank + fv_blocks).next_power_of_two();
    }
    let (db, fabric) = GdaDb::with_fabric_on("olap", cfg, nranks, CostModel::default(), backend);
    let times = fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let (meta, _) = load_into(&eng, spec);
        run_algo_timed_with(&eng, ctx, spec, &meta, algo, mode)
    });
    times.into_iter().fold(0.0, f64::max)
}

/// Execute an algorithm between clock-reconciling barriers and return the
/// rank's simulated elapsed seconds.
///
/// The timed region *includes* materializing the local partition through
/// GDI (`build_view`): a graph database answers OLAP queries from its
/// transactional storage, so fetching adjacency through the collective
/// read transaction is part of the query — this is exactly the overhead
/// that separates GDA from the raw Graph500 kernel in Fig. 6e/6f.
pub fn run_algo_timed(
    eng: &gda::GdaRank,
    ctx: &RankCtx,
    spec: &GraphSpec,
    meta: &LpgMeta,
    algo: OlapAlgo,
) -> f64 {
    run_algo_timed_with(eng, ctx, spec, meta, algo, ViewMode::Tx)
}

/// [`run_algo_timed`] with an explicit view builder ([`ViewMode`]).
pub fn run_algo_timed_with(
    eng: &gda::GdaRank,
    ctx: &RankCtx,
    spec: &GraphSpec,
    meta: &LpgMeta,
    algo: OlapAlgo,
    mode: ViewMode,
) -> f64 {
    ctx.barrier();
    let t0 = ctx.now_ns();
    // materialize the local partition: either through the collective
    // read transaction (tx path — the Fig. 6e/6f overhead separating
    // GDA from the raw Graph500 kernel) or by the zero-transaction
    // raw-window sweep (`gda::scan`); both are part of the query
    let view = &*match mode {
        ViewMode::Scan => eng.olap_view(),
        ViewMode::Tx => std::rc::Rc::new(match meta.all_index {
            Some(ix) => workloads::analytics::build_view_indexed(eng, ix),
            None => {
                let apps = spec.vertices_for_rank(ctx.rank(), ctx.nranks());
                build_view(eng, &apps)
            }
        }),
    };
    match algo {
        OlapAlgo::Bfs => {
            let root = bfs_root(spec);
            let tx = eng.begin_collective(AccessMode::ReadOnly);
            drop(tx);
            workloads::analytics::bfs(eng, view, root);
        }
        OlapAlgo::Pagerank => {
            workloads::analytics::pagerank(eng, view, 10, 0.85);
        }
        OlapAlgo::Cdlp => {
            workloads::analytics::cdlp(eng, view, 5);
        }
        OlapAlgo::Wcc => {
            workloads::analytics::wcc(eng, view, 5);
        }
        OlapAlgo::Lcc => {
            workloads::analytics::lcc(eng, view);
        }
        OlapAlgo::Khop(k) => {
            workloads::analytics::khop(eng, view, bfs_root(spec), k);
        }
        OlapAlgo::Gnn { layers, k } => {
            let gcfg = workloads::gnn::GnnConfig {
                layers,
                k,
                seed: spec.seed,
            };
            let pt = workloads::gnn::install_feature_ptype(eng, k);
            workloads::gnn::init_features(eng, view, pt, &gcfg);
            workloads::gnn::train_forward(eng, view, pt, &gcfg);
        }
        OlapAlgo::Bi2 => {
            let params = bi2_params();
            workloads::bi2::bi2(eng, spec, meta, &params);
        }
    }
    ctx.barrier();
    (ctx.now_ns() - t0) / 1e9
}

/// A deterministic BFS root with non-zero degree: the paper samples
/// random roots; we pick the first endpoint of the first edge.
pub fn bfs_root(spec: &GraphSpec) -> u64 {
    graphgen::KroneckerSampler::new(spec.scale, spec.seed)
        .edge(0)
        .0
}

/// The BI2 parameters used across harnesses (tuned for measurable
/// selectivity on the rich-graph configuration of [`rich_lpg`]).
pub fn bi2_params() -> workloads::bi2::Bi2Params {
    workloads::bi2::Bi2Params {
        person_threshold: u64::MAX / 8,
        target_threshold: u64::MAX / 8,
        ..Default::default()
    }
}

/// The LPG configuration used by BI2/OLSP harnesses (few labels, all
/// edges labeled, so the query selects a meaningful subset).
pub fn rich_lpg() -> LpgConfig {
    LpgConfig {
        num_labels: 4,
        num_ptypes: 4,
        labels_per_vertex: 2,
        props_per_vertex: 3,
        edge_label_fraction: 1.0,
        ..Default::default()
    }
}

// ---------------------------------------------------------------------
// Baseline runners
// ---------------------------------------------------------------------

/// JanusGraph-like OLTP: `(MQ/s, failure fraction)`.
pub fn janus_oltp(nranks: usize, spec: &GraphSpec, mix: &Mix, ops: usize) -> (f64, f64) {
    janus_oltp_on(BackendKind::from_env(), nranks, spec, mix, ops)
}

/// [`janus_oltp`] pinned to an explicit fabric backend.
pub fn janus_oltp_on(
    backend: BackendKind,
    nranks: usize,
    spec: &GraphSpec,
    mix: &Mix,
    ops: usize,
) -> (f64, f64) {
    let store = Arc::new(baselines::JanusStore::new(nranks));
    let fabric = rma::FabricBuilder::new(nranks)
        .cost(CostModel::default())
        .backend(backend)
        .build();
    let s = store.clone();
    let results = fabric.run(move |ctx| {
        s.load(ctx, spec);
        ctx.barrier();
        s.run_oltp(
            ctx,
            spec,
            mix,
            &OltpConfig {
                ops_per_rank: ops,
                seed: spec.seed,
            },
        )
    });
    let (client_mqps, fail) = summarize_oltp(&results);
    // server-side bound: ops cannot complete faster than shards serve them
    let committed: u64 = results.iter().map(|r| r.committed).sum();
    let client_time = committed as f64 / (client_mqps * 1e6);
    let makespan = client_time.max(store.max_server_busy_s());
    (committed as f64 / makespan / 1e6, fail)
}

/// Janus OLTP with full per-op results.
pub fn janus_oltp_detailed(
    nranks: usize,
    spec: &GraphSpec,
    mix: &Mix,
    ops: usize,
) -> Vec<OltpResult> {
    let store = Arc::new(baselines::JanusStore::new(nranks));
    let fabric = rma::FabricBuilder::new(nranks)
        .cost(CostModel::default())
        .build();
    let s = store.clone();
    fabric.run(move |ctx| {
        s.load(ctx, spec);
        ctx.barrier();
        s.run_oltp(
            ctx,
            spec,
            mix,
            &OltpConfig {
                ops_per_rank: ops,
                seed: spec.seed,
            },
        )
    })
}

/// Neo4j-like OLTP: `(MQ/s, failure fraction)`. `nranks` are clients; the
/// store is always one server.
pub fn neo4j_oltp(nranks: usize, spec: &GraphSpec, mix: &Mix, ops: usize) -> (f64, f64) {
    neo4j_oltp_on(BackendKind::from_env(), nranks, spec, mix, ops)
}

/// [`neo4j_oltp`] pinned to an explicit fabric backend.
pub fn neo4j_oltp_on(
    backend: BackendKind,
    nranks: usize,
    spec: &GraphSpec,
    mix: &Mix,
    ops: usize,
) -> (f64, f64) {
    let store = Arc::new(baselines::Neo4jStore::default());
    let fabric = rma::FabricBuilder::new(nranks)
        .cost(CostModel::default())
        .backend(backend)
        .build();
    let s = store.clone();
    let results = fabric.run(move |ctx| {
        s.load(ctx, spec);
        s.run_oltp(
            ctx,
            spec,
            mix,
            &OltpConfig {
                ops_per_rank: ops,
                seed: spec.seed,
            },
        )
    });
    let (client_mqps, fail) = summarize_oltp(&results);
    let committed: u64 = results.iter().map(|r| r.committed).sum();
    let client_time = committed as f64 / (client_mqps * 1e6);
    let makespan = client_time.max(store.server_makespan_s());
    (committed as f64 / makespan / 1e6, fail)
}

/// Neo4j OLTP with full per-op results.
pub fn neo4j_oltp_detailed(
    nranks: usize,
    spec: &GraphSpec,
    mix: &Mix,
    ops: usize,
) -> Vec<OltpResult> {
    let store = Arc::new(baselines::Neo4jStore::default());
    let fabric = rma::FabricBuilder::new(nranks)
        .cost(CostModel::default())
        .build();
    let s = store.clone();
    fabric.run(move |ctx| {
        s.load(ctx, spec);
        s.run_oltp(
            ctx,
            spec,
            mix,
            &OltpConfig {
                ops_per_rank: ops,
                seed: spec.seed,
            },
        )
    })
}

/// Graph500 reference BFS runtime in active-clock seconds.
pub fn graph500_bfs(nranks: usize, spec: &GraphSpec) -> f64 {
    graph500_bfs_on(BackendKind::from_env(), nranks, spec)
}

/// [`graph500_bfs`] pinned to an explicit fabric backend.
pub fn graph500_bfs_on(backend: BackendKind, nranks: usize, spec: &GraphSpec) -> f64 {
    let fabric = rma::FabricBuilder::new(nranks)
        .cost(CostModel::default())
        .backend(backend)
        .build();
    let times = fabric.run(|ctx| {
        let csr = baselines::build_csr(ctx, spec);
        ctx.barrier();
        let t0 = ctx.now_ns();
        baselines::csr_bfs(ctx, &csr, bfs_root(spec));
        ctx.barrier();
        (ctx.now_ns() - t0) / 1e9
    });
    times.into_iter().fold(0.0, f64::max)
}

/// Neo4j server-side OLAP runtime in active-clock seconds.
pub fn neo4j_olap(nranks: usize, spec: &GraphSpec, algo: OlapAlgo) -> f64 {
    neo4j_olap_on(BackendKind::from_env(), nranks, spec, algo)
}

/// [`neo4j_olap`] pinned to an explicit fabric backend.
pub fn neo4j_olap_on(backend: BackendKind, nranks: usize, spec: &GraphSpec, algo: OlapAlgo) -> f64 {
    let store = Arc::new(baselines::Neo4jStore::default());
    let fabric = rma::FabricBuilder::new(nranks)
        .cost(CostModel::default())
        .backend(backend)
        .build();
    let s = store.clone();
    let times = fabric.run(move |ctx| {
        s.load(ctx, spec);
        ctx.barrier();
        let t0 = ctx.now_ns();
        match algo {
            OlapAlgo::Bfs => {
                s.bfs(ctx, bfs_root(spec));
            }
            OlapAlgo::Khop(k) => {
                s.khop(ctx, bfs_root(spec), k);
            }
            OlapAlgo::Bi2 => {
                s.bi2(ctx, &bi2_params());
            }
            _ => unimplemented!("Neo4j baseline covers BFS/k-hop/BI2 only"),
        }
        ctx.barrier();
        (ctx.now_ns() - t0) / 1e9
    });
    times.into_iter().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_flag_parsing() {
        let sel = |args: &[&str]| backend_selection_from(args.iter().map(|s| s.to_string()));
        assert_eq!(sel(&["--smoke"]), vec![BackendKind::from_env()]);
        assert_eq!(sel(&["--backend", "sim"]), vec![BackendKind::Sim]);
        assert_eq!(sel(&["--backend=wall"]), vec![BackendKind::Wall]);
        assert_eq!(
            sel(&["--smoke", "--backend", "both"]),
            vec![BackendKind::Sim, BackendKind::Wall]
        );
    }

    #[test]
    fn wall_series_get_suffixed() {
        let s = Series {
            name: "GDA".into(),
            points: vec![],
        };
        assert_eq!(label_series(s.clone(), BackendKind::Sim).name, "GDA");
        assert_eq!(label_series(s, BackendKind::Wall).name, "GDA/wall");
    }

    #[test]
    fn params_env_defaults() {
        let p = RunParams::default();
        assert_eq!(p.weak_scale(1), p.base_scale);
        assert_eq!(p.weak_scale(8), p.base_scale + 3);
    }

    #[test]
    fn small_end_to_end_point() {
        let spec = spec_for(8, 7, LpgConfig::default());
        let (mqps, fail) = gda_oltp(2, &spec, &Mix::READ_MOSTLY, 50);
        assert!(mqps > 0.0);
        assert!(fail < 0.5);
    }

    #[test]
    fn render_is_stable() {
        let s = Series {
            name: "x".into(),
            points: vec![Point {
                nranks: 2,
                scale: 10,
                value: 1.5,
                fail_frac: 0.01,
            }],
        };
        let out = render_series("t", "MQ/s", &[s]);
        assert!(out.contains("### t"));
        assert!(out.contains('x'));
        assert!(out.contains("1.5"));
    }
}

//! `si_sweep` — abort-free read traffic under MVCC snapshot isolation.
//!
//! Drives the Table-3 read-heavy mix through the serving front-end at
//! growing session counts, A/B-ing the engine's two read paths on the
//! same traffic:
//!
//! * `snapshot` — `mvcc = true`: read-only transactions pin a snapshot
//!   epoch at begin and read validated version chains, taking no locks;
//! * `locking`  — `mvcc = false`: the seed behaviour, shared read locks
//!   with conflict aborts.
//!
//! Reported per point: read-op commits/aborts, overall abort fraction,
//! per-committed-op simulated service time, client-observed wall
//! latency percentiles, and the MVCC fabric counters (pins, snapshot
//! reads, archives, truncations).
//!
//! Gates:
//! * read aborts under the snapshot path must be **zero** — on every
//!   backend, smoke or full (the tentpole's abort-free claim);
//! * on full simulated runs with ≥ 1000 sessions, the snapshot path's
//!   per-committed-op simulated service time must beat the locking
//!   path's (the modeled read-latency win; wall timings are
//!   hardware-dependent and non-gating).
//!
//! `--smoke` runs a seconds-sized configuration (the CI smoke step).
//!
//! Environment:
//! * `GDI_BENCH_SERVER_RANKS` — fabric size (default 4)
//! * `GDI_BENCH_SESSIONS` — comma-separated session counts
//!   (default `256,1024`)
//! * `GDI_BENCH_SERVER_OPS` — total op budget per point (default 24000)
//! * `GDI_BENCH_SCALE` — graph scale (default 10)

use gda::GdaDb;
use gdi_bench::{
    backend_selection, emit, emit_json_unless_smoke, for_backends, oltp_sized_config, spec_for,
    BackendKind, RunParams,
};
use graphgen::LpgConfig;
use rma::CostModel;
use server::{RoutePolicy, ServerOptions};
use workloads::oltp::Mix;
use workloads::traffic::{load_and_serve, ServeRun, TrafficConfig};

struct Point {
    sessions: usize,
    path: &'static str,
    committed: u64,
    read_committed: u64,
    read_aborted: u64,
    abort_frac: f64,
    /// Simulated service time per committed op (makespan / commits).
    sim_per_op_us: f64,
    /// Simulated service time per **read** request (the serve loops'
    /// read-section clock over read requests served) — the number the
    /// read-latency gate compares, isolated from write-commit
    /// bookkeeping.
    sim_read_us: f64,
    p50_us: f64,
    p99_us: f64,
    snapshot_pins: u64,
    snapshot_reads: u64,
    version_archives: u64,
    chain_truncations: u64,
}

fn measure(
    backend: BackendKind,
    nranks: usize,
    spec: &graphgen::GraphSpec,
    sessions: usize,
    ops_per_session: usize,
    mvcc: bool,
) -> Point {
    let total_ops = sessions * ops_per_session;
    let mut cfg = oltp_sized_config(spec, nranks, total_ops);
    cfg.mvcc = mvcc;
    // session inserts land in disjoint id spaces; headroom beyond the
    // per-rank OLTP sizing (and room for version-chain archives)
    cfg.dht_heap_per_rank += (total_ops * 2).next_power_of_two();
    cfg.blocks_per_rank += (total_ops * 2).next_power_of_two();
    let (db, fabric) = GdaDb::with_fabric_on("si", cfg, nranks, CostModel::default(), backend);
    let tcfg = TrafficConfig {
        sessions,
        ops_per_session,
        mix: Mix::READ_MOSTLY,
        seed: spec.seed,
        workers: sessions.clamp(1, 16),
    };
    // session-affine routing (the paper's deployment shape): an op lands
    // on the rank its session connected to and the serve loop reaches
    // the vertex with one-sided RMA — so the read path pays real remote
    // costs, which is exactly where the two paths differ (remote lock
    // round trips vs lock-free validated copies)
    let opts = ServerOptions {
        route: RoutePolicy::SessionAffine,
        ..ServerOptions::default()
    };
    let run: ServeRun = load_and_serve(&db, &fabric, opts, spec, &tcfg);

    if std::env::var("GDI_SI_DEBUG").is_ok() {
        let reps = fabric.last_reports();
        let sum = |f: &dyn Fn(&rma::RankReport) -> u64| reps.iter().map(f).sum::<u64>();
        eprintln!(
            "    [debug mvcc={mvcc}] gets={} puts={} atomics={} flushes={} local={} coll={} \
             sim_ns={:?}",
            sum(&|r| r.gets),
            sum(&|r| r.puts),
            sum(&|r| r.atomics),
            sum(&|r| r.flushes),
            sum(&|r| r.local_ops),
            sum(&|r| r.collectives),
            run.summaries
                .iter()
                .map(|s| s.sim_serve_ns)
                .collect::<Vec<_>>(),
        );
    }
    let lat = run.metrics.latency();
    let committed = run.traffic.committed();
    let max_serve_ns = run
        .summaries
        .iter()
        .map(|s| s.sim_serve_ns)
        .fold(0.0f64, f64::max);
    let read_ns: f64 = run.summaries.iter().map(|s| s.sim_read_ns).sum();
    let read_ops: u64 = run.summaries.iter().map(|s| s.read_ops).sum();
    Point {
        sessions,
        path: if mvcc { "snapshot" } else { "locking" },
        committed,
        read_committed: run.traffic.read_committed(),
        read_aborted: run.traffic.read_aborted(),
        abort_frac: run.traffic.abort_fraction(),
        sim_per_op_us: if committed == 0 {
            0.0
        } else {
            max_serve_ns / committed as f64 / 1e3
        },
        sim_read_us: if read_ops == 0 {
            0.0
        } else {
            read_ns / read_ops as f64 / 1e3
        },
        p50_us: lat.percentile_ns(50.0) / 1e3,
        p99_us: lat.percentile_ns(99.0) / 1e3,
        snapshot_pins: run.metrics.snapshot_pins(),
        snapshot_reads: run.metrics.snapshot_reads(),
        version_archives: run.metrics.version_archives(),
        chain_truncations: run.metrics.chain_truncations(),
    }
}

fn main() {
    // `--backend sim|wall|both`: wall runs land under `si_sweep_wall`
    for_backends(&backend_selection(), run_on);
}

fn run_on(backend: BackendKind) {
    let bench = match backend {
        BackendKind::Sim => "si_sweep",
        BackendKind::Wall => "si_sweep_wall",
    };
    let smoke = std::env::args().any(|a| a == "--smoke");
    let params = RunParams::from_env();
    let nranks: usize = std::env::var("GDI_BENCH_SERVER_RANKS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(4);
    let (scale, session_counts, op_budget) = if smoke {
        (8u32, vec![48usize], 1_200usize)
    } else {
        let sessions: Vec<usize> = std::env::var("GDI_BENCH_SESSIONS")
            .ok()
            .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
            .filter(|v: &Vec<usize>| !v.is_empty())
            .unwrap_or_else(|| vec![256, 1024]);
        let ops: usize = std::env::var("GDI_BENCH_SERVER_OPS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(24_000);
        (params.base_scale, sessions, ops)
    };
    let spec = spec_for(scale, 42, LpgConfig::default());

    let mut out = String::new();
    let mut json_rows: Vec<String> = Vec::new();
    out.push_str("### si_sweep — snapshot-isolation reads vs the locking path (read-heavy mix)\n");
    out.push_str(&format!(
        "P={nranks} scale={scale} ({} vertices), mix={}, op budget={op_budget}\n\n",
        spec.n_vertices(),
        Mix::READ_MOSTLY.name,
    ));
    out.push_str(&format!(
        "{:>9} {:>9} {:>10} {:>10} {:>10} {:>7} {:>12} {:>12} {:>9} {:>9} {:>8} {:>9} {:>9} {:>7}\n",
        "sessions",
        "path",
        "committed",
        "read_ok",
        "read_abrt",
        "abort%",
        "sim_us/op",
        "sim_us/read",
        "p50_us",
        "p99_us",
        "pins",
        "snreads",
        "archives",
        "trunc"
    ));

    let mut points: Vec<Point> = Vec::new();
    for &sessions in &session_counts {
        let ops_per_session = (op_budget / sessions).max(2);
        for mvcc in [false, true] {
            eprintln!(
                "  [si_sweep] S={sessions} path={} ...",
                if mvcc { "snapshot" } else { "locking" }
            );
            let p = measure(backend, nranks, &spec, sessions, ops_per_session, mvcc);
            out.push_str(&format!(
                "{:>9} {:>9} {:>10} {:>10} {:>10} {:>6.2}% {:>12.3} {:>12.3} {:>9.1} {:>9.1} {:>8} {:>9} {:>9} {:>7}\n",
                p.sessions,
                p.path,
                p.committed,
                p.read_committed,
                p.read_aborted,
                p.abort_frac * 100.0,
                p.sim_per_op_us,
                p.sim_read_us,
                p.p50_us,
                p.p99_us,
                p.snapshot_pins,
                p.snapshot_reads,
                p.version_archives,
                p.chain_truncations,
            ));
            json_rows.push(format!(
                "{{\"sessions\":{},\"path\":\"{}\",\"committed\":{},\
                 \"read_committed\":{},\"read_aborted\":{},\"abort_frac\":{:.5},\
                 \"sim_per_op_us\":{:.4},\"sim_read_us\":{:.4},\
                 \"p50_us\":{:.2},\"p99_us\":{:.2},\
                 \"snapshot_pins\":{},\"snapshot_reads\":{},\
                 \"version_archives\":{},\"chain_truncations\":{}}}",
                p.sessions,
                p.path,
                p.committed,
                p.read_committed,
                p.read_aborted,
                p.abort_frac,
                p.sim_per_op_us,
                p.sim_read_us,
                p.p50_us,
                p.p99_us,
                p.snapshot_pins,
                p.snapshot_reads,
                p.version_archives,
                p.chain_truncations,
            ));
            points.push(p);
        }
    }
    out.push('\n');

    // ---- gates ---------------------------------------------------------
    // 1. abort-free reads: the snapshot path never aborts a read op —
    //    every backend, every configuration
    for p in points.iter().filter(|p| p.path == "snapshot") {
        assert_eq!(
            p.read_aborted, 0,
            "snapshot path aborted {} read ops at S={} — reads must be abort-free",
            p.read_aborted, p.sessions
        );
        assert!(
            p.snapshot_pins > 0 && p.snapshot_reads > 0,
            "snapshot path served no pinned reads at S={} — A/B is vacuous",
            p.sessions
        );
    }
    // 2. modeled read-latency win at high session counts: compare the
    //    serve loops' per-read service time — the cost a read request
    //    actually pays, isolated from write-commit bookkeeping (LogGP
    //    relation; wall timings are hardware-dependent and non-gating)
    if backend == BackendKind::Sim && !smoke {
        for &sessions in session_counts.iter().filter(|&&s| s >= 1000) {
            let read_of = |path: &str| {
                points
                    .iter()
                    .find(|p| p.sessions == sessions && p.path == path)
                    .map(|p| p.sim_read_us)
                    .unwrap_or(0.0)
            };
            let (snap, lock) = (read_of("snapshot"), read_of("locking"));
            out.push_str(&format!(
                "S={sessions}: snapshot {snap:.3} us/read vs locking {lock:.3} us/read \
                 ({:.2}x)\n",
                lock / snap.max(1e-12)
            ));
            assert!(
                snap < lock,
                "snapshot path ({snap:.3} us/read) did not beat the locking path \
                 ({lock:.3} us/read) at S={sessions}"
            );
        }
    }

    emit(bench, &out);
    emit_json_unless_smoke(
        bench,
        &format!(
            "{{\"bench\":\"{bench}\",\"backend\":\"{}\",\"nranks\":{nranks},\"scale\":{scale},\
             \"mix\":\"{}\",\"points\":[{}]}}",
            backend.label(),
            Mix::READ_MOSTLY.name,
            json_rows.join(",")
        ),
        smoke,
    );
}

//! `cache_sweep` — the translation-cache locality sweep.
//!
//! Sweeps the new scenario axis introduced with `gda::cache`:
//! **lookup locality** (uniform vs Zipf-skewed vertex choice) crossed
//! with a read-heavy and a churn-heavy Table-3 mix, comparing three
//! translation paths:
//!
//! * `uncached` — every `translate_vertex_id` pays the remote DHT chain
//!   walk (the seed behaviour);
//! * `cached` — the epoch-validated cache, one revalidation `aget` per
//!   probe;
//! * `pinned` — the cache with drain-cycle pinning (one epoch check per
//!   16-op cycle), the server batch path.
//!
//! Reported per point: simulated time, speedup vs uncached, cache hit
//! fraction, and — for the churn mix — **stale reads**: after every
//! committed `DeleteVertex`, the driver immediately probes the deleted
//! id and counts any successful translation. The epoch protocol must
//! keep this at zero.
//!
//! `--smoke` runs a seconds-sized configuration (the CI smoke step).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use gda::GdaDb;
use gdi::{AccessMode, AppVertexId, EdgeOrientation, GdiError, PropertyValue};
use graphgen::{load_into, GraphSpec, LpgConfig, LpgMeta};
use rma::CostModel;
use workloads::locality::VertexSampler;
use workloads::oltp::{Mix, OpKind};

use gdi_bench::{
    backend_selection, emit, emit_json_unless_smoke, for_backends, oltp_sized_config, spec_for,
    BackendKind,
};

/// Which translation path a point exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CacheMode {
    Uncached,
    Cached,
    Pinned,
}

impl CacheMode {
    const ALL: [CacheMode; 3] = [CacheMode::Uncached, CacheMode::Cached, CacheMode::Pinned];

    fn label(self) -> &'static str {
        match self {
            CacheMode::Uncached => "uncached",
            CacheMode::Cached => "cached",
            CacheMode::Pinned => "cached+pinned",
        }
    }
}

/// Ops per pinned epoch-check cycle (mirrors a server drain batch).
const PIN_CYCLE: usize = 16;

#[derive(Debug, Clone, Copy, Default)]
struct PointOut {
    sim_s: f64,
    hits: u64,
    misses: u64,
    stale_reads: u64,
    committed: u64,
    aborted: u64,
}

impl PointOut {
    fn hit_frac(&self) -> f64 {
        gda::CacheStats {
            hits: self.hits,
            misses: self.misses,
            ..Default::default()
        }
        .hit_fraction()
    }
}

fn build_db(
    spec: &GraphSpec,
    nranks: usize,
    ops: usize,
    mode: CacheMode,
) -> (std::sync::Arc<GdaDb>, rma::Fabric) {
    let mut cfg = oltp_sized_config(spec, nranks, ops);
    cfg.translation_cache = mode != CacheMode::Uncached;
    // every rank translates across the whole id space here (unlike the
    // server, where routing partitions it), so size the cache to cover
    // it — the default capacity already does for per-rank workloads
    cfg.translation_cache_capacity = (2 * spec.n_vertices() as usize).next_power_of_two();
    GdaDb::with_fabric("cache_sweep", cfg, nranks, CostModel::default())
}

/// Translate-only microbenchmark: the isolated cost of
/// `translate_vertex_id` under each mode (the Fig-4 hot-path component
/// this PR attacks).
fn run_translate_point(
    nranks: usize,
    spec: &GraphSpec,
    sampler: &VertexSampler,
    mode: CacheMode,
    lookups: usize,
) -> PointOut {
    let (db, fabric) = build_db(spec, nranks, lookups / 8 + 64, mode);
    let outs = fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let _ = load_into(&eng, spec);
        ctx.barrier();
        let mut rng = SmallRng::seed_from_u64(0xCAC4E ^ (ctx.rank() as u64) << 17);
        let tx = eng.begin(AccessMode::ReadOnly);
        let t0 = ctx.now_ns();
        for i in 0..lookups {
            if mode == CacheMode::Pinned && i % PIN_CYCLE == 0 {
                eng.cache_begin_cycle();
            }
            let v = sampler.sample(&mut rng);
            let _ = tx.translate_vertex_id(AppVertexId(v));
        }
        let dt = ctx.now_ns() - t0;
        if mode == CacheMode::Pinned {
            eng.cache_end_cycle();
        }
        tx.commit().expect("read-only commit");
        let s = eng.translation_cache_stats();
        (dt, s.hits, s.misses)
    });
    let mut out = PointOut::default();
    for (dt, h, m) in outs {
        out.sim_s = out.sim_s.max(dt / 1e9);
        out.hits += h;
        out.misses += m;
    }
    out
}

/// One end-to-end mix point: every rank drives `ops` single-process
/// transactions whose target vertices come from `sampler`, with a
/// post-delete stale probe.
fn run_mix_point(
    nranks: usize,
    spec: &GraphSpec,
    mix: &Mix,
    sampler: &VertexSampler,
    mode: CacheMode,
    ops: usize,
) -> PointOut {
    let (db, fabric) = build_db(spec, nranks, ops, mode);
    let outs = fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let (meta, _) = load_into(&eng, spec);
        ctx.barrier();
        let mut rng = SmallRng::seed_from_u64(spec.seed ^ (ctx.rank() as u64).wrapping_mul(0x9E37));
        let n = spec.n_vertices();
        let mut next_new = n + 1 + ctx.rank() as u64 * 1_000_000_007;
        let mut added: Vec<u64> = Vec::new();
        let mut committed = 0u64;
        let mut aborted = 0u64;
        let mut stale = 0u64;
        let t0 = ctx.now_ns();
        for i in 0..ops {
            if mode == CacheMode::Pinned && i % PIN_CYCLE == 0 {
                eng.cache_begin_cycle();
            }
            let kind = mix.sample(&mut rng);
            let (ok, deleted) = run_one_sampled(
                &eng,
                &meta,
                kind,
                sampler,
                &mut rng,
                &mut next_new,
                &mut added,
            );
            if ok {
                committed += 1;
            } else {
                aborted += 1;
            }
            // stale probe: a committed delete must be untranslatable
            // immediately afterwards — a cached stale translation (the
            // bug class the epoch protocol prevents) would surface here
            if let (true, Some(app)) = (ok, deleted) {
                let tx = eng.begin(AccessMode::ReadOnly);
                if tx.translate_vertex_id(AppVertexId(app)).is_ok() {
                    stale += 1;
                }
                tx.commit().expect("probe commit");
            }
        }
        let dt = ctx.now_ns() - t0;
        if mode == CacheMode::Pinned {
            eng.cache_end_cycle();
        }
        // snapshot the counters now: the verification sweep below is
        // not part of the benchmarked workload and must not distort
        // the reported hit rate
        let s = eng.translation_cache_stats();
        // cross-rank stale sweep (untimed): after all churn settles,
        // every rank revalidates every base id through its own cache
        // against the uncached diagnostic path. A broken epoch bump
        // would leave this rank serving positives for vertices OTHER
        // ranks deleted (write-through never reaches here) — the
        // in-loop probe above cannot see that, since the deleting
        // rank's own cache is always corrected by write-through.
        ctx.barrier();
        if mode == CacheMode::Pinned {
            eng.cache_begin_cycle(); // a fresh drain cycle, per contract
        }
        let tx = eng.begin(AccessMode::ReadOnly);
        for app in 0..n {
            let cached = tx.translate_vertex_id(AppVertexId(app)).is_ok();
            let truth = eng.peek_translate(AppVertexId(app)).is_some();
            if cached != truth {
                stale += 1;
            }
        }
        tx.commit().expect("sweep commit");
        if mode == CacheMode::Pinned {
            eng.cache_end_cycle();
        }
        (dt, s.hits, s.misses, stale, committed, aborted)
    });
    let mut out = PointOut::default();
    for (dt, h, m, st, c, a) in outs {
        out.sim_s = out.sim_s.max(dt / 1e9);
        out.hits += h;
        out.misses += m;
        out.stale_reads += st;
        out.committed += c;
        out.aborted += a;
    }
    out
}

/// Execute one sampled op as a single-process transaction, under the
/// server's routing discipline: every single-vertex op targets a vertex
/// this rank *owns* (sampled locality is preserved by snapping the draw
/// to the rank's stride), so write-through covers its translations even
/// in pinned cycles; the one cross-rank translation — `AddEdge`'s
/// target — revalidates via `translate_vertex_id_fresh`, exactly like
/// `server::batch`. Returns `(committed, Some(app) for DeleteVertex)`.
#[allow(clippy::too_many_arguments)]
fn run_one_sampled(
    eng: &gda::GdaRank,
    meta: &LpgMeta,
    kind: OpKind,
    sampler: &VertexSampler,
    rng: &mut SmallRng,
    next_new: &mut u64,
    added: &mut Vec<u64>,
) -> (bool, Option<u64>) {
    let mode = if kind.is_read() {
        AccessMode::ReadOnly
    } else {
        AccessMode::ReadWrite
    };
    // snap a sampled id onto this rank's stride without wrapping onto
    // another rank's vertex when nranks does not divide n
    let owned = |rng: &mut SmallRng| {
        let p = eng.nranks() as u64;
        let n = sampler.n();
        let cand = (sampler.sample(rng) / p) * p + eng.rank() as u64;
        if cand < n {
            cand
        } else {
            cand.saturating_sub(p)
        }
    };
    let tx = eng.begin(mode);
    let mut delete_target: Option<u64> = None;
    let mut body = || -> Result<(), GdiError> {
        match kind {
            OpKind::GetVertexProps => {
                let v = tx.translate_vertex_id(AppVertexId(owned(rng)))?;
                if meta.ptypes.is_empty() {
                    let _ = tx.labels(v)?;
                } else {
                    let _ = tx.property(v, meta.ptype(0))?;
                }
            }
            OpKind::CountEdges => {
                let v = tx.translate_vertex_id(AppVertexId(owned(rng)))?;
                let _ = tx.edge_count(v, EdgeOrientation::Any)?;
            }
            OpKind::GetEdges => {
                let v = tx.translate_vertex_id(AppVertexId(owned(rng)))?;
                let _ = tx.edges(v, EdgeOrientation::Any)?;
            }
            OpKind::AddVertex => {
                *next_new += 1;
                let app = *next_new;
                let v = tx.create_vertex(AppVertexId(app))?;
                if !meta.ptypes.is_empty() {
                    tx.add_property(v, meta.ptype(0), &PropertyValue::U64(app))?;
                }
                added.push(app);
            }
            OpKind::DeleteVertex => {
                let app = added.pop().unwrap_or_else(|| owned(rng));
                delete_target = Some(app);
                let v = tx.translate_vertex_id(AppVertexId(app))?;
                tx.delete_vertex(v)?;
            }
            OpKind::UpdateVertexProp => {
                let v = tx.translate_vertex_id(AppVertexId(owned(rng)))?;
                if !meta.ptypes.is_empty() {
                    tx.update_property(v, meta.ptype(0), &PropertyValue::U64(rng.gen()))?;
                }
            }
            OpKind::AddEdge => {
                let a = tx.translate_vertex_id(AppVertexId(owned(rng)))?;
                // cross-rank endpoint: revalidate past any pinned snapshot
                let b = tx.translate_vertex_id_fresh(AppVertexId(sampler.sample(rng)))?;
                tx.add_edge(a, b, None, true)?;
            }
        }
        Ok(())
    };
    let ok = match body() {
        Ok(()) => tx.commit().is_ok(),
        Err(_) => {
            tx.abort();
            false
        }
    };
    (ok, delete_target)
}

fn main() {
    // `--backend sim|wall|both`: wall runs land under `cache_sweep_wall`
    // and skip the modeled-speedup gate (hardware timings vary)
    for_backends(&backend_selection(), run_on);
}

fn run_on(backend: BackendKind) {
    let bench = match backend {
        BackendKind::Sim => "cache_sweep",
        BackendKind::Wall => "cache_sweep_wall",
    };
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (nranks, scale, ops, lookups) = if smoke {
        (2usize, 8u32, 250usize, 1_500usize)
    } else {
        let p = gdi_bench::RunParams::from_env();
        (
            *p.ranks.last().unwrap_or(&4),
            p.base_scale,
            p.ops_per_rank.max(1500),
            12_000,
        )
    };
    let spec = spec_for(scale, 42, LpgConfig::default());
    let n = spec.n_vertices();
    let localities = [
        ("uniform", VertexSampler::uniform(n)),
        ("zipf-1.0", VertexSampler::zipf(n, 1.0)),
        ("zipf-1.2", VertexSampler::zipf(n, 1.2)),
    ];

    let mut out = String::new();
    let mut json_rows: Vec<String> = Vec::new();
    out.push_str("### cache_sweep — epoch-validated translation cache, locality axis\n");
    out.push_str(&format!(
        "P={nranks} scale={scale} ({n} vertices), ops/rank={ops}, translate-lookups/rank={lookups}\n\n"
    ));

    // ---- translate-only microbenchmark --------------------------------
    out.push_str(&format!(
        "{:<24} {:>13} {:>12} {:>9} {:>7}\n",
        "translate-only", "mode", "sim_s", "speedup", "hit%"
    ));
    let mut zipf_cached_speedup = 0.0f64;
    for (lname, sampler) in &localities {
        let base = run_translate_point(nranks, &spec, sampler, CacheMode::Uncached, lookups);
        for mode in CacheMode::ALL {
            let p = if mode == CacheMode::Uncached {
                base
            } else {
                run_translate_point(nranks, &spec, sampler, mode, lookups)
            };
            let speedup = if p.sim_s > 0.0 {
                base.sim_s / p.sim_s
            } else {
                0.0
            };
            if *lname == "zipf-1.2" && mode == CacheMode::Cached {
                zipf_cached_speedup = speedup;
            }
            out.push_str(&format!(
                "{:<24} {:>13} {:>12.6} {:>8.2}x {:>6.1}%\n",
                lname,
                mode.label(),
                p.sim_s,
                speedup,
                p.hit_frac() * 100.0
            ));
            json_rows.push(format!(
                "{{\"section\":\"translate\",\"locality\":\"{lname}\",\
                 \"mode\":\"{}\",\"sim_s\":{:.9},\"speedup\":{speedup:.3},\
                 \"hit_frac\":{:.4}}}",
                mode.label(),
                p.sim_s,
                p.hit_frac()
            ));
        }
    }
    out.push('\n');

    // ---- end-to-end Table-3 mixes --------------------------------------
    let mixes: [(&str, Mix); 2] = [
        ("read-heavy (RM)", Mix::READ_MOSTLY),
        ("churn-heavy (WI)", Mix::WRITE_INTENSIVE),
    ];
    out.push_str(&format!(
        "{:<18} {:<10} {:>13} {:>12} {:>9} {:>7} {:>7} {:>9}\n",
        "mix", "locality", "mode", "sim_s", "speedup", "hit%", "fail%", "stale"
    ));
    let mut total_stale = 0u64;
    let mut read_zipf_speedup = 0.0f64;
    for (mname, mix) in &mixes {
        for (lname, sampler) in &localities {
            let base = run_mix_point(nranks, &spec, mix, sampler, CacheMode::Uncached, ops);
            for mode in CacheMode::ALL {
                let p = if mode == CacheMode::Uncached {
                    base
                } else {
                    run_mix_point(nranks, &spec, mix, sampler, mode, ops)
                };
                let speedup = if p.sim_s > 0.0 {
                    base.sim_s / p.sim_s
                } else {
                    0.0
                };
                let fail = if p.committed + p.aborted == 0 {
                    0.0
                } else {
                    p.aborted as f64 / (p.committed + p.aborted) as f64
                };
                total_stale += p.stale_reads;
                if *mname == "read-heavy (RM)" && *lname == "zipf-1.2" && mode == CacheMode::Pinned
                {
                    read_zipf_speedup = speedup;
                }
                out.push_str(&format!(
                    "{:<18} {:<10} {:>13} {:>12.6} {:>8.2}x {:>6.1}% {:>6.2}% {:>9}\n",
                    mname,
                    lname,
                    mode.label(),
                    p.sim_s,
                    speedup,
                    p.hit_frac() * 100.0,
                    fail * 100.0,
                    p.stale_reads
                ));
                json_rows.push(format!(
                    "{{\"section\":\"mix\",\"mix\":\"{mname}\",\
                     \"locality\":\"{lname}\",\"mode\":\"{}\",\"sim_s\":{:.9},\
                     \"speedup\":{speedup:.3},\"hit_frac\":{:.4},\
                     \"fail_frac\":{fail:.4},\"stale_reads\":{}}}",
                    mode.label(),
                    p.sim_s,
                    p.hit_frac(),
                    p.stale_reads
                ));
            }
        }
    }
    out.push_str(&format!(
        "\nstale reads total: {total_stale} (must be 0)\n\
         translate-only zipf-1.2 cached speedup: {zipf_cached_speedup:.2}x\n\
         read-heavy zipf-1.2 pinned end-to-end speedup: {read_zipf_speedup:.2}x\n"
    ));
    emit(bench, &out);
    emit_json_unless_smoke(
        bench,
        &format!(
            "{{\"bench\":\"{bench}\",\"backend\":\"{}\",\"nranks\":{nranks},\"scale\":{scale},\
             \"points\":[{}]}}",
            backend.label(),
            json_rows.join(",")
        ),
        smoke,
    );

    assert_eq!(total_stale, 0, "the cache served a stale translation");
    // the speedup gate is a LogGP-model relation; wall timings are
    // hardware-dependent and non-gating
    if backend == BackendKind::Sim {
        assert!(
            zipf_cached_speedup >= 1.3,
            "translate-only cached speedup {zipf_cached_speedup:.2}x below the 1.3x target at high locality"
        );
    }
}

//! Server throughput: batched / group-commit serving versus
//! one-transaction-per-request serving on the Table-3 write-heavy mix,
//! sweeping the concurrent session count 10 → 10 000 on one fabric.
//!
//! Emits a human table plus one `BENCH_JSON` line for machines.
//!
//! Environment:
//! * `GDI_BENCH_SERVER_RANKS` — fabric size (default 4)
//! * `GDI_BENCH_SESSIONS` — comma-separated session counts
//!   (default `10,100,1000,10000`)
//! * `GDI_BENCH_SERVER_OPS` — total op budget per point (default 24000;
//!   split evenly across sessions, minimum 2 ops/session)
//! * `GDI_BENCH_SCALE` — graph scale (default 10)

use gda::GdaDb;
use gdi_bench::{
    backend_selection, emit, emit_json, for_backends, oltp_sized_config, spec_for, RunParams,
};
use graphgen::LpgConfig;
use rma::{BackendKind, CostModel};
use server::ServerOptions;
use workloads::oltp::Mix;
use workloads::traffic::{load_and_serve, ServeRun, TrafficConfig};

struct PointResult {
    sessions: usize,
    mode: &'static str,
    ops: u64,
    committed: u64,
    sim_mqps: f64,
    wall_kops: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    abort_frac: f64,
    mean_batch: f64,
}

fn measure(
    backend: BackendKind,
    nranks: usize,
    spec: &graphgen::GraphSpec,
    sessions: usize,
    ops_per_session: usize,
    opts: ServerOptions,
    mode: &'static str,
) -> PointResult {
    let total_ops = sessions * ops_per_session;
    let mut cfg = oltp_sized_config(spec, nranks, total_ops);
    // thousands of sessions insert from disjoint id spaces; give the DHT
    // heap extra headroom beyond the per-rank OLTP sizing
    cfg.dht_heap_per_rank += (total_ops * 2).next_power_of_two();
    cfg.blocks_per_rank += (total_ops * 2).next_power_of_two();
    let (db, fabric) = GdaDb::with_fabric_on("serve", cfg, nranks, CostModel::default(), backend);
    let tcfg = TrafficConfig {
        sessions,
        ops_per_session,
        mix: Mix::WRITE_INTENSIVE,
        seed: spec.seed,
        workers: sessions.clamp(1, 16),
    };
    let run: ServeRun = load_and_serve(&db, &fabric, opts, spec, &tcfg);

    let lat = run.metrics.latency();
    let (mut drained_reqs, mut drains) = (0u64, 0u64);
    for r in &run.metrics.per_rank {
        if let Some(f) = &r.fabric {
            drained_reqs += f.requests_served;
            drains += f.batches_drained;
        }
    }
    PointResult {
        sessions,
        mode,
        ops: total_ops as u64,
        committed: run.traffic.committed(),
        sim_mqps: run.sim_throughput_qps() / 1e6,
        wall_kops: run.traffic.committed() as f64 / run.traffic.wall_s.max(1e-9) / 1e3,
        p50_us: lat.percentile_ns(50.0) / 1e3,
        p95_us: lat.percentile_ns(95.0) / 1e3,
        p99_us: lat.percentile_ns(99.0) / 1e3,
        abort_frac: run.traffic.abort_fraction(),
        mean_batch: if drains == 0 {
            0.0
        } else {
            drained_reqs as f64 / drains as f64
        },
    }
}

fn main() {
    // `--backend sim|wall|both`: wall runs land under `server_throughput_wall`
    for_backends(&backend_selection(), run_on);
}

fn run_on(backend: BackendKind) {
    let bench = match backend {
        BackendKind::Sim => "server_throughput",
        BackendKind::Wall => "server_throughput_wall",
    };
    let params = RunParams::from_env();
    let nranks: usize = std::env::var("GDI_BENCH_SERVER_RANKS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(4);
    let session_counts: Vec<usize> = std::env::var("GDI_BENCH_SESSIONS")
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![10, 100, 1000, 10_000]);
    let op_budget: usize = std::env::var("GDI_BENCH_SERVER_OPS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(24_000);

    let spec = spec_for(params.base_scale, params.seed, LpgConfig::default());
    let mut results: Vec<PointResult> = Vec::new();
    for &sessions in &session_counts {
        let ops_per_session = (op_budget / sessions).max(2);
        for (opts, mode) in [
            (ServerOptions::default(), "grouped"),
            (ServerOptions::unbatched(), "per-request"),
        ] {
            eprintln!("  [server_throughput] S={sessions} mode={mode} ...");
            let r = measure(
                backend,
                nranks,
                &spec,
                sessions,
                ops_per_session,
                opts,
                mode,
            );
            eprintln!(
                "  [server_throughput] S={sessions} mode={mode}: {:.4} sim MQ/s, \
                 {:.1} wall kops/s, p99 {:.0} µs, {:.2}% aborted, mean batch {:.1}",
                r.sim_mqps,
                r.wall_kops,
                r.p99_us,
                r.abort_frac * 100.0,
                r.mean_batch
            );
            results.push(r);
        }
    }

    // human table
    let mut out = String::from("### Server throughput — grouped commit vs per-request\n");
    out.push_str(&format!(
        "{:<10} {:>12} {:>10} {:>12} {:>12} {:>10} {:>10} {:>10} {:>9} {:>11}\n",
        "sessions",
        "mode",
        "ops",
        "sim MQ/s",
        "wall kops/s",
        "p50w µs",
        "p95w µs",
        "p99w µs",
        "abort%",
        "mean batch"
    ));
    for r in &results {
        out.push_str(&format!(
            "{:<10} {:>12} {:>10} {:>12.4} {:>12.1} {:>10.0} {:>10.0} {:>10.0} {:>8.2}% {:>11.1}\n",
            r.sessions,
            r.mode,
            r.ops,
            r.sim_mqps,
            r.wall_kops,
            r.p50_us,
            r.p95_us,
            r.p99_us,
            r.abort_frac * 100.0,
            r.mean_batch
        ));
    }
    // headline: grouped vs per-request speedup per session count (a
    // simulated-clock ratio; meaningless when the sim clock is off)
    if backend == BackendKind::Sim {
        for &sessions in &session_counts {
            let g = results
                .iter()
                .find(|r| r.sessions == sessions && r.mode == "grouped")
                .unwrap();
            let u = results
                .iter()
                .find(|r| r.sessions == sessions && r.mode == "per-request")
                .unwrap();
            out.push_str(&format!(
                "S={sessions}: grouped commit serves {:.2}x the per-request sim throughput\n",
                g.sim_mqps / u.sim_mqps.max(1e-12)
            ));
        }
    }

    // machine-readable summary
    let mut json = format!(
        "{{\"bench\":\"{bench}\",\"backend\":\"{}\",\"nranks\":{nranks},\
         \"scale\":{},\"mix\":\"{}\",\"points\":[",
        backend.label(),
        params.base_scale,
        Mix::WRITE_INTENSIVE.name
    );
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"sessions\":{},\"mode\":\"{}\",\"ops\":{},\"committed\":{},\
             \"sim_mqps\":{:.6},\"wall_kops\":{:.3},\"p50_wall_us\":{:.1},\
             \"p95_wall_us\":{:.1},\"p99_wall_us\":{:.1},\"abort_frac\":{:.4},\
             \"mean_batch\":{:.2}}}",
            r.sessions,
            r.mode,
            r.ops,
            r.committed,
            r.sim_mqps,
            r.wall_kops,
            r.p50_us,
            r.p95_us,
            r.p99_us,
            r.abort_frac,
            r.mean_batch
        ));
    }
    json.push_str("]}");
    emit(bench, &out);
    emit_json(bench, &json);
}

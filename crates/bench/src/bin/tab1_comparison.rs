//! Table 1: comparison of graph databases.
//!
//! The literature rows are reproduced from the paper; the "This work" row
//! is filled from this reproduction's largest verified (simulated)
//! configuration, so re-running after bigger experiments updates it.

use gdi_bench::{
    backend_selection, emit, emit_json, for_backends, gda_oltp_on, spec_for, BackendKind, RunParams,
};
use graphgen::LpgConfig;
use workloads::oltp::Mix;

struct Row {
    system: &'static str,
    rdma: &'static str,
    prog: &'static str,
    port: &'static str,
    workloads: &'static str,
    scale: String,
}

fn main() {
    // `--backend sim|wall|both`: wall runs land under `tab1_comparison_wall`
    for_backends(&backend_selection(), run_on);
}

fn run_on(backend: BackendKind) {
    let bench = match backend {
        BackendKind::Sim => "tab1_comparison",
        BackendKind::Wall => "tab1_comparison_wall",
    };
    let params = RunParams::from_env();
    // measure our largest point so the row reports verified numbers
    let nranks = *params.ranks.iter().max().unwrap_or(&4);
    let scale = params.weak_scale(nranks);
    let spec = spec_for(scale, params.seed, LpgConfig::default());
    let (mqps, _) = gda_oltp_on(
        backend,
        nranks,
        &spec,
        &Mix::READ_MOSTLY,
        params.ops_per_rank,
    );

    let rows = vec![
        Row {
            system: "A1",
            rdma: "yes",
            prog: "no",
            port: "no",
            workloads: "OLTP",
            scale: "245 srv / 2,940 cores / 3.2 TB".into(),
        },
        Row {
            system: "GAIA",
            rdma: "no",
            prog: "no",
            port: "no",
            workloads: "OLAP",
            scale: "16 srv / 384 cores / 1.96 TB".into(),
        },
        Row {
            system: "G-Tran",
            rdma: "yes",
            prog: "no",
            port: "no",
            workloads: "OLTP",
            scale: "10 srv / 160 cores / 1.28 TB".into(),
        },
        Row {
            system: "Neo4j",
            rdma: "no",
            prog: "partial",
            port: "no",
            workloads: "OLTP+OLAP",
            scale: "1 srv / 128 cores / 6.9 TB".into(),
        },
        Row {
            system: "TigerGraph",
            rdma: "no",
            prog: "no",
            port: "no",
            workloads: "OLTP+OLAP",
            scale: "40 srv / 1,600 cores / 17.7 TB".into(),
        },
        Row {
            system: "JanusGraph",
            rdma: "no",
            prog: "partial",
            port: "no",
            workloads: "OLTP+OLAP",
            scale: "N/A".into(),
        },
        Row {
            system: "Weaver",
            rdma: "no",
            prog: "no",
            port: "no",
            workloads: "OLTP",
            scale: "44 srv / 352 cores / 0.976 TB".into(),
        },
        Row {
            system: "Wukong",
            rdma: "yes",
            prog: "no",
            port: "no",
            workloads: "OLTP(RDF)",
            scale: "6 srv / 120 cores / 0.384 TB".into(),
        },
        Row {
            system: "ByteGraph",
            rdma: "no",
            prog: "partial",
            port: "no",
            workloads: "OLTP+OLAP+OLSP",
            scale: "130 srv / 113 TB (OLAP)".into(),
        },
        Row {
            system: "This work (paper)",
            rdma: "yes",
            prog: "yes",
            port: "yes (wR+bR)",
            workloads: "OLTP+OLAP+OLSP+BULK",
            scale: "7,142 srv / 121,680 cores / 77.3 TB / 549.8B edges".into(),
        },
        Row {
            system: "This repro (measured)",
            rdma: match backend {
                BackendKind::Sim => "simulated",
                BackendKind::Wall => "shared-mem (wall)",
            },
            prog: "yes",
            port: "yes",
            workloads: "OLTP+OLAP+OLSP+BULK",
            scale: format!(
                "{nranks} ranks / 2^{scale} vertices / {} edges / {mqps:.3} MQ/s RM",
                spec.n_edges()
            ),
        },
    ];

    let mut out = String::from("### Table 1 — comparison of graph databases\n");
    out.push_str(&format!(
        "{:<22} {:<10} {:<8} {:<12} {:<22} {}\n",
        "system", "RDMA?", "Prog.?", "Port.?", "workloads", "achieved scale"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<22} {:<10} {:<8} {:<12} {:<22} {}\n",
            r.system, r.rdma, r.prog, r.port, r.workloads, r.scale
        ));
    }
    out.push_str("\nTheoretical performance analysis (Th.? column): see gda::analysis --\n");
    out.push_str(&gda::analysis::render_markdown());
    emit(bench, &out);
    emit_json(
        bench,
        &format!(
            "{{\"bench\":\"{bench}\",\"backend\":\"{}\",\"measured\":{{\"nranks\":{nranks},\
             \"scale\":{scale},\"edges\":{},\"read_mostly_mqps\":{mqps:.6}}}}}",
            backend.label(),
            spec.n_edges()
        ),
    );
}

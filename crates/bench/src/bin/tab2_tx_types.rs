//! Table 2: workload class → recommended transaction mechanism.
//!
//! Beyond restating the recommendation matrix, this harness *validates* it
//! empirically for the analytics class: it runs the same global scan once
//! through per-vertex single-process transactions and once through one
//! collective transaction, and reports the simulated-time ratio (the
//! reason collective transactions are the Table 2 recommendation).

use gda::GdaDb;
use gdi::tx::WorkloadClass;
use gdi::{AccessMode, AppVertexId};
use gdi_bench::{backend_selection, emit, emit_json, for_backends, spec_for, RunParams};
use graphgen::{load_into, sized_config, LpgConfig};
use rma::{BackendKind, CostModel};

fn main() {
    // `--backend sim|wall|both`: wall runs land under `tab2_tx_types_wall`
    for_backends(&backend_selection(), run_on);
}

fn run_on(backend: BackendKind) {
    let bench = match backend {
        BackendKind::Sim => "tab2_tx_types",
        BackendKind::Wall => "tab2_tx_types_wall",
    };
    let params = RunParams::from_env();
    let mut out = String::from("### Table 2 — workload classes and recommended GDI mechanisms\n");
    out.push_str(&format!(
        "{:<28} {:<12} {:<14}\n",
        "workload class", "type", "recommended"
    ));
    for c in WorkloadClass::all() {
        out.push_str(&format!(
            "{:<28} {:<12} {:<14?}\n",
            format!("{c:?}"),
            format!("{:?}", c.access_mode()),
            c.recommended_kind()
        ));
    }

    // empirical validation: global property scan, local vs collective
    let nranks = *params.ranks.iter().max().unwrap_or(&4);
    let spec = spec_for(params.base_scale.min(12), params.seed, LpgConfig::default());
    let cfg = sized_config(&spec, nranks);
    let (db, fabric) = GdaDb::with_fabric_on("t2", cfg, nranks, CostModel::default(), backend);
    let times = fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let (meta, _) = load_into(&eng, &spec);
        let apps = spec.vertices_for_rank(ctx.rank(), ctx.nranks());
        let pt = meta.ptype(0);

        // (a) the OLTP way: one single-process transaction per vertex,
        // each resolving the application id through the DHT
        ctx.barrier();
        let t0 = ctx.now_ns();
        for &app in &apps {
            let tx = eng.begin(AccessMode::ReadOnly);
            let v = tx.translate_vertex_id(AppVertexId(app)).unwrap();
            let _ = tx.property(v, pt).unwrap();
            tx.commit().unwrap();
        }
        ctx.barrier();
        let local_s = (ctx.now_ns() - t0) / 1e9;

        // (b) the Table 2 recommendation (Listings 2/3): one collective
        // transaction scanning the local index partition — internal ids
        // come from the index, no per-vertex translation
        let t1 = ctx.now_ns();
        let tx = eng.begin_collective(AccessMode::ReadOnly);
        for p in eng.local_index_vertices(meta.all_index.unwrap()) {
            let _ = tx.property(p.vertex, pt).unwrap();
        }
        tx.commit().unwrap();
        ctx.barrier();
        let coll_s = (ctx.now_ns() - t1) / 1e9;
        (local_s, coll_s)
    });
    let local = times.iter().map(|t| t.0).fold(0.0, f64::max);
    let coll = times.iter().map(|t| t.1).fold(0.0, f64::max);
    out.push_str(&format!(
        "\nValidation (global scan of 2^{} vertices on {} ranks):\n\
         per-vertex local transactions: {local:.4}s\n\
         one collective transaction:    {coll:.4}s\n\
         speedup of the recommended mechanism: {:.2}x\n",
        spec.scale,
        nranks,
        local / coll
    ));
    emit(bench, &out);
    emit_json(
        bench,
        &format!(
            "{{\"bench\":\"{bench}\",\"backend\":\"{}\",\"nranks\":{nranks},\"scale\":{},\
             \"per_vertex_local_s\":{local:.9},\"collective_s\":{coll:.9},\
             \"speedup\":{:.3}}}",
            backend.label(),
            spec.scale,
            local / coll
        ),
    );
}

//! Chaos sweep: recovery success rate and MTTR across the fault grid.
//!
//! Each point runs `workloads::chaos` — live session traffic, a
//! **persistent injected fault** at one storage point of the shared
//! fault plane (`gda::faults`), graceful degradation to read-only
//! serving, repair, a kill, and a recovery from disk — over the grid
//! *fault point × rank count*. Reported per point:
//!
//! * **recovered** — the full contract held: degradation entered *and*
//!   exited, zero read aborts while degraded, every rejected write
//!   provably absent, every committed write present after recovery,
//!   zero replay errors;
//! * **MTTR** — wall-clock seconds from `recover()` to a serving,
//!   fully verified database.
//!
//! The sweep gates **100% recovery success** across the grid (the
//! acceptance bar), plus a non-empty degradation ledger at every point.
//!
//! `--smoke` runs one small point with the same gates (the CI guard).
//!
//! Environment: `GDI_BENCH_CHAOS_SESSIONS` (default 4),
//! `GDI_BENCH_CHAOS_OPS` (per session per phase, default 24).

use gda::faults;
use gdi_bench::{backend_selection, emit, emit_json_unless_smoke, for_backends};
use rma::{BackendKind, CostModel};
use workloads::chaos::{run_chaos, ChaosReport, ChaosScenario};

/// The fault grid: every storage point whose persistent failure must
/// degrade the server (via the failing collective checkpoint, or — for
/// `redo.append` — via the serve loop's store-health observer).
const FAULT_POINTS: &[&str] = &[
    faults::SNAP_WRITE,
    faults::MANIFEST_WRITE,
    faults::CURRENT_RENAME,
    faults::REDO_APPEND,
];

struct PointResult {
    point: &'static str,
    nranks: usize,
    report: ChaosReport,
}

fn run_point(
    backend: BackendKind,
    point: &'static str,
    nranks: usize,
    sessions: usize,
    ops: usize,
) -> PointResult {
    let dir = workloads::scratch::ScratchDir::new(&format!(
        "chaos-sweep-{}-p{nranks}-{}",
        backend.label(),
        point.replace('.', "-")
    ));
    let mut cfg = ChaosScenario::new(dir.path());
    cfg.backend = Some(backend);
    cfg.nranks = nranks;
    cfg.sessions = sessions;
    cfg.ops_before = ops;
    cfg.ops_during = ops / 2;
    cfg.ops_after = ops;
    cfg.fault_point = point;
    cfg.cost = CostModel::default();
    let report = run_chaos(&cfg);
    PointResult {
        point,
        nranks,
        report,
    }
}

fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn main() {
    for_backends(&backend_selection(), run_on);
}

fn run_on(backend: BackendKind) {
    let bench = match backend {
        BackendKind::Sim => "chaos_sweep",
        BackendKind::Wall => "chaos_sweep_wall",
    };
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sessions = env_usize("GDI_BENCH_CHAOS_SESSIONS", 4);
    let ops = env_usize("GDI_BENCH_CHAOS_OPS", 24);

    let grid: Vec<(&'static str, usize)> = if smoke {
        vec![(faults::SNAP_WRITE, 2), (faults::REDO_APPEND, 2)]
    } else {
        FAULT_POINTS
            .iter()
            .flat_map(|&p| [1usize, 2, 4].map(|n| (p, n)))
            .collect()
    };
    let (sessions, ops) = if smoke { (2, 10) } else { (sessions, ops) };

    let mut results = Vec::new();
    for &(point, nranks) in &grid {
        eprintln!("  [chaos_sweep] {point} P={nranks} ...");
        let r = run_point(backend, point, nranks, sessions, ops);
        eprintln!(
            "  [chaos_sweep] {point} P={nranks}: {} | {} committed, \
             {} degraded reads ({} aborts), {} rejects, MTTR {:.3}s",
            if r.report.passed() { "PASS" } else { "FAIL" },
            r.report.committed_writes,
            r.report.degraded_reads,
            r.report.degraded_read_aborts,
            r.report.write_rejects,
            r.report.mttr_s
        );
        results.push(r);
    }

    let recovered = results.iter().filter(|r| r.report.passed()).count();
    let success_rate = recovered as f64 / results.len() as f64;
    let mttr_mean = results.iter().map(|r| r.report.mttr_s).sum::<f64>() / results.len() as f64;

    let mut out =
        String::from("### Chaos sweep — recovery success rate and MTTR per fault point\n");
    out.push_str(&format!(
        "{:<16} {:<6} {:>6} {:>10} {:>10} {:>8} {:>8} {:>8} {:>9} {:>10} {:>9}\n",
        "fault",
        "ranks",
        "ok",
        "committed",
        "deg reads",
        "aborts",
        "rejects",
        "leaks",
        "checks",
        "serve s",
        "MTTR s"
    ));
    for r in &results {
        out.push_str(&format!(
            "{:<16} {:<6} {:>6} {:>10} {:>10} {:>8} {:>8} {:>8} {:>9} {:>10.3} {:>9.3}\n",
            r.point,
            r.nranks,
            if r.report.passed() { "yes" } else { "NO" },
            r.report.committed_writes,
            r.report.degraded_reads,
            r.report.degraded_read_aborts,
            r.report.write_rejects,
            r.report.write_leaks,
            r.report.checks,
            r.report.serve_wall_s,
            r.report.mttr_s
        ));
    }
    out.push_str(&format!(
        "recovery success {recovered}/{} ({:.0}%), mean MTTR {mttr_mean:.3}s\n",
        results.len(),
        success_rate * 100.0
    ));

    let mut json = format!(
        "{{\"bench\":\"{bench}\",\"backend\":\"{}\",\"success_rate\":{success_rate:.4},\
         \"mttr_mean_s\":{mttr_mean:.6},\"points\":[",
        backend.label()
    );
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"fault\":\"{}\",\"nranks\":{},\"recovered\":{},\"degraded_entered\":{},\
             \"degraded_exited\":{},\"committed\":{},\"degraded_reads\":{},\
             \"degraded_read_aborts\":{},\"write_rejects\":{},\"write_leaks\":{},\
             \"checks\":{},\"mismatches\":{},\"recovery_errors\":{},\"fault_hits\":{},\
             \"serve_wall_s\":{:.6},\"mttr_s\":{:.6}}}",
            r.point,
            r.nranks,
            r.report.passed(),
            r.report.degraded_entered,
            r.report.degraded_exited,
            r.report.committed_writes,
            r.report.degraded_reads,
            r.report.degraded_read_aborts,
            r.report.write_rejects,
            r.report.write_leaks,
            r.report.checks,
            r.report.mismatches.len(),
            r.report.recovery_errors,
            r.report.fault_hits,
            r.report.serve_wall_s,
            r.report.mttr_s
        ));
    }
    json.push_str("]}");
    emit(bench, &out);
    emit_json_unless_smoke(bench, &json, smoke);

    // the CI gates: every point recovers, with a real degradation ledger
    for r in &results {
        if !r.report.passed() {
            eprintln!(
                "MISMATCHES at {} P={}:\n{}",
                r.point,
                r.nranks,
                r.report.mismatches.join("\n")
            );
        }
        assert!(
            r.report.passed(),
            "{} P={}: chaos contract violated: {:?}",
            r.point,
            r.nranks,
            r.report
        );
        assert!(
            r.report.write_rejects > 0 && r.report.degraded_reads > 0,
            "{} P={}: degradation ledger empty: {:?}",
            r.point,
            r.nranks,
            r.report
        );
        assert!(
            r.report.fault_hits >= 1,
            "{} P={}: fault never fired",
            r.point,
            r.nranks
        );
    }
    assert_eq!(recovered, results.len(), "recovery success below 100%");
    println!(
        "chaos_sweep: {recovered}/{} points recovered (100%), mean MTTR {mttr_mean:.3}s",
        results.len()
    );
}

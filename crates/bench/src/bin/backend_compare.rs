//! Backend divergence report: where the LogGP simulation and real
//! wall-clock shared-memory execution disagree.
//!
//! Two phases:
//!
//! 1. **micro** — at P=2 every RMA op class is timed under both
//!    backends with the same loop. Absolute wall nanoseconds depend on
//!    the host, so each class is normalized by the local-read cost of
//!    its own backend; the report compares the LogGP-predicted relative
//!    cost against the measured one and flags classes where they
//!    disagree by more than 2x.
//! 2. **end-to-end** — the Read-Mostly OLTP point runs paired sim/wall
//!    at each P (capped at 8). Scaling curves are normalized to the
//!    smallest P and a >2x disagreement between the predicted and the
//!    measured curve is flagged.
//!
//! Expected flagged rows on a laptop-class host: `local_atomic` /
//! `remote_*` (shared-memory loads cost the same regardless of the
//! "owner" rank, while LogGP charges o+L+g for remoteness) and
//! `log_write_1k` (the wall backend performs no real log-device I/O, it
//! only counts bytes). The report exists to make exactly this gap
//! visible, not to hide it.
//!
//! Writes `results/BENCH_backend_compare.json` (skipped under
//! `--smoke`, which also shrinks rep counts and the rank sweep).

use gdi_bench::{emit, emit_json_unless_smoke, gda_oltp_on, spec_for, RunParams};
use graphgen::LpgConfig;
use rma::{BackendKind, CostModel, FabricBuilder, WinId};
use std::hint::black_box;
use workloads::oltp::Mix;

struct MicroRow {
    class: &'static str,
    sim_ns: f64,
    wall_ns: f64,
}

/// Time every op class once under `backend` at P=2; returns
/// (class, active-clock ns per op) rows measured on rank 0.
fn micro(backend: BackendKind, reps: u64, creps: u64) -> Vec<(&'static str, f64)> {
    let fabric = FabricBuilder::new(2)
        .window(1 << 20)
        .cost(CostModel::default())
        .backend(backend)
        .build();
    let per_rank = fabric.run(move |ctx| {
        let w = WinId(0);
        let mut rows: Vec<(&'static str, f64)> = Vec::new();
        if ctx.rank() == 0 {
            let mut time = |name: &'static str, f: &mut dyn FnMut()| {
                let t0 = ctx.now_ns();
                for _ in 0..reps {
                    f();
                }
                rows.push((name, (ctx.now_ns() - t0) / reps as f64));
            };
            time("local_read", &mut || {
                black_box(ctx.get_u64(w, 0, 7));
            });
            time("remote_read", &mut || {
                black_box(ctx.get_u64(w, 1, 7));
            });
            let mut buf = [0u8; 64];
            time("remote_read_64B", &mut || {
                ctx.get_bytes(w, 1, 128, &mut buf);
                black_box(buf[0]);
            });
            time("remote_write", &mut || ctx.put_u64(w, 1, 9, 1));
            time("local_atomic", &mut || {
                black_box(ctx.fadd_u64(w, 0, 11, 1));
            });
            time("remote_atomic", &mut || {
                black_box(ctx.fadd_u64(w, 1, 11, 1));
            });
            time("flushed_write", &mut || {
                ctx.put_u64(w, 1, 13, 2);
                ctx.flush(1);
            });
            time("nb_batch_8_writes", &mut || {
                ctx.begin_nb_batch();
                for i in 0..8 {
                    ctx.put_u64(w, 1, 16 + i, i as u64);
                }
                ctx.flush(1);
                ctx.end_nb_batch();
            });
            time("log_write_1k", &mut || ctx.record_log_write(1024));
        }
        ctx.barrier();
        // collectives need both ranks in lockstep; rank 0 keeps the time
        let t0 = ctx.now_ns();
        for _ in 0..creps {
            ctx.barrier();
        }
        let barrier_ns = (ctx.now_ns() - t0) / creps as f64;
        let t1 = ctx.now_ns();
        for _ in 0..creps {
            black_box(ctx.allreduce_sum_u64(1));
        }
        let allreduce_ns = (ctx.now_ns() - t1) / creps as f64;
        if ctx.rank() == 0 {
            rows.push(("barrier", barrier_ns));
            rows.push(("allreduce_sum", allreduce_ns));
        }
        rows
    });
    per_rank.into_iter().next().unwrap()
}

fn divergence_flag(ratio: f64) -> &'static str {
    if !(0.5..=2.0).contains(&ratio) {
        " <-- >2x"
    } else {
        ""
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let params = RunParams::from_env();
    let (reps, creps) = if smoke {
        (2_000, 100)
    } else {
        (200_000, 5_000)
    };

    // ---- phase 1: micro op classes at P=2 ----------------------------
    eprintln!("  [backend_compare] micro op classes (P=2, {reps} reps) ...");
    let sim_rows = micro(BackendKind::Sim, reps, creps);
    let wall_rows = micro(BackendKind::Wall, reps, creps);
    let rows: Vec<MicroRow> = sim_rows
        .iter()
        .map(|&(class, sim_ns)| MicroRow {
            class,
            sim_ns,
            wall_ns: wall_rows
                .iter()
                .find(|(c, _)| *c == class)
                .map(|&(_, ns)| ns)
                .unwrap_or(f64::NAN),
        })
        .collect();
    let sim_base = rows[0].sim_ns; // local_read is the normalization base
    let wall_base = rows[0].wall_ns;

    let mut out = String::from(
        "### Backend compare — LogGP simulation vs wall-clock execution\n\
         # relative costs are normalized by each backend's local_read;\n\
         # `div` = measured_rel / predicted_rel, flagged outside [0.5, 2]\n",
    );
    out.push_str(&format!(
        "{:<18} {:>12} {:>12} {:>12} {:>12} {:>8}\n",
        "op class", "sim ns/op", "wall ns/op", "predicted x", "measured x", "div"
    ));
    let mut micro_json: Vec<String> = Vec::new();
    let mut flagged_micro = 0usize;
    for r in &rows {
        let predicted = r.sim_ns / sim_base;
        let measured = r.wall_ns / wall_base;
        let div = measured / predicted;
        let flag = divergence_flag(div);
        if !flag.is_empty() {
            flagged_micro += 1;
        }
        out.push_str(&format!(
            "{:<18} {:>12.1} {:>12.1} {:>12.2} {:>12.2} {:>8.2}{flag}\n",
            r.class, r.sim_ns, r.wall_ns, predicted, measured, div
        ));
        micro_json.push(format!(
            "{{\"class\":\"{}\",\"sim_ns\":{:.3},\"wall_ns\":{:.3},\
             \"predicted_rel\":{:.4},\"measured_rel\":{:.4},\
             \"divergence\":{:.4},\"flagged\":{}}}",
            r.class,
            r.sim_ns,
            r.wall_ns,
            predicted,
            measured,
            div,
            !flag.is_empty()
        ));
    }

    // ---- phase 2: end-to-end OLTP scaling, paired sim/wall -----------
    let ranks: Vec<usize> = if smoke {
        vec![1, 2]
    } else {
        params.ranks.iter().copied().filter(|&p| p <= 8).collect()
    };
    let scale = if smoke { 6 } else { params.base_scale.min(12) };
    let ops = if smoke { 300 } else { params.ops_per_rank };
    let spec = spec_for(scale, params.seed, LpgConfig::default());
    out.push_str(&format!(
        "\nend-to-end Read-Mostly OLTP, 2^{scale} vertices, {ops} ops/rank \
         (throughput on each backend's own clock, scaling normalized to P={}):\n",
        ranks.first().copied().unwrap_or(1)
    ));
    out.push_str(&format!(
        "{:<6} {:>12} {:>12} {:>10} {:>10} {:>8}\n",
        "ranks", "sim MQ/s", "wall MQ/s", "sim x", "wall x", "div"
    ));
    let mut e2e: Vec<(usize, f64, f64)> = Vec::new();
    for &p in &ranks {
        eprintln!("  [backend_compare] end-to-end P={p} ...");
        let (sim_mqps, _) = gda_oltp_on(BackendKind::Sim, p, &spec, &Mix::READ_MOSTLY, ops);
        let (wall_mqps, _) = gda_oltp_on(BackendKind::Wall, p, &spec, &Mix::READ_MOSTLY, ops);
        e2e.push((p, sim_mqps, wall_mqps));
    }
    let (_, sim0, wall0) = e2e[0];
    let mut e2e_json: Vec<String> = Vec::new();
    let mut flagged_e2e = 0usize;
    for &(p, sim_mqps, wall_mqps) in &e2e {
        let sim_norm = sim_mqps / sim0;
        let wall_norm = wall_mqps / wall0;
        let div = wall_norm / sim_norm;
        let flag = divergence_flag(div);
        if !flag.is_empty() {
            flagged_e2e += 1;
        }
        out.push_str(&format!(
            "{:<6} {:>12.4} {:>12.4} {:>10.2} {:>10.2} {:>8.2}{flag}\n",
            p, sim_mqps, wall_mqps, sim_norm, wall_norm, div
        ));
        e2e_json.push(format!(
            "{{\"nranks\":{p},\"sim_mqps\":{sim_mqps:.6},\"wall_mqps\":{wall_mqps:.6},\
             \"sim_norm\":{sim_norm:.4},\"wall_norm\":{wall_norm:.4},\
             \"divergence\":{div:.4},\"flagged\":{}}}",
            !flag.is_empty()
        ));
    }
    out.push_str(&format!(
        "\n{flagged_micro} op classes and {flagged_e2e} scaling points diverge >2x \
         (wall timings are host-dependent and non-gating)\n"
    ));

    emit("backend_compare", &out);
    let json = format!(
        "{{\"bench\":\"backend_compare\",\"micro\":{{\"nranks\":2,\"reps\":{reps},\
         \"classes\":[{}]}},\"end_to_end\":{{\"scale\":{scale},\"ops_per_rank\":{ops},\
         \"points\":[{}]}},\"flagged_micro\":{flagged_micro},\"flagged_e2e\":{flagged_e2e}}}",
        micro_json.join(","),
        e2e_json.join(",")
    );
    emit_json_unless_smoke("backend_compare", &json, smoke);

    // sanity, both backends: every class must have been measured, and
    // the sim side must reproduce the model's structure (remote reads
    // cost more than local ones under LogGP)
    assert_eq!(rows.len(), 11, "missing op classes");
    for r in &rows {
        assert!(
            r.sim_ns > 0.0 && r.wall_ns.is_finite() && r.wall_ns >= 0.0,
            "{}: bad measurement sim={} wall={}",
            r.class,
            r.sim_ns,
            r.wall_ns
        );
    }
    let remote = rows.iter().find(|r| r.class == "remote_read").unwrap();
    assert!(
        remote.sim_ns > sim_base,
        "LogGP remote read should cost more than local"
    );
    println!("backend_compare: report complete");
}

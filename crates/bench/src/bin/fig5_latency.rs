//! Figure 5: per-operation latency histograms of the LinkBench workload
//! on GDA, JanusGraph-like and Neo4j-like, for 1–8 servers.
//!
//! The paper's observations to reproduce: GDA's operations sit at
//! microsecond scale (sub-µs local at 1 server, 10–100 µs distributed);
//! JanusGraph needs at least ~200 µs with deletions from ~2000 µs; Neo4j
//! is millisecond-scale with outliers.

use gdi_bench::{
    backend_selection, emit, emit_json, for_backends, gda_oltp_detailed, janus_oltp_detailed,
    neo4j_oltp_detailed, spec_for, BackendKind, RunParams,
};
use graphgen::LpgConfig;
use workloads::latency::Histogram;
use workloads::oltp::{Mix, OltpResult, OpKind};

fn merged(results: &[OltpResult], kind: OpKind) -> Histogram {
    let mut h = Histogram::new();
    for r in results {
        if let Some((_, st)) = r.per_op.iter().find(|(k, _)| *k == kind) {
            h.merge(&st.latency);
        }
    }
    h
}

fn main() {
    // `--backend sim|wall|both`: wall runs land under `fig5_latency_wall`
    for_backends(&backend_selection(), run_on);
}

fn run_on(backend: BackendKind) {
    let bench = match backend {
        BackendKind::Sim => "fig5_latency",
        BackendKind::Wall => "fig5_latency_wall",
    };
    let params = RunParams::from_env();
    let ops = params.ops_per_rank;
    let mut out = String::from("### Fig. 5 — LinkBench per-operation latency\n");
    if backend == BackendKind::Wall {
        out.push_str("### (wall-clock backend: latencies are hardware-dependent)\n");
    }
    let mut json_rows: Vec<String> = Vec::new();
    out.push_str(&format!(
        "{:<10} {:<7} {:<17} {:>8} {:>12} {:>12} {:>12}\n",
        "system", "servers", "operation", "count", "mean_us", "p50_us", "p99_us"
    ));

    for &nranks in &params.ranks {
        if nranks > 8 {
            continue; // the paper plots S1..S8
        }
        let spec = spec_for(params.base_scale, params.seed, LpgConfig::default());
        let systems: Vec<(&str, Vec<OltpResult>)> = vec![
            (
                "GDA",
                gda_oltp_detailed(nranks, &spec, &Mix::LINKBENCH, ops),
            ),
            (
                "Janus",
                janus_oltp_detailed(nranks, &spec, &Mix::LINKBENCH, ops),
            ),
            (
                "Neo4j",
                neo4j_oltp_detailed(nranks, &spec, &Mix::LINKBENCH, ops),
            ),
        ];
        for (sys, results) in &systems {
            for kind in OpKind::ALL {
                let h = merged(results, kind);
                if h.count() == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "{:<10} {:<7} {:<17} {:>8} {:>12.2} {:>12.2} {:>12.2}\n",
                    sys,
                    format!("S{nranks}"),
                    kind.name(),
                    h.count(),
                    h.mean_ns() / 1e3,
                    h.percentile_ns(50.0) / 1e3,
                    h.percentile_ns(99.0) / 1e3,
                ));
                json_rows.push(format!(
                    "{{\"system\":\"{sys}\",\"servers\":{nranks},\"op\":\"{}\",\
                     \"count\":{},\"mean_us\":{:.3},\"p50_us\":{:.3},\"p99_us\":{:.3}}}",
                    kind.name(),
                    h.count(),
                    h.mean_ns() / 1e3,
                    h.percentile_ns(50.0) / 1e3,
                    h.percentile_ns(99.0) / 1e3,
                ));
            }
        }
        eprintln!("  [fig5] S{nranks} done");
    }
    // histogram series (bucket, count) for plotting, GDA S-max
    out.push_str(
        "\n# log2-bucket histograms (lower edge in us : count), LinkBench 'retrieve vertex'\n",
    );
    let last = *params.ranks.iter().filter(|&&r| r <= 8).max().unwrap_or(&1);
    let spec = spec_for(params.base_scale, params.seed, LpgConfig::default());
    for (sys, results) in [
        ("GDA", gda_oltp_detailed(last, &spec, &Mix::LINKBENCH, ops)),
        (
            "Janus",
            janus_oltp_detailed(last, &spec, &Mix::LINKBENCH, ops),
        ),
        (
            "Neo4j",
            neo4j_oltp_detailed(last, &spec, &Mix::LINKBENCH, ops),
        ),
    ] {
        let h = merged(&results, OpKind::GetVertexProps);
        out.push_str(&format!("{sys} S{last}: "));
        for (edge, c) in h.series() {
            out.push_str(&format!("{:.1}:{c} ", edge / 1e3));
        }
        out.push('\n');
    }
    emit(bench, &out);
    emit_json(
        bench,
        &format!(
            "{{\"bench\":\"{bench}\",\"backend\":\"{}\",\"points\":[{}]}}",
            backend.label(),
            json_rows.join(",")
        ),
    );
}

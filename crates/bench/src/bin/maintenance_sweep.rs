//! Maintenance sweep: incremental-checkpoint cost versus database size
//! and churn, with the background-maintenance garbage bound.
//!
//! Two axes, both running `workloads::maintenance` (rounds of tracked
//! update-heavy traffic, each closed by a delta checkpoint and a
//! collective maintenance pass, ending in a kill + recovery + full
//! read-back verification):
//!
//! * **scale axis** — fixed churn across growing graph scales: full
//!   checkpoint bytes must grow with the database while delta bytes
//!   stay flat (durability cost proportional to churn, not data);
//! * **churn axis** — fixed scale across growing per-round op counts:
//!   delta bytes must track the churn.
//!
//! Each point also gates **zero divergence** (every committed write
//! reads back after recovering the full+delta chain + redo tail), a
//! clean snapshot verifier, and a bounded live-block count under the
//! per-round vacuum.
//!
//! `--smoke` runs one small point with the same gates (the CI guard).
//!
//! Environment: `GDI_BENCH_SCALE` (scale-axis base, default 10),
//! `GDI_BENCH_MAINT_SESSIONS` (default 8),
//! `GDI_BENCH_MAINT_OPS` (per session per round, default 40),
//! `GDI_BENCH_MAINT_ROUNDS` (default 3).

use gdi_bench::{backend_selection, emit, emit_json_unless_smoke, for_backends};
use rma::{BackendKind, CostModel};
use workloads::maintenance::{run_maintenance_churn, MaintenanceRunReport, MaintenanceScenario};

struct PointResult {
    nranks: usize,
    scale: u32,
    ops_per_round: usize,
    report: MaintenanceRunReport,
}

impl PointResult {
    fn delta_bytes(&self) -> u64 {
        self.report.max_delta_bytes()
    }

    fn vacuumed(&self) -> u64 {
        self.report.maint.iter().map(|m| m.vacuumed_versions).sum()
    }

    fn live_first_last(&self) -> (u64, u64) {
        let first = self
            .report
            .maint
            .first()
            .map(|m| m.live_blocks)
            .unwrap_or(0);
        (first, self.report.final_live_blocks())
    }
}

fn run_point(
    backend: BackendKind,
    nranks: usize,
    scale: u32,
    sessions: usize,
    ops_per_round: usize,
    rounds: usize,
) -> PointResult {
    let dir = workloads::scratch::ScratchDir::new(&format!(
        "maintenance-sweep-{}-p{nranks}-s{scale}-o{ops_per_round}",
        backend.label()
    ));
    let mut cfg = MaintenanceScenario::new(dir.path());
    cfg.backend = Some(backend);
    cfg.nranks = nranks;
    cfg.scale = scale;
    cfg.sessions = sessions;
    cfg.rounds = rounds;
    cfg.ops_per_round = ops_per_round;
    cfg.cost = CostModel::default();
    let report = run_maintenance_churn(&cfg);
    PointResult {
        nranks,
        scale,
        ops_per_round,
        report,
    }
}

fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Gate one point: zero divergence, clean verifier, delta ≪ full,
/// bounded live blocks, and a vacuum that actually reclaimed garbage.
fn gate_point(r: &PointResult, what: &str) {
    if !r.report.passed() {
        eprintln!("MISMATCHES at {what}:\n{}", r.report.mismatches.join("\n"));
    }
    assert!(
        r.report.passed(),
        "{what}: recovery diverged or verifier flagged errors"
    );
    let rec = r.report.recovery.clone().unwrap_or_default();
    assert_eq!(rec.errors, 0, "{what}: replay errors");
    assert!(r.report.committed_writes > 0, "{what}: no tracked commits");
    assert!(
        r.delta_bytes() * 2 < r.report.full.bytes,
        "{what}: delta bytes {} not ≪ full bytes {}",
        r.delta_bytes(),
        r.report.full.bytes
    );
    let (first, last) = r.live_first_last();
    assert!(
        last <= first + first / 4,
        "{what}: live blocks grew unbounded: {first} -> {last}"
    );
    assert!(r.vacuumed() > 0, "{what}: vacuum reclaimed nothing");
}

fn main() {
    for_backends(&backend_selection(), run_on);
}

fn run_on(backend: BackendKind) {
    let bench = match backend {
        BackendKind::Sim => "maintenance_sweep",
        BackendKind::Wall => "maintenance_sweep_wall",
    };
    let smoke = std::env::args().any(|a| a == "--smoke");
    let base_scale: u32 = env_usize("GDI_BENCH_SCALE", 10) as u32;
    let sessions = env_usize("GDI_BENCH_MAINT_SESSIONS", 8);
    let ops = env_usize("GDI_BENCH_MAINT_OPS", 40);
    let rounds = env_usize("GDI_BENCH_MAINT_ROUNDS", 3);
    let nranks = 2;

    // (scale, ops_per_round) points on the two axes
    let scale_points: Vec<u32> = if smoke {
        vec![8]
    } else {
        (base_scale..base_scale + 4).collect()
    };
    let churn_points: Vec<usize> = if smoke {
        vec![]
    } else {
        vec![ops / 2, ops, ops * 2]
    };
    let churn_scale = base_scale + 1;
    let (smoke_sessions, smoke_ops, smoke_rounds) = (4, 15, 2);

    let mut scale_results = Vec::new();
    for &scale in &scale_points {
        let (s, o, rds) = if smoke {
            (smoke_sessions, smoke_ops, smoke_rounds)
        } else {
            (sessions, ops, rounds)
        };
        eprintln!("  [maintenance_sweep] scale axis: P={nranks} s={scale} ops={o} ...");
        let r = run_point(backend, nranks, scale, s, o, rds);
        let (first, last) = r.live_first_last();
        eprintln!(
            "  [maintenance_sweep] P={nranks} s={scale}: full {} B / {:.3} sim ms, \
             max delta {} B ({} chunks), live {first}->{last} blocks, \
             vacuumed {} versions, {} checks / {} mismatches",
            r.report.full.bytes,
            r.report.full.sim_stall_s * 1e3,
            r.delta_bytes(),
            r.report.deltas.iter().map(|d| d.chunks).max().unwrap_or(0),
            r.vacuumed(),
            r.report.checks,
            r.report.mismatches.len()
        );
        scale_results.push(r);
    }
    let mut churn_results = Vec::new();
    for &o in &churn_points {
        eprintln!("  [maintenance_sweep] churn axis: P={nranks} s={churn_scale} ops={o} ...");
        let r = run_point(backend, nranks, churn_scale, sessions, o, rounds);
        eprintln!(
            "  [maintenance_sweep] P={nranks} s={churn_scale} ops={o}: \
             max delta {} B, full {} B",
            r.delta_bytes(),
            r.report.full.bytes
        );
        churn_results.push(r);
    }

    let mut out =
        String::from("### Maintenance sweep — delta-checkpoint cost vs database size and churn\n");
    out.push_str(&format!(
        "{:<6} {:<6} {:>6} {:>9} {:>12} {:>14} {:>12} {:>14} {:>11} {:>10} {:>9} {:>9}\n",
        "axis",
        "ranks",
        "scale",
        "ops/rnd",
        "full KiB",
        "full stall ms",
        "delta KiB",
        "delta stall ms",
        "live blks",
        "vacuumed",
        "checks",
        "mismatch"
    ));
    let mut row = |axis: &str, r: &PointResult| {
        let delta_stall = r
            .report
            .deltas
            .iter()
            .map(|d| d.sim_stall_s)
            .fold(0.0f64, f64::max);
        let (_, last) = r.live_first_last();
        out.push_str(&format!(
            "{:<6} {:<6} {:>6} {:>9} {:>12.1} {:>14.3} {:>12.1} {:>14.3} {:>11} {:>10} {:>9} {:>9}\n",
            axis,
            r.nranks,
            r.scale,
            r.ops_per_round,
            r.report.full.bytes as f64 / 1024.0,
            r.report.full.sim_stall_s * 1e3,
            r.delta_bytes() as f64 / 1024.0,
            delta_stall * 1e3,
            last,
            r.vacuumed(),
            r.report.checks,
            r.report.mismatches.len()
        ));
    };
    for r in &scale_results {
        row("scale", r);
    }
    for r in &churn_results {
        row("churn", r);
    }

    let point_json = |r: &PointResult| {
        let rec = r.report.recovery.clone().unwrap_or_default();
        let (live_first, live_last) = r.live_first_last();
        let delta_stall = r
            .report
            .deltas
            .iter()
            .map(|d| d.sim_stall_s)
            .fold(0.0f64, f64::max);
        format!(
            "{{\"nranks\":{},\"scale\":{},\"ops_per_round\":{},\"committed\":{},\
             \"full_bytes\":{},\"full_stall_sim_s\":{:.6},\"delta_bytes_max\":{},\
             \"delta_chunks_max\":{},\"delta_stall_sim_s\":{:.6},\"live_blocks_first\":{},\
             \"live_blocks_last\":{},\"total_blocks\":{},\"vacuumed_versions\":{},\
             \"verified_bytes\":{},\"verify_errors\":{},\"replay_records\":{},\
             \"checks\":{},\"mismatches\":{}}}",
            r.nranks,
            r.scale,
            r.ops_per_round,
            r.report.committed_writes,
            r.report.full.bytes,
            r.report.full.sim_stall_s,
            r.delta_bytes(),
            r.report.deltas.iter().map(|d| d.chunks).max().unwrap_or(0),
            delta_stall,
            live_first,
            live_last,
            r.report.total_blocks,
            r.vacuumed(),
            r.report.maint.iter().map(|m| m.verified_bytes).sum::<u64>(),
            r.report.maint.iter().map(|m| m.verify_errors).sum::<u64>(),
            rec.records,
            r.report.checks,
            r.report.mismatches.len()
        )
    };
    let mut json = format!(
        "{{\"bench\":\"{bench}\",\"backend\":\"{}\",\"scale_points\":[",
        backend.label()
    );
    for (i, r) in scale_results.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&point_json(r));
    }
    json.push_str("],\"churn_points\":[");
    for (i, r) in churn_results.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&point_json(r));
    }
    json.push_str("]}");
    emit(bench, &out);
    emit_json_unless_smoke(bench, &json, smoke);

    // the CI gates: zero divergence, delta ≪ full, bounded live blocks
    for r in scale_results.iter().chain(&churn_results) {
        gate_point(
            r,
            &format!("P={} s={} ops={}", r.nranks, r.scale, r.ops_per_round),
        );
    }
    if scale_results.len() >= 2 {
        // fixed churn: full bytes grow with the database, delta bytes
        // stay flat (within noise) — durability cost ∝ churn, not data
        let first = &scale_results[0];
        let last = &scale_results[scale_results.len() - 1];
        assert!(
            last.report.full.bytes > first.report.full.bytes * 2,
            "full bytes did not grow with scale: {} -> {}",
            first.report.full.bytes,
            last.report.full.bytes
        );
        assert!(
            last.delta_bytes() < first.delta_bytes() * 3,
            "delta bytes not flat across scale at fixed churn: {} -> {}",
            first.delta_bytes(),
            last.delta_bytes()
        );
    }
    if churn_results.len() >= 2 {
        // fixed scale: more churn → more delta bytes
        let lo = &churn_results[0];
        let hi = &churn_results[churn_results.len() - 1];
        assert!(
            hi.delta_bytes() > lo.delta_bytes(),
            "delta bytes did not track churn: {} (ops {}) -> {} (ops {})",
            lo.delta_bytes(),
            lo.ops_per_round,
            hi.delta_bytes(),
            hi.ops_per_round
        );
    }
    println!(
        "maintenance_sweep: all points verified \
         (zero divergence, delta ≪ full, bounded live blocks)"
    );
}

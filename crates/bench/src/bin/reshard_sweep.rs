//! Reshard sweep: elastic restore time and post-reshard throughput
//! versus same-topology recovery — the cost curves of scaling a
//! database out (and back in) across a restart.
//!
//! For each `(P, Q)` point the harness runs the kill-and-restart
//! scenario of `workloads::reshard`: tracked session traffic at `P`, a
//! collective checkpoint mid-stream, a kill, a restore onto `Q` ranks
//! (`Q = P` runs the physical same-topology path as the baseline,
//! `Q ≠ P` the full redistribution), read-your-committed-writes
//! verification, and a post-restore traffic phase. Reported per point:
//!
//! * **restore** — slowest rank's simulated restore seconds and the
//!   wall-clock restart time (recover → serving, verified);
//! * **verification** — checks performed and mismatches (must be 0:
//!   zero lost or stale committed writes across the reshard);
//! * **post throughput** — committed tracked ops per wall second
//!   against the restored server on its new topology.
//!
//! `--smoke` runs the 2→4 scale-out point and fails the process on any
//! mismatch (the CI guard for the elastic axis).
//!
//! Environment: `GDI_BENCH_SCALE` (weak-scaling base),
//! `GDI_BENCH_RESHARD_SESSIONS` (default 12),
//! `GDI_BENCH_RESHARD_OPS` (tracked ops per session per phase,
//! default 40).

use gdi_bench::{backend_selection, emit, emit_json_unless_smoke, for_backends, RunParams};
use rma::{BackendKind, CostModel};
use workloads::recovery::RecoveryReport;
use workloads::reshard::{run_reshard, ReshardScenario};

struct PointResult {
    p: usize,
    q: usize,
    report: RecoveryReport,
}

fn run_point(
    backend: BackendKind,
    p: usize,
    q: usize,
    scale: u32,
    sessions: usize,
    ops: usize,
) -> PointResult {
    let dir = workloads::scratch::ScratchDir::new(&format!(
        "reshard-sweep-{}-{p}-to-{q}",
        backend.label()
    ));
    let mut cfg = ReshardScenario::new(dir.path());
    cfg.backend = Some(backend);
    cfg.ranks_before = p;
    cfg.ranks_after = q;
    cfg.scale = scale;
    cfg.sessions = sessions;
    cfg.ops_before = ops;
    cfg.ops_after = ops;
    cfg.ops_post = ops;
    cfg.cost = CostModel::default();
    PointResult {
        p,
        q,
        report: run_reshard(&cfg),
    }
}

fn main() {
    // `--backend sim|wall|both`: wall runs land under `reshard_sweep_wall`
    for_backends(&backend_selection(), run_on);
}

fn run_on(backend: BackendKind) {
    let bench = match backend {
        BackendKind::Sim => "reshard_sweep",
        BackendKind::Wall => "reshard_sweep_wall",
    };
    let smoke = std::env::args().any(|a| a == "--smoke");
    let params = RunParams::from_env();
    let sessions: usize = std::env::var("GDI_BENCH_RESHARD_SESSIONS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(12);
    let ops: usize = std::env::var("GDI_BENCH_RESHARD_OPS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(40);

    // scale-out 2→8, scale-in 8→2, plus the same-topology baselines at
    // both endpoints (what the elastic path is compared against)
    let points: Vec<(usize, usize, u32)> = if smoke {
        vec![(2, 4, 6)]
    } else {
        let s2 = params.weak_scale(2);
        let s8 = params.weak_scale(8);
        vec![
            (2, 2, s2), // baseline: same-topology recovery at 2
            (2, 4, s2),
            (2, 8, s2), // scale-out
            (8, 8, s8), // baseline: same-topology recovery at 8
            (8, 4, s8),
            (8, 2, s8), // scale-in
        ]
    };

    let mut results = Vec::new();
    for &(p, q, scale) in &points {
        eprintln!("  [reshard_sweep] P={p} -> Q={q} s={scale} ...");
        let r = run_point(
            backend,
            p,
            q,
            scale,
            if smoke { 6 } else { sessions },
            if smoke { 25 } else { ops },
        );
        let rec = r.report.recovery.clone().unwrap_or_default();
        eprintln!(
            "  [reshard_sweep] P={p} -> Q={q}: restore {:.3} sim ms / {:.2} s wall, \
             {} objects-equiv records, {} checks, {} mismatches, post {:.0} ops/s",
            rec.max_sim_restore_s * 1e3,
            r.report.restart_wall_s,
            rec.records,
            r.report.checks,
            r.report.mismatches.len(),
            r.report.post_committed as f64 / r.report.post_wall_s.max(1e-9),
        );
        results.push(r);
    }

    let mut out = String::from("### Reshard sweep — elastic restore vs same-topology recovery\n");
    out.push_str(&format!(
        "{:<10} {:>10} {:>14} {:>13} {:>10} {:>8} {:>9} {:>12}\n",
        "P->Q",
        "committed",
        "restore sim ms",
        "restart w s",
        "records",
        "checks",
        "mismatch",
        "post ops/s"
    ));
    for r in &results {
        let rec = r.report.recovery.clone().unwrap_or_default();
        out.push_str(&format!(
            "{:<10} {:>10} {:>14.3} {:>13.2} {:>10} {:>8} {:>9} {:>12.0}\n",
            format!("{}->{}", r.p, r.q),
            r.report.committed_writes,
            rec.max_sim_restore_s * 1e3,
            r.report.restart_wall_s,
            rec.records,
            r.report.checks,
            r.report.mismatches.len(),
            r.report.post_committed as f64 / r.report.post_wall_s.max(1e-9),
        ));
    }

    let mut json = format!(
        "{{\"bench\":\"{bench}\",\"backend\":\"{}\",\"points\":[",
        backend.label()
    );
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let rec = r.report.recovery.clone().unwrap_or_default();
        json.push_str(&format!(
            "{{\"p\":{},\"q\":{},\"committed\":{},\"restore_sim_s\":{:.6},\
             \"restart_wall_s\":{:.3},\"records\":{},\"checks\":{},\"mismatches\":{},\
             \"post_committed\":{},\"post_wall_s\":{:.3}}}",
            r.p,
            r.q,
            r.report.committed_writes,
            rec.max_sim_restore_s,
            r.report.restart_wall_s,
            rec.records,
            r.report.checks,
            r.report.mismatches.len(),
            r.report.post_committed,
            r.report.post_wall_s,
        ));
    }
    json.push_str("]}");
    emit(bench, &out);
    emit_json_unless_smoke(bench, &json, smoke);

    // the CI guard: zero lost/stale committed writes across every
    // reshard, with the resharded server actually serving afterwards
    let failed: Vec<&PointResult> = results.iter().filter(|r| !r.report.passed()).collect();
    for r in &failed {
        eprintln!(
            "MISMATCHES at {}->{}:\n{}",
            r.p,
            r.q,
            r.report.mismatches.join("\n")
        );
    }
    assert!(failed.is_empty(), "reshard verification failed");
    for r in &results {
        let rec = r.report.recovery.clone().unwrap_or_default();
        assert_eq!(rec.errors, 0, "restore errors at {}->{}", r.p, r.q);
        assert!(r.report.committed_writes > 0);
        assert!(
            r.report.post_committed > 0,
            "post-reshard serving stalled at {}->{}",
            r.p,
            r.q
        );
        if r.p != r.q {
            assert_eq!(rec.resharded_from, Some(r.p));
        }
    }
    println!(
        "reshard_sweep: all points verified (zero lost/stale committed writes across reshard)"
    );
}

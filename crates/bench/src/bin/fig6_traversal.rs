//! Figure 6e/6f: BFS and k-hop runtimes — GDA vs the Graph500 reference
//! BFS and the Neo4j baseline.
//!
//! The key relationship to reproduce (§6.5): GDA's transactional LPG BFS
//! lands within a small factor (paper: 2–4×, sometimes parity) of the
//! bare-metal Graph500 kernel, while Neo4j is orders of magnitude slower.

use gdi_bench::{
    emit, emit_series_json, gda_olap, gda_olap_scan, graph500_bfs, neo4j_olap, render_series,
    sweep_runtime, OlapAlgo, RunParams,
};
use graphgen::LpgConfig;

/// Figure-local adapter: every series in this binary uses the default
/// LPG configuration.
fn sweep(
    name: &str,
    params: &RunParams,
    weak: bool,
    runner: impl Fn(usize, &graphgen::GraphSpec) -> f64,
) -> gdi_bench::Series {
    sweep_runtime(name, params, weak, LpgConfig::default(), runner)
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let params = RunParams::from_env();

    for (weak, label, file) in [
        (
            true,
            "Fig. 6e — BFS & k-hop weak scaling",
            "fig6e_traversal_weak",
        ),
        (
            false,
            "Fig. 6f — BFS & k-hop strong scaling",
            "fig6f_traversal_strong",
        ),
    ] {
        if mode != "all" && ((weak && mode != "weak") || (!weak && mode != "strong")) {
            continue;
        }
        let mut series = Vec::new();
        for k in [2u32, 3, 4] {
            series.push(sweep(&format!("{k}-Hop/GDA"), &params, weak, |p, s| {
                gda_olap(p, s, OlapAlgo::Khop(k))
            }));
            series.push(sweep(
                &format!("{k}-Hop/GDA-scan"),
                &params,
                weak,
                |p, s| gda_olap_scan(p, s, OlapAlgo::Khop(k)),
            ));
        }
        series.push(sweep("BFS/GDA", &params, weak, |p, s| {
            gda_olap(p, s, OlapAlgo::Bfs)
        }));
        series.push(sweep("BFS/GDA-scan", &params, weak, |p, s| {
            gda_olap_scan(p, s, OlapAlgo::Bfs)
        }));
        series.push(sweep("BFS/Graph500", &params, weak, graph500_bfs));
        series.push(sweep("BFS/Neo4j", &params, weak, |p, s| {
            neo4j_olap(p, s, OlapAlgo::Bfs)
        }));
        series.push(sweep("4-Hop/Neo4j", &params, weak, |p, s| {
            neo4j_olap(p, s, OlapAlgo::Khop(4))
        }));
        let mut out = render_series(label, "runtime_s", &series);
        // headline ratio: GDA BFS vs Graph500 at the largest point
        let gda = series.iter().find(|s| s.name == "BFS/GDA").unwrap();
        let g500 = series.iter().find(|s| s.name == "BFS/Graph500").unwrap();
        if let (Some(a), Some(b)) = (gda.points.last(), g500.points.last()) {
            out.push_str(&format!(
                "\nGDA/Graph500 BFS ratio at P={}: {:.2}x (paper: 2-4x, sometimes parity)\n",
                a.nranks,
                a.value / b.value
            ));
        }
        emit(file, &out);
        emit_series_json(file, &series);
    }
}

//! Figure 6e/6f: BFS and k-hop runtimes — GDA vs the Graph500 reference
//! BFS and the Neo4j baseline.
//!
//! The key relationship to reproduce (§6.5): GDA's transactional LPG BFS
//! lands within a small factor (paper: 2–4×, sometimes parity) of the
//! bare-metal Graph500 kernel, while Neo4j is orders of magnitude slower.

use gdi_bench::{
    args_without_backend, backend_selection, emit, emit_series_json, for_backends, gda_olap,
    gda_olap_scan, graph500_bfs, label_series, neo4j_olap, render_series, sweep_runtime, OlapAlgo,
    RunParams,
};
use graphgen::LpgConfig;

/// Figure-local adapter: every series in this binary uses the default
/// LPG configuration.
fn sweep(
    name: &str,
    params: &RunParams,
    weak: bool,
    runner: impl Fn(usize, &graphgen::GraphSpec) -> f64,
) -> gdi_bench::Series {
    sweep_runtime(name, params, weak, LpgConfig::default(), runner)
}

fn main() {
    let mode = args_without_backend()
        .into_iter()
        .next()
        .unwrap_or_else(|| "all".into());
    let backends = backend_selection();
    let params = RunParams::from_env();

    for (weak, label, file) in [
        (
            true,
            "Fig. 6e — BFS & k-hop weak scaling",
            "fig6e_traversal_weak",
        ),
        (
            false,
            "Fig. 6f — BFS & k-hop strong scaling",
            "fig6f_traversal_strong",
        ),
    ] {
        if mode != "all" && ((weak && mode != "weak") || (!weak && mode != "strong")) {
            continue;
        }
        let mut series = Vec::new();
        for_backends(&backends, |b| {
            for k in [2u32, 3, 4] {
                series.push(label_series(
                    sweep(&format!("{k}-Hop/GDA"), &params, weak, |p, s| {
                        gda_olap(p, s, OlapAlgo::Khop(k))
                    }),
                    b,
                ));
                series.push(label_series(
                    sweep(&format!("{k}-Hop/GDA-scan"), &params, weak, |p, s| {
                        gda_olap_scan(p, s, OlapAlgo::Khop(k))
                    }),
                    b,
                ));
            }
            series.push(label_series(
                sweep("BFS/GDA", &params, weak, |p, s| {
                    gda_olap(p, s, OlapAlgo::Bfs)
                }),
                b,
            ));
            series.push(label_series(
                sweep("BFS/GDA-scan", &params, weak, |p, s| {
                    gda_olap_scan(p, s, OlapAlgo::Bfs)
                }),
                b,
            ));
            series.push(label_series(
                sweep("BFS/Graph500", &params, weak, graph500_bfs),
                b,
            ));
            series.push(label_series(
                sweep("BFS/Neo4j", &params, weak, |p, s| {
                    neo4j_olap(p, s, OlapAlgo::Bfs)
                }),
                b,
            ));
            series.push(label_series(
                sweep("4-Hop/Neo4j", &params, weak, |p, s| {
                    neo4j_olap(p, s, OlapAlgo::Khop(4))
                }),
                b,
            ));
        });
        let mut out = render_series(label, "runtime_s", &series);
        // headline ratio: GDA BFS vs Graph500 at the largest point (the
        // simulated pair; absent on a wall-only run)
        let gda = series.iter().find(|s| s.name == "BFS/GDA");
        let g500 = series.iter().find(|s| s.name == "BFS/Graph500");
        if let (Some(a), Some(b)) = (
            gda.and_then(|s| s.points.last()),
            g500.and_then(|s| s.points.last()),
        ) {
            out.push_str(&format!(
                "\nGDA/Graph500 BFS ratio at P={}: {:.2}x (paper: 2-4x, sometimes parity)\n",
                a.nranks,
                a.value / b.value
            ));
        }
        emit(file, &out);
        emit_series_json(file, &series);
    }
}

//! `olap_scan_sweep` — the zero-transaction OLAP scan layer's cost
//! curves (`gda::scan`), with the tx-based builder as differential
//! oracle.
//!
//! Per (ranks, scale) point the harness measures, on the simulated
//! clock:
//!
//! * **view build** — the tx-based builder (`build_view`: DHT
//!   translation + per-vertex `neighbors` through a collective read
//!   transaction), the index-seeded tx builder (`build_view_indexed`),
//!   and the raw-window **scan** build (`gda::scan`);
//! * **end-to-end PageRank** — view build + 10 power iterations, tx
//!   path vs scan path (`GdaRank::olap_view`);
//! * **view reuse** — a second PageRank job against the cached,
//!   epoch-revalidated mirror (the server-side caching win);
//! * **`neighbors_matching`** — per-candidate blocking fetches
//!   (the pre-batching behaviour, emulated with per-candidate
//!   `associate_vertex`) vs the pipelined nb-batch fetch (the
//!   regression guard for that satellite fix).
//!
//! At every point the scan-built view must be **logically identical**
//! to the tx-built view and both PageRank outputs must match exactly —
//! the process aborts on any divergence.
//!
//! `--smoke` runs one small point (the CI guard: zero divergence and a
//! minimum view-build speedup at P=2).

use gdi::{AccessMode, Constraint, EdgeOrientation};
use gdi_bench::{
    backend_selection, emit, emit_json_unless_smoke, for_backends, spec_for, BackendKind, RunParams,
};
use graphgen::{load_into, sized_config, LpgConfig};
use rma::CostModel;
use workloads::analytics::{build_view, build_view_indexed, pagerank, scan_view};

#[derive(Debug, Clone, Copy, Default)]
struct PointOut {
    nranks: usize,
    scale: u32,
    vertices: u64,
    /// Max-over-ranks simulated seconds per phase.
    tx_build_s: f64,
    ix_build_s: f64,
    scan_build_s: f64,
    pr_tx_s: f64,
    pr_scan_s: f64,
    pr_reuse_s: f64,
    nm_seq_s: f64,
    nm_batch_s: f64,
    /// Oracle failures (rows/scores differing) — must be zero.
    divergence: u64,
    scan_reuses: u64,
    scan_builds: u64,
}

fn run_point(nranks: usize, scale: u32) -> PointOut {
    let spec = spec_for(scale, 42, LpgConfig::default());
    let cfg = sized_config(&spec, nranks);
    let (db, fabric) = gda::GdaDb::with_fabric("olap-scan", cfg, nranks, CostModel::default());
    let outs = fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let (meta, _) = load_into(&eng, &spec);
        let apps = spec.vertices_for_rank(ctx.rank(), ctx.nranks());
        let mut p = PointOut {
            nranks,
            scale,
            vertices: spec.n_vertices(),
            ..PointOut::default()
        };
        let timed = |f: &mut dyn FnMut()| {
            ctx.barrier();
            let t0 = ctx.now_ns();
            f();
            ctx.barrier();
            (ctx.now_ns() - t0) / 1e9
        };

        // ---- view builds ---------------------------------------------
        // every measured phase runs on a *fresh attach*: an OLAP job
        // arrives with cold per-rank caches (exactly what each
        // `gda_olap` fabric run pays), so the tx path's translation
        // cache cannot leak warmth from one phase into the next
        let mut tx_view = None;
        {
            let eng = db.attach(ctx);
            p.tx_build_s = timed(&mut || tx_view = Some(build_view(&eng, &apps)));
        }
        let tx_view = tx_view.unwrap();
        let mut ix_view = None;
        let ix = meta.all_index.expect("generator installs __all index");
        p.ix_build_s = timed(&mut || ix_view = Some(build_view_indexed(&eng, ix)));
        let ix_view = ix_view.unwrap();
        let mut sc_view = None;
        p.scan_build_s = timed(&mut || sc_view = Some(scan_view(&eng)));
        let sc_view = sc_view.unwrap();

        // ---- differential oracle: scan ≡ tx, edge for edge -----------
        if !sc_view.logical_eq(&tx_view) {
            p.divergence += 1;
        }
        if !sc_view.logical_eq(&ix_view) {
            p.divergence += 1;
        }

        // ---- end-to-end PageRank -------------------------------------
        let mut pr_tx = Vec::new();
        {
            let eng = db.attach(ctx); // cold job
            p.pr_tx_s = timed(&mut || {
                let v = build_view(&eng, &apps);
                pr_tx = pagerank(&eng, &v, 10, 0.85);
            });
        }
        let eng_srv = db.attach(ctx); // one serving attach for both jobs
        let mut pr_scan = Vec::new();
        p.pr_scan_s = timed(&mut || {
            let v = eng_srv.olap_view(); // first call: builds the mirror
            pr_scan = pagerank(&eng_srv, &v, 10, 0.85);
        });
        if pr_tx != pr_scan {
            p.divergence += 1;
        }
        // a second job against the cached mirror (one epoch
        // revalidation, zero sweep work — the server reuse path)
        let mut pr_reuse = Vec::new();
        p.pr_reuse_s = timed(&mut || {
            let v = eng_srv.olap_view();
            pr_reuse = pagerank(&eng_srv, &v, 10, 0.85);
        });
        if pr_tx != pr_reuse {
            p.divergence += 1;
        }

        // ---- neighbors_matching: blocking vs pipelined ---------------
        // the K highest-degree local vertices give the fetch-heavy case
        let mut by_deg: Vec<usize> = (0..sc_view.len()).collect();
        by_deg.sort_by_key(|&i| std::cmp::Reverse(sc_view.any(i).len()));
        let probes: Vec<gda::DPtr> = by_deg
            .into_iter()
            .take(16)
            .filter(|&i| !sc_view.any(i).is_empty())
            .map(|i| sc_view.vids[i])
            .collect();
        let all = Constraint::any();
        p.nm_seq_s = timed(&mut || {
            // the pre-batching behaviour: one blocking chain walk per
            // candidate (fresh transaction per probe, nothing cached)
            for &v in &probes {
                let tx = eng.begin(AccessMode::ReadOnly);
                for nbr in tx.neighbors(v, EdgeOrientation::Any, None).unwrap() {
                    tx.associate_vertex(nbr).unwrap();
                }
                tx.commit().unwrap();
            }
        });
        p.nm_batch_s = timed(&mut || {
            for &v in &probes {
                let tx = eng.begin(AccessMode::ReadOnly);
                tx.neighbors_matching(v, EdgeOrientation::Any, None, &all)
                    .unwrap();
                tx.commit().unwrap();
            }
        });

        let stats = ctx.stats_snapshot();
        p.scan_reuses = stats.scan_reuses;
        p.scan_builds = stats.scan_builds;
        p
    });
    // aggregate: max over ranks for times, sums for counters
    let mut agg = PointOut {
        nranks,
        scale,
        vertices: outs[0].vertices,
        ..PointOut::default()
    };
    for o in outs {
        agg.tx_build_s = agg.tx_build_s.max(o.tx_build_s);
        agg.ix_build_s = agg.ix_build_s.max(o.ix_build_s);
        agg.scan_build_s = agg.scan_build_s.max(o.scan_build_s);
        agg.pr_tx_s = agg.pr_tx_s.max(o.pr_tx_s);
        agg.pr_scan_s = agg.pr_scan_s.max(o.pr_scan_s);
        agg.pr_reuse_s = agg.pr_reuse_s.max(o.pr_reuse_s);
        agg.nm_seq_s = agg.nm_seq_s.max(o.nm_seq_s);
        agg.nm_batch_s = agg.nm_batch_s.max(o.nm_batch_s);
        agg.divergence += o.divergence;
        agg.scan_reuses += o.scan_reuses;
        agg.scan_builds += o.scan_builds;
    }
    agg
}

fn main() {
    // `--backend sim|wall|both`: wall runs land under
    // `olap_scan_sweep_wall`; the correctness guards (zero divergence,
    // view reuse) gate on both backends, the modeled-speedup floors only
    // on the simulated one
    for_backends(&backend_selection(), run_on);
}

fn run_on(backend: BackendKind) {
    let bench = match backend {
        BackendKind::Sim => "olap_scan_sweep",
        BackendKind::Wall => "olap_scan_sweep_wall",
    };
    let smoke = std::env::args().any(|a| a == "--smoke");
    let params = RunParams::from_env();
    let points: Vec<(usize, u32)> = if smoke {
        vec![(2, 8)]
    } else {
        params
            .ranks
            .iter()
            .map(|&pr| (pr, params.weak_scale(pr)))
            .collect()
    };

    let mut results = Vec::new();
    for &(nranks, scale) in &points {
        eprintln!("  [olap_scan_sweep] P={nranks} s={scale} ...");
        let r = run_point(nranks, scale);
        eprintln!(
            "  [olap_scan_sweep] P={nranks} s={scale}: build tx {:.3} / ix {:.3} / scan {:.3} \
             sim ms ({:.2}x vs tx), PR e2e {:.3} -> {:.3} sim ms ({:.2}x), reuse {:.3} ms, \
             nm {:.3} -> {:.3} ms, divergence {}",
            r.tx_build_s * 1e3,
            r.ix_build_s * 1e3,
            r.scan_build_s * 1e3,
            r.tx_build_s / r.scan_build_s,
            r.pr_tx_s * 1e3,
            r.pr_scan_s * 1e3,
            r.pr_tx_s / r.pr_scan_s,
            r.pr_reuse_s * 1e3,
            r.nm_seq_s * 1e3,
            r.nm_batch_s * 1e3,
            r.divergence,
        );
        results.push(r);
    }

    let mut out =
        String::from("### olap_scan_sweep — zero-transaction CSR scan vs tx-based view build\n");
    out.push_str(&format!(
        "{:<6} {:>6} {:>9} {:>11} {:>11} {:>11} {:>8} {:>10} {:>10} {:>10} {:>8} {:>9} {:>9} {:>6}\n",
        "ranks",
        "scale",
        "vertices",
        "tx ms",
        "ix ms",
        "scan ms",
        "speedup",
        "PRtx ms",
        "PRscan ms",
        "reuse ms",
        "PR x",
        "nm seq",
        "nm batch",
        "div"
    ));
    for r in &results {
        out.push_str(&format!(
            "{:<6} {:>6} {:>9} {:>11.3} {:>11.3} {:>11.3} {:>7.2}x {:>10.3} {:>10.3} {:>10.3} {:>7.2}x {:>9.3} {:>9.3} {:>6}\n",
            r.nranks,
            r.scale,
            r.vertices,
            r.tx_build_s * 1e3,
            r.ix_build_s * 1e3,
            r.scan_build_s * 1e3,
            r.tx_build_s / r.scan_build_s,
            r.pr_tx_s * 1e3,
            r.pr_scan_s * 1e3,
            r.pr_reuse_s * 1e3,
            r.pr_tx_s / r.pr_scan_s,
            r.nm_seq_s * 1e3,
            r.nm_batch_s * 1e3,
            r.divergence
        ));
    }
    emit(bench, &out);

    let mut json = format!(
        "{{\"bench\":\"{bench}\",\"backend\":\"{}\",\"points\":[",
        backend.label()
    );
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"nranks\":{},\"scale\":{},\"vertices\":{},\"tx_build_s\":{:.9},\
             \"ix_build_s\":{:.9},\"scan_build_s\":{:.9},\"build_speedup\":{:.3},\
             \"pr_tx_s\":{:.9},\"pr_scan_s\":{:.9},\"pr_reuse_s\":{:.9},\
             \"pr_speedup\":{:.3},\"nm_seq_s\":{:.9},\"nm_batch_s\":{:.9},\
             \"divergence\":{},\"scan_builds\":{},\"scan_reuses\":{}}}",
            r.nranks,
            r.scale,
            r.vertices,
            r.tx_build_s,
            r.ix_build_s,
            r.scan_build_s,
            r.tx_build_s / r.scan_build_s,
            r.pr_tx_s,
            r.pr_scan_s,
            r.pr_reuse_s,
            r.pr_tx_s / r.pr_scan_s,
            r.nm_seq_s,
            r.nm_batch_s,
            r.divergence,
            r.scan_builds,
            r.scan_reuses
        ));
    }
    json.push_str("]}");
    emit_json_unless_smoke(bench, &json, smoke);

    // ---- guards ---------------------------------------------------------
    // correctness holds on every backend; the timing floors are LogGP
    // relations and gate only the simulated run
    for r in &results {
        assert_eq!(
            r.divergence, 0,
            "scan view diverged from the tx oracle at P={}",
            r.nranks
        );
        assert!(
            r.scan_reuses > 0,
            "no view reuse observed at P={}",
            r.nranks
        );
        if backend == BackendKind::Sim {
            assert!(
                r.nm_batch_s <= r.nm_seq_s * 1.001,
                "batched neighbors_matching regressed at P={}: {:.6} > {:.6}",
                r.nranks,
                r.nm_batch_s,
                r.nm_seq_s
            );
            assert!(
                r.pr_reuse_s < r.pr_scan_s,
                "cached mirror reuse not cheaper than first build at P={}",
                r.nranks
            );
        }
    }
    let last = results.last().unwrap();
    if backend == BackendKind::Sim {
        let floor = if smoke { 1.5 } else { 3.0 };
        assert!(
            last.tx_build_s / last.scan_build_s >= floor,
            "view-build speedup {:.2}x below the {floor}x target at P={}",
            last.tx_build_s / last.scan_build_s,
            last.nranks
        );
        if !smoke {
            assert!(
                last.pr_tx_s / last.pr_scan_s >= 1.5,
                "end-to-end PageRank speedup {:.2}x below the 1.5x target at P={}",
                last.pr_tx_s / last.pr_scan_s,
                last.nranks
            );
        }
    }
    println!(
        "olap_scan_sweep: all points verified (scan ≡ tx oracle, \
         view-build {:.2}x, PageRank {:.2}x at P={})",
        last.tx_build_s / last.scan_build_s,
        last.pr_tx_s / last.pr_scan_s,
        last.nranks
    );
}

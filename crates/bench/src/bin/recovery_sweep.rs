//! Recovery sweep: checkpoint stall versus redo-replay time across
//! scale — the durability subsystem's cost curves.
//!
//! For each (ranks, scale) point the harness runs the kill-and-restart
//! scenario of `workloads::recovery`: tracked session traffic, one
//! collective checkpoint mid-stream, a kill, a recovery from disk, and
//! a full read-your-committed-writes verification. Reported per point:
//!
//! * **checkpoint stall** — simulated seconds commits were paused
//!   (quiesce → publish, max over ranks) and snapshot bytes written;
//! * **replay** — redo records/bytes replayed at recovery and the
//!   slowest rank's simulated restore time;
//! * **restart wall** — wall-clock seconds from `recover()` to a
//!   serving, verified database.
//!
//! `--smoke` runs one small point and fails the process on any
//! verification mismatch (the CI guard for the crash/restart axis).
//!
//! Environment: `GDI_BENCH_RANKS`, `GDI_BENCH_SCALE` (weak-scaling base),
//! `GDI_BENCH_RECOVERY_SESSIONS` (default 16),
//! `GDI_BENCH_RECOVERY_OPS` (tracked ops per session per phase,
//! default 60).

use gdi_bench::{backend_selection, emit, emit_json_unless_smoke, for_backends, RunParams};
use rma::{BackendKind, CostModel};
use workloads::recovery::{run_kill_restart, RecoveryReport, RecoveryScenario};

struct PointResult {
    nranks: usize,
    scale: u32,
    report: RecoveryReport,
}

fn run_point(
    backend: BackendKind,
    nranks: usize,
    scale: u32,
    sessions: usize,
    ops: usize,
) -> PointResult {
    let dir = workloads::scratch::ScratchDir::new(&format!(
        "recovery-sweep-{}-p{nranks}-s{scale}",
        backend.label()
    ));
    let mut cfg = RecoveryScenario::new(dir.path());
    cfg.backend = Some(backend);
    cfg.nranks = nranks;
    cfg.scale = scale;
    cfg.sessions = sessions;
    cfg.ops_before = ops;
    cfg.ops_after = ops;
    cfg.cost = CostModel::default();
    let report = run_kill_restart(&cfg);
    PointResult {
        nranks,
        scale,
        report,
    }
}

fn main() {
    // `--backend sim|wall|both`: wall runs land under `recovery_sweep_wall`
    for_backends(&backend_selection(), run_on);
}

fn run_on(backend: BackendKind) {
    let bench = match backend {
        BackendKind::Sim => "recovery_sweep",
        BackendKind::Wall => "recovery_sweep_wall",
    };
    let smoke = std::env::args().any(|a| a == "--smoke");
    let params = RunParams::from_env();
    let sessions: usize = std::env::var("GDI_BENCH_RECOVERY_SESSIONS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(16);
    let ops: usize = std::env::var("GDI_BENCH_RECOVERY_OPS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(60);

    let points: Vec<(usize, u32)> = if smoke {
        vec![(2, 6)]
    } else {
        params
            .ranks
            .iter()
            .map(|&p| (p, params.weak_scale(p)))
            .collect()
    };

    let mut results = Vec::new();
    for &(nranks, scale) in &points {
        eprintln!("  [recovery_sweep] P={nranks} s={scale} ...");
        let r = run_point(
            backend,
            nranks,
            scale,
            if smoke { 6 } else { sessions },
            if smoke { 25 } else { ops },
        );
        let rec = r.report.recovery.clone().unwrap_or_default();
        eprintln!(
            "  [recovery_sweep] P={nranks} s={scale}: stall {:.3} sim ms \
             ({} snap bytes), replay {} records / {:.3} sim ms, restart {:.2} s wall, \
             {} checks, {} mismatches",
            r.report.checkpoint.sim_stall_s * 1e3,
            r.report.checkpoint.per_rank_bytes.iter().sum::<u64>(),
            rec.records,
            rec.max_sim_restore_s * 1e3,
            r.report.restart_wall_s,
            r.report.checks,
            r.report.mismatches.len()
        );
        results.push(r);
    }

    let mut out = String::from("### Recovery sweep — checkpoint stall vs redo-replay time\n");
    out.push_str(&format!(
        "{:<6} {:>6} {:>10} {:>13} {:>12} {:>10} {:>13} {:>13} {:>8} {:>9}\n",
        "ranks",
        "scale",
        "committed",
        "stall sim ms",
        "snap KiB",
        "records",
        "replay sim ms",
        "restart w s",
        "checks",
        "mismatch"
    ));
    for r in &results {
        let rec = r.report.recovery.clone().unwrap_or_default();
        out.push_str(&format!(
            "{:<6} {:>6} {:>10} {:>13.3} {:>12.1} {:>10} {:>13.3} {:>13.2} {:>8} {:>9}\n",
            r.nranks,
            r.scale,
            r.report.committed_writes,
            r.report.checkpoint.sim_stall_s * 1e3,
            r.report.checkpoint.per_rank_bytes.iter().sum::<u64>() as f64 / 1024.0,
            rec.records,
            rec.max_sim_restore_s * 1e3,
            r.report.restart_wall_s,
            r.report.checks,
            r.report.mismatches.len()
        ));
    }

    let mut json = format!(
        "{{\"bench\":\"{bench}\",\"backend\":\"{}\",\"points\":[",
        backend.label()
    );
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let rec = r.report.recovery.clone().unwrap_or_default();
        json.push_str(&format!(
            "{{\"nranks\":{},\"scale\":{},\"committed\":{},\"stall_sim_s\":{:.6},\
             \"snapshot_bytes\":{},\"replay_records\":{},\"replay_sim_s\":{:.6},\
             \"restart_wall_s\":{:.3},\"checks\":{},\"mismatches\":{}}}",
            r.nranks,
            r.scale,
            r.report.committed_writes,
            r.report.checkpoint.sim_stall_s,
            r.report.checkpoint.per_rank_bytes.iter().sum::<u64>(),
            rec.records,
            rec.max_sim_restore_s,
            r.report.restart_wall_s,
            r.report.checks,
            r.report.mismatches.len()
        ));
    }
    json.push_str("]}");
    emit(bench, &out);
    emit_json_unless_smoke(bench, &json, smoke);

    // the CI guard: every committed write must read back across the
    // restart, with actual replay work observed
    let failed: Vec<&PointResult> = results.iter().filter(|r| !r.report.passed()).collect();
    for r in &failed {
        eprintln!(
            "MISMATCHES at P={} s={}:\n{}",
            r.nranks,
            r.scale,
            r.report.mismatches.join("\n")
        );
    }
    assert!(failed.is_empty(), "recovery verification failed");
    for r in &results {
        let rec = r.report.recovery.clone().unwrap_or_default();
        assert!(
            rec.records > 0,
            "no redo records replayed at P={}",
            r.nranks
        );
        assert_eq!(rec.errors, 0, "replay errors at P={}", r.nranks);
        assert!(r.report.committed_writes > 0);
    }
    println!("recovery_sweep: all points verified (read-your-committed-writes across restart)");
}

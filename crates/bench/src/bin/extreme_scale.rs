//! §6.8 — extreme scales.
//!
//! The paper's largest runs use 7,142 servers / 121,680 cores. The host
//! here cannot run that many rank threads, so this harness does what the
//! paper's own scaling argument does: measure the weak-scaling behaviour
//! over the feasible range, fit the per-rank simulated time to the
//! `a + b·log2(P)` law the collective-based design implies, and report the
//! modeled throughput at the paper's configurations — clearly marked as
//! modeled. It also verifies the paper's headline check: moving 275 B →
//! 550 B edges (2× data, 3.49× servers) increased OLTP throughput ≈3×;
//! we check the analogous doubling at our scale.

use gdi_bench::{
    backend_selection, emit, emit_json, for_backends, gda_oltp, spec_for, BackendKind, RunParams,
};
use graphgen::LpgConfig;
use workloads::oltp::Mix;

fn main() {
    // `--backend sim|wall|both`: wall runs are clearly separated under
    // `extreme_scale_wall` (nondeterministic; the extrapolation fit is
    // only meaningful on the simulated LogGP clock)
    for_backends(&backend_selection(), run);
}

fn run(backend: BackendKind) {
    let bench = match backend {
        BackendKind::Sim => "extreme_scale",
        BackendKind::Wall => "extreme_scale_wall",
    };
    let params = RunParams::from_env();
    let ops = params.ops_per_rank;
    let mut out =
        String::from("### §6.8 — extreme-scale extrapolation (Read Mostly, weak scaling)\n");
    if backend == BackendKind::Wall {
        out.push_str("### (wall-clock backend: timings are hardware-dependent)\n");
    }
    out.push_str(&format!(
        "{:<10} {:>7} {:>14} {:>16}\n",
        "kind", "ranks", "scale", "MQ/s"
    ));

    // measured points
    let mut meas: Vec<(usize, f64)> = Vec::new();
    for &nranks in &params.ranks {
        let scale = params.weak_scale(nranks);
        let spec = spec_for(scale, params.seed, LpgConfig::default());
        let (mqps, _) = gda_oltp(nranks, &spec, &Mix::READ_MOSTLY, ops);
        out.push_str(&format!(
            "{:<10} {:>7} {:>14} {:>16.4}\n",
            "measured", nranks, scale, mqps
        ));
        meas.push((nranks, mqps));
        eprintln!("  measured P={nranks}: {mqps:.4} MQ/s");
    }

    // per-rank throughput model: t_op(P) = a + b*log2(P) (DHT/lock hops
    // are O(1) messages; only the remote fraction and collective terms
    // grow logarithmically). Fit on per-rank MQ/s:
    let pts: Vec<(f64, f64)> = meas
        .iter()
        .map(|&(p, mqps)| {
            let per_rank = mqps / p as f64;
            ((p as f64).log2(), 1.0 / per_rank) // time per op in µs-ish units
        })
        .collect();
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    let (a, b) = if denom.abs() < 1e-12 {
        (sy / n, 0.0)
    } else {
        let b = (n * sxy - sx * sy) / denom;
        let a = (sy - b * sx) / n;
        (a, b)
    };

    for p in [64usize, 512, 2048, 7142] {
        let t = a + b * (p as f64).log2();
        let mqps = p as f64 / t.max(1e-9);
        out.push_str(&format!(
            "{:<10} {:>7} {:>14} {:>16.2}\n",
            "modeled",
            p,
            params.base_scale + rma::cost::log2_ceil(p),
            mqps
        ));
    }

    // the paper's 2x-data / 3.49x-servers => ~3x throughput sanity check,
    // transposed to our measured endpoints
    if meas.len() >= 2 {
        let (p0, m0) = meas[meas.len() - 2];
        let (p1, m1) = meas[meas.len() - 1];
        out.push_str(&format!(
            "\nscaling check: P {p0} -> {p1} ({:.2}x servers) gives {:.2}x throughput\n\
             (paper: 3.49x servers gave ~3x; sub-linear but near-proportional)\n",
            p1 as f64 / p0 as f64,
            m1 / m0
        ));
    }
    out.push_str(
        "\nNOTE: 'modeled' rows extrapolate the measured weak-scaling law to the\n\
         paper's machine sizes; they are not measurements.\n",
    );
    emit(bench, &out);
    let measured: Vec<String> = meas
        .iter()
        .map(|&(pr, mqps)| format!("{{\"nranks\":{pr},\"mqps\":{mqps:.6}}}"))
        .collect();
    emit_json(
        bench,
        &format!(
            "{{\"bench\":\"{bench}\",\"backend\":\"{}\",\"measured\":[{}],\
             \"fit\":{{\"a\":{a:.9},\"b\":{b:.9}}}}}",
            backend.label(),
            measured.join(",")
        ),
    );
}

//! Table 3: the OLTP operation mixes, restated from the implementation's
//! constants and verified by sampling (the empirical frequency of each
//! operation must match its declared weight).

use gdi_bench::{emit, emit_json};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use workloads::oltp::{Mix, OpKind};

fn main() {
    // accepts `--backend` for sweep-driver uniformity, but this table is
    // clock-independent (no fabric runs): the output is identical under
    // the simulated and the wall backend, so it is emitted once
    let _ = gdi_bench::backend_selection();
    let mut out = String::from("### Table 3 — OLTP workload mixes\n");
    let mixes = Mix::table3();
    out.push_str(&format!("{:<22}", "operation"));
    for m in &mixes {
        out.push_str(&format!(" {:>16}", m.name));
    }
    out.push('\n');
    for (i, kind) in OpKind::ALL.iter().enumerate() {
        out.push_str(&format!("{:<22}", kind.name()));
        for m in &mixes {
            out.push_str(&format!(" {:>15.1}%", m.weights[i] * 100.0));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<22}", "read fraction"));
    for m in &mixes {
        out.push_str(&format!(" {:>15.1}%", m.read_fraction() * 100.0));
    }
    out.push('\n');

    // empirical verification by sampling
    out.push_str("\nempirical frequencies over 200k samples (must match declared weights):\n");
    for m in &mixes {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0u64; 7];
        const N: u64 = 200_000;
        for _ in 0..N {
            let k = m.sample(&mut rng);
            counts[OpKind::ALL.iter().position(|x| *x == k).unwrap()] += 1;
        }
        out.push_str(&format!("{:<18}", m.name));
        let total: f64 = m.weights.iter().sum();
        for (i, c) in counts.iter().enumerate() {
            let got = *c as f64 / N as f64;
            let want = m.weights[i] / total;
            assert!(
                (got - want).abs() < 0.01,
                "{}: op {i} drifted: {got} vs {want}",
                m.name
            );
            out.push_str(&format!(" {:>7.2}%", got * 100.0));
        }
        out.push('\n');
    }
    emit("tab3_mixes", &out);
    let mut json = String::from("{\"bench\":\"tab3_mixes\",\"mixes\":[");
    for (i, m) in mixes.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let weights: Vec<String> = m.weights.iter().map(|w| format!("{w:.4}")).collect();
        json.push_str(&format!(
            "{{\"name\":\"{}\",\"read_fraction\":{:.4},\"weights\":[{}]}}",
            m.name,
            m.read_fraction(),
            weights.join(",")
        ));
    }
    json.push_str("]}");
    emit_json("tab3_mixes", &json);
}

//! `query_sweep` — the declarative query planner vs every forced access
//! path, per suite query and machine size.
//!
//! For each `(ranks, scale)` point the harness loads the rich LPG graph
//! with per-label indexes, warms the OLAP mirror (the serving-rank
//! steady state the planner costs against), and then, for each of the
//! five suite queries (`workloads::queries::suite`):
//!
//! * runs the **planner-picked** plan and every **forced** viable
//!   `PathChoice` on the simulated clock;
//! * checks every execution — planner-picked and forced — against the
//!   sequential generator-space oracle
//!   (`workloads::queries::reference_eval`): any mismatch is a
//!   divergence and aborts the run;
//! * records which path the planner chose and how its runtime compares
//!   to the best and worst forced alternatives.
//!
//! Guards: zero divergence everywhere; at the largest point the planner
//! must pick at least three distinct driving paths across the suite
//! (an indexed scan, a DHT point lookup, and a CsrView-backed plan) and
//! must never lose to the **best** forced path by more than 10% on any
//! query. `--smoke` runs one small point and relaxes the optimality
//! bound to the **worst** forced path (tiny graphs make constant
//! factors noisy, but the planner must still never pick pathologically
//! wrong).

use gdi_bench::{
    backend_selection, emit, emit_json_unless_smoke, for_backends, rich_lpg, spec_for, BackendKind,
    RunParams,
};
use graphgen::GraphSpec;
use query::{executor, planner, Plan, QueryValue};
use rma::CostModel;
use workloads::queries::{load_with_label_indexes, reference_eval, suite, SuiteParams};

/// One `(query, choice)` measurement.
#[derive(Debug, Clone)]
struct Timing {
    choice: String,
    sim_s: f64,
    picked: bool,
}

/// One suite query at one sweep point.
#[derive(Debug, Clone)]
struct QueryOut {
    name: &'static str,
    picked: String,
    est_ms: f64,
    picked_s: f64,
    best_forced_s: f64,
    worst_forced_s: f64,
    rows: u64,
    timings: Vec<Timing>,
    divergence: u64,
}

#[derive(Debug, Clone)]
struct PointOut {
    nranks: usize,
    scale: u32,
    vertices: u64,
    queries: Vec<QueryOut>,
    query_execs: u64,
    query_rows: u64,
}

/// Smallest vertex id whose any-direction degree is positive but at most
/// twice the average (deterministic; skips the R-MAT hubs).
fn typical_vertex(spec: &GraphSpec) -> u64 {
    let n = spec.n_vertices() as usize;
    let mut deg = vec![0u32; n];
    for (u, v) in spec.edges_for_rank(0, 1) {
        deg[u as usize] += 1;
        deg[v as usize] += 1;
    }
    let cap = 4 * spec.edge_factor;
    deg.iter()
        .position(|&d| d > 0 && d <= cap)
        .expect("some vertex has typical degree") as u64
}

fn value_rows(v: &QueryValue) -> u64 {
    match v {
        QueryValue::Count(c) => *c,
        QueryValue::Sum(_) => 1,
        QueryValue::Ids(ids) => ids.len() as u64,
    }
}

fn run_point(nranks: usize, scale: u32, params: &SuiteParams) -> PointOut {
    let spec = spec_for(scale, 7, rich_lpg());
    // probe a *typical-degree* vertex with at least one neighbor: the
    // point query models a lookup around an ordinary entity, and the
    // planner only knows average degrees — probing an R-MAT hub would
    // measure cardinality misestimation, not path choice
    let params = SuiteParams {
        point_id: typical_vertex(&spec),
        ..*params
    };
    let params = &params;
    let cfg = graphgen::sized_config(&spec, nranks);
    let (db, fabric) = gda::GdaDb::with_fabric("query-sweep", cfg, nranks, CostModel::default());
    let spec2: GraphSpec = spec;
    let outs = fabric.run(move |ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let (meta, _) = load_with_label_indexes(&eng, &spec2);
        // serving steady state: the OLAP mirror is already resident, so
        // the planner costs Csr staging as an epoch revalidation
        let _ = eng.olap_view();
        let cat = planner::Catalog::gather(&eng);

        let timed = |f: &mut dyn FnMut()| {
            ctx.barrier();
            let t0 = ctx.now_ns();
            f();
            ctx.barrier();
            (ctx.now_ns() - t0) / 1e9
        };

        let mut queries = Vec::new();
        for (name, q) in suite(&meta, params) {
            let want = reference_eval(&spec2, &meta, &q);
            let picked_plan = planner::plan(&cat, &q);
            // one untimed warm-up so every measured run sees the same
            // warm translation caches
            let _ = executor::execute(&eng, &q, &picked_plan);

            let mut out = QueryOut {
                name,
                picked: picked_plan.choice.to_string(),
                est_ms: picked_plan.est_cost_ns / 1e6,
                picked_s: 0.0,
                best_forced_s: f64::INFINITY,
                worst_forced_s: 0.0,
                rows: value_rows(&want),
                timings: Vec::new(),
                divergence: 0,
            };
            let check = |plan: &Plan, got: &QueryValue, out: &mut QueryOut| {
                if got != &want {
                    eprintln!(
                        "DIVERGENCE [{name}] choice {}: got {got:?}, oracle {want:?}",
                        plan.choice
                    );
                    out.divergence += 1;
                }
            };
            for choice in planner::viable_choices(&cat, &q) {
                let Some(plan) = planner::plan_choice(&cat, &q, choice) else {
                    continue;
                };
                let mut got = None;
                let s = timed(&mut || got = Some(executor::execute(&eng, &q, &plan)));
                let got = got.unwrap();
                check(&plan, &got.value, &mut out);
                let picked = choice == picked_plan.choice;
                if picked {
                    out.picked_s = s;
                }
                out.best_forced_s = out.best_forced_s.min(s);
                out.worst_forced_s = out.worst_forced_s.max(s);
                out.timings.push(Timing {
                    choice: choice.to_string(),
                    sim_s: s,
                    picked,
                });
            }
            queries.push(out);
        }
        let stats = ctx.stats_snapshot();
        PointOut {
            nranks,
            scale,
            vertices: spec2.n_vertices(),
            queries,
            query_execs: stats.query_execs,
            query_rows: stats.query_rows,
        }
    });
    // times are barrier-bracketed (identical on all ranks); counters sum
    let mut agg = outs[0].clone();
    agg.query_execs = outs.iter().map(|o| o.query_execs).sum();
    agg.query_rows = outs.iter().map(|o| o.query_rows).sum();
    for o in &outs[1..] {
        for (a, b) in agg.queries.iter_mut().zip(&o.queries) {
            a.divergence += b.divergence;
        }
    }
    agg
}

fn main() {
    // `--backend sim|wall|both`: wall runs land under `query_sweep_wall`;
    // divergence and plan-choice guards gate on both backends, the
    // timing-optimality guards only on the simulated one
    for_backends(&backend_selection(), run_on);
}

fn run_on(backend: BackendKind) {
    let bench = match backend {
        BackendKind::Sim => "query_sweep",
        BackendKind::Wall => "query_sweep_wall",
    };
    let smoke = std::env::args().any(|a| a == "--smoke");
    let params = RunParams::from_env();
    let qp = SuiteParams::default();
    let points: Vec<(usize, u32)> = if smoke {
        vec![(2, 8)]
    } else {
        params
            .ranks
            .iter()
            .map(|&pr| (pr, params.weak_scale(pr)))
            .collect()
    };

    let mut results = Vec::new();
    for &(nranks, scale) in &points {
        eprintln!("  [query_sweep] P={nranks} s={scale} ...");
        let r = run_point(nranks, scale, &qp);
        for q in &r.queries {
            eprintln!(
                "  [query_sweep] P={nranks} {:<18} pick {:<22} {:.3} sim ms \
                 (best {:.3} / worst {:.3}), rows {}, div {}",
                q.name,
                q.picked,
                q.picked_s * 1e3,
                q.best_forced_s * 1e3,
                q.worst_forced_s * 1e3,
                q.rows,
                q.divergence,
            );
        }
        results.push(r);
    }

    // ---- text table -----------------------------------------------------
    let mut out = String::from("### query_sweep — cost-based planner vs forced access paths\n");
    out.push_str(&format!(
        "{:<6} {:>6} {:<18} {:<22} {:>10} {:>10} {:>10} {:>8} {:>8} {:>4}\n",
        "ranks",
        "scale",
        "query",
        "picked",
        "picked ms",
        "best ms",
        "worst ms",
        "vs best",
        "rows",
        "div"
    ));
    for r in &results {
        for q in &r.queries {
            out.push_str(&format!(
                "{:<6} {:>6} {:<18} {:<22} {:>10.3} {:>10.3} {:>10.3} {:>7.2}x {:>8} {:>4}\n",
                r.nranks,
                r.scale,
                q.name,
                q.picked,
                q.picked_s * 1e3,
                q.best_forced_s * 1e3,
                q.worst_forced_s * 1e3,
                q.picked_s / q.best_forced_s,
                q.rows,
                q.divergence
            ));
        }
    }
    emit(bench, &out);

    // ---- JSON -----------------------------------------------------------
    let mut json = format!(
        "{{\"bench\":\"{bench}\",\"backend\":\"{}\",\"points\":[",
        backend.label()
    );
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"nranks\":{},\"scale\":{},\"vertices\":{},\"query_execs\":{},\
             \"query_rows\":{},\"queries\":[",
            r.nranks, r.scale, r.vertices, r.query_execs, r.query_rows
        ));
        for (qi, q) in r.queries.iter().enumerate() {
            if qi > 0 {
                json.push(',');
            }
            json.push_str(&format!(
                "{{\"name\":\"{}\",\"picked\":\"{}\",\"est_ms\":{:.6},\
                 \"picked_s\":{:.9},\"best_forced_s\":{:.9},\"worst_forced_s\":{:.9},\
                 \"rows\":{},\"divergence\":{},\"forced\":[",
                q.name,
                q.picked,
                q.est_ms,
                q.picked_s,
                q.best_forced_s,
                q.worst_forced_s,
                q.rows,
                q.divergence
            ));
            for (ti, t) in q.timings.iter().enumerate() {
                if ti > 0 {
                    json.push(',');
                }
                json.push_str(&format!(
                    "{{\"choice\":\"{}\",\"sim_s\":{:.9},\"picked\":{}}}",
                    t.choice, t.sim_s, t.picked
                ));
            }
            json.push_str("]}");
        }
        json.push_str("]}");
    }
    json.push_str("]}");
    emit_json_unless_smoke(bench, &json, smoke);

    // ---- guards ---------------------------------------------------------
    for r in &results {
        for q in &r.queries {
            assert_eq!(
                q.divergence, 0,
                "{} diverged from the oracle at P={}",
                q.name, r.nranks
            );
            assert!(
                q.picked_s > 0.0,
                "{}: the planner pick was not among the viable forced choices at P={}",
                q.name,
                r.nranks
            );
            // the planner must never lose to the *worst* forced path
            // (a LogGP-clock relation; wall timings are non-gating)
            if backend == BackendKind::Sim {
                assert!(
                    q.picked_s <= q.worst_forced_s * 1.10,
                    "{}: planner pick {:.6}s lost to the worst forced path {:.6}s at P={}",
                    q.name,
                    q.picked_s,
                    q.worst_forced_s,
                    r.nranks
                );
            }
        }
    }
    let last = results.last().unwrap();
    if !smoke {
        // at the largest machine the planner must be near-optimal on
        // every query and must exercise all three driving paths
        for q in &last.queries {
            if backend == BackendKind::Sim {
                assert!(
                    q.picked_s <= q.best_forced_s * 1.10,
                    "{}: planner pick {:.6}s more than 10% off the best forced \
                     path {:.6}s at P={}",
                    q.name,
                    q.picked_s,
                    q.best_forced_s,
                    last.nranks
                );
            }
        }
        let picks: Vec<&str> = last.queries.iter().map(|q| q.picked.as_str()).collect();
        assert!(
            picks.iter().any(|p| p.starts_with("index-scan")),
            "no indexed-scan pick at P={}: {picks:?}",
            last.nranks
        );
        assert!(
            picks.iter().any(|p| p.starts_with("point-lookup")),
            "no point-lookup pick at P={}: {picks:?}",
            last.nranks
        );
        assert!(
            picks
                .iter()
                .any(|p| p.starts_with("sweep") || p.ends_with("csr")),
            "no CsrView-backed pick at P={}: {picks:?}",
            last.nranks
        );
    }
    let n_queries: usize = last.queries.len();
    println!(
        "query_sweep: all points verified (zero divergence across {} queries, \
         planner within 10% of best forced at P={})",
        n_queries, last.nranks
    );
}

//! Figure 4: OLTP throughput, weak and strong scaling.
//!
//! * `weak` — Fig. 4a: Read Mostly & Read Intensive, dataset grows with
//!   the rank count.
//! * `strong` — Fig. 4b: same mixes, fixed dataset.
//! * `weak-write` — Fig. 4c: LinkBench & Write Intensive (+ JanusGraph
//!   LinkBench baseline), with failed-transaction percentages.
//! * `strong-write` — Fig. 4d: same, fixed dataset.
//! * `all` — everything (default).
//!
//! `--backend sim|wall|both` selects the fabric execution backend;
//! `both` emits paired series (simulated names unchanged — the
//! committed baseline — wall-clock ones suffixed `/wall`,
//! nondeterministic).

use gdi_bench::{
    args_without_backend, backend_selection, emit, emit_series_json, for_backends, gda_oltp,
    janus_oltp, label_series, render_series, sweep, RunParams, Series,
};
use graphgen::LpgConfig;
use workloads::oltp::Mix;

fn main() {
    let mode = args_without_backend()
        .into_iter()
        .next()
        .unwrap_or_else(|| "all".into());
    let backends = backend_selection();
    let params = RunParams::from_env();
    let ops = params.ops_per_rank;

    let read_mixes = [Mix::READ_MOSTLY, Mix::READ_INTENSIVE];
    let write_mixes = [Mix::LINKBENCH, Mix::WRITE_INTENSIVE];

    if mode == "weak" || mode == "all" {
        let mut series: Vec<Series> = Vec::new();
        for_backends(&backends, |b| {
            series.extend(read_mixes.iter().map(|m| {
                label_series(
                    sweep(
                        &format!("{}/GDA", m.name),
                        &params,
                        true,
                        LpgConfig::default(),
                        |p, s| gda_oltp(p, s, m, ops),
                    ),
                    b,
                )
            }));
        });
        emit(
            "fig4a_oltp_weak",
            &render_series("Fig. 4a — RI/RM weak scaling", "MQ/s", &series),
        );
        emit_series_json("fig4a_oltp_weak", &series);
    }
    if mode == "strong" || mode == "all" {
        let mut series: Vec<Series> = Vec::new();
        for_backends(&backends, |b| {
            series.extend(read_mixes.iter().map(|m| {
                label_series(
                    sweep(
                        &format!("{}/GDA", m.name),
                        &params,
                        false,
                        LpgConfig::default(),
                        |p, s| gda_oltp(p, s, m, ops),
                    ),
                    b,
                )
            }));
        });
        emit(
            "fig4b_oltp_strong",
            &render_series("Fig. 4b — RI/RM strong scaling", "MQ/s", &series),
        );
        emit_series_json("fig4b_oltp_strong", &series);
    }
    if mode == "weak-write" || mode == "all" {
        let mut series: Vec<Series> = Vec::new();
        for_backends(&backends, |b| {
            series.extend(write_mixes.iter().map(|m| {
                label_series(
                    sweep(
                        &format!("{}/GDA", m.name),
                        &params,
                        true,
                        LpgConfig::default(),
                        |p, s| gda_oltp(p, s, m, ops),
                    ),
                    b,
                )
            }));
            series.push(label_series(
                sweep(
                    "LinkBench/JanusGraph",
                    &params,
                    true,
                    LpgConfig::default(),
                    |p, s| janus_oltp(p, s, &Mix::LINKBENCH, ops),
                ),
                b,
            ));
        });
        emit(
            "fig4c_oltp_weak_write",
            &render_series("Fig. 4c — LinkBench/WI weak scaling", "MQ/s", &series),
        );
        emit_series_json("fig4c_oltp_weak_write", &series);
    }
    if mode == "strong-write" || mode == "all" {
        let mut series: Vec<Series> = Vec::new();
        for_backends(&backends, |b| {
            series.extend(write_mixes.iter().map(|m| {
                label_series(
                    sweep(
                        &format!("{}/GDA", m.name),
                        &params,
                        false,
                        LpgConfig::default(),
                        |p, s| gda_oltp(p, s, m, ops),
                    ),
                    b,
                )
            }));
            series.push(label_series(
                sweep(
                    "LinkBench/JanusGraph",
                    &params,
                    false,
                    LpgConfig::default(),
                    |p, s| janus_oltp(p, s, &Mix::LINKBENCH, ops),
                ),
                b,
            ));
        });
        emit(
            "fig4d_oltp_strong_write",
            &render_series("Fig. 4d — LinkBench/WI strong scaling", "MQ/s", &series),
        );
        emit_series_json("fig4d_oltp_strong_write", &series);
    }
}

//! Figure 6c/6d: GNN (graph convolution) training runtimes for feature
//! dimensions k ∈ {4, 16, 64, 256, 500}, weak and strong scaling.
//!
//! Defaults shrink the dimension sweep on small hosts; set
//! `GDI_BENCH_GNN_KS=4,16,64,256,500` for the paper's full set.

use gdi_bench::{
    args_without_backend, backend_selection, emit, emit_series_json, for_backends, gda_olap,
    gda_olap_scan, label_series, render_series, spec_for, OlapAlgo, Point, RunParams, Series,
};
use graphgen::LpgConfig;

fn ks_from_env() -> Vec<usize> {
    std::env::var("GDI_BENCH_GNN_KS")
        .ok()
        .map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![4, 16, 64])
}

fn main() {
    let mode = args_without_backend()
        .into_iter()
        .next()
        .unwrap_or_else(|| "all".into());
    let backends = backend_selection();
    let params = RunParams::from_env();
    // the paper's GNN weak-scaling series uses a smaller per-server graph
    let base = params.base_scale.saturating_sub(1).max(5);
    let layers = 2;

    for (weak, label, file) in [
        (true, "Fig. 6c — GNN weak scaling", "fig6c_gnn_weak"),
        (false, "Fig. 6d — GNN strong scaling", "fig6d_gnn_strong"),
    ] {
        if mode != "all" && ((weak && mode != "weak") || (!weak && mode != "strong")) {
            continue;
        }
        let mut series = Vec::new();
        for_backends(&backends, |b| {
            for k in ks_from_env() {
                // before/after: tx-based view build vs the scan layer (the
                // GNN's feature updates never retire a scan view, so the
                // mirror survives all layers)
                for (tag, runner) in [
                    (
                        "GDA",
                        gda_olap as fn(usize, &graphgen::GraphSpec, OlapAlgo) -> f64,
                    ),
                    ("GDA-scan", gda_olap_scan),
                ] {
                    let mut points = Vec::new();
                    for &nranks in &params.ranks {
                        let scale = if weak {
                            base + rma::cost::log2_ceil(nranks)
                        } else {
                            base
                        };
                        let spec = spec_for(scale, params.seed, LpgConfig::bare());
                        let secs = runner(nranks, &spec, OlapAlgo::Gnn { layers, k });
                        points.push(Point {
                            nranks,
                            scale,
                            value: secs,
                            fail_frac: 0.0,
                        });
                        eprintln!("  [GNN/{tag} k={k}] P={nranks} s={scale}: {secs:.4}s");
                    }
                    series.push(label_series(
                        Series {
                            name: format!("{tag} k={k}"),
                            points,
                        },
                        b,
                    ));
                }
            }
        });
        emit(file, &render_series(label, "runtime_s", &series));
        emit_series_json(file, &series);
    }
}

//! §6.6 — varying labels, properties and edge factors.
//!
//! The paper: "graphs with very few [labels/properties] … are mostly
//! dominated by irregular single-block reads and writes. With more labels
//! and properties … reads and writes may access many blocks. GDA's
//! advantages are preserved in all these cases." We sweep the label count,
//! the property count and the edge factor, reporting OLTP Read-Mostly
//! throughput and the per-vertex holder footprint.

use gdi_bench::{
    backend_selection, emit, emit_json, for_backends, gda_oltp, BackendKind, RunParams,
};
use graphgen::{GraphSpec, LpgConfig};
use workloads::oltp::Mix;

fn run(spec: &GraphSpec, nranks: usize, ops: usize) -> (f64, f64) {
    gda_oltp(nranks, spec, &Mix::READ_MOSTLY, ops)
}

fn main() {
    // `--backend sim|wall|both`: wall runs land under `ablation_lp_wall`
    for_backends(&backend_selection(), run_on);
}

fn run_on(backend: BackendKind) {
    let bench = match backend {
        BackendKind::Sim => "ablation_lp",
        BackendKind::Wall => "ablation_lp_wall",
    };
    let params = RunParams::from_env();
    let nranks = *params.ranks.iter().max().unwrap_or(&4);
    let scale = params.base_scale.min(12);
    let ops = params.ops_per_rank;
    let mut out =
        String::from("### §6.6 — varying labels, properties, edge factor (Read Mostly)\n");
    let mut json_rows: Vec<String> = Vec::new();
    out.push_str(&format!(
        "{:<34} {:>8} {:>10} {:>14}\n",
        "configuration", "ranks", "MQ/s", "bytes/vertex"
    ));

    // label sweep
    for labels in [0usize, 5, 20, 40] {
        let lpg = LpgConfig {
            num_labels: labels,
            labels_per_vertex: if labels == 0 { 0 } else { 2 },
            ..LpgConfig::default()
        };
        let spec = GraphSpec {
            scale,
            edge_factor: 16,
            seed: params.seed,
            lpg,
        };
        let (mqps, _) = run(&spec, nranks, ops);
        out.push_str(&format!(
            "{:<34} {:>8} {:>10.4} {:>14}\n",
            format!("labels={labels}"),
            nranks,
            mqps,
            lpg.bytes_per_vertex()
        ));
        eprintln!("  labels={labels}: {mqps:.4} MQ/s");
        json_rows.push(format!(
            "{{\"axis\":\"labels\",\"value\":{labels},\"mqps\":{mqps:.6}}}"
        ));
    }

    // property sweep
    for ptypes in [0usize, 13, 26] {
        let lpg = LpgConfig {
            num_ptypes: ptypes,
            props_per_vertex: if ptypes == 0 { 0 } else { ptypes.min(6) },
            ..LpgConfig::default()
        };
        let spec = GraphSpec {
            scale,
            edge_factor: 16,
            seed: params.seed,
            lpg,
        };
        let (mqps, _) = run(&spec, nranks, ops);
        out.push_str(&format!(
            "{:<34} {:>8} {:>10.4} {:>14}\n",
            format!("ptypes={ptypes}"),
            nranks,
            mqps,
            lpg.bytes_per_vertex()
        ));
        eprintln!("  ptypes={ptypes}: {mqps:.4} MQ/s");
        json_rows.push(format!(
            "{{\"axis\":\"ptypes\",\"value\":{ptypes},\"mqps\":{mqps:.6}}}"
        ));
    }

    // edge-factor sweep (paper default e=16)
    for ef in [8u32, 16, 32] {
        let spec = GraphSpec {
            scale,
            edge_factor: ef,
            seed: params.seed,
            lpg: LpgConfig::default(),
        };
        let (mqps, _) = run(&spec, nranks, ops);
        out.push_str(&format!(
            "{:<34} {:>8} {:>10.4} {:>14}\n",
            format!("edge_factor={ef}"),
            nranks,
            mqps,
            LpgConfig::default().bytes_per_vertex()
        ));
        eprintln!("  e={ef}: {mqps:.4} MQ/s");
        json_rows.push(format!(
            "{{\"axis\":\"edge_factor\",\"value\":{ef},\"mqps\":{mqps:.6}}}"
        ));
    }

    // block-size ablation (the BGDL tunable of §5.5): communication vs
    // storage tradeoff — this is the design-choice ablation the paper
    // calls out
    out.push_str("\nblock-size ablation (BGDL tradeoff, §5.5):\n");
    for bs in [128usize, 256, 512, 1024, 2048] {
        let spec = GraphSpec {
            scale,
            edge_factor: 16,
            seed: params.seed,
            lpg: LpgConfig::default(),
        };
        let mut cfg = gdi_bench::oltp_sized_config(&spec, nranks, ops);
        let scale_factor = (cfg.block_size.max(bs) / cfg.block_size.min(bs)).max(1);
        if bs < cfg.block_size {
            cfg.blocks_per_rank *= scale_factor;
        }
        cfg.block_size = bs;
        let (db, fabric) = gda::GdaDb::with_fabric("abl", cfg, nranks, rma::CostModel::default());
        let results = fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            let (meta, _) = graphgen::load_into(&eng, &spec);
            ctx.barrier();
            workloads::oltp::run_oltp(
                &eng,
                &spec,
                &meta,
                &Mix::READ_MOSTLY,
                &workloads::oltp::OltpConfig {
                    ops_per_rank: ops,
                    seed: spec.seed,
                },
            )
        });
        let (mqps, _) = gdi_bench::summarize_oltp(&results);
        let mem = cfg.data_bytes() as f64 / 1e6;
        out.push_str(&format!(
            "  block_size={bs:<5} -> {mqps:.4} MQ/s, {mem:.1} MB data window/rank\n"
        ));
        eprintln!("  bs={bs}: {mqps:.4} MQ/s");
        json_rows.push(format!(
            "{{\"axis\":\"block_size\",\"value\":{bs},\"mqps\":{mqps:.6}}}"
        ));
    }

    // distribution ablation (§5.4: "we tried other distribution schemes,
    // they only negligibly impact our performance"). The engine places
    // vertex `app` on rank `app mod P`; we realize other placements by
    // bijectively relabeling app ids before loading:
    //   round-robin : identity (hash-scrambled ids are already spread)
    //   blocked     : rank r owns the contiguous id block [r·n/P, (r+1)·n/P)
    out.push_str("\ndistribution ablation (§5.4, Read Mostly):\n");
    {
        let spec = GraphSpec {
            scale,
            edge_factor: 16,
            seed: params.seed,
            lpg: LpgConfig::default(),
        };
        let n = spec.n_vertices();
        let p = nranks as u64;
        let chunk = n / p;
        // bijection mapping the blocked placement onto the engine's mod-P
        // owner function
        let blocked = move |v: u64| (v % chunk) * p + (v / chunk).min(p - 1);
        let identity = move |v: u64| v;
        for (name, relabel) in [
            (
                "round-robin",
                Box::new(identity) as Box<dyn Fn(u64) -> u64 + Sync>,
            ),
            ("blocked", Box::new(blocked)),
        ] {
            let cfg = gdi_bench::oltp_sized_config(&spec, nranks, ops);
            let (db, fabric) =
                gda::GdaDb::with_fabric("dist", cfg, nranks, rma::CostModel::default());
            let results = fabric.run(|ctx| {
                let eng = db.attach(ctx);
                eng.init_collective();
                let meta = graphgen::install_metadata(&eng, &spec.lpg);
                let vs: Vec<gda::VertexSpec> = spec
                    .vertices_for_rank(ctx.rank(), ctx.nranks())
                    .into_iter()
                    .map(|v| {
                        let mut s = graphgen::load::vertex_spec(&spec, &meta, v);
                        s.app = gdi::AppVertexId(relabel(v));
                        s
                    })
                    .collect();
                let es: Vec<gda::EdgeSpec> = spec
                    .edges_for_rank(ctx.rank(), ctx.nranks())
                    .into_iter()
                    .map(|(u, v)| {
                        let mut e = graphgen::load::edge_spec(&spec, &meta, u, v);
                        e.from = gdi::AppVertexId(relabel(u));
                        e.to = gdi::AppVertexId(relabel(v));
                        e
                    })
                    .collect();
                eng.bulk_load(vs, es).unwrap();
                ctx.barrier();
                workloads::oltp::run_oltp(
                    &eng,
                    &spec,
                    &meta,
                    &Mix::READ_MOSTLY,
                    &workloads::oltp::OltpConfig {
                        ops_per_rank: ops,
                        seed: spec.seed,
                    },
                )
            });
            let (mqps, _) = gdi_bench::summarize_oltp(&results);
            out.push_str(&format!("  {name:<12} -> {mqps:.4} MQ/s\n"));
            eprintln!("  dist={name}: {mqps:.4} MQ/s");
            json_rows.push(format!(
                "{{\"axis\":\"distribution\",\"value\":\"{name}\",\"mqps\":{mqps:.6}}}"
            ));
        }
    }
    emit(bench, &out);
    emit_json(
        bench,
        &format!(
            "{{\"bench\":\"{bench}\",\"backend\":\"{}\",\"points\":[{}]}}",
            backend.label(),
            json_rows.join(",")
        ),
    );
}

//! §6.7 — real-world-graph analysis.
//!
//! The paper processed Web Data Commons (3.56 B vertices, 128 B edges) and
//! KONECT/WebGraph datasets and found that "performance patterns and GDA's
//! advantages are similar to those obtained for Kronecker graphs … because
//! both have similar sparsities as well as heavy-tail degree
//! distributions". Real 128 B-edge downloads are not available offline, so
//! this harness substitutes Kronecker configurations spanning the degree
//! skew/sparsity space of those datasets and verifies that the BFS
//! performance pattern is insensitive to the configuration — the paper's
//! §6.7 claim.

use gdi_bench::{
    backend_selection, emit, emit_json, for_backends, gda_olap, graph500_bfs, BackendKind,
    OlapAlgo, RunParams,
};
use graphgen::{GraphSpec, KroneckerSampler, LpgConfig};

fn degree_stats(spec: &GraphSpec) -> (f64, u64, f64) {
    let s = KroneckerSampler::new(spec.scale, spec.seed);
    let deg = s.sample_out_degrees(spec.n_edges());
    let mean = spec.n_edges() as f64 / spec.n_vertices() as f64;
    let max = *deg.iter().max().unwrap();
    let zeros = deg.iter().filter(|&&d| d == 0).count() as f64 / deg.len() as f64;
    (mean, max, zeros)
}

fn main() {
    // `--backend sim|wall|both`: wall runs land under `realworld_like_wall`
    for_backends(&backend_selection(), run);
}

fn run(backend: BackendKind) {
    let bench = match backend {
        BackendKind::Sim => "realworld_like",
        BackendKind::Wall => "realworld_like_wall",
    };
    let params = RunParams::from_env();
    let nranks = *params.ranks.iter().max().unwrap_or(&4);
    let mut out = String::from("### §6.7 — heavy-tail 'real-world-like' configurations (BFS)\n");
    if backend == BackendKind::Wall {
        out.push_str("### (wall-clock backend: timings are hardware-dependent)\n");
    }
    out.push_str(&format!(
        "{:<28} {:>9} {:>9} {:>8} {:>12} {:>14} {:>10}\n",
        "config (web-like sweep)",
        "mean deg",
        "max deg",
        "zero%",
        "GDA BFS s",
        "Graph500 s",
        "ratio"
    ));
    let mut json_rows: Vec<String> = Vec::new();
    // sparsity/skew sweep bracketing web graphs (WDC: mean deg ~36,
    // extreme hubs) and social networks (mean deg ~10-70)
    for (name, ef, seed) in [
        ("citation-like e=8", 8u32, 101u64),
        ("social-like e=16", 16, 202),
        ("web-like e=36", 36, 303),
    ] {
        let spec = GraphSpec {
            scale: params.base_scale,
            edge_factor: ef,
            seed,
            lpg: LpgConfig::default(),
        };
        let (mean, max, zeros) = degree_stats(&spec);
        let gda_s = gda_olap(nranks, &spec, OlapAlgo::Bfs);
        let g500_s = graph500_bfs(nranks, &spec);
        out.push_str(&format!(
            "{:<28} {:>9.1} {:>9} {:>7.1}% {:>12.5} {:>14.5} {:>9.2}x\n",
            name,
            mean,
            max,
            zeros * 100.0,
            gda_s,
            g500_s,
            gda_s / g500_s
        ));
        eprintln!("  {name}: GDA {gda_s:.5}s vs Graph500 {g500_s:.5}s");
        json_rows.push(format!(
            "{{\"config\":\"{name}\",\"edge_factor\":{ef},\"mean_deg\":{mean:.2},\
             \"max_deg\":{max},\"gda_bfs_s\":{gda_s:.9},\"graph500_bfs_s\":{g500_s:.9},\
             \"ratio\":{:.3}}}",
            gda_s / g500_s
        ));
    }
    out.push_str(
        "\nExpectation (paper §6.7): the GDA/Graph500 ratio stays in the same\n\
         small band across configurations because performance is governed by\n\
         sparsity + heavy-tail skew, which all configurations share.\n",
    );
    emit(bench, &out);
    emit_json(
        bench,
        &format!(
            "{{\"bench\":\"{bench}\",\"backend\":\"{}\",\"nranks\":{nranks},\"points\":[{}]}}",
            backend.label(),
            json_rows.join(",")
        ),
    );
}

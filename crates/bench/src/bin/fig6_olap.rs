//! Figure 6a/6b: OLAP/OLSP runtimes — PageRank, CDLP, WCC (weak scaling)
//! plus LCC and BI2 with the Neo4j baseline (strong scaling).
//!
//! `--backend sim|wall|both` selects the fabric execution backend;
//! `both` emits paired series (wall-clock names suffixed `/wall`,
//! nondeterministic).

use gdi_bench::{
    args_without_backend, backend_selection, emit, emit_series_json, for_backends, gda_olap,
    gda_olap_scan, label_series, neo4j_olap, render_series, rich_lpg, sweep_runtime as sweep,
    OlapAlgo, RunParams, Series,
};
use graphgen::LpgConfig;

fn main() {
    let mode = args_without_backend()
        .into_iter()
        .next()
        .unwrap_or_else(|| "all".into());
    let backends = backend_selection();
    let params = RunParams::from_env();

    if mode == "weak" || mode == "all" {
        let algos = [OlapAlgo::Wcc, OlapAlgo::Cdlp, OlapAlgo::Pagerank];
        let mut series: Vec<Series> = Vec::new();
        for_backends(&backends, |b| {
            for a in algos {
                // before/after: the tx-based view build vs the scan layer
                series.push(label_series(
                    sweep(
                        &format!("{}/GDA", a.name()),
                        &params,
                        true,
                        LpgConfig::default(),
                        |p, s| gda_olap(p, s, a),
                    ),
                    b,
                ));
                series.push(label_series(
                    sweep(
                        &format!("{}/GDA-scan", a.name()),
                        &params,
                        true,
                        LpgConfig::default(),
                        |p, s| gda_olap_scan(p, s, a),
                    ),
                    b,
                ));
            }
        });
        emit(
            "fig6a_olap_weak",
            &render_series("Fig. 6a — PR/CDLP/WCC weak scaling", "runtime_s", &series),
        );
        emit_series_json("fig6a_olap_weak", &series);
    }
    if mode == "strong" || mode == "all" {
        let mut series: Vec<Series> = Vec::new();
        for_backends(&backends, |b| {
            for a in [
                OlapAlgo::Wcc,
                OlapAlgo::Cdlp,
                OlapAlgo::Pagerank,
                OlapAlgo::Lcc,
            ] {
                series.push(label_series(
                    sweep(
                        &format!("{}/GDA", a.name()),
                        &params,
                        false,
                        LpgConfig::default(),
                        |p, s| gda_olap(p, s, a),
                    ),
                    b,
                ));
                series.push(label_series(
                    sweep(
                        &format!("{}/GDA-scan", a.name()),
                        &params,
                        false,
                        LpgConfig::default(),
                        |p, s| gda_olap_scan(p, s, a),
                    ),
                    b,
                ));
            }
            // BI2 runs on the rich LPG configuration; Neo4j comparison included
            series.push(label_series(
                sweep("BI2/GDA", &params, false, rich_lpg(), |p, s| {
                    gda_olap(p, s, OlapAlgo::Bi2)
                }),
                b,
            ));
            series.push(label_series(
                sweep("BI2/Neo4j", &params, false, rich_lpg(), |p, s| {
                    neo4j_olap(p, s, OlapAlgo::Bi2)
                }),
                b,
            ));
        });
        emit(
            "fig6b_olap_strong",
            &render_series(
                "Fig. 6b — PR/CDLP/WCC/LCC/BI2 strong scaling",
                "runtime_s",
                &series,
            ),
        );
        emit_series_json("fig6b_olap_strong", &series);
    }
}

//! Figure 6a/6b: OLAP/OLSP runtimes — PageRank, CDLP, WCC (weak scaling)
//! plus LCC and BI2 with the Neo4j baseline (strong scaling).

use gdi_bench::{
    emit, gda_olap, neo4j_olap, render_series, rich_lpg, sweep_runtime as sweep, OlapAlgo,
    RunParams, Series,
};
use graphgen::LpgConfig;

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let params = RunParams::from_env();

    if mode == "weak" || mode == "all" {
        let algos = [OlapAlgo::Wcc, OlapAlgo::Cdlp, OlapAlgo::Pagerank];
        let series: Vec<Series> = algos
            .iter()
            .map(|a| {
                sweep(
                    &format!("{}/GDA", a.name()),
                    &params,
                    true,
                    LpgConfig::default(),
                    |p, s| gda_olap(p, s, *a),
                )
            })
            .collect();
        emit(
            "fig6a_olap_weak",
            &render_series("Fig. 6a — PR/CDLP/WCC weak scaling", "runtime_s", &series),
        );
    }
    if mode == "strong" || mode == "all" {
        let mut series: Vec<Series> = [
            OlapAlgo::Wcc,
            OlapAlgo::Cdlp,
            OlapAlgo::Pagerank,
            OlapAlgo::Lcc,
        ]
        .iter()
        .map(|a| {
            sweep(
                &format!("{}/GDA", a.name()),
                &params,
                false,
                LpgConfig::default(),
                |p, s| gda_olap(p, s, *a),
            )
        })
        .collect();
        // BI2 runs on the rich LPG configuration; Neo4j comparison included
        series.push(sweep("BI2/GDA", &params, false, rich_lpg(), |p, s| {
            gda_olap(p, s, OlapAlgo::Bi2)
        }));
        series.push(sweep("BI2/Neo4j", &params, false, rich_lpg(), |p, s| {
            neo4j_olap(p, s, OlapAlgo::Bi2)
        }));
        emit(
            "fig6b_olap_strong",
            &render_series(
                "Fig. 6b — PR/CDLP/WCC/LCC/BI2 strong scaling",
                "runtime_s",
                &series,
            ),
        );
    }
}

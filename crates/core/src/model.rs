//! Core identifiers and directions of the Labeled Property Graph model (§2).
//!
//! An LPG graph is a tuple `(V, E, L, l, K, W, p)`. This module defines the
//! identifier vocabulary GDI uses to talk about these sets:
//!
//! * [`AppVertexId`] — the *application-level* vertex id supplied by the
//!   user. GDI deliberately separates it from any internal id, which keeps
//!   the interface portable (§3.4): implementations translate it via
//!   `TranslateVertexID` into their own internal id (in GDA: a `DPtr`).
//! * [`LabelId`] / [`PTypeId`] — small integer ids that implementations use
//!   to reference metadata objects on vertices/edges (§5.8).
//! * [`EdgeOrientation`] / [`Direction`] — edge direction vocabulary used by
//!   neighborhood routines (`GDI_EDGE_OUTGOING` etc.).

use serde::{Deserialize, Serialize};

/// Application-level vertex identifier (external id, `vID_app` in the
/// paper's listings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AppVertexId(pub u64);

impl From<u64> for AppVertexId {
    fn from(v: u64) -> Self {
        AppVertexId(v)
    }
}

impl std::fmt::Display for AppVertexId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Integer id of a label (element of `L`). Ids `0..=2` are reserved entry
/// markers (see crate-level constants); user labels start above them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LabelId(pub u32);

/// Integer id of a property type (element of `K`). Always
/// `>= FIRST_PTYPE_ID` so holders can distinguish label entries, property
/// entries and markers (§5.4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PTypeId(pub u32);

/// Edge orientation selector for neighborhood queries
/// (`GDI_EDGE_OUTGOING` / `GDI_EDGE_INCOMING` / `GDI_EDGE_UNDIRECTED`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeOrientation {
    /// Edges whose origin is the queried vertex.
    Outgoing,
    /// Edges whose target is the queried vertex.
    Incoming,
    /// Undirected edges incident to the queried vertex.
    Undirected,
    /// Any incident edge, regardless of direction.
    Any,
}

impl EdgeOrientation {
    /// Does an edge stored with `dir` relative to a vertex match this
    /// orientation selector?
    pub fn matches(self, dir: Direction) -> bool {
        match self {
            EdgeOrientation::Any => true,
            EdgeOrientation::Outgoing => dir == Direction::Out,
            EdgeOrientation::Incoming => dir == Direction::In,
            EdgeOrientation::Undirected => dir == Direction::Undirected,
        }
    }
}

/// Direction of an edge record relative to the vertex storing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Direction {
    /// The storing vertex is the edge's origin.
    Out = 0,
    /// The storing vertex is the edge's target.
    In = 1,
    /// The edge is undirected.
    Undirected = 2,
}

impl Direction {
    /// The direction of the same edge as seen from the opposite endpoint.
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Out => Direction::In,
            Direction::In => Direction::Out,
            Direction::Undirected => Direction::Undirected,
        }
    }

    /// Decode from the wire representation.
    pub fn from_u8(v: u8) -> Option<Direction> {
        match v {
            0 => Some(Direction::Out),
            1 => Some(Direction::In),
            2 => Some(Direction::Undirected),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orientation_matching() {
        assert!(EdgeOrientation::Outgoing.matches(Direction::Out));
        assert!(!EdgeOrientation::Outgoing.matches(Direction::In));
        assert!(!EdgeOrientation::Outgoing.matches(Direction::Undirected));
        assert!(EdgeOrientation::Incoming.matches(Direction::In));
        assert!(EdgeOrientation::Undirected.matches(Direction::Undirected));
        assert!(EdgeOrientation::Any.matches(Direction::Out));
        assert!(EdgeOrientation::Any.matches(Direction::In));
        assert!(EdgeOrientation::Any.matches(Direction::Undirected));
    }

    #[test]
    fn direction_reverse_is_involutive() {
        for d in [Direction::Out, Direction::In, Direction::Undirected] {
            assert_eq!(d.reverse().reverse(), d);
        }
        assert_eq!(Direction::Out.reverse(), Direction::In);
        assert_eq!(Direction::Undirected.reverse(), Direction::Undirected);
    }

    #[test]
    fn direction_wire_roundtrip() {
        for d in [Direction::Out, Direction::In, Direction::Undirected] {
            assert_eq!(Direction::from_u8(d as u8), Some(d));
        }
        assert_eq!(Direction::from_u8(3), None);
        assert_eq!(Direction::from_u8(255), None);
    }

    #[test]
    fn ids_order_and_display() {
        assert!(AppVertexId(1) < AppVertexId(2));
        assert_eq!(AppVertexId::from(7u64), AppVertexId(7));
        assert_eq!(AppVertexId(7).to_string(), "v7");
        assert!(LabelId(3) < LabelId(4));
        assert!(PTypeId(3) < PTypeId(9));
    }
}

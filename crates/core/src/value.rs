//! Property values and their wire encoding.
//!
//! GDA stores label/property entries as `(integer id, size, data)` triples
//! inside block-backed holders (§5.4.3). [`PropertyValue`] is the typed
//! user-facing view; [`PropertyValue::encode`] / [`PropertyValue::decode`]
//! convert to and from the raw bytes stored in holders, according to the
//! property type's declared [`Datatype`].

use serde::{Deserialize, Serialize};

use crate::datatype::Datatype;
use crate::error::{GdiError, GdiResult};

/// A typed property value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PropertyValue {
    /// An unsigned 64-bit integer.
    U64(u64),
    /// A signed 64-bit integer.
    I64(i64),
    /// An unsigned 32-bit integer.
    U32(u32),
    /// A signed 32-bit integer.
    I32(i32),
    /// A double-precision float.
    F64(f64),
    /// A single-precision float.
    F32(f32),
    /// A boolean.
    Bool(bool),
    /// UTF-8 text (stored as `Datatype::Char` element sequences).
    Text(String),
    /// Raw bytes (`Datatype::Byte`), also used for fixed-size blobs such as
    /// GNN feature vectors.
    Bytes(Vec<u8>),
    /// A vector of doubles (convenience for feature vectors; stored as
    /// `Datatype::Double` sequences).
    F64Vec(Vec<f64>),
}

impl PropertyValue {
    /// Number of elements of the value under datatype `dt`.
    pub fn elems(&self, dt: Datatype) -> usize {
        self.encoded_len() / dt.elem_bytes().max(1)
    }

    /// Length of the encoded representation in bytes.
    pub fn encoded_len(&self) -> usize {
        match self {
            PropertyValue::U64(_) | PropertyValue::I64(_) | PropertyValue::F64(_) => 8,
            PropertyValue::U32(_) | PropertyValue::I32(_) | PropertyValue::F32(_) => 4,
            PropertyValue::Bool(_) => 1,
            PropertyValue::Text(s) => s.len(),
            PropertyValue::Bytes(b) => b.len(),
            PropertyValue::F64Vec(v) => v.len() * 8,
        }
    }

    /// Encode to the little-endian byte representation stored in holders.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            PropertyValue::U64(v) => v.to_le_bytes().to_vec(),
            PropertyValue::I64(v) => v.to_le_bytes().to_vec(),
            PropertyValue::U32(v) => v.to_le_bytes().to_vec(),
            PropertyValue::I32(v) => v.to_le_bytes().to_vec(),
            PropertyValue::F64(v) => v.to_le_bytes().to_vec(),
            PropertyValue::F32(v) => v.to_le_bytes().to_vec(),
            PropertyValue::Bool(v) => vec![u8::from(*v)],
            PropertyValue::Text(s) => s.as_bytes().to_vec(),
            PropertyValue::Bytes(b) => b.clone(),
            PropertyValue::F64Vec(v) => {
                let mut out = Vec::with_capacity(v.len() * 8);
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
                out
            }
        }
    }

    /// Decode bytes read from a holder under the property type's datatype.
    ///
    /// Multi-element sequences of numeric datatypes decode to
    /// [`PropertyValue::F64Vec`] (doubles) or [`PropertyValue::Bytes`]
    /// (anything else), matching how GDA surfaces them.
    pub fn decode(dt: Datatype, bytes: &[u8]) -> GdiResult<PropertyValue> {
        let eb = dt.elem_bytes();
        if eb > 0 && !bytes.len().is_multiple_of(eb) {
            return Err(GdiError::TypeMismatch);
        }
        let single = bytes.len() == eb;
        let take8 = |b: &[u8]| -> [u8; 8] { b[..8].try_into().unwrap() };
        let take4 = |b: &[u8]| -> [u8; 4] { b[..4].try_into().unwrap() };
        Ok(match (dt, single) {
            (Datatype::Uint64, true) => PropertyValue::U64(u64::from_le_bytes(take8(bytes))),
            (Datatype::Int64, true) => PropertyValue::I64(i64::from_le_bytes(take8(bytes))),
            (Datatype::Uint32, true) => PropertyValue::U32(u32::from_le_bytes(take4(bytes))),
            (Datatype::Int32, true) => PropertyValue::I32(i32::from_le_bytes(take4(bytes))),
            (Datatype::Double, true) => PropertyValue::F64(f64::from_le_bytes(take8(bytes))),
            (Datatype::Float, true) => PropertyValue::F32(f32::from_le_bytes(take4(bytes))),
            (Datatype::Bool, true) => PropertyValue::Bool(bytes[0] != 0),
            (Datatype::Double, false) => PropertyValue::F64Vec(
                bytes
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            ),
            (Datatype::Char, _) => PropertyValue::Text(
                String::from_utf8(bytes.to_vec()).map_err(|_| GdiError::TypeMismatch)?,
            ),
            _ => PropertyValue::Bytes(bytes.to_vec()),
        })
    }

    /// Convenience accessor: the value as `u64` if it is numeric-integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            PropertyValue::U64(v) => Some(*v),
            PropertyValue::U32(v) => Some(*v as u64),
            PropertyValue::I64(v) if *v >= 0 => Some(*v as u64),
            PropertyValue::I32(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Convenience accessor: the value as `f64` if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            PropertyValue::F64(v) => Some(*v),
            PropertyValue::F32(v) => Some(*v as f64),
            PropertyValue::U64(v) => Some(*v as f64),
            PropertyValue::I64(v) => Some(*v as f64),
            PropertyValue::U32(v) => Some(*v as f64),
            PropertyValue::I32(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Convenience accessor: the value as text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            PropertyValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Total order used by comparison conditions in constraints. Values of
    /// incomparable kinds order by kind tag (documented, deterministic).
    pub fn cmp_total(&self, other: &PropertyValue) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => return a.partial_cmp(&b).unwrap_or(Ordering::Equal),
            (Some(_), None) => return Ordering::Less,
            (None, Some(_)) => return Ordering::Greater,
            (None, None) => {}
        }
        match (self, other) {
            (PropertyValue::Text(a), PropertyValue::Text(b)) => a.cmp(b),
            (PropertyValue::Bytes(a), PropertyValue::Bytes(b)) => a.cmp(b),
            (PropertyValue::Bool(a), PropertyValue::Bool(b)) => a.cmp(b),
            (PropertyValue::Text(_), _) => Ordering::Less,
            (_, PropertyValue::Text(_)) => Ordering::Greater,
            _ => self.encode().cmp(&other.encode()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        let cases: Vec<(Datatype, PropertyValue)> = vec![
            (Datatype::Uint64, PropertyValue::U64(0xDEAD_BEEF_CAFE)),
            (Datatype::Int64, PropertyValue::I64(-42)),
            (Datatype::Uint32, PropertyValue::U32(7)),
            (Datatype::Int32, PropertyValue::I32(-7)),
            (Datatype::Double, PropertyValue::F64(3.25)),
            (Datatype::Float, PropertyValue::F32(-1.5)),
            (Datatype::Bool, PropertyValue::Bool(true)),
        ];
        for (dt, v) in cases {
            let enc = v.encode();
            let dec = PropertyValue::decode(dt, &enc).unwrap();
            assert_eq!(dec, v, "{dt:?}");
        }
    }

    #[test]
    fn text_and_bytes_roundtrip() {
        let t = PropertyValue::Text("héllo wörld".to_string());
        assert_eq!(
            PropertyValue::decode(Datatype::Char, &t.encode()).unwrap(),
            t
        );
        let b = PropertyValue::Bytes(vec![1, 2, 3, 4, 5]);
        assert_eq!(
            PropertyValue::decode(Datatype::Byte, &b.encode()).unwrap(),
            b
        );
    }

    #[test]
    fn f64vec_roundtrip() {
        let v = PropertyValue::F64Vec(vec![1.0, -2.5, 3e10]);
        let dec = PropertyValue::decode(Datatype::Double, &v.encode()).unwrap();
        assert_eq!(dec, v);
    }

    #[test]
    fn misaligned_decode_rejected() {
        assert_eq!(
            PropertyValue::decode(Datatype::Uint64, &[1, 2, 3]),
            Err(GdiError::TypeMismatch)
        );
        assert_eq!(
            PropertyValue::decode(Datatype::Uint32, &[1, 2, 3, 4, 5]),
            Err(GdiError::TypeMismatch)
        );
    }

    #[test]
    fn invalid_utf8_rejected() {
        assert_eq!(
            PropertyValue::decode(Datatype::Char, &[0xFF, 0xFE]),
            Err(GdiError::TypeMismatch)
        );
    }

    #[test]
    fn accessors() {
        assert_eq!(PropertyValue::U64(9).as_u64(), Some(9));
        assert_eq!(PropertyValue::I64(-1).as_u64(), None);
        assert_eq!(PropertyValue::I32(5).as_u64(), Some(5));
        assert_eq!(PropertyValue::F64(2.0).as_f64(), Some(2.0));
        assert_eq!(PropertyValue::Text("x".into()).as_text(), Some("x"));
        assert_eq!(PropertyValue::Bytes(vec![]).as_f64(), None);
    }

    #[test]
    fn total_order_numeric_cross_type() {
        use std::cmp::Ordering::*;
        assert_eq!(
            PropertyValue::U64(3).cmp_total(&PropertyValue::F64(3.5)),
            Less
        );
        assert_eq!(
            PropertyValue::I32(-1).cmp_total(&PropertyValue::U64(0)),
            Less
        );
        assert_eq!(
            PropertyValue::Text("abc".into()).cmp_total(&PropertyValue::Text("abd".into())),
            Less
        );
        assert_eq!(
            PropertyValue::U64(5).cmp_total(&PropertyValue::U64(5)),
            Equal
        );
        // numbers order before text (deterministic cross-kind order)
        assert_eq!(
            PropertyValue::U64(5).cmp_total(&PropertyValue::Text("a".into())),
            Less
        );
    }

    #[test]
    fn elems_counts_elements() {
        let v = PropertyValue::F64Vec(vec![0.0; 10]);
        assert_eq!(v.elems(Datatype::Double), 10);
        let t = PropertyValue::Text("abcd".into());
        assert_eq!(t.elems(Datatype::Char), 4);
    }
}

//! Constraints: boolean formulas in disjunctive normal form (§3.6).
//!
//! Explicit GDI indexes are queried with *constraints*: an OR of
//! *subconstraints*, each an AND of label conditions and property
//! conditions. Constraints support arbitrary comparison conditions on
//! labels and properties, covering filters such as
//! `(:Car AND color = "red") OR (:Bike)`.
//!
//! Constraints carry the metadata epoch at which they were built: because
//! GDI only guarantees *eventual consistency* for metadata (§3.8), a
//! constraint referencing labels/p-types that changed since must be
//! reported stale (`GDI_VerifyStaleness`).

use serde::{Deserialize, Serialize};

use crate::model::{LabelId, PTypeId};
use crate::value::PropertyValue;

/// Comparison operator for property conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// Apply the operator to an ordering of `lhs` relative to `rhs`.
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

/// A label condition: the element must (or must not) carry `label`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelCond {
    /// The label the condition tests for.
    pub label: LabelId,
    /// `true` = must carry the label, `false` = must not.
    pub present: bool,
}

/// A property condition: `property(ptype) <op> value`.
///
/// For multi-entry property types the condition holds if *any* entry
/// satisfies it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PropCond {
    /// The property type whose entries are compared.
    pub ptype: PTypeId,
    /// The comparison operator.
    pub op: CmpOp,
    /// The right-hand-side value entries are compared against.
    pub value: PropertyValue,
}

impl PropCond {
    /// Evaluate against the entries of the property type on an element.
    pub fn eval(&self, entries: &[PropertyValue]) -> bool {
        entries
            .iter()
            .any(|v| self.op.eval(v.cmp_total(&self.value)))
    }
}

/// View of an element (vertex or edge) that constraints evaluate against.
///
/// Implemented by GDA's holder caches; defined here so that constraint
/// semantics are specified independently of any implementation.
pub trait ElementView {
    /// Does the element carry `label`?
    fn has_label(&self, label: LabelId) -> bool;
    /// All property entries of type `ptype` on the element.
    fn properties(&self, ptype: PTypeId) -> Vec<PropertyValue>;
}

/// A conjunction of label and property conditions.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Subconstraint {
    /// Label conditions, all of which must hold.
    pub label_conds: Vec<LabelCond>,
    /// Property conditions, all of which must hold.
    pub prop_conds: Vec<PropCond>,
}

impl Subconstraint {
    /// An empty (always-true) conjunction to extend with builders.
    pub fn new() -> Self {
        Self::default()
    }

    /// Require the element to carry `label` (`GDI_AddLabelConditionToSubconstraint`).
    pub fn with_label(mut self, label: LabelId) -> Self {
        self.label_conds.push(LabelCond {
            label,
            present: true,
        });
        self
    }

    /// Require the element to *not* carry `label`.
    pub fn without_label(mut self, label: LabelId) -> Self {
        self.label_conds.push(LabelCond {
            label,
            present: false,
        });
        self
    }

    /// Add a property condition (`GDI_AddPropertyConditionToSubconstraint`).
    pub fn with_prop(mut self, ptype: PTypeId, op: CmpOp, value: PropertyValue) -> Self {
        self.prop_conds.push(PropCond { ptype, op, value });
        self
    }

    /// Evaluate the conjunction against an element.
    pub fn eval<E: ElementView + ?Sized>(&self, e: &E) -> bool {
        self.label_conds
            .iter()
            .all(|c| e.has_label(c.label) == c.present)
            && self
                .prop_conds
                .iter()
                .all(|c| c.eval(&e.properties(c.ptype)))
    }

    /// Is this subconstraint the trivial (always-true) conjunction?
    pub fn is_trivial(&self) -> bool {
        self.label_conds.is_empty() && self.prop_conds.is_empty()
    }
}

/// A constraint: a disjunction of subconstraints (DNF formula).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Constraint {
    /// The disjuncts: the constraint holds if *any* of them holds.
    pub subconstraints: Vec<Subconstraint>,
    /// Metadata epoch at which the constraint was created; used for the
    /// staleness check mandated by eventual metadata consistency.
    pub epoch: u64,
}

impl Constraint {
    /// An empty constraint. Per GDI semantics an empty disjunction matches
    /// *everything* (it expresses "no filtering"), which is what index scans
    /// without conditions use.
    pub fn any() -> Self {
        Self::default()
    }

    /// Build a constraint from one subconstraint.
    pub fn from_sub(sub: Subconstraint) -> Self {
        Self {
            subconstraints: vec![sub],
            epoch: 0,
        }
    }

    /// Add a subconstraint (`GDI_AddSubconstraintToConstraint`).
    pub fn or(mut self, sub: Subconstraint) -> Self {
        self.subconstraints.push(sub);
        self
    }

    /// Stamp the metadata epoch.
    pub fn at_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// Evaluate against an element.
    pub fn eval<E: ElementView + ?Sized>(&self, e: &E) -> bool {
        self.subconstraints.is_empty() || self.subconstraints.iter().any(|s| s.eval(e))
    }

    /// `GDI_VerifyStaleness`: is the constraint stale at `current_epoch`?
    pub fn is_stale(&self, current_epoch: u64) -> bool {
        self.epoch < current_epoch
    }

    /// All label ids referenced (useful for index-selection planning).
    pub fn referenced_labels(&self) -> Vec<LabelId> {
        let mut v: Vec<LabelId> = self
            .subconstraints
            .iter()
            .flat_map(|s| s.label_conds.iter().map(|c| c.label))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// All property-type ids referenced.
    pub fn referenced_ptypes(&self) -> Vec<PTypeId> {
        let mut v: Vec<PTypeId> = self
            .subconstraints
            .iter()
            .flat_map(|s| s.prop_conds.iter().map(|c| c.ptype))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakeElem {
        labels: Vec<LabelId>,
        props: Vec<(PTypeId, PropertyValue)>,
    }

    impl ElementView for FakeElem {
        fn has_label(&self, label: LabelId) -> bool {
            self.labels.contains(&label)
        }
        fn properties(&self, ptype: PTypeId) -> Vec<PropertyValue> {
            self.props
                .iter()
                .filter(|(p, _)| *p == ptype)
                .map(|(_, v)| v.clone())
                .collect()
        }
    }

    fn red_car_over30() -> FakeElem {
        FakeElem {
            labels: vec![LabelId(10), LabelId(11)], // Person, CarOwner
            props: vec![
                (PTypeId(3), PropertyValue::U64(35)), // age
                (PTypeId(4), PropertyValue::Text("red".into())),
            ],
        }
    }

    #[test]
    fn cmp_op_truth_table() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Eq.eval(Equal) && !CmpOp::Eq.eval(Less));
        assert!(CmpOp::Ne.eval(Less) && !CmpOp::Ne.eval(Equal));
        assert!(CmpOp::Lt.eval(Less) && !CmpOp::Lt.eval(Equal));
        assert!(CmpOp::Le.eval(Less) && CmpOp::Le.eval(Equal) && !CmpOp::Le.eval(Greater));
        assert!(CmpOp::Gt.eval(Greater) && !CmpOp::Gt.eval(Equal));
        assert!(CmpOp::Ge.eval(Greater) && CmpOp::Ge.eval(Equal) && !CmpOp::Ge.eval(Less));
    }

    #[test]
    fn label_conditions() {
        let e = red_car_over30();
        let has = Constraint::from_sub(Subconstraint::new().with_label(LabelId(10)));
        assert!(has.eval(&e));
        let not = Constraint::from_sub(Subconstraint::new().without_label(LabelId(99)));
        assert!(not.eval(&e));
        let missing = Constraint::from_sub(Subconstraint::new().with_label(LabelId(99)));
        assert!(!missing.eval(&e));
    }

    #[test]
    fn paper_query_shape() {
        // age > 30 AND color = red  (the paper's running Cypher example)
        let e = red_car_over30();
        let c = Constraint::from_sub(
            Subconstraint::new()
                .with_prop(PTypeId(3), CmpOp::Gt, PropertyValue::U64(30))
                .with_prop(PTypeId(4), CmpOp::Eq, PropertyValue::Text("red".into())),
        );
        assert!(c.eval(&e));
        let c_blue = Constraint::from_sub(Subconstraint::new().with_prop(
            PTypeId(4),
            CmpOp::Eq,
            PropertyValue::Text("blue".into()),
        ));
        assert!(!c_blue.eval(&e));
    }

    #[test]
    fn dnf_disjunction() {
        let e = red_car_over30();
        let no_match = Subconstraint::new().with_label(LabelId(99));
        let matches = Subconstraint::new().with_prop(PTypeId(3), CmpOp::Ge, PropertyValue::U64(35));
        let c = Constraint::from_sub(no_match).or(matches);
        assert!(c.eval(&e));
    }

    #[test]
    fn empty_constraint_matches_everything() {
        let e = red_car_over30();
        assert!(Constraint::any().eval(&e));
        assert!(Subconstraint::new().is_trivial());
        assert!(Subconstraint::new().eval(&e));
    }

    #[test]
    fn multi_entry_any_semantics() {
        let e = FakeElem {
            labels: vec![],
            props: vec![
                (PTypeId(5), PropertyValue::U64(1)),
                (PTypeId(5), PropertyValue::U64(100)),
            ],
        };
        let c = Constraint::from_sub(Subconstraint::new().with_prop(
            PTypeId(5),
            CmpOp::Gt,
            PropertyValue::U64(50),
        ));
        assert!(c.eval(&e));
    }

    #[test]
    fn missing_property_fails_condition() {
        let e = FakeElem {
            labels: vec![],
            props: vec![],
        };
        let c = Constraint::from_sub(Subconstraint::new().with_prop(
            PTypeId(5),
            CmpOp::Eq,
            PropertyValue::U64(1),
        ));
        assert!(!c.eval(&e));
    }

    #[test]
    fn staleness() {
        let c = Constraint::any().at_epoch(3);
        assert!(!c.is_stale(3));
        assert!(c.is_stale(4));
        assert!(!c.is_stale(2));
    }

    #[test]
    fn referenced_ids_deduplicated() {
        let c = Constraint::from_sub(
            Subconstraint::new()
                .with_label(LabelId(7))
                .with_label(LabelId(5))
                .with_prop(PTypeId(9), CmpOp::Eq, PropertyValue::U64(0)),
        )
        .or(Subconstraint::new().with_label(LabelId(7)).with_prop(
            PTypeId(4),
            CmpOp::Eq,
            PropertyValue::U64(0),
        ));
        assert_eq!(c.referenced_labels(), vec![LabelId(5), LabelId(7)]);
        assert_eq!(c.referenced_ptypes(), vec![PTypeId(4), PTypeId(9)]);
    }
}

//! GDI error classes.
//!
//! The specification distinguishes *transaction-critical* errors — after
//! which the enclosing transaction is guaranteed to fail and must be
//! restarted by the user (GDI offers no retry/recovery routine, §3.3) — from
//! non-critical errors that leave the transaction usable.

use std::fmt;

/// Result alias used across all GDI routines.
pub type GdiResult<T> = Result<T, GdiError>;

/// Errors a GDI routine may return.
///
/// Matches the error-class taxonomy of the specification: every error knows
/// whether it is transaction critical ([`GdiError::is_transaction_critical`])
/// and exposes a stable name ([`GdiError::name`]), mirroring
/// `GDI_GetErrorName` / `GDI_GetErrorClass`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GdiError {
    /// An argument was invalid (wrong handle type, null object, bad size).
    InvalidArgument(&'static str),
    /// The referenced object does not exist (vertex, edge, label, p-type,
    /// index, database).
    NotFound(&'static str),
    /// An object with the same identity already exists.
    AlreadyExists(&'static str),
    /// A lock could not be obtained within the retry budget: the transaction
    /// conflicts with a concurrent one. Transaction critical.
    LockConflict,
    /// Optimistic validation failed at commit: data read by this transaction
    /// was modified concurrently. Transaction critical.
    ValidationFailed,
    /// Metadata (labels / p-types / indexes) changed concurrently and the
    /// transaction observed a stale snapshot; eventual consistency (§3.8)
    /// requires the transaction to abort. Transaction critical.
    StaleMetadata,
    /// The target process has no free blocks / memory left.
    OutOfMemory,
    /// The operation is not permitted in this transaction kind (e.g. a write
    /// inside a read-only transaction). Transaction critical.
    ReadOnlyViolation,
    /// The transaction was already closed, committed, or aborted.
    TransactionClosed,
    /// A collective routine was invoked inconsistently across processes.
    CollectiveMismatch,
    /// Property value does not match the declared datatype/size of the
    /// property type.
    TypeMismatch,
    /// Exceeded a size limitation declared on the property type.
    SizeExceeded,
    /// A constraint handle is stale (its metadata epoch expired).
    StaleConstraint,
    /// A durable-storage operation failed (snapshot / redo-log I/O of a
    /// persistence-enabled implementation). Carries the underlying
    /// description. Not transaction critical: the in-memory database
    /// stays consistent and serving; only durability of the affected
    /// checkpoint/append is lost.
    Io(String),
}

impl GdiError {
    /// Stable error name (mirrors `GDI_GetErrorName`).
    pub fn name(&self) -> &'static str {
        match self {
            GdiError::InvalidArgument(_) => "GDI_ERROR_ARGUMENT",
            GdiError::NotFound(_) => "GDI_ERROR_NOT_FOUND",
            GdiError::AlreadyExists(_) => "GDI_ERROR_ALREADY_EXISTS",
            GdiError::LockConflict => "GDI_ERROR_LOCK_CONFLICT",
            GdiError::ValidationFailed => "GDI_ERROR_VALIDATION",
            GdiError::StaleMetadata => "GDI_ERROR_STALE_METADATA",
            GdiError::OutOfMemory => "GDI_ERROR_NO_MEMORY",
            GdiError::ReadOnlyViolation => "GDI_ERROR_READ_ONLY",
            GdiError::TransactionClosed => "GDI_ERROR_TRANSACTION_CLOSED",
            GdiError::CollectiveMismatch => "GDI_ERROR_COLLECTIVE_MISMATCH",
            GdiError::TypeMismatch => "GDI_ERROR_TYPE_MISMATCH",
            GdiError::SizeExceeded => "GDI_ERROR_SIZE_LIMIT",
            GdiError::StaleConstraint => "GDI_ERROR_STALE_CONSTRAINT",
            GdiError::Io(_) => "GDI_ERROR_IO",
        }
    }

    /// Does this error guarantee that the enclosing transaction fails?
    ///
    /// Mirrors `GDI_GetErrorClass` returning
    /// `GDI_ERROR_CLASS_TRANSACTION_CRITICAL`.
    pub fn is_transaction_critical(&self) -> bool {
        matches!(
            self,
            GdiError::LockConflict
                | GdiError::ValidationFailed
                | GdiError::StaleMetadata
                | GdiError::ReadOnlyViolation
                | GdiError::TransactionClosed
        )
    }
}

impl fmt::Display for GdiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GdiError::InvalidArgument(what) => {
                write!(f, "{}: invalid argument: {what}", self.name())
            }
            GdiError::NotFound(what) => write!(f, "{}: not found: {what}", self.name()),
            GdiError::AlreadyExists(what) => {
                write!(f, "{}: already exists: {what}", self.name())
            }
            GdiError::Io(what) => write!(f, "{}: {what}", self.name()),
            _ => f.write_str(self.name()),
        }
    }
}

impl std::error::Error for GdiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_classification() {
        assert!(GdiError::LockConflict.is_transaction_critical());
        assert!(GdiError::ValidationFailed.is_transaction_critical());
        assert!(GdiError::StaleMetadata.is_transaction_critical());
        assert!(!GdiError::NotFound("vertex").is_transaction_critical());
        assert!(!GdiError::TypeMismatch.is_transaction_critical());
        assert!(!GdiError::OutOfMemory.is_transaction_critical());
    }

    #[test]
    fn names_are_stable_and_unique() {
        let errs = [
            GdiError::InvalidArgument("x"),
            GdiError::NotFound("x"),
            GdiError::AlreadyExists("x"),
            GdiError::LockConflict,
            GdiError::ValidationFailed,
            GdiError::StaleMetadata,
            GdiError::OutOfMemory,
            GdiError::ReadOnlyViolation,
            GdiError::TransactionClosed,
            GdiError::CollectiveMismatch,
            GdiError::TypeMismatch,
            GdiError::SizeExceeded,
            GdiError::StaleConstraint,
            GdiError::Io("x".into()),
        ];
        let names: std::collections::HashSet<_> = errs.iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), errs.len());
        assert!(names.iter().all(|n| n.starts_with("GDI_ERROR_")));
    }

    #[test]
    fn display_includes_context() {
        let e = GdiError::NotFound("label 'Person'");
        assert!(e.to_string().contains("label 'Person'"));
    }
}

//! # `gdi` — The Graph Database Interface specification layer
//!
//! GDI is the paper's first contribution: a portable, MPI-inspired
//! *specification* of the performance-critical building blocks of a graph
//! database storage and transaction engine (§3). Like MPI, the specification
//! is fully decoupled from any implementation: this crate contains only the
//! vocabulary of the interface —
//!
//! * the **Labeled Property Graph** model (§2): vertices, edges, labels,
//!   property types and properties, and the distinction between *graph data*
//!   (`V`, `E`, `l`, `p`) and *graph metadata* (`L`, `K`, `W`);
//! * **datatypes, entity types and size types** for property types (§3.7),
//!   giving implementations the optional information they need for
//!   fixed-size fast paths;
//! * **constraints**: boolean formulas in disjunctive normal form over label
//!   and property conditions, used to query explicit indexes (§3.6);
//! * **transaction kinds** (local vs collective, read vs write, §3.3) and
//!   **consistency models** (serializability for graph data, eventual
//!   consistency for metadata and indexes, §3.8);
//! * the **error classes**, split into transaction-critical and
//!   non-critical errors (§3.3).
//!
//! The high-performance distributed implementation of this interface lives
//! in the `gda` crate (GDI-RMA).

#![warn(missing_docs)]

pub mod constraint;
pub mod datatype;
pub mod error;
pub mod model;
pub mod routines;
pub mod tx;
pub mod value;

pub use constraint::{CmpOp, Constraint, LabelCond, PropCond, Subconstraint};
pub use datatype::{Datatype, EntityType, Multiplicity, SizeType};
pub use error::{GdiError, GdiResult};
pub use model::{AppVertexId, Direction, EdgeOrientation, LabelId, PTypeId};
pub use tx::{AccessMode, TxKind, TxStatus};
pub use value::PropertyValue;

/// Reserved integer id marking an *empty / unused* label-or-property entry
/// in a holder (paper §5.4.3).
pub const ENTRY_EMPTY: u32 = 0;
/// Reserved integer id marking the *last* entry in a holder (paper §5.4.3).
pub const ENTRY_END: u32 = 1;
/// Reserved integer id tagging a *label* entry (paper §5.4.3: "value 2 for a
/// label, any other value for a specific p-type").
pub const ENTRY_LABEL: u32 = 2;
/// First integer id available for property types.
pub const FIRST_PTYPE_ID: u32 = 3;

//! Property-type metadata vocabulary (§3.7).
//!
//! GDI lets the user give the implementation *optional but
//! performance-relevant* information about each property type: the datatype
//! of its values, whether a vertex/edge may carry one or many entries of the
//! type, which entity kinds it applies to, and whether values have a fixed
//! or bounded size. GDA uses this to choose fixed-size fast paths in holder
//! layouts.

use serde::{Deserialize, Serialize};

/// Datatype of the elements of a property value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Datatype {
    /// Unsigned 8-bit integer elements.
    Uint8,
    /// Unsigned 16-bit integer elements.
    Uint16,
    /// Unsigned 32-bit integer elements.
    Uint32,
    /// Unsigned 64-bit integer elements.
    Uint64,
    /// Signed 8-bit integer elements.
    Int8,
    /// Signed 16-bit integer elements.
    Int16,
    /// Signed 32-bit integer elements.
    Int32,
    /// Signed 64-bit integer elements.
    Int64,
    /// Single-precision float elements.
    Float,
    /// Double-precision float elements.
    Double,
    /// Boolean elements.
    Bool,
    /// UTF-8 code-unit elements (text).
    Char,
    /// Raw bytes with no further interpretation.
    Byte,
}

impl Datatype {
    /// Size in bytes of one element of this datatype.
    pub fn elem_bytes(self) -> usize {
        match self {
            Datatype::Uint8 | Datatype::Int8 | Datatype::Bool | Datatype::Char | Datatype::Byte => {
                1
            }
            Datatype::Uint16 | Datatype::Int16 => 2,
            Datatype::Uint32 | Datatype::Int32 | Datatype::Float => 4,
            Datatype::Uint64 | Datatype::Int64 | Datatype::Double => 8,
        }
    }
}

/// Which graph entities a property type may be attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EntityType {
    /// Vertices only.
    Vertex,
    /// Edges only.
    Edge,
    /// Both vertices and edges.
    VertexEdge,
}

impl EntityType {
    /// May this entity type be attached to a vertex?
    pub fn allows_vertex(self) -> bool {
        matches!(self, EntityType::Vertex | EntityType::VertexEdge)
    }

    /// May this entity type be attached to an edge?
    pub fn allows_edge(self) -> bool {
        matches!(self, EntityType::Edge | EntityType::VertexEdge)
    }
}

/// Whether a single vertex/edge may carry one or many entries of a property
/// type (§3.7: "at most one property entry of a given property type").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Multiplicity {
    /// At most one entry per vertex/edge; `add` behaves like `set`.
    Single,
    /// Arbitrarily many entries per vertex/edge.
    Multi,
}

/// Size behaviour of property values of a type (§3.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SizeType {
    /// Every value has exactly `count` elements.
    Fixed,
    /// Values have at most `count` elements.
    Limited,
    /// No size limitation.
    NoLimit,
}

impl SizeType {
    /// Validate a value of `elems` elements against this size type with the
    /// declared `count`.
    pub fn validate(self, elems: usize, count: usize) -> bool {
        match self {
            SizeType::Fixed => elems == count,
            SizeType::Limited => elems <= count,
            SizeType::NoLimit => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elem_sizes() {
        assert_eq!(Datatype::Uint8.elem_bytes(), 1);
        assert_eq!(Datatype::Bool.elem_bytes(), 1);
        assert_eq!(Datatype::Int16.elem_bytes(), 2);
        assert_eq!(Datatype::Float.elem_bytes(), 4);
        assert_eq!(Datatype::Uint64.elem_bytes(), 8);
        assert_eq!(Datatype::Double.elem_bytes(), 8);
    }

    #[test]
    fn entity_type_permissions() {
        assert!(EntityType::Vertex.allows_vertex());
        assert!(!EntityType::Vertex.allows_edge());
        assert!(EntityType::Edge.allows_edge());
        assert!(!EntityType::Edge.allows_vertex());
        assert!(EntityType::VertexEdge.allows_vertex());
        assert!(EntityType::VertexEdge.allows_edge());
    }

    #[test]
    fn size_type_validation() {
        assert!(SizeType::Fixed.validate(4, 4));
        assert!(!SizeType::Fixed.validate(3, 4));
        assert!(!SizeType::Fixed.validate(5, 4));
        assert!(SizeType::Limited.validate(0, 4));
        assert!(SizeType::Limited.validate(4, 4));
        assert!(!SizeType::Limited.validate(5, 4));
        assert!(SizeType::NoLimit.validate(1_000_000, 0));
    }
}

//! The GDI routine catalog (Fig. 2) and its implementation map.
//!
//! The paper structures GDI into groups of routines — general management,
//! graph metadata (labels, property types), graph data (vertices, edges),
//! transactions, indexes, constraints, and errors — each marked local
//! (`[L]`) or collective (`[C]`). This module is the machine-readable
//! version of that figure: every routine with its group, call class, and
//! where this reproduction implements it. Tests assert the catalog is
//! complete and that nothing claims to be implemented without a target.

/// How many processes actively participate in a routine (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallClass {
    /// `[L]` — executed by a single process (may passively involve others).
    Local,
    /// `[C]` — all processes must call it.
    Collective,
}

/// The routine groups of Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Group {
    /// General database management (create/delete/start-up).
    Management,
    /// Label metadata routines.
    Labels,
    /// Property-type metadata routines.
    PropertyTypes,
    /// Vertex graph-data routines.
    Vertices,
    /// Edge graph-data routines.
    Edges,
    /// Transaction lifecycle routines.
    Transactions,
    /// Explicit-index routines.
    Indexes,
    /// Constraint-object routines.
    Constraints,
    /// Error introspection routines.
    Errors,
}

/// One GDI routine and where it lives in this reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Routine {
    /// The `GDI_*` routine name as printed in Fig. 2.
    pub name: &'static str,
    /// The routine group (Fig. 2 section).
    pub group: Group,
    /// Local or collective call class.
    pub class: CallClass,
    /// `crate::path` of the implementing item.
    pub implemented_by: &'static str,
}

macro_rules! routine {
    ($name:literal, $group:ident, $class:ident, $by:literal) => {
        Routine {
            name: $name,
            group: Group::$group,
            class: CallClass::$class,
            implemented_by: $by,
        }
    };
}

/// The full catalog (Fig. 2), in figure order.
pub const CATALOG: &[Routine] = &[
    // ---- general management ------------------------------------------
    routine!("GDI_Init", Management, Collective, "rma::Fabric::run"),
    routine!(
        "GDI_Finalize",
        Management,
        Collective,
        "rma::Fabric::run (scope exit)"
    ),
    routine!(
        "GDI_CreateDatabase",
        Management,
        Collective,
        "gda::DbRegistry::create"
    ),
    routine!(
        "GDI_DeleteDatabase",
        Management,
        Collective,
        "gda::DbRegistry::delete"
    ),
    // ---- labels -------------------------------------------------------
    routine!(
        "GDI_CreateLabel",
        Labels,
        Collective,
        "gda::GdaRank::create_label"
    ),
    routine!(
        "GDI_UpdateLabel",
        Labels,
        Collective,
        "gda::GdaRank::update_label"
    ),
    routine!(
        "GDI_DeleteLabel",
        Labels,
        Collective,
        "gda::GdaRank::delete_label"
    ),
    routine!(
        "GDI_GetLabelFromName",
        Labels,
        Local,
        "gda::meta::MetaSnapshot::label_from_name"
    ),
    routine!(
        "GDI_GetNameOfLabel",
        Labels,
        Local,
        "gda::meta::MetaSnapshot::label_name"
    ),
    routine!(
        "GDI_GetAllLabelsOfDatabase",
        Labels,
        Local,
        "gda::meta::MetaSnapshot::all_labels"
    ),
    // ---- property types ------------------------------------------------
    routine!(
        "GDI_CreatePropertyType",
        PropertyTypes,
        Collective,
        "gda::GdaRank::create_ptype"
    ),
    routine!(
        "GDI_UpdatePropertyType",
        PropertyTypes,
        Collective,
        "gda::meta::MetaStore (create/delete)"
    ),
    routine!(
        "GDI_DeletePropertyType",
        PropertyTypes,
        Collective,
        "gda::GdaRank::delete_ptype"
    ),
    routine!(
        "GDI_GetPropertyTypeFromName",
        PropertyTypes,
        Local,
        "gda::meta::MetaSnapshot::ptype_from_name"
    ),
    routine!(
        "GDI_GetNameOfPropertyType",
        PropertyTypes,
        Local,
        "gda::meta::PTypeDef::name"
    ),
    routine!(
        "GDI_GetAllPropertyTypesOfDatabase",
        PropertyTypes,
        Local,
        "gda::meta::MetaSnapshot::all_ptypes"
    ),
    routine!(
        "GDI_GetEntityTypeOfPropertyType",
        PropertyTypes,
        Local,
        "gda::meta::PTypeDef::entity"
    ),
    routine!(
        "GDI_GetSizeTypeOfPropertyType",
        PropertyTypes,
        Local,
        "gda::meta::PTypeDef::stype"
    ),
    routine!(
        "GDI_GetDatatypeOfPropertyType",
        PropertyTypes,
        Local,
        "gda::meta::PTypeDef::dtype"
    ),
    // ---- vertices -------------------------------------------------------
    routine!(
        "GDI_CreateVertex",
        Vertices,
        Local,
        "gda::Transaction::create_vertex"
    ),
    routine!(
        "GDI_DeleteVertex",
        Vertices,
        Local,
        "gda::Transaction::delete_vertex"
    ),
    routine!(
        "GDI_TranslateVertexID",
        Vertices,
        Local,
        "gda::Transaction::translate_vertex_id"
    ),
    routine!(
        "GDI_AssociateVertex",
        Vertices,
        Local,
        "gda::Transaction::associate_vertex"
    ),
    routine!(
        "GDI_GetEdgesOfVertex",
        Vertices,
        Local,
        "gda::Transaction::edges"
    ),
    routine!(
        "GDI_GetNeighborVerticesOfVertex",
        Vertices,
        Local,
        "gda::Transaction::neighbors / neighbors_matching"
    ),
    routine!(
        "GDI_AddLabelToVertex",
        Vertices,
        Local,
        "gda::Transaction::add_label"
    ),
    routine!(
        "GDI_RemoveLabelFromVertex",
        Vertices,
        Local,
        "gda::Transaction::remove_label"
    ),
    routine!(
        "GDI_GetAllLabelsOfVertex",
        Vertices,
        Local,
        "gda::Transaction::labels"
    ),
    routine!(
        "GDI_AddPropertyToVertex",
        Vertices,
        Local,
        "gda::Transaction::add_property"
    ),
    routine!(
        "GDI_UpdatePropertyOfVertex",
        Vertices,
        Local,
        "gda::Transaction::update_property"
    ),
    routine!(
        "GDI_RemovePropertyFromVertex",
        Vertices,
        Local,
        "gda::Transaction::remove_properties"
    ),
    routine!(
        "GDI_GetPropertiesOfVertex",
        Vertices,
        Local,
        "gda::Transaction::property / properties"
    ),
    routine!(
        "GDI_RemoveAllPropertiesFromVertex",
        Vertices,
        Local,
        "gda::Transaction::remove_all_properties"
    ),
    routine!(
        "GDI_GetAllPropertyTypesOfVertex",
        Vertices,
        Local,
        "gda::Transaction::ptypes"
    ),
    routine!(
        "GDI_BulkLoadVertices",
        Vertices,
        Collective,
        "gda::GdaRank::bulk_load"
    ),
    // ---- edges -----------------------------------------------------------
    routine!("GDI_CreateEdge", Edges, Local, "gda::Transaction::add_edge"),
    routine!(
        "GDI_DeleteEdge",
        Edges,
        Local,
        "gda::Transaction::delete_edge"
    ),
    routine!(
        "GDI_GetVerticesOfEdge",
        Edges,
        Local,
        "gda::Transaction::edge_endpoints"
    ),
    routine!(
        "GDI_GetDirectionOfEdge",
        Edges,
        Local,
        "gda::Transaction::edge_direction"
    ),
    routine!(
        "GDI_SetOriginVertexOfEdge",
        Edges,
        Local,
        "gda::Transaction::flip_edge"
    ),
    routine!(
        "GDI_SetTargetVertexOfEdge",
        Edges,
        Local,
        "gda::Transaction::flip_edge"
    ),
    routine!(
        "GDI_AddLabelToEdge",
        Edges,
        Local,
        "gda::Transaction::add_edge_label"
    ),
    routine!(
        "GDI_GetAllLabelsOfEdge",
        Edges,
        Local,
        "gda::Transaction::edge_labels"
    ),
    routine!(
        "GDI_AddPropertyToEdge",
        Edges,
        Local,
        "gda::Transaction::set_edge_property"
    ),
    routine!(
        "GDI_UpdatePropertyOfEdge",
        Edges,
        Local,
        "gda::Transaction::set_edge_property"
    ),
    routine!(
        "GDI_RemovePropertyFromEdge",
        Edges,
        Local,
        "gda::Transaction::remove_edge_properties"
    ),
    routine!(
        "GDI_GetPropertiesOfEdge",
        Edges,
        Local,
        "gda::Transaction::edge_property"
    ),
    routine!(
        "GDI_GetAllPropertyTypesOfEdge",
        Edges,
        Local,
        "gda::Transaction::edge_ptypes"
    ),
    routine!(
        "GDI_BulkLoadEdges",
        Edges,
        Collective,
        "gda::GdaRank::bulk_load"
    ),
    // ---- transactions ------------------------------------------------------
    routine!(
        "GDI_StartTransaction",
        Transactions,
        Local,
        "gda::GdaRank::begin"
    ),
    routine!(
        "GDI_CloseTransaction",
        Transactions,
        Local,
        "gda::Transaction::commit / abort"
    ),
    routine!(
        "GDI_StartCollectiveTransaction",
        Transactions,
        Collective,
        "gda::GdaRank::begin_collective"
    ),
    routine!(
        "GDI_CloseCollectiveTransaction",
        Transactions,
        Collective,
        "gda::Transaction::commit / abort"
    ),
    routine!(
        "GDI_GetTypeOfTransaction",
        Transactions,
        Local,
        "gda::Transaction::kind"
    ),
    // ---- indexes --------------------------------------------------------------
    routine!(
        "GDI_CreateIndex",
        Indexes,
        Collective,
        "gda::GdaRank::create_index"
    ),
    routine!(
        "GDI_DeleteIndex",
        Indexes,
        Collective,
        "gda::GdaRank::delete_index"
    ),
    routine!(
        "GDI_AddLabelToIndex",
        Indexes,
        Collective,
        "gda::index::IndexShared::add_label"
    ),
    routine!(
        "GDI_RemoveLabelFromIndex",
        Indexes,
        Collective,
        "gda::index::IndexShared::remove_label"
    ),
    routine!(
        "GDI_GetAllLabelsOfIndex",
        Indexes,
        Local,
        "gda::index::IndexDef::labels"
    ),
    routine!(
        "GDI_GetLocalVerticesOfIndex",
        Indexes,
        Local,
        "gda::GdaRank::local_index_vertices / Transaction::local_index_scan"
    ),
    routine!(
        "GDI_GetAllIndexesOfDatabase",
        Indexes,
        Local,
        "gda::GdaRank::all_indexes"
    ),
    // ---- constraints -------------------------------------------------------------
    routine!(
        "GDI_CreateConstraint",
        Constraints,
        Local,
        "gdi::Constraint::any / from_sub"
    ),
    routine!(
        "GDI_CreateSubconstraint",
        Constraints,
        Local,
        "gdi::Subconstraint::new"
    ),
    routine!(
        "GDI_AddLabelConditionToSubconstraint",
        Constraints,
        Local,
        "gdi::Subconstraint::with_label / without_label"
    ),
    routine!(
        "GDI_AddPropertyConditionToSubconstraint",
        Constraints,
        Local,
        "gdi::Subconstraint::with_prop"
    ),
    routine!(
        "GDI_AddSubconstraintToConstraint",
        Constraints,
        Local,
        "gdi::Constraint::or"
    ),
    routine!(
        "GDI_VerifyStaleness",
        Constraints,
        Local,
        "gdi::Constraint::is_stale"
    ),
    // ---- errors -----------------------------------------------------------------------
    routine!(
        "GDI_GetErrorClass",
        Errors,
        Local,
        "gdi::GdiError::is_transaction_critical"
    ),
    routine!("GDI_GetErrorName", Errors, Local, "gdi::GdiError::name"),
];

/// Look up a routine by its GDI name.
pub fn lookup(name: &str) -> Option<&'static Routine> {
    CATALOG.iter().find(|r| r.name == name)
}

/// Routines of one group, in catalog order.
pub fn by_group(group: Group) -> impl Iterator<Item = &'static Routine> {
    CATALOG.iter().filter(move |r| r.group == group)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_unique_and_conventional() {
        let mut seen = std::collections::HashSet::new();
        for r in CATALOG {
            assert!(r.name.starts_with("GDI_"), "{}", r.name);
            assert!(seen.insert(r.name), "duplicate routine {}", r.name);
            assert!(!r.implemented_by.is_empty(), "{} unmapped", r.name);
        }
    }

    #[test]
    fn every_group_populated() {
        for g in [
            Group::Management,
            Group::Labels,
            Group::PropertyTypes,
            Group::Vertices,
            Group::Edges,
            Group::Transactions,
            Group::Indexes,
            Group::Constraints,
            Group::Errors,
        ] {
            assert!(by_group(g).count() >= 2, "{g:?} too sparse");
        }
    }

    #[test]
    fn figure2_collective_markers() {
        // the [C] markers of Fig. 2 that matter most
        for (name, class) in [
            ("GDI_CreateLabel", CallClass::Collective),
            ("GDI_BulkLoadVertices", CallClass::Collective),
            ("GDI_StartCollectiveTransaction", CallClass::Collective),
            ("GDI_CreateIndex", CallClass::Collective),
            ("GDI_StartTransaction", CallClass::Local),
            ("GDI_TranslateVertexID", CallClass::Local),
            ("GDI_GetLocalVerticesOfIndex", CallClass::Local),
        ] {
            assert_eq!(lookup(name).unwrap().class, class, "{name}");
        }
    }

    #[test]
    fn lookup_misses_cleanly() {
        assert!(lookup("GDI_Frobnicate").is_none());
    }

    #[test]
    fn catalog_size_matches_figure2_scope() {
        // Fig. 2 lists ~60 routines across the groups; the catalog must
        // stay in that ballpark (guards against accidental truncation)
        assert!(CATALOG.len() >= 55, "catalog shrank to {}", CATALOG.len());
    }
}

//! Transaction vocabulary (§3.3).
//!
//! GDI transactions guarantee ACID (the implementation chooses how), come in
//! two parallelism flavours — *local* (single process; meant for OLTP-style
//! operations touching a small part of the graph) and *collective* (all
//! processes participate; meant for OLAP/OLSP) — and two access modes,
//! letting implementations optimize read-only transactions (§3.3).

use serde::{Deserialize, Serialize};

/// Who participates in the transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TxKind {
    /// Started and executed by a single process
    /// (`GDI_StartTransaction`). May still *passively* involve remote
    /// processes through one-sided accesses.
    Local,
    /// Started by all processes together
    /// (`GDI_StartCollectiveTransaction`); used to run large OLAP/OLSP
    /// queries with collective communication.
    Collective,
}

/// Declared access mode, enabling read-only fast paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessMode {
    /// The transaction promises not to modify graph data; the
    /// implementation may skip write-locking entirely.
    ReadOnly,
    /// The transaction may modify graph data.
    ReadWrite,
}

/// Lifecycle state of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TxStatus {
    /// Open and usable.
    Active,
    /// Successfully committed; effects are durable and visible.
    Committed,
    /// Aborted; no effects are visible. A transaction hit by a
    /// transaction-critical error transitions here and cannot be retried —
    /// the user must start a new transaction (§3.3).
    Aborted,
}

impl TxStatus {
    /// May further operations be issued in this state?
    pub fn is_active(self) -> bool {
        self == TxStatus::Active
    }
}

/// Recommended transaction mechanism per workload class (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// Interactive short read-only queries (OLTP).
    InteractiveShortRead,
    /// Interactive complex read-only queries (OLTP).
    InteractiveComplexRead,
    /// Interactive updates (OLTP).
    InteractiveUpdate,
    /// Graph analytics (OLAP).
    GraphAnalytics,
    /// Business intelligence (OLSP).
    BusinessIntelligence,
    /// Massive data ingestion (BULK).
    BulkIngestion,
}

impl WorkloadClass {
    /// The paper's Table 2 recommendation.
    pub fn recommended_kind(self) -> TxKind {
        match self {
            WorkloadClass::InteractiveShortRead
            | WorkloadClass::InteractiveComplexRead
            | WorkloadClass::InteractiveUpdate => TxKind::Local,
            WorkloadClass::GraphAnalytics | WorkloadClass::BulkIngestion => TxKind::Collective,
            // "Single-process or collective": we recommend collective for
            // large scans, which is what our BI workload does.
            WorkloadClass::BusinessIntelligence => TxKind::Collective,
        }
    }

    /// The natural access mode of the class.
    pub fn access_mode(self) -> AccessMode {
        match self {
            WorkloadClass::InteractiveShortRead
            | WorkloadClass::InteractiveComplexRead
            | WorkloadClass::GraphAnalytics
            | WorkloadClass::BusinessIntelligence => AccessMode::ReadOnly,
            WorkloadClass::InteractiveUpdate | WorkloadClass::BulkIngestion => {
                AccessMode::ReadWrite
            }
        }
    }

    /// All classes, in Table 2 order.
    pub fn all() -> [WorkloadClass; 6] {
        [
            WorkloadClass::InteractiveShortRead,
            WorkloadClass::InteractiveComplexRead,
            WorkloadClass::InteractiveUpdate,
            WorkloadClass::GraphAnalytics,
            WorkloadClass::BusinessIntelligence,
            WorkloadClass::BulkIngestion,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_recommendations() {
        assert_eq!(
            WorkloadClass::InteractiveShortRead.recommended_kind(),
            TxKind::Local
        );
        assert_eq!(
            WorkloadClass::InteractiveUpdate.recommended_kind(),
            TxKind::Local
        );
        assert_eq!(
            WorkloadClass::GraphAnalytics.recommended_kind(),
            TxKind::Collective
        );
        assert_eq!(
            WorkloadClass::BulkIngestion.recommended_kind(),
            TxKind::Collective
        );
    }

    #[test]
    fn access_modes() {
        assert_eq!(
            WorkloadClass::GraphAnalytics.access_mode(),
            AccessMode::ReadOnly
        );
        assert_eq!(
            WorkloadClass::InteractiveUpdate.access_mode(),
            AccessMode::ReadWrite
        );
    }

    #[test]
    fn status_lifecycle() {
        assert!(TxStatus::Active.is_active());
        assert!(!TxStatus::Committed.is_active());
        assert!(!TxStatus::Aborted.is_active());
    }

    #[test]
    fn all_classes_enumerated() {
        assert_eq!(WorkloadClass::all().len(), 6);
    }
}

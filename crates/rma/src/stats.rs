//! Per-rank communication statistics.
//!
//! Every one-sided operation and collective is counted. The figure harnesses
//! use these counters both for reporting and for cost-model extrapolation to
//! machine sizes beyond the host (§6.8 extreme-scale runs).

use std::cell::Cell;

/// Mutable per-rank counters (single-writer: the owning rank thread).
#[derive(Debug, Default)]
pub struct CommStats {
    puts: Cell<u64>,
    gets: Cell<u64>,
    atomics: Cell<u64>,
    flushes: Cell<u64>,
    bytes_put: Cell<u64>,
    bytes_get: Cell<u64>,
    collectives: Cell<u64>,
    coll_bytes: Cell<u64>,
    local_ops: Cell<u64>,
    batches_drained: Cell<u64>,
    requests_served: Cell<u64>,
    cache_hits: Cell<u64>,
    cache_misses: Cell<u64>,
    cache_invalidations: Cell<u64>,
    log_appends: Cell<u64>,
    log_bytes: Cell<u64>,
    quiesces: Cell<u64>,
    reshard_objects: Cell<u64>,
    reshard_bytes: Cell<u64>,
    scan_builds: Cell<u64>,
    scan_reuses: Cell<u64>,
    scan_patches: Cell<u64>,
    scan_holders: Cell<u64>,
    scan_bytes: Cell<u64>,
    query_execs: Cell<u64>,
    query_rows: Cell<u64>,
    query_expands: Cell<u64>,
    query_bytes: Cell<u64>,
    snapshot_pins: Cell<u64>,
    snapshot_reads: Cell<u64>,
    watermark_advances: Cell<u64>,
    version_archives: Cell<u64>,
    chain_truncations: Cell<u64>,
    maintenance_passes: Cell<u64>,
    vacuumed_versions: Cell<u64>,
    compacted_chains: Cell<u64>,
    compacted_blocks: Cell<u64>,
    verified_bytes: Cell<u64>,
    verify_errors: Cell<u64>,
    delta_checkpoints: Cell<u64>,
    delta_chunks: Cell<u64>,
    fault_injections: Cell<u64>,
}

impl CommStats {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn record_put(&self, remote: bool, bytes: usize) {
        if remote {
            self.puts.set(self.puts.get() + 1);
            self.bytes_put.set(self.bytes_put.get() + bytes as u64);
        } else {
            self.local_ops.set(self.local_ops.get() + 1);
        }
    }

    #[inline]
    pub fn record_get(&self, remote: bool, bytes: usize) {
        if remote {
            self.gets.set(self.gets.get() + 1);
            self.bytes_get.set(self.bytes_get.get() + bytes as u64);
        } else {
            self.local_ops.set(self.local_ops.get() + 1);
        }
    }

    #[inline]
    pub fn record_atomic(&self, remote: bool) {
        if remote {
            self.atomics.set(self.atomics.get() + 1);
        } else {
            self.local_ops.set(self.local_ops.get() + 1);
        }
    }

    #[inline]
    pub fn record_flush(&self) {
        self.flushes.set(self.flushes.get() + 1);
    }

    /// Record one service-queue drain that dequeued `n` requests (the
    /// server layer's per-rank serve loop).
    #[inline]
    pub fn record_drain(&self, n: usize) {
        self.batches_drained.set(self.batches_drained.get() + 1);
        self.requests_served
            .set(self.requests_served.get() + n as u64);
    }

    /// Record one translation-cache probe (GDA's epoch-validated app-id →
    /// `DPtr` cache): a hit avoided a remote chain walk, a miss paid it.
    #[inline]
    pub fn record_cache_probe(&self, hit: bool) {
        if hit {
            self.cache_hits.set(self.cache_hits.get() + 1);
        } else {
            self.cache_misses.set(self.cache_misses.get() + 1);
        }
    }

    /// Record one translation-cache entry dropped because its owner
    /// rank's epoch moved (a remote insert/delete invalidated it).
    #[inline]
    pub fn record_cache_invalidation(&self) {
        self.cache_invalidations
            .set(self.cache_invalidations.get() + 1);
    }

    /// Record one durable redo-log append of `bytes` payload (the commit
    /// path of a persistence-enabled engine).
    #[inline]
    pub fn record_log_write(&self, bytes: usize) {
        self.log_appends.set(self.log_appends.get() + 1);
        self.log_bytes.set(self.log_bytes.get() + bytes as u64);
    }

    /// Record one fabric quiesce (drain barrier: all outstanding one-sided
    /// traffic flushed machine-wide — the checkpoint entry barrier).
    #[inline]
    pub fn record_quiesce(&self) {
        self.quiesces.set(self.quiesces.get() + 1);
    }

    /// Record an elastic-reshard redistribution on this rank: `objects`
    /// logical objects re-materialized here, `bytes` of holder payload
    /// moved into this rank's windows (the restore-path equivalent of
    /// the redo-log counters).
    #[inline]
    pub fn record_reshard(&self, objects: u64, bytes: u64) {
        self.reshard_objects
            .set(self.reshard_objects.get() + objects);
        self.reshard_bytes.set(self.reshard_bytes.get() + bytes);
    }

    /// Record one OLAP scan-view **build** on this rank: `holders` live
    /// holders decoded out of raw window images, `bytes` of holder
    /// payload lifted (the zero-transaction analytics path of
    /// `gda::scan`).
    #[inline]
    pub fn record_scan_build(&self, holders: u64, bytes: u64) {
        self.scan_builds.set(self.scan_builds.get() + 1);
        self.scan_holders.set(self.scan_holders.get() + holders);
        self.scan_bytes.set(self.scan_bytes.get() + bytes);
    }

    /// Record one OLAP job that **reused** a cached scan view (its epoch
    /// stamp revalidated, so no sweep ran).
    #[inline]
    pub fn record_scan_reuse(&self) {
        self.scan_reuses.set(self.scan_reuses.get() + 1);
    }

    /// Record one scan view **delta-patched** from the redo-log tail:
    /// `holders` rows re-decoded in place instead of a full sweep.
    #[inline]
    pub fn record_scan_patch(&self, holders: u64, bytes: u64) {
        self.scan_patches.set(self.scan_patches.get() + 1);
        self.scan_holders.set(self.scan_holders.get() + holders);
        self.scan_bytes.set(self.scan_bytes.get() + bytes);
    }

    /// Record one declarative-query execution started on this rank (the
    /// `query` crate's collective executor).
    #[inline]
    pub fn record_query_exec(&self) {
        self.query_execs.set(self.query_execs.get() + 1);
    }

    /// Record one executed query stage on this rank: `rows` surviving
    /// bindings, `expanded` adjacency entries inspected, `bytes` routed
    /// through stage-level exchanges. Pure accounting — the underlying
    /// gets/collectives were already charged by the fabric ops.
    #[inline]
    pub fn record_query_stage(&self, rows: u64, expanded: u64, bytes: u64) {
        self.query_rows.set(self.query_rows.get() + rows);
        self.query_expands.set(self.query_expands.get() + expanded);
        self.query_bytes.set(self.query_bytes.get() + bytes);
    }

    /// Record one snapshot pin: a read-only transaction registered a
    /// snapshot epoch at `begin` (MVCC read path of the `gda` crate).
    #[inline]
    pub fn record_snapshot_pin(&self) {
        self.snapshot_pins.set(self.snapshot_pins.get() + 1);
    }

    /// Record one lock-free snapshot object read served off a validated
    /// version chain (possibly after walking archived versions).
    #[inline]
    pub fn record_snapshot_read(&self) {
        self.snapshot_reads.set(self.snapshot_reads.get() + 1);
    }

    /// Record one read-epoch watermark advance published by a commit
    /// (the in-order `CAS e-1 → e` on rank 0's watermark word).
    #[inline]
    pub fn record_watermark_advance(&self) {
        self.watermark_advances
            .set(self.watermark_advances.get() + 1);
    }

    /// Record one overwritten holder version archived onto its object's
    /// version chain by a committing writer.
    #[inline]
    pub fn record_version_archive(&self) {
        self.version_archives.set(self.version_archives.get() + 1);
    }

    /// Record archived versions freed by one commit-time chain
    /// truncation below the snapshot floor.
    #[inline]
    pub fn record_chain_truncation(&self, versions: u64) {
        self.chain_truncations
            .set(self.chain_truncations.get() + versions);
    }

    /// Record one completed collective maintenance pass on this rank
    /// (the background vacuum/compaction/verify cycle of `gda::maint`).
    #[inline]
    pub fn record_maintenance_pass(&self) {
        self.maintenance_passes
            .set(self.maintenance_passes.get() + 1);
    }

    /// Record archived versions freed by the background MVCC vacuum
    /// (distinct from commit-path truncation).
    #[inline]
    pub fn record_vacuum(&self, versions: u64) {
        self.vacuumed_versions
            .set(self.vacuumed_versions.get() + versions);
    }

    /// Record one holder chain rewritten contiguously by the
    /// maintenance compactor (`blocks` continuation blocks relocated).
    #[inline]
    pub fn record_compaction(&self, blocks: u64) {
        self.compacted_chains.set(self.compacted_chains.get() + 1);
        self.compacted_blocks
            .set(self.compacted_blocks.get() + blocks);
    }

    /// Record `bytes` of published snapshot-chain data re-read by the
    /// online checksum verifier, `errors` of whose files failed.
    #[inline]
    pub fn record_verify(&self, bytes: u64, errors: u64) {
        self.verified_bytes.set(self.verified_bytes.get() + bytes);
        self.verify_errors.set(self.verify_errors.get() + errors);
    }

    /// Record one delta (incremental) checkpoint image written by this
    /// rank, covering `chunks` dirty chunks.
    #[inline]
    pub fn record_delta_checkpoint(&self, chunks: u64) {
        self.delta_checkpoints.set(self.delta_checkpoints.get() + 1);
        self.delta_chunks.set(self.delta_chunks.get() + chunks);
    }

    /// Record one fault fired against this rank by the fault plane
    /// (`crate::faults`) — an injected error, torn write, bit flip or
    /// latency hit observed at a fabric or storage fault point.
    #[inline]
    pub fn record_fault_injection(&self) {
        self.fault_injections.set(self.fault_injections.get() + 1);
    }

    #[inline]
    pub fn record_collective(&self, bytes: usize) {
        self.collectives.set(self.collectives.get() + 1);
        self.coll_bytes.set(self.coll_bytes.get() + bytes as u64);
    }

    /// Produce an owned snapshot.
    pub fn snapshot(&self) -> RankReport {
        RankReport {
            puts: self.puts.get(),
            gets: self.gets.get(),
            atomics: self.atomics.get(),
            flushes: self.flushes.get(),
            bytes_put: self.bytes_put.get(),
            bytes_get: self.bytes_get.get(),
            collectives: self.collectives.get(),
            coll_bytes: self.coll_bytes.get(),
            local_ops: self.local_ops.get(),
            batches_drained: self.batches_drained.get(),
            requests_served: self.requests_served.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            cache_invalidations: self.cache_invalidations.get(),
            log_appends: self.log_appends.get(),
            log_bytes: self.log_bytes.get(),
            quiesces: self.quiesces.get(),
            reshard_objects: self.reshard_objects.get(),
            reshard_bytes: self.reshard_bytes.get(),
            scan_builds: self.scan_builds.get(),
            scan_reuses: self.scan_reuses.get(),
            scan_patches: self.scan_patches.get(),
            scan_holders: self.scan_holders.get(),
            scan_bytes: self.scan_bytes.get(),
            query_execs: self.query_execs.get(),
            query_rows: self.query_rows.get(),
            query_expands: self.query_expands.get(),
            query_bytes: self.query_bytes.get(),
            snapshot_pins: self.snapshot_pins.get(),
            snapshot_reads: self.snapshot_reads.get(),
            watermark_advances: self.watermark_advances.get(),
            version_archives: self.version_archives.get(),
            chain_truncations: self.chain_truncations.get(),
            maintenance_passes: self.maintenance_passes.get(),
            vacuumed_versions: self.vacuumed_versions.get(),
            compacted_chains: self.compacted_chains.get(),
            compacted_blocks: self.compacted_blocks.get(),
            verified_bytes: self.verified_bytes.get(),
            verify_errors: self.verify_errors.get(),
            delta_checkpoints: self.delta_checkpoints.get(),
            delta_chunks: self.delta_chunks.get(),
            fault_injections: self.fault_injections.get(),
            sim_time_ns: 0.0,
            wall_time_ns: 0.0,
        }
    }
}

/// An owned, sendable summary of a rank's communication behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankReport {
    pub puts: u64,
    pub gets: u64,
    pub atomics: u64,
    pub flushes: u64,
    pub bytes_put: u64,
    pub bytes_get: u64,
    pub collectives: u64,
    pub coll_bytes: u64,
    pub local_ops: u64,
    /// Service-queue drains performed by this rank (server layer).
    pub batches_drained: u64,
    /// Requests dequeued across all drains (server layer).
    pub requests_served: u64,
    /// Translation-cache hits (GDA epoch-validated app-id cache).
    pub cache_hits: u64,
    /// Translation-cache misses (full DHT chain walk paid).
    pub cache_misses: u64,
    /// Translation-cache entries invalidated by an epoch bump.
    pub cache_invalidations: u64,
    /// Durable redo-log appends issued by this rank (persistence layer).
    pub log_appends: u64,
    /// Redo-log payload bytes written by this rank.
    pub log_bytes: u64,
    /// Fabric quiesces (checkpoint drain barriers) this rank entered.
    pub quiesces: u64,
    /// Logical objects this rank re-materialized during an elastic
    /// reshard (restore onto a different rank count).
    pub reshard_objects: u64,
    /// Holder payload bytes moved into this rank by an elastic reshard.
    pub reshard_bytes: u64,
    /// OLAP scan-view builds (full raw-window sweeps) on this rank.
    pub scan_builds: u64,
    /// OLAP jobs that reused a cached scan view (epoch unchanged).
    pub scan_reuses: u64,
    /// Scan views delta-patched from the redo-log tail.
    pub scan_patches: u64,
    /// Live holders decoded by scan builds/patches on this rank.
    pub scan_holders: u64,
    /// Holder payload bytes lifted out of raw images by scans.
    pub scan_bytes: u64,
    /// Declarative-query executions started on this rank.
    pub query_execs: u64,
    /// Bindings surviving query stages on this rank (post-filter rows).
    pub query_rows: u64,
    /// Adjacency entries inspected by query expand stages on this rank.
    pub query_expands: u64,
    /// Bytes routed through query stage-level exchanges by this rank.
    pub query_bytes: u64,
    /// Snapshot epochs pinned by read-only transactions (MVCC path).
    pub snapshot_pins: u64,
    /// Lock-free snapshot object reads served off version chains.
    pub snapshot_reads: u64,
    /// Read-epoch watermark advances published by commits on this rank.
    pub watermark_advances: u64,
    /// Overwritten holder versions archived onto version chains.
    pub version_archives: u64,
    /// Archived versions freed by commit-time chain truncation.
    pub chain_truncations: u64,
    /// Collective maintenance passes this rank completed (vacuum +
    /// compaction + free-list rebuild + verify; `gda::maint`).
    pub maintenance_passes: u64,
    /// Archived versions freed by the background MVCC vacuum.
    pub vacuumed_versions: u64,
    /// Holder chains rewritten contiguously by the compactor.
    pub compacted_chains: u64,
    /// Continuation blocks relocated by chain compaction.
    pub compacted_blocks: u64,
    /// Bytes of published snapshot-chain data checksum-verified online.
    pub verified_bytes: u64,
    /// Snapshot-chain files that failed online verification.
    pub verify_errors: u64,
    /// Delta (incremental) checkpoint images written by this rank.
    pub delta_checkpoints: u64,
    /// Dirty chunks shipped by those delta images.
    pub delta_chunks: u64,
    /// Faults fired against this rank by the fault plane (injected
    /// errors, torn writes, bit flips, latency hits).
    pub fault_injections: u64,
    /// Final simulated time of the rank in nanoseconds (0 on a
    /// wall-backend run — the wall backend never charges the sim clock).
    pub sim_time_ns: f64,
    /// Final real elapsed time of the rank in nanoseconds, measured from
    /// the start of the enclosing `Fabric::run`. Filled on both backends
    /// (on `Sim` it prices the simulator itself); the authoritative
    /// runtime of a wall-backend run.
    pub wall_time_ns: f64,
}

impl RankReport {
    /// Total remote messages injected by this rank.
    pub fn messages(&self) -> u64 {
        self.puts + self.gets + self.atomics + self.flushes
    }

    /// Total remote bytes moved by this rank (puts + gets + collectives).
    pub fn bytes(&self) -> u64 {
        self.bytes_put + self.bytes_get + self.coll_bytes
    }

    /// Element-wise accumulation (max for sim time).
    pub fn merge(&mut self, other: &RankReport) {
        self.puts += other.puts;
        self.gets += other.gets;
        self.atomics += other.atomics;
        self.flushes += other.flushes;
        self.bytes_put += other.bytes_put;
        self.bytes_get += other.bytes_get;
        self.collectives += other.collectives;
        self.coll_bytes += other.coll_bytes;
        self.local_ops += other.local_ops;
        self.batches_drained += other.batches_drained;
        self.requests_served += other.requests_served;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_invalidations += other.cache_invalidations;
        self.log_appends += other.log_appends;
        self.log_bytes += other.log_bytes;
        self.quiesces += other.quiesces;
        self.reshard_objects += other.reshard_objects;
        self.reshard_bytes += other.reshard_bytes;
        self.scan_builds += other.scan_builds;
        self.scan_reuses += other.scan_reuses;
        self.scan_patches += other.scan_patches;
        self.scan_holders += other.scan_holders;
        self.scan_bytes += other.scan_bytes;
        self.query_execs += other.query_execs;
        self.query_rows += other.query_rows;
        self.query_expands += other.query_expands;
        self.query_bytes += other.query_bytes;
        self.snapshot_pins += other.snapshot_pins;
        self.snapshot_reads += other.snapshot_reads;
        self.watermark_advances += other.watermark_advances;
        self.version_archives += other.version_archives;
        self.chain_truncations += other.chain_truncations;
        self.maintenance_passes += other.maintenance_passes;
        self.vacuumed_versions += other.vacuumed_versions;
        self.compacted_chains += other.compacted_chains;
        self.compacted_blocks += other.compacted_blocks;
        self.verified_bytes += other.verified_bytes;
        self.verify_errors += other.verify_errors;
        self.delta_checkpoints += other.delta_checkpoints;
        self.delta_chunks += other.delta_chunks;
        self.fault_injections += other.fault_injections;
        self.sim_time_ns = self.sim_time_ns.max(other.sim_time_ns);
        self.wall_time_ns = self.wall_time_ns.max(other.wall_time_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = CommStats::new();
        s.record_put(true, 64);
        s.record_put(false, 8);
        s.record_get(true, 128);
        s.record_atomic(true);
        s.record_atomic(false);
        s.record_flush();
        s.record_collective(32);
        s.record_cache_probe(true);
        s.record_cache_probe(true);
        s.record_cache_probe(false);
        s.record_cache_invalidation();
        let r = s.snapshot();
        assert_eq!(r.cache_hits, 2);
        assert_eq!(r.cache_misses, 1);
        assert_eq!(r.cache_invalidations, 1);
        assert_eq!(r.puts, 1);
        assert_eq!(r.gets, 1);
        assert_eq!(r.atomics, 1);
        assert_eq!(r.flushes, 1);
        assert_eq!(r.local_ops, 2);
        assert_eq!(r.bytes_put, 64);
        assert_eq!(r.bytes_get, 128);
        assert_eq!(r.collectives, 1);
        assert_eq!(r.coll_bytes, 32);
        assert_eq!(r.messages(), 4);
        assert_eq!(r.bytes(), 64 + 128 + 32);
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = RankReport {
            puts: 1,
            sim_time_ns: 5.0,
            ..Default::default()
        };
        let b = RankReport {
            puts: 2,
            sim_time_ns: 3.0,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.puts, 3);
        assert_eq!(a.sim_time_ns, 5.0);
    }
}

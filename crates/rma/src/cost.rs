//! LogGP-style network cost model and per-rank simulated clocks.
//!
//! The paper evaluates GDI-RMA on Piz Daint (Cray Aries). We cannot run on
//! such a machine, so every fabric operation accrues *simulated time* on the
//! issuing rank following a LogGP-like model:
//!
//! * a local (same-rank) memory operation costs `local_word_ns` per word;
//! * a remote one-sided operation costs `o + L + n·G` where `o` is the CPU
//!   injection overhead, `L` the network latency and `G` the per-byte
//!   bandwidth term;
//! * remote atomics add `atomic_ns` (NIC-side processing);
//! * collectives cost `⌈log2 P⌉` latency rounds plus bandwidth terms —
//!   matching the provably (near-)optimal tree/dissemination algorithms the
//!   paper cites for MPI collectives.
//!
//! The *shape* of every scaling curve is therefore driven by measured message
//! counts, sizes, synchronization rounds and retry loops of the real
//! concurrent execution; only the constants come from the model. Defaults are
//! calibrated to published Aries numbers (≈1.4 µs put latency, ≈10 GB/s
//! per-core effective bandwidth).

use std::cell::Cell;

/// Parameters of the network/compute cost model (all in nanoseconds, or
/// nanoseconds per byte for [`CostModel::g_ns_per_byte`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of one local memory word access (load or store).
    pub local_word_ns: f64,
    /// Generic local compute cost unit (hash, compare, branch bundle).
    pub cpu_op_ns: f64,
    /// Per-message CPU injection overhead `o`.
    pub o_ns: f64,
    /// Network latency `L` for a one-sided operation.
    pub l_ns: f64,
    /// Bandwidth term `G`: ns per transferred byte.
    pub g_ns_per_byte: f64,
    /// Additional NIC processing cost of a remote atomic.
    pub atomic_ns: f64,
    /// Cost of one service-queue poll (doorbell check) by a serving rank.
    pub poll_ns: f64,
    /// Fixed cost of one durable redo-log append (submit to the local
    /// persistence device; covers the commit-path log hook of `gda`).
    pub log_o_ns: f64,
    /// Per-byte cost of redo-log payload written to the local persistence
    /// device (sequential-write bandwidth term).
    pub log_g_ns_per_byte: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            local_word_ns: 1.5,
            cpu_op_ns: 1.0,
            o_ns: 150.0,
            l_ns: 1_400.0,
            g_ns_per_byte: 0.1,
            atomic_ns: 350.0,
            poll_ns: 80.0,
            // ~ a battery-backed NVRAM / NVMe log device: a few µs to
            // submit, ~2 GB/s sequential append bandwidth
            log_o_ns: 2_500.0,
            log_g_ns_per_byte: 0.5,
        }
    }
}

impl CostModel {
    /// A zero-cost model: useful for pure-correctness tests where the
    /// simulated clock is irrelevant.
    pub fn zero() -> Self {
        Self {
            local_word_ns: 0.0,
            cpu_op_ns: 0.0,
            o_ns: 0.0,
            l_ns: 0.0,
            g_ns_per_byte: 0.0,
            atomic_ns: 0.0,
            poll_ns: 0.0,
            log_o_ns: 0.0,
            log_g_ns_per_byte: 0.0,
        }
    }

    /// Cost of a one-sided data transfer of `bytes` to/from rank `target`,
    /// issued by `origin`.
    #[inline]
    pub fn transfer(&self, origin: usize, target: usize, bytes: usize) -> f64 {
        if origin == target {
            self.local_word_ns * bytes.div_ceil(crate::WORD_BYTES) as f64
        } else {
            self.o_ns + self.l_ns + self.g_ns_per_byte * bytes as f64
        }
    }

    /// Cost of a remote atomic (CAS / FADD / AGET / APUT of one word).
    #[inline]
    pub fn atomic(&self, origin: usize, target: usize) -> f64 {
        if origin == target {
            // local atomics still pay a cache-coherency premium
            4.0 * self.local_word_ns
        } else {
            self.o_ns + self.l_ns + self.atomic_ns
        }
    }

    /// Cost of a flush towards one target (completion of outstanding ops).
    #[inline]
    pub fn flush(&self, origin: usize, target: usize) -> f64 {
        if origin == target {
            self.local_word_ns
        } else {
            self.o_ns + self.l_ns
        }
    }

    /// Latency rounds of a `P`-process barrier (dissemination algorithm).
    #[inline]
    pub fn barrier(&self, nranks: usize) -> f64 {
        log2_ceil(nranks) as f64 * (self.l_ns + 2.0 * self.o_ns)
    }

    /// Cost of a reduction-style collective moving `bytes` per process.
    #[inline]
    pub fn reduce_like(&self, nranks: usize, bytes: usize) -> f64 {
        log2_ceil(nranks) as f64 * (self.l_ns + 2.0 * self.o_ns)
            + 2.0 * self.g_ns_per_byte * bytes as f64
            + self.cpu_op_ns * bytes.div_ceil(crate::WORD_BYTES) as f64
    }

    /// Cost of an all-gather of `bytes` contributed per process.
    #[inline]
    pub fn allgather(&self, nranks: usize, bytes: usize) -> f64 {
        log2_ceil(nranks) as f64 * (self.l_ns + 2.0 * self.o_ns)
            + self.g_ns_per_byte * (bytes * nranks.saturating_sub(1)) as f64
    }

    /// Cost for a serving rank to drain `n` requests from its service
    /// queue in one poll: one doorbell check plus a per-request dispatch
    /// (dequeue, decode, route) of a few CPU ops. Draining a batch pays
    /// the poll once — the amortization the server's group-commit path
    /// relies on.
    #[inline]
    pub fn drain(&self, n: usize) -> f64 {
        self.poll_ns + 4.0 * self.cpu_op_ns * n as f64
    }

    /// Cost of appending `bytes` of redo-log payload to this rank's local
    /// durable log device: one fixed submission overhead plus the
    /// sequential-write bandwidth term. Group commit amortizes the
    /// overhead — one append per *grouped* transaction, not per op.
    #[inline]
    pub fn log_write(&self, bytes: usize) -> f64 {
        self.log_o_ns + self.log_g_ns_per_byte * bytes as f64
    }

    /// Cost of a personalized all-to-all where this rank sends `sent` bytes
    /// total and receives `recvd` bytes total, with `peers` distinct non-self
    /// destinations.
    #[inline]
    pub fn alltoallv(&self, peers: usize, sent: usize, recvd: usize) -> f64 {
        peers as f64 * (self.l_ns / 2.0 + self.o_ns) + self.g_ns_per_byte * (sent + recvd) as f64
    }
}

/// `⌈log2 n⌉` with `log2_ceil(0|1) == 0`.
#[inline]
pub fn log2_ceil(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// A per-rank simulated clock, in nanoseconds.
///
/// Not `Sync`: each rank advances only its own clock; collectives reconcile
/// clocks (max + collective cost) through the fabric's shared clock board.
#[derive(Debug, Default)]
pub struct SimClock {
    ns: Cell<f64>,
}

impl SimClock {
    pub fn new() -> Self {
        Self { ns: Cell::new(0.0) }
    }

    /// Advance the clock by `ns` nanoseconds.
    #[inline]
    pub fn advance(&self, ns: f64) {
        self.ns.set(self.ns.get() + ns);
    }

    /// Current simulated time in nanoseconds.
    #[inline]
    pub fn now_ns(&self) -> f64 {
        self.ns.get()
    }

    /// Set the clock (used by collectives to reconcile to the global max).
    #[inline]
    pub fn set_ns(&self, ns: f64) {
        self.ns.set(ns);
    }
}

/// Golden pin of the LogGP charge for every op class under the default
/// (Aries-calibrated) model. These are **hard-coded** numbers, not
/// re-derived from the formulas: if any committed `results/BENCH_*.json`
/// simulated curve is to stay comparable across PRs, a change that moves
/// one of these values must be deliberate and must re-baseline the bench
/// results. The CI smoke jobs assert this module ran.
#[cfg(test)]
mod cost_pin {
    use super::*;

    const EPS: f64 = 1e-9;

    fn pin(actual: f64, golden: f64, what: &str) {
        assert!(
            (actual - golden).abs() < EPS,
            "{what}: charge moved from pinned {golden} ns to {actual} ns — \
             simulated baselines are no longer comparable"
        );
    }

    #[test]
    fn model_charges_are_pinned() {
        let m = CostModel::default();
        pin(m.transfer(0, 0, 64), 12.0, "local transfer, 64 B");
        pin(m.transfer(0, 1, 64), 1_556.4, "remote transfer, 64 B");
        pin(m.transfer(0, 1, 8), 1_550.8, "remote transfer, 8 B");
        pin(m.atomic(0, 0), 6.0, "local atomic");
        pin(m.atomic(0, 1), 1_900.0, "remote atomic");
        pin(m.flush(0, 0), 1.5, "local flush");
        pin(m.flush(0, 1), 1_550.0, "remote flush");
        pin(m.barrier(8), 5_100.0, "barrier, P=8");
        pin(m.reduce_like(8, 8), 5_102.6, "reduce-like, P=8, 8 B");
        pin(m.allgather(8, 8), 5_105.6, "allgather, P=8, 8 B");
        pin(
            m.alltoallv(3, 100, 200),
            2_580.0,
            "alltoallv, 3 peers, 100/200 B",
        );
        pin(m.drain(10), 120.0, "service-queue drain, 10 requests");
        pin(m.log_write(1024), 3_012.0, "redo-log append, 1 KiB");
    }

    #[test]
    fn default_constants_are_pinned() {
        let m = CostModel::default();
        pin(m.local_word_ns, 1.5, "local_word_ns");
        pin(m.cpu_op_ns, 1.0, "cpu_op_ns");
        pin(m.o_ns, 150.0, "o_ns");
        pin(m.l_ns, 1_400.0, "l_ns");
        pin(m.g_ns_per_byte, 0.1, "g_ns_per_byte");
        pin(m.atomic_ns, 350.0, "atomic_ns");
        pin(m.poll_ns, 80.0, "poll_ns");
        pin(m.log_o_ns, 2_500.0, "log_o_ns");
        pin(m.log_g_ns_per_byte, 0.5, "log_g_ns_per_byte");
    }

    /// Pin what the *fabric* charges per op class end-to-end (the model
    /// routed through `RankCtx`), on an explicitly Sim-pinned fabric so
    /// the test also passes under `GDI_FABRIC_BACKEND=wall`.
    #[test]
    fn fabric_charge_deltas_are_pinned() {
        use crate::{BackendKind, FabricBuilder, WinId};
        let fabric = FabricBuilder::new(2)
            .backend(BackendKind::Sim)
            .window(1 << 10)
            .build();
        let w = WinId(0);
        fabric.run(|ctx| {
            if ctx.rank() != 0 {
                return;
            }
            let delta = |t0: &mut f64| {
                let now = ctx.now_ns();
                let d = now - *t0;
                *t0 = now;
                d
            };
            let mut t = ctx.now_ns();

            ctx.get_u64(w, 0, 0);
            pin(delta(&mut t), 1.5, "fabric local GET (8 B)");
            ctx.get_u64(w, 1, 0);
            pin(delta(&mut t), 1_550.8, "fabric remote GET (8 B)");
            ctx.put_u64(w, 1, 0, 7);
            pin(delta(&mut t), 1_550.8, "fabric remote PUT (8 B)");
            let mut buf = [0u8; 64];
            ctx.get_bytes(w, 1, 0, &mut buf);
            pin(delta(&mut t), 1_556.4, "fabric remote GET (64 B)");

            ctx.aget_u64(w, 0, 0);
            pin(delta(&mut t), 6.0, "fabric local AGET");
            ctx.aget_u64(w, 1, 0);
            pin(delta(&mut t), 1_900.0, "fabric remote AGET");
            ctx.aput_u64(w, 1, 0, 1);
            pin(delta(&mut t), 1_900.0, "fabric remote APUT");
            ctx.cas_u64(w, 1, 0, 1, 2);
            pin(delta(&mut t), 1_900.0, "fabric remote CAS");
            ctx.fadd_u64(w, 1, 0, 1);
            pin(delta(&mut t), 1_900.0, "fabric remote FADD");

            ctx.flush(1);
            pin(delta(&mut t), 1_550.0, "fabric remote flush");

            // nb-batch: each transfer defers its latency term (L = 1400);
            // the close charges the max deferred latency once plus one
            // coalesced flush per distinct target flushed inside the batch
            ctx.begin_nb_batch();
            for i in 0..3 {
                ctx.put_u64(w, 1, i, i as u64);
            }
            ctx.flush(1); // deferred to the close
            pin(
                delta(&mut t),
                3.0 * 150.8,
                "fabric nb-batched PUTs (3 × 8 B)",
            );
            ctx.end_nb_batch();
            pin(
                delta(&mut t),
                1_400.0 + 1_550.0,
                "fabric nb-batch close (deferred L + coalesced flush)",
            );

            ctx.record_log_write(1024);
            pin(delta(&mut t), 3_012.0, "fabric redo-log append (1 KiB)");
            ctx.charge_cpu(5);
            pin(delta(&mut t), 5.0, "fabric 5 CPU ops");
        });
    }

    /// The MVCC read-epoch watermark protocol (`gda::db`) in fabric
    /// charges, pinned from a non-root rank's perspective:
    ///
    /// * a **snapshot pin** is 0-marker `aput` + local flush + shadow
    ///   `aget`, all rank-local — zero network round trips;
    /// * a **watermark advance** is one shadow `aput` per rank (one
    ///   local, P−1 remote) plus the in-order CAS on rank 0's word.
    #[test]
    fn watermark_op_charges_are_pinned() {
        use crate::{BackendKind, FabricBuilder, WinId};
        let fabric = FabricBuilder::new(2)
            .backend(BackendKind::Sim)
            .window(1 << 10)
            .build();
        let w = WinId(0);
        fabric.run(|ctx| {
            if ctx.rank() != 1 {
                return;
            }
            let t0 = ctx.now_ns();
            ctx.aput_u64(w, 1, 0, 0); // 0-marker into the own snap word
            ctx.flush(1);
            ctx.aget_u64(w, 1, 1); // pinned epoch from the local shadow
            pin(
                ctx.now_ns() - t0,
                6.0 + 1.5 + 6.0,
                "watermark snapshot pin (all rank-local)",
            );
            let t1 = ctx.now_ns();
            ctx.aput_u64(w, 0, 1, 7); // shadow on rank 0 (remote)
            ctx.aput_u64(w, 1, 1, 7); // shadow on self (local)
            ctx.cas_u64(w, 0, 0, 6, 7); // in-order CAS W: e-1 -> e
            pin(
                ctx.now_ns() - t1,
                1_900.0 + 6.0 + 1_900.0,
                "watermark advance (P=2, from the non-root rank)",
            );
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(0), 0);
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(5), 3);
        assert_eq!(log2_ceil(1024), 10);
        assert_eq!(log2_ceil(1025), 11);
    }

    #[test]
    fn local_transfer_cheaper_than_remote() {
        let m = CostModel::default();
        assert!(m.transfer(0, 0, 64) < m.transfer(0, 1, 64));
        assert!(m.atomic(0, 0) < m.atomic(0, 1));
    }

    #[test]
    fn transfer_scales_with_bytes() {
        let m = CostModel::default();
        let small = m.transfer(0, 1, 8);
        let large = m.transfer(0, 1, 8 * 1024);
        assert!(large > small);
        let delta = large - small;
        let expected = m.g_ns_per_byte * (8.0 * 1024.0 - 8.0);
        assert!((delta - expected).abs() < 1e-9);
    }

    #[test]
    fn clock_advances() {
        let c = SimClock::new();
        assert_eq!(c.now_ns(), 0.0);
        c.advance(10.0);
        c.advance(5.5);
        assert!((c.now_ns() - 15.5).abs() < 1e-12);
        c.set_ns(100.0);
        assert_eq!(c.now_ns(), 100.0);
    }

    #[test]
    fn barrier_cost_grows_logarithmically() {
        let m = CostModel::default();
        assert_eq!(m.barrier(1), 0.0);
        let b2 = m.barrier(2);
        let b1024 = m.barrier(1024);
        assert!((b1024 / b2 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_model_is_free() {
        let m = CostModel::zero();
        assert_eq!(m.transfer(0, 5, 4096), 0.0);
        assert_eq!(m.atomic(3, 7), 0.0);
        assert_eq!(m.barrier(512), 0.0);
    }
}

//! Fabric-level dirty-chunk tracking: the write-capture substrate of
//! incremental (delta) checkpoints.
//!
//! Every one-sided write operation ([`crate::RankCtx::put_bytes`],
//! `put_u64`, `aput_u64`, `cas_u64`, `fadd_u64`, `fsub_u64`) marks the
//! byte range it touched in a per-target-rank, per-window bitmap at a
//! fixed *chunk* granularity. Tracking at the fabric layer — rather than
//! at engine call sites — means a write path added later can never
//! silently escape the dirty map: anything that can change window bytes
//! goes through these six operations, including bulk loads, recovery
//! restores and maintenance header patches.
//!
//! The consumer is the checkpoint protocol (`gda::persist`): while the
//! fabric is quiesced, each rank *drains* the map for its own windows
//! ([`DirtyMap::take`]) and writes only the chunks whose bits are set.
//! A checkpoint that has to unwind puts the drained bits back
//! ([`DirtyMap::remark`]) so the aborted attempt loses no information.
//!
//! Marking is a relaxed `fetch_or` per touched bitmap word — one shared
//! cache line of overhead per ~`64 × chunk` bytes of window, negligible
//! next to the operation's own transfer charge.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::WinId;

/// Default chunk granularity when the builder does not set one.
pub const DEFAULT_CHUNK_BYTES: usize = 256;

/// Per-fabric dirty-chunk bitmaps: `maps[rank][win]` covers rank
/// `rank`'s instance of window `win`.
pub struct DirtyMap {
    chunk_bytes: usize,
    maps: Vec<Vec<Box<[AtomicU64]>>>,
}

impl std::fmt::Debug for DirtyMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DirtyMap")
            .field("chunk_bytes", &self.chunk_bytes)
            .field("ranks", &self.maps.len())
            .finish()
    }
}

impl DirtyMap {
    /// Build zeroed (all-clean) bitmaps for `nranks` ranks and the given
    /// per-window byte sizes, at `chunk_bytes` granularity.
    pub fn new(nranks: usize, window_bytes: &[usize], chunk_bytes: usize) -> Self {
        assert!(chunk_bytes >= 8, "dirty chunk must cover at least a word");
        let per_rank = |_: usize| -> Vec<Box<[AtomicU64]>> {
            window_bytes
                .iter()
                .map(|&b| {
                    let chunks = b.div_ceil(chunk_bytes);
                    let words = chunks.div_ceil(64).max(1);
                    let mut v = Vec::with_capacity(words);
                    v.resize_with(words, || AtomicU64::new(0));
                    v.into_boxed_slice()
                })
                .collect()
        };
        Self {
            chunk_bytes,
            maps: (0..nranks).map(per_rank).collect(),
        }
    }

    /// The chunk granularity in bytes.
    #[inline]
    pub fn chunk_bytes(&self) -> usize {
        self.chunk_bytes
    }

    /// Number of chunks tracked for one window instance.
    pub fn chunk_count(&self, win: WinId, rank: usize) -> usize {
        self.maps[rank][win.0].len() * 64
    }

    /// Mark the byte range `[off, off + len)` of `rank`'s window `win`
    /// dirty. Zero-length writes mark nothing.
    #[inline]
    pub fn mark(&self, win: WinId, rank: usize, off: usize, len: usize) {
        if len == 0 {
            return;
        }
        let first = off / self.chunk_bytes;
        let last = (off + len - 1) / self.chunk_bytes;
        let words = &self.maps[rank][win.0];
        let mut c = first;
        while c <= last {
            let word = c / 64;
            // set every touched bit of this bitmap word in one RMW
            let hi_in_word = last.min(word * 64 + 63);
            let mut bits = 0u64;
            for b in c..=hi_in_word {
                bits |= 1u64 << (b % 64);
            }
            words[word].fetch_or(bits, Ordering::Relaxed);
            c = hi_in_word + 1;
        }
    }

    /// Drain and clear the bitmaps of `rank`'s windows (one raw `u64`
    /// vector per window, in window order). Callers run this quiesced —
    /// a concurrent marker could race the swap and land in either epoch.
    pub fn take(&self, rank: usize) -> Vec<Vec<u64>> {
        self.maps[rank]
            .iter()
            .map(|words| {
                words
                    .iter()
                    .map(|w| w.swap(0, Ordering::AcqRel))
                    .collect::<Vec<u64>>()
            })
            .collect()
    }

    /// OR previously [`DirtyMap::take`]n bitmaps back in (checkpoint
    /// unwind: the aborted attempt must not launder its dirty set).
    pub fn remark(&self, rank: usize, bitmaps: &[Vec<u64>]) {
        for (words, bits) in self.maps[rank].iter().zip(bitmaps) {
            for (w, &b) in words.iter().zip(bits) {
                if b != 0 {
                    w.fetch_or(b, Ordering::AcqRel);
                }
            }
        }
    }
}

/// Chunk indices of the set bits in a drained bitmap, ascending.
pub fn set_chunks(bitmap: &[u64]) -> Vec<usize> {
    let mut out = Vec::new();
    for (wi, &w) in bitmap.iter().enumerate() {
        let mut w = w;
        while w != 0 {
            let b = w.trailing_zeros() as usize;
            out.push(wi * 64 + b);
            w &= w - 1;
        }
    }
    out
}

/// Total set bits across a drained per-window bitmap set.
pub fn dirty_chunks(bitmaps: &[Vec<u64>]) -> u64 {
    bitmaps
        .iter()
        .flat_map(|b| b.iter())
        .map(|w| w.count_ones() as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_take_clear_roundtrip() {
        let m = DirtyMap::new(2, &[1024, 64], 64);
        m.mark(WinId(0), 1, 0, 1); // chunk 0
        m.mark(WinId(0), 1, 200, 16); // chunks 3..=3
        m.mark(WinId(1), 1, 8, 8); // chunk 0 of win 1
                                   // rank 0 untouched
        assert_eq!(dirty_chunks(&m.take(0)), 0);
        let t = m.take(1);
        assert_eq!(set_chunks(&t[0]), vec![0, 3]);
        assert_eq!(set_chunks(&t[1]), vec![0]);
        // drained: a second take is clean
        assert_eq!(dirty_chunks(&m.take(1)), 0);
    }

    #[test]
    fn range_spanning_chunks_and_words() {
        let m = DirtyMap::new(1, &[1 << 20], 64);
        // spans chunks 10 ..= 70 — crosses the word-0/word-1 boundary
        m.mark(WinId(0), 0, 10 * 64, 61 * 64);
        let t = m.take(0);
        assert_eq!(set_chunks(&t[0]), (10..=70).collect::<Vec<_>>());
    }

    #[test]
    fn remark_restores_drained_bits() {
        let m = DirtyMap::new(1, &[4096], 256);
        m.mark(WinId(0), 0, 300, 8);
        let t = m.take(0);
        assert_eq!(dirty_chunks(&t), 1);
        m.remark(0, &t);
        let t2 = m.take(0);
        assert_eq!(set_chunks(&t2[0]), vec![1]);
    }

    #[test]
    fn zero_length_marks_nothing() {
        let m = DirtyMap::new(1, &[4096], 256);
        m.mark(WinId(0), 0, 100, 0);
        assert_eq!(dirty_chunks(&m.take(0)), 0);
    }

    #[test]
    fn last_byte_of_window_marks_last_chunk() {
        let m = DirtyMap::new(1, &[1024], 256);
        m.mark(WinId(0), 0, 1016, 8);
        assert_eq!(set_chunks(&m.take(0)[0]), vec![3]);
    }
}

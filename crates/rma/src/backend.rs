//! Fabric execution backends: one `RankCtx` surface, two clocks.
//!
//! Every one-sided operation in this crate executes as a real memory
//! operation either way — ranks are OS threads, windows are `AtomicU64`
//! arrays, CAS/FADD are genuine hardware atomics. What a *backend*
//! chooses is the **clock** that prices the execution:
//!
//! * [`BackendKind::Sim`] — the LogGP model of [`crate::cost`]: every
//!   operation advances a per-rank virtual clock by its modeled cost
//!   (Aries-calibrated constants). Deterministic, hardware-independent,
//!   and the substrate of every committed `results/BENCH_*.json` curve.
//! * [`BackendKind::Wall`] — real wall-clock shared-memory execution:
//!   cost charges are no-ops and the rank clock reads a monotonic
//!   [`std::time::Instant`] anchored at the start of [`crate::Fabric::run`].
//!   Operation/byte counters keep counting identically, so the same
//!   workload yields the same [`crate::RankReport`] op counts with a
//!   `wall_time_ns` instead of a `sim_time_ns`. Timings are
//!   nondeterministic (true contention, cache behavior, scheduler) —
//!   that is the point: this backend is how the cost model is checked
//!   against the hardware (`bench/bin/backend_compare`).
//!
//! Selection: [`crate::FabricBuilder::backend`] wins; otherwise the
//! `GDI_FABRIC_BACKEND` environment variable (`sim` | `wall`); otherwise
//! [`BackendKind::Sim`].

use std::time::Instant;

use crate::cost::SimClock;

/// Which execution backend a fabric prices its operations with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// LogGP-simulated time on a virtual per-rank clock (deterministic).
    #[default]
    Sim,
    /// Real wall-clock time; cost charges are no-ops (nondeterministic).
    Wall,
}

/// Environment variable overriding the default backend (`sim` | `wall`).
pub const BACKEND_ENV: &str = "GDI_FABRIC_BACKEND";

impl BackendKind {
    /// Resolve the process-default backend from `GDI_FABRIC_BACKEND`
    /// (unset or empty means [`BackendKind::Sim`]). Panics on an
    /// unrecognized value so a typo cannot silently fall back to the
    /// simulator.
    pub fn from_env() -> Self {
        match std::env::var(BACKEND_ENV) {
            Ok(v) => {
                let t = v.trim();
                if t.is_empty() {
                    BackendKind::Sim
                } else {
                    t.parse().unwrap_or_else(|e: String| panic!("{e}"))
                }
            }
            Err(_) => BackendKind::Sim,
        }
    }

    /// Stable lowercase label (`"sim"` / `"wall"`), used for series
    /// names, metrics and the environment override.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Sim => "sim",
            BackendKind::Wall => "wall",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "sim" | "loggp" => Ok(BackendKind::Sim),
            "wall" | "real" => Ok(BackendKind::Wall),
            other => Err(format!(
                "unknown fabric backend {other:?} (expected \"sim\" or \"wall\")"
            )),
        }
    }
}

/// The per-rank clock behind every charge in [`crate::RankCtx`]: a
/// [`SimClock`] that cost charges advance, or a wall anchor that ignores
/// them and reads real elapsed time.
///
/// Not `Sync`: it lives on its rank's thread, like the `SimClock` it
/// generalizes. The wall anchor is the same `Instant` on every rank of a
/// run, so wall times are comparable across ranks.
#[derive(Debug)]
pub(crate) struct FabricTime {
    backend: BackendKind,
    sim: SimClock,
    epoch: Instant,
}

impl FabricTime {
    pub(crate) fn new(backend: BackendKind, epoch: Instant) -> Self {
        Self {
            backend,
            sim: SimClock::new(),
            epoch,
        }
    }

    #[inline]
    pub(crate) fn backend(&self) -> BackendKind {
        self.backend
    }

    /// The active backend's current time in nanoseconds: simulated ns on
    /// [`BackendKind::Sim`], real elapsed ns since the run's epoch on
    /// [`BackendKind::Wall`].
    #[inline]
    pub(crate) fn now_ns(&self) -> f64 {
        match self.backend {
            BackendKind::Sim => self.sim.now_ns(),
            BackendKind::Wall => self.wall_ns(),
        }
    }

    /// Charge `ns` of modeled cost: advances the simulated clock, no-op
    /// on the wall backend (real operations price themselves).
    #[inline]
    pub(crate) fn advance(&self, ns: f64) {
        if self.backend == BackendKind::Sim {
            self.sim.advance(ns);
        }
    }

    /// Reconcile to a collective's outcome (`max` peer clock + modeled
    /// collective cost): sets the simulated clock, no-op on the wall
    /// backend — real barriers already synchronize real time.
    #[inline]
    pub(crate) fn reconcile(&self, ns: f64) {
        if self.backend == BackendKind::Sim {
            self.sim.set_ns(ns);
        }
    }

    /// Final simulated time (0 on a wall run: nothing ever charged).
    #[inline]
    pub(crate) fn sim_ns(&self) -> f64 {
        self.sim.now_ns()
    }

    /// Real elapsed nanoseconds since the run's epoch (measured on both
    /// backends — on a sim run this is the simulator's own overhead).
    #[inline]
    pub(crate) fn wall_ns(&self) -> f64 {
        self.epoch.elapsed().as_nanos() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip_through_parse() {
        for k in [BackendKind::Sim, BackendKind::Wall] {
            assert_eq!(k.label().parse::<BackendKind>().unwrap(), k);
            assert_eq!(format!("{k}").parse::<BackendKind>().unwrap(), k);
        }
        assert_eq!("REAL".parse::<BackendKind>().unwrap(), BackendKind::Wall);
        assert_eq!(" sim ".parse::<BackendKind>().unwrap(), BackendKind::Sim);
        assert!("aries".parse::<BackendKind>().is_err());
    }

    #[test]
    fn sim_time_ignores_wall_and_vice_versa() {
        let epoch = Instant::now();
        let sim = FabricTime::new(BackendKind::Sim, epoch);
        sim.advance(123.0);
        assert_eq!(sim.now_ns(), 123.0);
        sim.reconcile(1000.0);
        assert_eq!(sim.now_ns(), 1000.0);

        let wall = FabricTime::new(BackendKind::Wall, epoch);
        wall.advance(1e12); // must not jump the wall clock a kilosecond
        wall.reconcile(1e12);
        assert_eq!(wall.sim_ns(), 0.0, "wall backend never accrues sim time");
        let t0 = wall.now_ns();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(
            wall.now_ns() - t0 >= 1_000_000.0,
            "wall clock advances with real time"
        );
        assert!(wall.now_ns() < 1e12, "charges must not move the wall clock");
    }
}

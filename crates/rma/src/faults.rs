//! Deterministic fault-injection plane shared by the fabric and the storage
//! layers built on top of it.
//!
//! A [`FaultPlane`] is a registry of *armed* faults keyed by a named fault
//! point (a free-form `&str` such as `"snap.write"` or `"fabric.quiesce"`).
//! Code that performs a fallible side effect probes the plane at its fault
//! point; if a matching armed fault has skipped past its `skip` budget and
//! still has shots remaining, the probe returns the [`FaultMode`] to apply
//! and the caller simulates the corresponding failure (return an error, tear
//! a write at byte `k`, flip a bit on read, or sleep/charge latency).
//!
//! The plane is deliberately *deterministic*: every fault fires after an
//! exact number of prior hits on its point, so crash-point torture harnesses
//! can enumerate or sample positions reproducibly from a seed that lives in
//! the harness, not here. The un-armed fast path is a single relaxed atomic
//! load, so leaving a plane threaded through production code is free.
//!
//! ```
//! use rma::faults::{FaultMode, FaultPlane};
//!
//! let plane = FaultPlane::new();
//! assert!(plane.check("redo.append", 0).is_none());
//! plane.arm("redo.append", FaultMode::Error);
//! assert_eq!(plane.check("redo.append", 0), Some(FaultMode::Error));
//! assert!(plane.check("redo.append", 0).is_none()); // one-shot consumed
//! assert_eq!(plane.fired(), 1);
//! ```

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What an armed fault does to the I/O operation it intercepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The operation fails outright with an I/O error, leaving no partial
    /// state behind (the caller rolls back as it would for a real error).
    Error,
    /// A write persists only its first `k` bytes and then reports failure,
    /// simulating a crash mid-`write(2)` — the partial bytes stay on disk.
    TornWrite(usize),
    /// A read succeeds but the returned buffer has bit `k % (len * 8)`
    /// flipped, simulating silent media corruption caught by checksums.
    BitFlip(usize),
    /// The operation succeeds after an injected delay of this many
    /// nanoseconds (charged to the virtual clock under the sim backend,
    /// slept under the wall backend).
    Latency(u64),
}

/// A single armed fault: point pattern, optional rank scope, a skip budget
/// counting hits that pass through unharmed, and a remaining-shot budget.
struct Armed {
    point: String,
    rank: Option<usize>,
    skip: AtomicU64,
    remaining: AtomicU64,
    mode: FaultMode,
}

/// Shared registry of named fault points.
///
/// Cheap to probe when nothing is armed, clone-free to share (wrap in
/// [`Arc`]); arming and disarming are test/harness-side operations and take
/// a mutex. See the [module docs](self) for the probe/arm contract.
#[derive(Default)]
pub struct FaultPlane {
    /// Number of entries in `armed` that may still fire. Fast-path gate:
    /// when zero, `check` returns `None` without locking.
    armed_count: AtomicU64,
    armed: Mutex<Vec<Armed>>,
    probes: AtomicU64,
    fired_total: AtomicU64,
    fired_by_point: Mutex<HashMap<String, u64>>,
}

impl std::fmt::Debug for FaultPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlane")
            .field("armed", &self.armed_count.load(Ordering::Relaxed))
            .field("probes", &self.probes.load(Ordering::Relaxed))
            .field("fired", &self.fired_total.load(Ordering::Relaxed))
            .finish()
    }
}

/// Sentinel for [`FaultPlane::arm_at`]'s `count`: the fault never exhausts.
pub const PERSISTENT: u64 = u64::MAX;

impl FaultPlane {
    /// Create an empty plane with nothing armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty plane already wrapped in an [`Arc`], the shape every
    /// consumer (fabric builder, persist options) accepts.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Arm a one-shot fault on `point` for every rank: the next probe of
    /// that point fires `mode` once.
    pub fn arm(&self, point: &str, mode: FaultMode) {
        self.arm_at(point, None, 0, 1, mode);
    }

    /// Arm a fault with full control.
    ///
    /// * `point` — fault-point name; `"*"` matches every point.
    /// * `rank` — only probes from this rank fire (`None` = any rank).
    /// * `skip` — number of matching probes that pass unharmed before the
    ///   fault starts firing (this is how a crash-point harness walks an
    ///   I/O sequence position by position).
    /// * `count` — number of times the fault fires before exhausting; use
    ///   [`PERSISTENT`] for a fault that never exhausts (an erroring disk).
    /// * `mode` — what happens when it fires.
    pub fn arm_at(&self, point: &str, rank: Option<usize>, skip: u64, count: u64, mode: FaultMode) {
        if count == 0 {
            return;
        }
        let mut armed = self.armed.lock();
        armed.push(Armed {
            point: point.to_string(),
            rank,
            skip: AtomicU64::new(skip),
            remaining: AtomicU64::new(count),
            mode,
        });
        self.armed_count
            .store(armed.len() as u64, Ordering::Release);
    }

    /// Remove every armed fault (fired-counter history is kept).
    pub fn disarm_all(&self) {
        let mut armed = self.armed.lock();
        armed.clear();
        self.armed_count.store(0, Ordering::Release);
    }

    /// Probe a fault point from `rank`. Returns the mode to apply if an
    /// armed fault fires, consuming one shot; `None` means proceed normally.
    pub fn check(&self, point: &str, rank: usize) -> Option<FaultMode> {
        if self.armed_count.load(Ordering::Acquire) == 0 {
            return None;
        }
        self.probes.fetch_add(1, Ordering::Relaxed);
        let mut armed = self.armed.lock();
        let mut hit = None;
        for a in armed.iter() {
            if a.point != "*" && a.point != point {
                continue;
            }
            if a.rank.is_some_and(|r| r != rank) {
                continue;
            }
            // Matching probe: burn the skip budget first.
            if a.skip
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                .is_ok()
            {
                continue;
            }
            if a.remaining.load(Ordering::SeqCst) == u64::MAX {
                hit = Some(a.mode);
                break;
            }
            if a.remaining
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                .is_ok()
            {
                hit = Some(a.mode);
                break;
            }
        }
        // Drop exhausted entries so the fast path re-opens.
        armed.retain(|a| a.remaining.load(Ordering::SeqCst) > 0);
        self.armed_count
            .store(armed.len() as u64, Ordering::Release);
        drop(armed);
        if let Some(mode) = hit {
            self.fired_total.fetch_add(1, Ordering::Relaxed);
            *self
                .fired_by_point
                .lock()
                .entry(point.to_string())
                .or_insert(0) += 1;
            return Some(mode);
        }
        None
    }

    /// Total number of faults that have fired since creation.
    pub fn fired(&self) -> u64 {
        self.fired_total.load(Ordering::Relaxed)
    }

    /// Number of times faults fired at `point`.
    pub fn fired_at(&self, point: &str) -> u64 {
        self.fired_by_point.lock().get(point).copied().unwrap_or(0)
    }

    /// Total number of probes observed while at least one fault was armed.
    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// True if any fault is currently armed.
    pub fn is_armed(&self) -> bool {
        self.armed_count.load(Ordering::Acquire) != 0
    }
}

/// Names of the fault points owned by the fabric itself. Storage layers
/// stacked on the fabric define their own catalogs (see `gda::faults`)
/// and share the same [`FaultPlane`] registry.
pub mod points {
    /// Fired by every rank inside [`RankCtx::quiesce`] after its flush
    /// sweep, before the drain barrier — the entry gate of every
    /// collective checkpoint.
    ///
    /// [`RankCtx::quiesce`]: crate::RankCtx::quiesce
    pub const FABRIC_QUIESCE: &str = "fabric.quiesce";
    /// Fired by every rank entering a collective (barrier, reduction,
    /// gather); models a slow rank straggling into the collective.
    pub const FABRIC_COLLECTIVE: &str = "fabric.collective";
}

/// Apply [`FaultMode::BitFlip`] to a freshly read buffer: flip bit
/// `k % (len * 8)`. Empty buffers are returned untouched.
pub fn flip_bit(bytes: &mut [u8], k: usize) {
    if bytes.is_empty() {
        return;
    }
    let bit = k % (bytes.len() * 8);
    bytes[bit / 8] ^= 1 << (bit % 8);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_plane_is_silent() {
        let p = FaultPlane::new();
        for _ in 0..10 {
            assert!(p.check("x", 0).is_none());
        }
        assert_eq!(p.probes(), 0);
        assert_eq!(p.fired(), 0);
    }

    #[test]
    fn one_shot_fires_once() {
        let p = FaultPlane::new();
        p.arm("a", FaultMode::Error);
        assert!(p.check("b", 0).is_none());
        assert_eq!(p.check("a", 3), Some(FaultMode::Error));
        assert!(p.check("a", 3).is_none());
        assert_eq!(p.fired_at("a"), 1);
        assert!(!p.is_armed());
    }

    #[test]
    fn skip_budget_counts_matching_probes() {
        let p = FaultPlane::new();
        p.arm_at("a", None, 2, 1, FaultMode::TornWrite(7));
        assert!(p.check("a", 0).is_none());
        assert!(p.check("other", 0).is_none()); // non-matching: no skip burn
        assert!(p.check("a", 0).is_none());
        assert_eq!(p.check("a", 0), Some(FaultMode::TornWrite(7)));
        assert!(p.check("a", 0).is_none());
    }

    #[test]
    fn rank_scoping() {
        let p = FaultPlane::new();
        p.arm_at("a", Some(1), 0, 1, FaultMode::Error);
        assert!(p.check("a", 0).is_none());
        assert_eq!(p.check("a", 1), Some(FaultMode::Error));
    }

    #[test]
    fn persistent_fault_never_exhausts() {
        let p = FaultPlane::new();
        p.arm_at("a", None, 0, PERSISTENT, FaultMode::Error);
        for _ in 0..100 {
            assert_eq!(p.check("a", 0), Some(FaultMode::Error));
        }
        assert!(p.is_armed());
        p.disarm_all();
        assert!(p.check("a", 0).is_none());
        assert_eq!(p.fired(), 100);
    }

    #[test]
    fn wildcard_matches_all_points() {
        let p = FaultPlane::new();
        p.arm_at("*", None, 1, 1, FaultMode::Error);
        assert!(p.check("a", 0).is_none());
        assert_eq!(p.check("b", 0), Some(FaultMode::Error));
    }

    #[test]
    fn flip_bit_flips_exactly_one_bit() {
        let mut b = vec![0u8; 4];
        flip_bit(&mut b, 9);
        assert_eq!(b, vec![0, 2, 0, 0]);
        flip_bit(&mut b, 9);
        assert_eq!(b, vec![0; 4]);
        flip_bit(&mut b, 33); // wraps modulo 32
        assert_eq!(b, vec![2, 0, 0, 0]);
        let mut empty: Vec<u8> = vec![];
        flip_bit(&mut empty, 5);
    }
}

//! RMA windows: word-granular atomic memory regions.
//!
//! A window is the unit of memory a rank *exposes* to one-sided access by
//! other ranks (§5.1). We store windows as `Box<[AtomicU64]>`:
//!
//! * all remote atomics (CAS, FADD, AGET, APUT) operate on naturally aligned
//!   64-bit words — exactly the hardware-accelerated granularity the paper
//!   builds its design around (§5.3, "Using 64-bit distributed pointers
//!   facilitates harnessing hardware accelerated remote atomic operations");
//! * bulk `GET`/`PUT` of byte ranges are performed word-wise with relaxed
//!   ordering, reproducing RDMA semantics where bulk transfers are *not*
//!   atomic with respect to concurrent accesses and must be ordered by
//!   flushes and application-level locks.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::WORD_BYTES;

/// A word-granular shared memory region.
pub struct Window {
    words: Box<[AtomicU64]>,
}

impl std::fmt::Debug for Window {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Window")
            .field("bytes", &(self.words.len() * WORD_BYTES))
            .finish()
    }
}

impl Window {
    /// Create a zero-initialized window of at least `bytes` bytes (rounded up
    /// to whole words).
    pub fn new(bytes: usize) -> Self {
        let nwords = bytes.div_ceil(WORD_BYTES);
        let mut v = Vec::with_capacity(nwords);
        v.resize_with(nwords, || AtomicU64::new(0));
        Self {
            words: v.into_boxed_slice(),
        }
    }

    /// Size in bytes.
    #[inline]
    pub fn len_bytes(&self) -> usize {
        self.words.len() * WORD_BYTES
    }

    /// Size in words.
    #[inline]
    pub fn len_words(&self) -> usize {
        self.words.len()
    }

    /// Atomic load of word `idx` (acquire).
    #[inline]
    pub fn load(&self, idx: usize) -> u64 {
        self.words[idx].load(Ordering::Acquire)
    }

    /// Atomic store to word `idx` (release).
    #[inline]
    pub fn store(&self, idx: usize, v: u64) {
        self.words[idx].store(v, Ordering::Release);
    }

    /// Atomic compare-and-swap on word `idx`; returns the previous value.
    #[inline]
    pub fn cas(&self, idx: usize, compare: u64, new: u64) -> u64 {
        match self.words[idx].compare_exchange(compare, new, Ordering::AcqRel, Ordering::Acquire) {
            Ok(prev) => prev,
            Err(prev) => prev,
        }
    }

    /// Atomic fetch-and-add on word `idx`; returns the previous value.
    #[inline]
    pub fn fadd(&self, idx: usize, delta: u64) -> u64 {
        self.words[idx].fetch_add(delta, Ordering::AcqRel)
    }

    /// Atomic fetch-and-sub on word `idx`; returns the previous value.
    #[inline]
    pub fn fsub(&self, idx: usize, delta: u64) -> u64 {
        self.words[idx].fetch_sub(delta, Ordering::AcqRel)
    }

    /// Bulk read of `dst.len()` bytes starting at byte offset `off`.
    ///
    /// Word-wise, non-atomic across words: concurrent writers may produce a
    /// mix of old and new words (torn bulk reads), as on real RDMA hardware.
    /// Callers serialize through locks/flushes, as GDA does.
    pub fn read_bytes(&self, off: usize, dst: &mut [u8]) {
        assert!(
            off + dst.len() <= self.len_bytes(),
            "window read out of bounds: off={} len={} window={}",
            off,
            dst.len(),
            self.len_bytes()
        );
        let mut pos = 0usize;
        while pos < dst.len() {
            let byte = off + pos;
            let widx = byte / WORD_BYTES;
            let in_word = byte % WORD_BYTES;
            let take = (WORD_BYTES - in_word).min(dst.len() - pos);
            let w = self.words[widx].load(Ordering::Acquire).to_le_bytes();
            dst[pos..pos + take].copy_from_slice(&w[in_word..in_word + take]);
            pos += take;
        }
    }

    /// Bulk write of `src` starting at byte offset `off`.
    ///
    /// Whole words are stored atomically; partial boundary words use a
    /// load-modify-store (safe here because GDA guards all bulk block writes
    /// with its distributed reader-writer locks, mirroring the paper's ACI
    /// protocol).
    pub fn write_bytes(&self, off: usize, src: &[u8]) {
        assert!(
            off + src.len() <= self.len_bytes(),
            "window write out of bounds: off={} len={} window={}",
            off,
            src.len(),
            self.len_bytes()
        );
        let mut pos = 0usize;
        while pos < src.len() {
            let byte = off + pos;
            let widx = byte / WORD_BYTES;
            let in_word = byte % WORD_BYTES;
            let take = (WORD_BYTES - in_word).min(src.len() - pos);
            if take == WORD_BYTES {
                let w = u64::from_le_bytes(src[pos..pos + 8].try_into().unwrap());
                self.words[widx].store(w, Ordering::Release);
            } else {
                let mut w = self.words[widx].load(Ordering::Acquire).to_le_bytes();
                w[in_word..in_word + take].copy_from_slice(&src[pos..pos + take]);
                self.words[widx].store(u64::from_le_bytes(w), Ordering::Release);
            }
            pos += take;
        }
    }

    /// Zero a byte range (used when releasing blocks back to the pool).
    pub fn zero_bytes(&self, off: usize, len: usize) {
        // Reuse write_bytes in word-sized chunks to avoid a large temp.
        const Z: [u8; 256] = [0u8; 256];
        let mut pos = 0;
        while pos < len {
            let take = (len - pos).min(Z.len());
            self.write_bytes(off + pos, &Z[..take]);
            pos += take;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_up_to_words() {
        let w = Window::new(3);
        assert_eq!(w.len_bytes(), 8);
        assert_eq!(w.len_words(), 1);
        let w = Window::new(16);
        assert_eq!(w.len_words(), 2);
    }

    #[test]
    fn word_ops() {
        let w = Window::new(64);
        w.store(2, 0xdead_beef);
        assert_eq!(w.load(2), 0xdead_beef);
        assert_eq!(w.cas(2, 0xdead_beef, 7), 0xdead_beef);
        assert_eq!(w.load(2), 7);
        // failed CAS returns current value and leaves memory untouched
        assert_eq!(w.cas(2, 99, 1), 7);
        assert_eq!(w.load(2), 7);
        assert_eq!(w.fadd(2, 10), 7);
        assert_eq!(w.load(2), 17);
        assert_eq!(w.fsub(2, 17), 17);
        assert_eq!(w.load(2), 0);
    }

    #[test]
    fn byte_roundtrip_aligned() {
        let w = Window::new(64);
        let src: Vec<u8> = (0..32).collect();
        w.write_bytes(8, &src);
        let mut dst = vec![0u8; 32];
        w.read_bytes(8, &mut dst);
        assert_eq!(src, dst);
    }

    #[test]
    fn byte_roundtrip_unaligned() {
        let w = Window::new(64);
        let src: Vec<u8> = (100..100 + 13).collect();
        w.write_bytes(3, &src);
        let mut dst = vec![0u8; 13];
        w.read_bytes(3, &mut dst);
        assert_eq!(src, dst);
        // neighbouring bytes untouched
        let mut b = [0u8; 3];
        w.read_bytes(0, &mut b);
        assert_eq!(b, [0, 0, 0]);
    }

    #[test]
    fn unaligned_write_preserves_neighbours() {
        let w = Window::new(32);
        w.write_bytes(0, &[0xAA; 16]);
        w.write_bytes(5, &[0xBB; 4]);
        let mut dst = [0u8; 16];
        w.read_bytes(0, &mut dst);
        for (i, b) in dst.iter().enumerate() {
            let expect = if (5..9).contains(&i) { 0xBB } else { 0xAA };
            assert_eq!(*b, expect, "byte {i}");
        }
    }

    #[test]
    fn zeroing() {
        let w = Window::new(1024);
        w.write_bytes(0, &[0xFF; 1024]);
        w.zero_bytes(100, 700);
        let mut dst = [0u8; 1024];
        w.read_bytes(0, &mut dst);
        assert!(dst[..100].iter().all(|&b| b == 0xFF));
        assert!(dst[100..800].iter().all(|&b| b == 0));
        assert!(dst[800..].iter().all(|&b| b == 0xFF));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn read_out_of_bounds_panics() {
        let w = Window::new(8);
        let mut dst = [0u8; 16];
        w.read_bytes(0, &mut dst);
    }
}

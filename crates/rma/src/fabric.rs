//! The fabric: ranks, windows and one-sided operations.
//!
//! A [`Fabric`] models a distributed-memory machine with `P` ranks. Ranks
//! execute concurrently as OS threads inside [`Fabric::run`]; each rank owns
//! one instance of every registered window and reaches other ranks' windows
//! exclusively through the one-sided operations on [`RankCtx`] — there is no
//! shared-state backdoor, mirroring the discipline of MPI RMA / RDMA verbs.
//!
//! Time is priced by a pluggable backend ([`crate::BackendKind`]): the
//! LogGP simulator (deterministic, the committed-bench baseline) or real
//! wall-clock shared-memory execution (see [`crate::backend`]). The
//! operations themselves are identical either way.

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::backend::{BackendKind, FabricTime};
use crate::barrier::PoisonBarrier;
use crate::cost::CostModel;
use crate::dirty::DirtyMap;
use crate::faults::{FaultMode, FaultPlane};
use crate::stats::{CommStats, RankReport};
use crate::window::Window;

/// Identifier of a registered window (index in registration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WinId(pub usize);

pub(crate) struct Shared {
    pub nranks: usize,
    pub cost: CostModel,
    pub backend: BackendKind,
    /// `windows[rank][win]`
    pub windows: Vec<Vec<Window>>,
    /// Published simulated clocks (f64 bits), one slot per rank.
    pub clocks: Vec<AtomicU64>,
    /// Collective exchange board, one slot per rank.
    pub boards: Vec<Mutex<Option<Arc<dyn Any + Send + Sync>>>>,
    pub barrier: PoisonBarrier,
    /// Dirty-chunk bitmaps fed by every one-sided write (the delta-
    /// checkpoint capture layer; see [`crate::dirty`]).
    pub dirty: DirtyMap,
    /// Fault-injection registry probed at the quiesce/collective paths
    /// (and shared with storage layers above; see [`crate::faults`]).
    pub faults: Arc<FaultPlane>,
}

/// Builder for a [`Fabric`].
pub struct FabricBuilder {
    nranks: usize,
    window_bytes: Vec<usize>,
    cost: CostModel,
    backend: Option<BackendKind>,
    dirty_chunk: usize,
    faults: Option<Arc<FaultPlane>>,
}

impl FabricBuilder {
    /// Start building a fabric with `nranks` simulated processes.
    pub fn new(nranks: usize) -> Self {
        assert!(nranks >= 1, "a fabric needs at least one rank");
        assert!(nranks <= u16::MAX as usize, "rank ids must fit in 16 bits");
        Self {
            nranks,
            window_bytes: Vec::new(),
            cost: CostModel::default(),
            backend: None,
            dirty_chunk: crate::dirty::DEFAULT_CHUNK_BYTES,
            faults: None,
        }
    }

    /// Register a symmetric window of `bytes` bytes on every rank. Windows
    /// receive consecutive [`WinId`]s starting from 0, in call order.
    pub fn window(mut self, bytes: usize) -> Self {
        self.window_bytes.push(bytes);
        self
    }

    /// Use a specific cost model (defaults to [`CostModel::default`]).
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Pin the execution backend explicitly. Without this call the
    /// backend comes from the `GDI_FABRIC_BACKEND` environment variable
    /// (falling back to [`BackendKind::Sim`]) — tests that assert exact
    /// simulated charges pin [`BackendKind::Sim`] here so they stay
    /// green under a `wall` environment override.
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Granularity (bytes) of the dirty-chunk write tracking (defaults
    /// to [`crate::dirty::DEFAULT_CHUNK_BYTES`]). Engines align it with
    /// their storage unit — GDA passes its block size, so one dirty bit
    /// is one block.
    pub fn dirty_chunk(mut self, bytes: usize) -> Self {
        assert!(bytes >= 8, "dirty chunk must cover at least a word");
        self.dirty_chunk = bytes;
        self
    }

    /// Share a fault-injection plane with this fabric (defaults to a
    /// fresh, empty plane). Harnesses pass the same [`FaultPlane`] to the
    /// fabric and to the storage layer so one registry covers fabric
    /// latency points and persistence I/O points alike.
    pub fn faults(mut self, plane: Arc<FaultPlane>) -> Self {
        self.faults = Some(plane);
        self
    }

    pub fn build(self) -> Fabric {
        let backend = self.backend.unwrap_or_else(BackendKind::from_env);
        let windows = (0..self.nranks)
            .map(|_| self.window_bytes.iter().map(|&b| Window::new(b)).collect())
            .collect();
        let clocks = (0..self.nranks).map(|_| AtomicU64::new(0)).collect();
        let boards = (0..self.nranks).map(|_| Mutex::new(None)).collect();
        let dirty = DirtyMap::new(self.nranks, &self.window_bytes, self.dirty_chunk);
        Fabric {
            shared: Arc::new(Shared {
                nranks: self.nranks,
                cost: self.cost,
                backend,
                windows,
                clocks,
                boards,
                barrier: PoisonBarrier::new(self.nranks),
                dirty,
                faults: self.faults.unwrap_or_default(),
            }),
            last_reports: Mutex::new(Vec::new()),
        }
    }
}

/// A simulated distributed-memory machine.
pub struct Fabric {
    shared: Arc<Shared>,
    last_reports: Mutex<Vec<RankReport>>,
}

impl Fabric {
    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.shared.nranks
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> CostModel {
        self.shared.cost
    }

    /// The execution backend this fabric prices operations with.
    pub fn backend(&self) -> BackendKind {
        self.shared.backend
    }

    /// Execute `f` once per rank, concurrently, and return the per-rank
    /// results in rank order. Communication statistics and final clocks
    /// (simulated and wall) are captured and retrievable via
    /// [`Fabric::last_reports`].
    pub fn run<F, R>(&self, f: F) -> Vec<R>
    where
        F: Fn(&RankCtx) -> R + Sync,
        R: Send,
    {
        let shared = &self.shared;
        let epoch = std::time::Instant::now();
        let mut out: Vec<Option<(R, RankReport)>> = (0..shared.nranks).map(|_| None).collect();
        // The payload of the first rank that panicked with a *real*
        // failure (not the poison-barrier collapse of a peer); resumed on
        // the harness thread so the test failure names the original
        // assertion instead of a generic join error.
        let mut first_panic: Option<Box<dyn Any + Send>> = None;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(shared.nranks);
            for rank in 0..shared.nranks {
                let f = &f;
                handles.push(scope.spawn(move || {
                    let ctx = RankCtx {
                        rank,
                        shared,
                        clock: FabricTime::new(shared.backend, epoch),
                        stats: CommStats::new(),
                        nb_depth: std::cell::Cell::new((0, 0.0)),
                        nb_flushes: std::cell::RefCell::new(vec![false; shared.nranks]),
                    };
                    // If this rank panics, poison the fabric barrier so
                    // peer ranks blocked in collectives fail fast instead
                    // of deadlocking the harness.
                    let r = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&ctx)))
                    {
                        Ok(r) => r,
                        Err(payload) => {
                            shared.barrier.poison();
                            std::panic::resume_unwind(payload);
                        }
                    };
                    let mut report = ctx.stats.snapshot();
                    report.sim_time_ns = ctx.clock.sim_ns();
                    report.wall_time_ns = ctx.clock.wall_ns();
                    (r, report)
                }));
            }
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(v) => out[rank] = Some(v),
                    Err(payload) => match first_panic.as_ref() {
                        // Keep the lowest-rank *original* failure: a
                        // poison-barrier collapse only stands in while no
                        // real payload has been seen.
                        None => first_panic = Some(payload),
                        Some(cur)
                            if is_poison_collapse(&**cur) && !is_poison_collapse(&*payload) =>
                        {
                            first_panic = Some(payload)
                        }
                        Some(_) => {}
                    },
                }
            }
        });
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
        let mut reports = Vec::with_capacity(shared.nranks);
        let mut results = Vec::with_capacity(shared.nranks);
        for slot in out {
            let (r, rep) = slot.unwrap();
            results.push(r);
            reports.push(rep);
        }
        *self.last_reports.lock() = reports;
        results
    }

    /// Reports (comm statistics + final clocks) of the most recent
    /// [`Fabric::run`], in rank order.
    pub fn last_reports(&self) -> Vec<RankReport> {
        self.last_reports.lock().clone()
    }

    /// Maximum time over all ranks of the last run, in seconds, measured
    /// on the fabric's active backend: simulated seconds on
    /// [`BackendKind::Sim`], real elapsed seconds on [`BackendKind::Wall`].
    pub fn last_time_s(&self) -> f64 {
        let pick: fn(&RankReport) -> f64 = match self.shared.backend {
            BackendKind::Sim => |r| r.sim_time_ns,
            BackendKind::Wall => |r| r.wall_time_ns,
        };
        self.last_reports
            .lock()
            .iter()
            .map(pick)
            .fold(0.0, f64::max)
            / 1e9
    }

    /// Maximum *simulated* time over all ranks of the last run, in
    /// seconds (0 on a wall-backend run — nothing is ever charged).
    /// Prefer [`Fabric::last_time_s`], which follows the active backend.
    pub fn last_sim_time_s(&self) -> f64 {
        self.last_reports
            .lock()
            .iter()
            .map(|r| r.sim_time_ns)
            .fold(0.0, f64::max)
            / 1e9
    }
}

/// Is this panic payload the generic poison-barrier collapse of a peer
/// (as opposed to the original failure that caused the poisoning)?
fn is_poison_collapse(payload: &(dyn Any + Send)) -> bool {
    let msg = if let Some(s) = payload.downcast_ref::<&'static str>() {
        *s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str()
    } else {
        return false;
    };
    msg.contains("fabric barrier poisoned")
}

/// Per-rank execution context: the handle through which a rank performs all
/// fabric operations. Not `Send`/`Sync`: it lives on its rank's thread.
pub struct RankCtx<'a> {
    rank: usize,
    pub(crate) shared: &'a Shared,
    pub(crate) clock: FabricTime,
    pub(crate) stats: CommStats,
    /// Non-blocking batch state `(depth, max deferred latency)`: while the
    /// depth is non-zero, data-transfer operations charge only their
    /// injection/bandwidth terms and the largest network latency is
    /// deferred to the outermost [`RankCtx::end_nb_batch`] — modeling the
    /// latency overlap of non-blocking RDMA operations the paper relies on
    /// (§5.1: "we use non-blocking variants of all functions, because they
    /// can additionally increase performance by overlapping communication").
    /// Batches nest: an enclosing batch (e.g. a grouped transaction
    /// commit) absorbs inner ones, so the whole group shares one latency.
    pub(crate) nb_depth: std::cell::Cell<(u32, f64)>,
    /// Flush targets deferred inside an open non-blocking batch: their
    /// synchronization cost is charged once per distinct target at the
    /// outermost batch close (completion coalescing — the flushes of a
    /// group commit share one completion round per peer).
    pub(crate) nb_flushes: std::cell::RefCell<Vec<bool>>,
}

impl<'a> RankCtx<'a> {
    /// This rank's id, `0 ≤ rank < nranks`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    #[inline]
    pub fn nranks(&self) -> usize {
        self.shared.nranks
    }

    /// The fabric's cost model.
    #[inline]
    pub fn cost_model(&self) -> &CostModel {
        &self.shared.cost
    }

    /// The execution backend pricing this rank's operations.
    #[inline]
    pub fn backend(&self) -> BackendKind {
        self.clock.backend()
    }

    /// Current time of this rank in nanoseconds on the active backend:
    /// simulated ns under [`BackendKind::Sim`], real elapsed ns since the
    /// start of [`Fabric::run`] under [`BackendKind::Wall`]. Deltas of
    /// this value are the timing source of every bench harness, so the
    /// same measurement code prices either backend.
    #[inline]
    pub fn now_ns(&self) -> f64 {
        self.clock.now_ns()
    }

    /// Real elapsed nanoseconds since the start of this [`Fabric::run`]
    /// (meaningful on both backends; on `Sim` it measures the simulator
    /// itself).
    #[inline]
    pub fn wall_ns(&self) -> f64 {
        self.clock.wall_ns()
    }

    /// Accrue local compute cost of `n` abstract CPU operations (hashing,
    /// filtering, arithmetic): used by workloads to model query-local
    /// work. On the wall backend the charge is a no-op — the compute
    /// already spent real time.
    #[inline]
    pub fn charge_cpu(&self, n: u64) {
        self.clock.advance(self.shared.cost.cpu_op_ns * n as f64);
    }

    /// Accrue an explicit amount of simulated nanoseconds (no-op on the
    /// wall backend).
    #[inline]
    pub fn charge_ns(&self, ns: f64) {
        self.clock.advance(ns);
    }

    /// Drain hook for service layers: record that this rank dequeued `n`
    /// requests from its service queue in one poll, charging the modeled
    /// drain cost (one doorbell check + per-request dispatch). Serving
    /// ranks call this once per drain cycle so batched serving amortizes
    /// the poll overhead exactly as batched RDMA amortizes doorbells.
    pub fn record_drain(&self, n: usize) {
        self.clock.advance(self.shared.cost.drain(n));
        self.stats.record_drain(n);
    }

    /// Record one translation-cache probe outcome (hit avoided a remote
    /// chain walk); surfaced through [`RankReport`] for the benches and
    /// the server metrics.
    pub fn record_cache_probe(&self, hit: bool) {
        self.stats.record_cache_probe(hit);
    }

    /// Record one translation-cache invalidation (an owner-rank epoch
    /// bump retired a cached entry).
    pub fn record_cache_invalidation(&self) {
        self.stats.record_cache_invalidation();
    }

    /// Persistence hook: record one durable redo-log append of `bytes`
    /// payload and charge its modeled device cost
    /// ([`CostModel::log_write`]) to this rank's clock. Called by the
    /// engine's commit path; group commit issues one append per grouped
    /// transaction, amortizing the fixed submission overhead exactly as
    /// the batched RMA write-back amortizes network latencies.
    pub fn record_log_write(&self, bytes: usize) {
        self.clock.advance(self.shared.cost.log_write(bytes));
        self.stats.record_log_write(bytes);
    }

    /// Record one OLAP scan-view build on this rank (`holders` live
    /// holders decoded, `bytes` of payload lifted out of raw window
    /// images). Pure accounting — the image reads were already charged
    /// as ordinary gets by the sweep.
    pub fn record_scan_build(&self, holders: u64, bytes: u64) {
        self.stats.record_scan_build(holders, bytes);
    }

    /// Record one OLAP job that revalidated and reused a cached scan
    /// view (zero sweep work).
    pub fn record_scan_reuse(&self) {
        self.stats.record_scan_reuse();
    }

    /// Record one scan view delta-patched from the redo-log tail
    /// (`holders` rows re-decoded instead of a full sweep).
    pub fn record_scan_patch(&self, holders: u64, bytes: u64) {
        self.stats.record_scan_patch(holders, bytes);
    }

    /// Record this rank's share of an elastic-reshard redistribution
    /// (`objects` re-materialized holders, `bytes` of payload). Pure
    /// accounting — the window writes themselves were already charged
    /// as ordinary puts by the restore path.
    pub fn record_reshard(&self, objects: u64, bytes: u64) {
        self.stats.record_reshard(objects, bytes);
    }

    /// Record one declarative-query execution started on this rank (the
    /// `query` crate's collective executor).
    pub fn record_query_exec(&self) {
        self.stats.record_query_exec();
    }

    /// Record one executed query stage on this rank (`rows` surviving
    /// bindings, `expanded` adjacency entries inspected, `bytes` routed
    /// through stage exchanges). Pure accounting — the underlying gets
    /// and collectives were already charged as ordinary fabric ops.
    pub fn record_query_stage(&self, rows: u64, expanded: u64, bytes: u64) {
        self.stats.record_query_stage(rows, expanded, bytes);
    }

    /// Record one snapshot pin (a read-only transaction registered its
    /// snapshot epoch — the MVCC read path). Pure accounting: the pin's
    /// marker put / watermark get were already charged as fabric ops.
    pub fn record_snapshot_pin(&self) {
        self.stats.record_snapshot_pin();
    }

    /// Record one lock-free snapshot object read served off a validated
    /// version chain.
    pub fn record_snapshot_read(&self) {
        self.stats.record_snapshot_read();
    }

    /// Record one read-epoch watermark advance (the committing writer's
    /// in-order `CAS e-1 → e`). Pure accounting — the CAS itself was
    /// charged as an ordinary atomic.
    pub fn record_watermark_advance(&self) {
        self.stats.record_watermark_advance();
    }

    /// Record one holder version archived onto its version chain by a
    /// committing writer.
    pub fn record_version_archive(&self) {
        self.stats.record_version_archive();
    }

    /// Record `versions` archived versions freed by one commit-time
    /// chain truncation below the snapshot floor.
    pub fn record_chain_truncation(&self, versions: u64) {
        self.stats.record_chain_truncation(versions);
    }

    /// Record one completed collective maintenance pass on this rank
    /// (vacuum + compaction + free-list rebuild + verify; see
    /// `gda::maint`).
    pub fn record_maintenance_pass(&self) {
        self.stats.record_maintenance_pass();
    }

    /// Record `versions` archived versions freed by the background MVCC
    /// vacuum (distinct from commit-path truncation).
    pub fn record_vacuum(&self, versions: u64) {
        self.stats.record_vacuum(versions);
    }

    /// Record one holder chain rewritten contiguously by the
    /// maintenance compactor (`blocks` continuation blocks relocated).
    pub fn record_compaction(&self, blocks: u64) {
        self.stats.record_compaction(blocks);
    }

    /// Record `bytes` of published snapshot-chain data re-read and
    /// checksum-verified by the online verifier, of which `errors`
    /// files failed verification.
    pub fn record_verify(&self, bytes: u64, errors: u64) {
        self.stats.record_verify(bytes, errors);
    }

    /// Record one delta (incremental) checkpoint image written by this
    /// rank, covering `chunks` dirty chunks.
    pub fn record_delta_checkpoint(&self, chunks: u64) {
        self.stats.record_delta_checkpoint(chunks);
    }

    // ------------------------------------------------------------------
    // Dirty-chunk tracking (delta-checkpoint capture; see `crate::dirty`)
    // ------------------------------------------------------------------

    /// Granularity (bytes) of the fabric's dirty-chunk tracking.
    pub fn dirty_chunk_bytes(&self) -> usize {
        self.shared.dirty.chunk_bytes()
    }

    /// Drain and clear the dirty bitmaps of `rank`'s windows (one raw
    /// bitmap per window, in window order). Call only while the fabric
    /// is quiesced — concurrent writers could land in either epoch.
    pub fn take_dirty(&self, rank: usize) -> Vec<Vec<u64>> {
        self.shared.dirty.take(rank)
    }

    /// OR previously taken bitmaps back into `rank`'s dirty map (the
    /// unwind path of an aborted checkpoint).
    pub fn remark_dirty(&self, rank: usize, bitmaps: &[Vec<u64>]) {
        self.shared.dirty.remark(rank, bitmaps)
    }

    /// Quiesce the fabric: flush every peer, then synchronize all ranks
    /// (a barrier on the reconciled clock). After every rank returns,
    /// no one-sided operation issued before the quiesce is outstanding
    /// anywhere — the drain barrier a collective checkpoint runs behind.
    /// Collective: every rank must call it.
    pub fn quiesce(&self) {
        for target in 0..self.shared.nranks {
            if target != self.rank {
                self.flush(target);
            }
        }
        self.probe_fault(crate::faults::points::FABRIC_QUIESCE);
        self.stats.record_quiesce();
        self.barrier();
    }

    /// The fault-injection plane shared by this fabric (see
    /// [`crate::faults`]); storage layers stacked on the fabric probe the
    /// same registry so one arming call covers the whole I/O path.
    pub fn fault_plane(&self) -> &Arc<FaultPlane> {
        &self.shared.faults
    }

    /// Probe the fault plane at a fabric fault point. Fabric paths have no
    /// error channel, so [`FaultMode::Latency`] is the meaningful mode
    /// here — it charges the simulated clock (sim backend) or sleeps (wall
    /// backend); other modes just count as a hit.
    pub(crate) fn probe_fault(&self, point: &str) {
        let Some(mode) = self.shared.faults.check(point, self.rank) else {
            return;
        };
        self.stats.record_fault_injection();
        if let FaultMode::Latency(ns) = mode {
            match self.backend() {
                BackendKind::Sim => self.clock.advance(ns as f64),
                BackendKind::Wall => std::thread::sleep(std::time::Duration::from_nanos(ns)),
            }
        }
    }

    /// Communication statistics snapshot of this rank (so far).
    pub fn stats_snapshot(&self) -> RankReport {
        let mut r = self.stats.snapshot();
        r.sim_time_ns = self.clock.sim_ns();
        r.wall_time_ns = self.clock.wall_ns();
        r
    }

    #[inline]
    fn win(&self, win: WinId, rank: usize) -> &Window {
        &self.shared.windows[rank][win.0]
    }

    /// Size in bytes of a window (identical on all ranks).
    pub fn win_len_bytes(&self, win: WinId) -> usize {
        self.win(win, self.rank).len_bytes()
    }

    // ------------------------------------------------------------------
    // One-sided operations (paper §5.1: GET, PUT, CAS, AGET, APUT, flush)
    // ------------------------------------------------------------------

    /// Charge a data transfer, honouring an open non-blocking batch: inside
    /// a batch only injection overhead + bandwidth accrue immediately and
    /// the largest latency is deferred to the closing flush.
    #[inline]
    fn charge_transfer(&self, target: usize, bytes: usize) {
        let full = self.shared.cost.transfer(self.rank, target, bytes);
        let (depth, max_latency) = self.nb_depth.get();
        if depth == 0 {
            self.clock.advance(full);
        } else {
            let lat = if target == self.rank {
                0.0
            } else {
                self.shared.cost.l_ns
            };
            self.clock.advance(full - lat);
            self.nb_depth.set((depth, max_latency.max(lat)));
        }
    }

    /// Open a non-blocking batch: subsequent GET/PUT operations overlap
    /// their network latencies until the matching
    /// [`RankCtx::end_nb_batch`]. Batches nest; only the outermost close
    /// charges the deferred latency, so an enclosing batch (a grouped
    /// commit) extends the overlap window across everything inside it.
    pub fn begin_nb_batch(&self) {
        let (depth, max_latency) = self.nb_depth.get();
        self.nb_depth.set((depth + 1, max_latency));
    }

    /// Close a non-blocking batch (the local completion/flush point): the
    /// outermost close charges the largest deferred latency once, plus
    /// one coalesced synchronization per distinct target flushed inside
    /// the batch.
    pub fn end_nb_batch(&self) {
        let (depth, max_latency) = self.nb_depth.get();
        debug_assert!(depth > 0, "end_nb_batch without begin_nb_batch");
        if depth <= 1 {
            self.clock.advance(max_latency);
            self.nb_depth.set((0, 0.0));
            let mut deferred = self.nb_flushes.borrow_mut();
            for target in 0..deferred.len() {
                if deferred[target] {
                    deferred[target] = false;
                    self.clock
                        .advance(self.shared.cost.flush(self.rank, target));
                }
            }
        } else {
            self.nb_depth.set((depth - 1, max_latency));
        }
    }

    /// One-sided bulk GET: read `dst.len()` bytes from `target`'s window.
    pub fn get_bytes(&self, win: WinId, target: usize, off: usize, dst: &mut [u8]) {
        self.charge_transfer(target, dst.len());
        self.stats.record_get(target != self.rank, dst.len());
        self.win(win, target).read_bytes(off, dst);
    }

    /// One-sided bulk PUT: write `src` into `target`'s window.
    pub fn put_bytes(&self, win: WinId, target: usize, off: usize, src: &[u8]) {
        self.charge_transfer(target, src.len());
        self.stats.record_put(target != self.rank, src.len());
        self.shared.dirty.mark(win, target, off, src.len());
        self.win(win, target).write_bytes(off, src);
    }

    /// One-sided single-word GET (non-atomic flavour; still word-atomic).
    pub fn get_u64(&self, win: WinId, target: usize, word: usize) -> u64 {
        self.charge_transfer(target, 8);
        self.stats.record_get(target != self.rank, 8);
        self.win(win, target).load(word)
    }

    /// One-sided single-word PUT.
    pub fn put_u64(&self, win: WinId, target: usize, word: usize, v: u64) {
        self.charge_transfer(target, 8);
        self.stats.record_put(target != self.rank, 8);
        self.shared.dirty.mark(win, target, word * 8, 8);
        self.win(win, target).store(word, v)
    }

    /// Atomic GET of a 64-bit word (hardware-accelerated remote atomic).
    pub fn aget_u64(&self, win: WinId, target: usize, word: usize) -> u64 {
        self.clock
            .advance(self.shared.cost.atomic(self.rank, target));
        self.stats.record_atomic(target != self.rank);
        self.win(win, target).load(word)
    }

    /// Atomic PUT of a 64-bit word.
    pub fn aput_u64(&self, win: WinId, target: usize, word: usize, v: u64) {
        self.clock
            .advance(self.shared.cost.atomic(self.rank, target));
        self.stats.record_atomic(target != self.rank);
        self.shared.dirty.mark(win, target, word * 8, 8);
        self.win(win, target).store(word, v)
    }

    /// Remote compare-and-swap; returns the value observed at the target
    /// (equals `compare` iff the swap succeeded) — the paper's
    /// `CAS(local_new, compare, result, remote)`.
    pub fn cas_u64(&self, win: WinId, target: usize, word: usize, compare: u64, new: u64) -> u64 {
        self.clock
            .advance(self.shared.cost.atomic(self.rank, target));
        self.stats.record_atomic(target != self.rank);
        // conservatively dirty even when the CAS loses — cheaper than
        // branching on the outcome, and a false positive only re-ships
        // one chunk
        self.shared.dirty.mark(win, target, word * 8, 8);
        self.win(win, target).cas(word, compare, new)
    }

    /// Remote fetch-and-add; returns the previous value.
    pub fn fadd_u64(&self, win: WinId, target: usize, word: usize, delta: u64) -> u64 {
        self.clock
            .advance(self.shared.cost.atomic(self.rank, target));
        self.stats.record_atomic(target != self.rank);
        self.shared.dirty.mark(win, target, word * 8, 8);
        self.win(win, target).fadd(word, delta)
    }

    /// Remote fetch-and-sub; returns the previous value.
    pub fn fsub_u64(&self, win: WinId, target: usize, word: usize, delta: u64) -> u64 {
        self.clock
            .advance(self.shared.cost.atomic(self.rank, target));
        self.stats.record_atomic(target != self.rank);
        self.shared.dirty.mark(win, target, word * 8, 8);
        self.win(win, target).fsub(word, delta)
    }

    /// Flush: complete all outstanding one-sided operations towards `target`
    /// and make them visible. In this shared-memory fabric operations
    /// complete eagerly, so flush only charges its synchronization cost and
    /// issues a fence (the memory-visibility role flushes play on RDMA).
    /// Inside an open non-blocking batch the cost is deferred and
    /// coalesced — one synchronization per distinct target at the batch
    /// close — while the fence still executes immediately.
    pub fn flush(&self, target: usize) {
        let (depth, _) = self.nb_depth.get();
        if depth > 0 {
            self.nb_flushes.borrow_mut()[target] = true;
        } else {
            self.clock
                .advance(self.shared.cost.flush(self.rank, target));
        }
        self.stats.record_flush();
        std::sync::atomic::fence(Ordering::SeqCst);
    }

    // ------------------------------------------------------------------
    // Clock publication (used by collectives; see collectives.rs)
    // ------------------------------------------------------------------

    /// Publish this rank's clock and return the max over all ranks after a
    /// full synchronization. Internal building block for collectives.
    pub(crate) fn clock_sync(&self) -> f64 {
        self.shared.clocks[self.rank].store(self.clock.now_ns().to_bits(), Ordering::Release);
        self.shared.barrier.wait();
        let max = (0..self.shared.nranks)
            .map(|r| f64::from_bits(self.shared.clocks[r].load(Ordering::Acquire)))
            .fold(0.0, f64::max);
        self.shared.barrier.wait();
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_each_others_windows() {
        let fabric = FabricBuilder::new(4).window(256).build();
        let w = WinId(0);
        let ok = fabric.run(|ctx| {
            ctx.put_u64(w, ctx.rank(), 0, 1000 + ctx.rank() as u64);
            ctx.barrier();
            let peer = (ctx.rank() + 1) % ctx.nranks();
            ctx.get_u64(w, peer, 0) == 1000 + peer as u64
        });
        assert!(ok.iter().all(|&b| b));
    }

    #[test]
    fn cas_is_globally_atomic() {
        // All ranks increment a counter on rank 0 via CAS loops; the final
        // value must equal the number of increments.
        const PER_RANK: u64 = 200;
        let fabric = FabricBuilder::new(8).window(64).build();
        let w = WinId(0);
        fabric.run(|ctx| {
            for _ in 0..PER_RANK {
                loop {
                    let cur = ctx.aget_u64(w, 0, 0);
                    if ctx.cas_u64(w, 0, 0, cur, cur + 1) == cur {
                        break;
                    }
                }
            }
            ctx.barrier();
            if ctx.rank() == 0 {
                assert_eq!(ctx.aget_u64(w, 0, 0), 8 * PER_RANK);
            }
        });
    }

    #[test]
    fn fadd_counts() {
        let fabric = FabricBuilder::new(6).window(64).build();
        let w = WinId(0);
        fabric.run(|ctx| {
            ctx.fadd_u64(w, 0, 3, 5);
            ctx.barrier();
            assert_eq!(ctx.aget_u64(w, 0, 3), 30);
        });
    }

    #[test]
    fn bulk_transfer_roundtrip_across_ranks() {
        let fabric = FabricBuilder::new(2).window(4096).build();
        let w = WinId(0);
        fabric.run(|ctx| {
            if ctx.rank() == 0 {
                let payload: Vec<u8> = (0..255).collect();
                ctx.put_bytes(w, 1, 17, &payload);
            }
            ctx.barrier();
            if ctx.rank() == 1 {
                let mut got = vec![0u8; 255];
                ctx.get_bytes(w, 1, 17, &mut got);
                assert_eq!(got, (0..255).collect::<Vec<u8>>());
            }
        });
    }

    #[test]
    fn sim_time_and_stats_are_reported() {
        let fabric = FabricBuilder::new(2)
            .backend(BackendKind::Sim)
            .window(64)
            .build();
        let w = WinId(0);
        fabric.run(|ctx| {
            ctx.put_u64(w, 1 - ctx.rank(), 0, 1);
            ctx.flush(1 - ctx.rank());
        });
        let reports = fabric.last_reports();
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert_eq!(r.puts, 1);
            assert_eq!(r.flushes, 1);
            assert!(r.sim_time_ns > 0.0);
        }
        assert!(fabric.last_sim_time_s() > 0.0);
    }

    #[test]
    fn quiesce_flushes_and_synchronizes() {
        let fabric = FabricBuilder::new(4).window(256).build();
        let w = WinId(0);
        fabric.run(|ctx| {
            ctx.put_u64(w, (ctx.rank() + 1) % ctx.nranks(), 0, 7);
            ctx.quiesce();
            // after the quiesce every rank observes its inbound write
            assert_eq!(ctx.get_u64(w, ctx.rank(), 0), 7);
        });
        for r in fabric.last_reports() {
            assert_eq!(r.quiesces, 1);
            assert!(r.flushes >= 3, "quiesce flushes every peer");
        }
    }

    #[test]
    fn log_write_charges_and_counts() {
        let fabric = FabricBuilder::new(1)
            .backend(BackendKind::Sim)
            .window(64)
            .build();
        fabric.run(|ctx| {
            let t0 = ctx.now_ns();
            ctx.record_log_write(1024);
            ctx.record_log_write(0);
            let m = ctx.cost_model();
            let expect = 2.0 * m.log_o_ns + m.log_g_ns_per_byte * 1024.0;
            assert!((ctx.now_ns() - t0 - expect).abs() < 1e-9);
        });
        let r = fabric.last_reports()[0];
        assert_eq!(r.log_appends, 2);
        assert_eq!(r.log_bytes, 1024);
    }

    #[test]
    fn single_rank_fabric_works() {
        let fabric = FabricBuilder::new(1).window(64).build();
        let w = WinId(0);
        let v = fabric.run(|ctx| {
            ctx.aput_u64(w, 0, 0, 42);
            ctx.barrier();
            ctx.aget_u64(w, 0, 0)
        });
        assert_eq!(v, vec![42]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = FabricBuilder::new(0);
    }

    #[test]
    fn rank_panic_payload_survives_to_harness() {
        // a rank assertion must surface with its original message, not
        // the generic join error or a peer's poison-barrier collapse
        let fabric = FabricBuilder::new(4).window(64).build();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fabric.run(|ctx| {
                if ctx.rank() == 2 {
                    panic!("deliberate-rank-failure-6377");
                }
                // peers park in a collective and collapse via the poison
                ctx.barrier();
            });
        }))
        .expect_err("run must propagate the rank panic");
        assert!(
            !is_poison_collapse(&*err),
            "harness must not see the poison collapse as the failure"
        );
        let msg = err
            .downcast_ref::<&'static str>()
            .copied()
            .map(String::from)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            msg.contains("deliberate-rank-failure-6377"),
            "original assertion message lost: {msg:?}"
        );
    }

    #[test]
    fn rank_panic_on_rank_zero_also_survives() {
        // rank 0 joins first; its payload must win over later collapses
        let fabric = FabricBuilder::new(2).window(64).build();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fabric.run(|ctx| {
                if ctx.rank() == 0 {
                    panic!("rank-zero-blew-up");
                }
                ctx.barrier();
            });
        }))
        .expect_err("run must propagate the rank panic");
        let msg = err
            .downcast_ref::<&'static str>()
            .copied()
            .map(String::from)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("rank-zero-blew-up"), "got {msg:?}");
    }
}

#[cfg(test)]
mod wall_tests {
    use super::*;

    fn wall_fabric(n: usize, window: usize) -> Fabric {
        FabricBuilder::new(n)
            .backend(BackendKind::Wall)
            .window(window)
            .build()
    }

    #[test]
    fn wall_ops_are_correct_and_counted() {
        // same one-sided semantics, same op counters — only the clock
        // differs
        let fabric = wall_fabric(4, 256);
        assert_eq!(fabric.backend(), BackendKind::Wall);
        let w = WinId(0);
        let ok = fabric.run(|ctx| {
            assert_eq!(ctx.backend(), BackendKind::Wall);
            ctx.put_u64(w, ctx.rank(), 0, 1000 + ctx.rank() as u64);
            ctx.barrier();
            let peer = (ctx.rank() + 1) % ctx.nranks();
            let v = ctx.get_u64(w, peer, 0);
            ctx.fadd_u64(w, 0, 1, 1);
            ctx.flush(peer);
            ctx.barrier();
            v == 1000 + peer as u64 && ctx.aget_u64(w, 0, 1) == 4
        });
        assert!(ok.iter().all(|&b| b));
        for r in fabric.last_reports() {
            assert_eq!(r.flushes, 1);
            assert_eq!(r.sim_time_ns, 0.0, "wall backend must not charge sim time");
            assert!(r.wall_time_ns > 0.0, "wall time must be measured");
        }
        assert!(fabric.last_time_s() > 0.0);
        assert_eq!(fabric.last_sim_time_s(), 0.0);
    }

    #[test]
    fn wall_clock_is_monotone_and_uncharged() {
        let fabric = wall_fabric(1, 1024);
        let w = WinId(0);
        fabric.run(|ctx| {
            let t0 = ctx.now_ns();
            ctx.charge_ns(1e15); // a petasecond of "cost": must be a no-op
            ctx.charge_cpu(u64::MAX / 2);
            ctx.record_log_write(1 << 20);
            for i in 0..64 {
                ctx.put_u64(w, 0, i, i as u64);
            }
            let t1 = ctx.now_ns();
            assert!(t1 >= t0, "wall clock must be monotone");
            assert!(
                t1 - t0 < 1e12,
                "cost charges leaked into the wall clock: {} ns",
                t1 - t0
            );
        });
        let r = fabric.last_reports()[0];
        assert_eq!(r.log_appends, 1, "stats hooks keep counting on wall");
        assert_eq!(r.log_bytes, 1 << 20);
    }

    #[test]
    fn wall_nb_batch_and_collectives_work() {
        // nb-batch bookkeeping and collectives must run (and count)
        // identically even though nothing is charged
        let fabric = wall_fabric(3, 4096);
        let w = WinId(0);
        let sums = fabric.run(|ctx| {
            ctx.begin_nb_batch();
            for i in 0..8 {
                ctx.put_u64(w, (ctx.rank() + 1) % ctx.nranks(), i, ctx.rank() as u64);
            }
            ctx.flush((ctx.rank() + 1) % ctx.nranks());
            ctx.end_nb_batch();
            ctx.quiesce();
            ctx.allreduce_sum_u64(ctx.rank() as u64)
        });
        assert_eq!(sums, vec![3, 3, 3]);
        for r in fabric.last_reports() {
            assert_eq!(r.quiesces, 1);
            assert!(r.collectives >= 1);
        }
    }
}

#[cfg(test)]
mod nb_tests {
    use super::*;

    #[test]
    fn nb_batch_overlaps_latency() {
        // sequential: N puts pay N latencies; batched: one latency
        let w = WinId(0);
        let fabric = FabricBuilder::new(2)
            .backend(BackendKind::Sim)
            .window(4096)
            .build();
        let times = fabric.run(|ctx| {
            if ctx.rank() != 0 {
                return (0.0, 0.0);
            }
            let payload = [0u8; 64];
            let t0 = ctx.now_ns();
            for i in 0..10 {
                ctx.put_bytes(w, 1, i * 64, &payload);
            }
            let sequential = ctx.now_ns() - t0;

            let t1 = ctx.now_ns();
            ctx.begin_nb_batch();
            for i in 0..10 {
                ctx.put_bytes(w, 1, i * 64, &payload);
            }
            ctx.end_nb_batch();
            let batched = ctx.now_ns() - t1;
            (sequential, batched)
        });
        let (seq, bat) = times[0];
        assert!(bat < seq, "batched {bat} !< sequential {seq}");
        let l = CostModel::default().l_ns;
        // batched saves 9 of the 10 latencies
        assert!((seq - bat - 9.0 * l).abs() < 1e-6, "saved {}", seq - bat);
    }

    #[test]
    fn nb_batch_local_ops_free_of_latency() {
        let fabric = FabricBuilder::new(1).window(4096).build();
        let w = WinId(0);
        fabric.run(|ctx| {
            ctx.begin_nb_batch();
            ctx.put_u64(w, 0, 0, 7); // local: no deferred latency
            ctx.end_nb_batch();
            assert_eq!(ctx.get_u64(w, 0, 0), 7);
        });
    }
}

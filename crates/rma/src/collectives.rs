//! Collective operations over the fabric.
//!
//! The paper's key OLAP/OLSP design choice (§3.3) is to express global
//! queries as *collective transactions* implemented with MPI-style collective
//! communication: all ranks call the routine, enabling tuned O(log P)
//! algorithms with well-defined semantics. This module provides that layer:
//! barrier, broadcast, reductions, all-gather, personalized all-to-all and
//! exclusive scan.
//!
//! Data moves through a per-rank exchange board; simulated clocks are
//! reconciled at every collective (`max` over ranks + the collective's
//! modeled cost), matching the synchronizing nature of these operations.

use std::any::Any;
use std::sync::Arc;

use crate::fabric::RankCtx;

impl<'a> RankCtx<'a> {
    /// Generic exchange: publish `contrib`, observe every rank's
    /// contribution, produce a result. Two barrier phases keep consecutive
    /// collectives from interfering. `coll_bytes` is the modeled per-rank
    /// payload for cost accounting; `cost_ns` the modeled collective cost.
    fn exchange<T, R>(
        &self,
        contrib: T,
        coll_bytes: usize,
        cost_ns: f64,
        f: impl FnOnce(&[Arc<T>]) -> R,
    ) -> R
    where
        T: Send + Sync + 'static,
    {
        let me = self.rank();
        *self.shared.boards[me].lock() = Some(Arc::new(contrib));
        // Publish clock alongside the payload.
        let max_clock = {
            self.shared.clocks[me].store(
                self.clock.now_ns().to_bits(),
                std::sync::atomic::Ordering::Release,
            );
            self.shared.barrier.wait();
            (0..self.nranks())
                .map(|r| {
                    f64::from_bits(self.shared.clocks[r].load(std::sync::atomic::Ordering::Acquire))
                })
                .fold(0.0, f64::max)
        };
        let views: Vec<Arc<T>> = (0..self.nranks())
            .map(|r| {
                let any: Arc<dyn Any + Send + Sync> = self.shared.boards[r]
                    .lock()
                    .clone()
                    .expect("collective called by all ranks");
                any.downcast::<T>()
                    .expect("mismatched collective payload types")
            })
            .collect();
        let out = f(&views);
        self.shared.barrier.wait();
        *self.shared.boards[me].lock() = None;
        self.clock.reconcile(max_clock + cost_ns);
        self.stats.record_collective(coll_bytes);
        out
    }

    /// Synchronize all ranks (and, on the sim backend, their simulated
    /// clocks — wall clocks synchronize themselves through the real
    /// barrier wait).
    pub fn barrier(&self) {
        self.probe_fault(crate::faults::points::FABRIC_COLLECTIVE);
        let max = self.clock_sync();
        self.clock
            .reconcile(max + self.cost_model().barrier(self.nranks()));
        self.stats.record_collective(0);
    }

    /// Broadcast `val` from `root` to all ranks. Non-root ranks pass `None`.
    pub fn bcast<T: Clone + Send + Sync + 'static>(&self, root: usize, val: Option<T>) -> T {
        let bytes = std::mem::size_of::<T>();
        let cost = self.cost_model().reduce_like(self.nranks(), bytes);
        self.exchange(val, bytes, cost, |views| {
            views[root]
                .as_ref()
                .clone()
                .expect("bcast root must supply a value")
        })
    }

    /// Sum-allreduce of a `u64`.
    pub fn allreduce_sum_u64(&self, v: u64) -> u64 {
        let cost = self.cost_model().reduce_like(self.nranks(), 8);
        self.exchange(v, 8, cost, |views| views.iter().map(|x| **x).sum())
    }

    /// Max-allreduce of a `u64`.
    pub fn allreduce_max_u64(&self, v: u64) -> u64 {
        let cost = self.cost_model().reduce_like(self.nranks(), 8);
        self.exchange(v, 8, cost, |views| {
            views.iter().map(|x| **x).max().unwrap_or(0)
        })
    }

    /// Min-allreduce of a `u64`.
    pub fn allreduce_min_u64(&self, v: u64) -> u64 {
        let cost = self.cost_model().reduce_like(self.nranks(), 8);
        self.exchange(v, 8, cost, |views| {
            views.iter().map(|x| **x).min().unwrap_or(u64::MAX)
        })
    }

    /// Sum-allreduce of an `f64`.
    pub fn allreduce_sum_f64(&self, v: f64) -> f64 {
        let cost = self.cost_model().reduce_like(self.nranks(), 8);
        self.exchange(v, 8, cost, |views| views.iter().map(|x| **x).sum())
    }

    /// Max-allreduce of an `f64`.
    pub fn allreduce_max_f64(&self, v: f64) -> f64 {
        let cost = self.cost_model().reduce_like(self.nranks(), 8);
        self.exchange(v, 8, cost, |views| {
            views.iter().map(|x| **x).fold(f64::NEG_INFINITY, f64::max)
        })
    }

    /// Logical-OR allreduce (used for collective-transaction abort voting).
    pub fn allreduce_any(&self, v: bool) -> bool {
        let cost = self.cost_model().reduce_like(self.nranks(), 1);
        self.exchange(v, 1, cost, |views| views.iter().any(|x| **x))
    }

    /// Element-wise sum-allreduce of equal-length `f64` vectors.
    pub fn allreduce_sum_f64_vec(&self, v: Vec<f64>) -> Vec<f64> {
        let bytes = v.len() * 8;
        let cost = self.cost_model().reduce_like(self.nranks(), bytes);
        self.exchange(v, bytes, cost, |views| {
            let n = views[0].len();
            let mut acc = vec![0.0f64; n];
            for view in views {
                debug_assert_eq!(view.len(), n, "allreduce vectors must match");
                for (a, x) in acc.iter_mut().zip(view.iter()) {
                    *a += *x;
                }
            }
            acc
        })
    }

    /// Gather one value from every rank, in rank order.
    pub fn allgather<T: Clone + Send + Sync + 'static>(&self, v: T) -> Vec<T> {
        let bytes = std::mem::size_of::<T>();
        let cost = self.cost_model().allgather(self.nranks(), bytes);
        self.exchange(v, bytes, cost, |views| {
            views.iter().map(|x| x.as_ref().clone()).collect()
        })
    }

    /// Gather a variable-length vector from every rank (concatenated in rank
    /// order is up to the caller; this returns per-rank vectors).
    pub fn allgatherv<T: Clone + Send + Sync + 'static>(&self, v: Vec<T>) -> Vec<Vec<T>> {
        let bytes = v.len() * std::mem::size_of::<T>();
        let cost = self.cost_model().allgather(self.nranks(), bytes);
        self.exchange(v, bytes, cost, |views| {
            views.iter().map(|x| x.as_ref().clone()).collect()
        })
    }

    /// Personalized all-to-all: `rows[t]` is sent to rank `t`; the result's
    /// element `s` is what rank `s` sent to this rank.
    ///
    /// This is the backbone of the OLAP workloads (frontier exchange in BFS,
    /// contribution delivery in PageRank/CDLP/WCC, feature pushes in GNN).
    pub fn alltoallv<T: Clone + Send + Sync + 'static>(&self, rows: Vec<Vec<T>>) -> Vec<Vec<T>> {
        assert_eq!(
            rows.len(),
            self.nranks(),
            "alltoallv needs one row per rank"
        );
        let me = self.rank();
        let elem = std::mem::size_of::<T>();
        let sent: usize = rows
            .iter()
            .enumerate()
            .filter(|(t, _)| *t != me)
            .map(|(_, r)| r.len() * elem)
            .sum();
        let peers = rows
            .iter()
            .enumerate()
            .filter(|(t, r)| *t != me && !r.is_empty())
            .count();
        // Received bytes become known only after the exchange; model the
        // send side here and the receive side inside the closure via a
        // second charge. To keep the clock reconciliation single-shot we
        // fold both into the modeled cost using the observed receive size.
        let cost_model = *self.cost_model();
        let recvd_cell = std::cell::Cell::new(0usize);
        let out = self.exchange(rows, sent, 0.0, |views| {
            let mut recv: Vec<Vec<T>> = Vec::with_capacity(views.len());
            let mut rbytes = 0usize;
            for (s, view) in views.iter().enumerate() {
                let row = view[me].clone();
                if s != me {
                    rbytes += row.len() * elem;
                }
                recv.push(row);
            }
            recvd_cell.set(rbytes);
            recv
        });
        self.clock
            .advance(cost_model.alltoallv(peers, sent, recvd_cell.get()));
        out
    }

    /// Exclusive prefix sum over ranks: rank `i` receives `Σ_{j<i} v_j`.
    pub fn exscan_sum_u64(&self, v: u64) -> u64 {
        let me = self.rank();
        let cost = self.cost_model().reduce_like(self.nranks(), 8);
        self.exchange(v, 8, cost, |views| views[..me].iter().map(|x| **x).sum())
    }
}

#[cfg(test)]
mod tests {
    use crate::{CostModel, FabricBuilder};

    fn fabric(n: usize) -> crate::Fabric {
        FabricBuilder::new(n).cost(CostModel::default()).build()
    }

    #[test]
    fn allreduce_sums() {
        let f = fabric(5);
        let r = f.run(|ctx| ctx.allreduce_sum_u64(ctx.rank() as u64 + 1));
        assert_eq!(r, vec![15; 5]);
    }

    #[test]
    fn allreduce_max_min() {
        let f = fabric(4);
        let r = f.run(|ctx| {
            let max = ctx.allreduce_max_u64(ctx.rank() as u64 * 10);
            let min = ctx.allreduce_min_u64(ctx.rank() as u64 * 10 + 3);
            (max, min)
        });
        assert!(r.iter().all(|&(mx, mn)| mx == 30 && mn == 3));
    }

    #[test]
    fn allreduce_f64_and_any() {
        let f = fabric(3);
        let r = f.run(|ctx| {
            let s = ctx.allreduce_sum_f64(0.5);
            let m = ctx.allreduce_max_f64(-(ctx.rank() as f64));
            let any = ctx.allreduce_any(ctx.rank() == 2);
            let none = ctx.allreduce_any(false);
            (s, m, any, none)
        });
        for (s, m, any, none) in r {
            assert!((s - 1.5).abs() < 1e-12);
            assert_eq!(m, 0.0);
            assert!(any);
            assert!(!none);
        }
    }

    #[test]
    fn allreduce_vec() {
        let f = fabric(4);
        let r = f.run(|ctx| ctx.allreduce_sum_f64_vec(vec![ctx.rank() as f64; 3]));
        assert!(r.iter().all(|v| *v == vec![6.0, 6.0, 6.0]));
    }

    #[test]
    fn bcast_from_each_root() {
        for root in 0..3 {
            let f = fabric(3);
            let r = f.run(|ctx| {
                let val = if ctx.rank() == root {
                    Some(format!("hello-{root}"))
                } else {
                    None
                };
                ctx.bcast(root, val)
            });
            assert!(r.iter().all(|s| *s == format!("hello-{root}")));
        }
    }

    #[test]
    fn allgather_in_rank_order() {
        let f = fabric(6);
        let r = f.run(|ctx| ctx.allgather(ctx.rank() as u32 * 2));
        for got in r {
            assert_eq!(got, vec![0, 2, 4, 6, 8, 10]);
        }
    }

    #[test]
    fn allgatherv_variable_lengths() {
        let f = fabric(4);
        let r = f.run(|ctx| {
            let mine: Vec<u64> = (0..ctx.rank() as u64).collect();
            ctx.allgatherv(mine)
        });
        for got in r {
            assert_eq!(got.len(), 4);
            for (rank, row) in got.iter().enumerate() {
                assert_eq!(row.len(), rank);
            }
        }
    }

    #[test]
    fn alltoallv_transposes() {
        let f = fabric(4);
        let r = f.run(|ctx| {
            // rank s sends value s*10 + t to rank t
            let rows: Vec<Vec<u64>> = (0..4)
                .map(|t| vec![ctx.rank() as u64 * 10 + t as u64])
                .collect();
            ctx.alltoallv(rows)
        });
        for (t, recv) in r.iter().enumerate() {
            for (s, row) in recv.iter().enumerate() {
                assert_eq!(row, &vec![s as u64 * 10 + t as u64]);
            }
        }
    }

    #[test]
    fn alltoallv_empty_rows() {
        let f = fabric(3);
        let r = f.run(|ctx| {
            let rows: Vec<Vec<u8>> = vec![Vec::new(); 3];
            ctx.alltoallv(rows)
        });
        assert!(r.iter().all(|recv| recv.iter().all(|row| row.is_empty())));
    }

    #[test]
    fn exscan() {
        let f = fabric(5);
        let r = f.run(|ctx| ctx.exscan_sum_u64(ctx.rank() as u64 + 1));
        assert_eq!(r, vec![0, 1, 3, 6, 10]);
    }

    #[test]
    fn collectives_reconcile_clocks() {
        // sim-semantics test: pinned to the sim backend (the wall clock
        // cannot be charged forward)
        let f = crate::FabricBuilder::new(4)
            .cost(CostModel::default())
            .backend(crate::BackendKind::Sim)
            .build();
        f.run(|ctx| {
            if ctx.rank() == 2 {
                ctx.charge_ns(1_000_000.0); // one rank is "slow"
            }
            ctx.barrier();
            // after the barrier, everyone's clock is at least the slow
            // rank's time
            assert!(ctx.now_ns() >= 1_000_000.0);
        });
    }

    #[test]
    fn repeated_collectives_do_not_interfere() {
        let f = fabric(4);
        let r = f.run(|ctx| {
            let mut acc = 0u64;
            for i in 0..50 {
                acc = acc.wrapping_add(ctx.allreduce_sum_u64(i + ctx.rank() as u64));
            }
            acc
        });
        assert!(r.windows(2).all(|w| w[0] == w[1]));
    }
}

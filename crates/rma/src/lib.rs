//! # `rma` — a simulated one-sided Remote Memory Access fabric
//!
//! This crate is the substrate on which the GDI-RMA graph database engine
//! (`gda`) is built. It reproduces, in shared memory, the generic RMA
//! programming model the paper targets (§5.1):
//!
//! * a set of *ranks* (simulated processes), each owning one or more
//!   *windows* — memory regions that other ranks may access **only** through
//!   one-sided operations;
//! * one-sided `GET` / `PUT`, atomic `AGET` / `APUT`, `CAS` and `FADD`
//!   (fetch-and-add), and explicit `flush` synchronization;
//! * collective operations (barrier, broadcast, reductions, all-gather,
//!   all-to-all, exclusive scan) with MPI-style semantics;
//! * a LogGP-style network **cost model**: every operation accrues simulated
//!   time on the issuing rank's clock, so scaling experiments can sweep the
//!   simulated machine size while the actual execution runs on however many
//!   cores the host has;
//! * two execution **backends** behind the same `RankCtx` surface (see
//!   [`backend`]): [`BackendKind::Sim`] prices operations on the LogGP
//!   virtual clock (deterministic, the committed-bench baseline), while
//!   [`BackendKind::Wall`] executes the identical memory operations and
//!   reads a real monotonic clock (cost charges are no-ops) — selected
//!   with [`FabricBuilder::backend`] or the `GDI_FABRIC_BACKEND`
//!   environment variable.
//!
//! Ranks are OS threads and windows are arrays of [`AtomicU64`]; remote
//! accesses are genuinely concurrent, so lock-free algorithms built on top
//! (free lists, distributed hash tables, reader-writer locks) experience real
//! races, CAS failures and ABA hazards — exactly the hazards the paper's
//! design addresses.
//!
//! ```
//! use rma::{FabricBuilder, CostModel};
//!
//! let fabric = FabricBuilder::new(4)
//!     .cost(CostModel::default())
//!     .window(1 << 12) // one 4 KiB window per rank
//!     .build();
//! let sums = fabric.run(|ctx| {
//!     let win = rma::WinId(0);
//!     // every rank stores its rank id in its own window, word 0
//!     ctx.aput_u64(win, ctx.rank(), 0, ctx.rank() as u64);
//!     ctx.barrier();
//!     // and reads the neighbour's value one-sidedly
//!     let next = (ctx.rank() + 1) % ctx.nranks();
//!     let v = ctx.aget_u64(win, next, 0);
//!     ctx.allreduce_sum_u64(v)
//! });
//! assert!(sums.iter().all(|&s| s == 6));
//! ```
//!
//! [`AtomicU64`]: std::sync::atomic::AtomicU64

pub mod backend;
pub mod barrier;
pub mod collectives;
pub mod cost;
pub mod dirty;
pub mod fabric;
pub mod faults;
pub mod stats;
pub mod window;

pub use backend::{BackendKind, BACKEND_ENV};
pub use barrier::PoisonBarrier;
pub use cost::{CostModel, SimClock};
pub use dirty::DirtyMap;
pub use fabric::{Fabric, FabricBuilder, RankCtx, WinId};
pub use faults::{FaultMode, FaultPlane};
pub use stats::{CommStats, RankReport};
pub use window::Window;

/// Number of bytes in one fabric word (the atomic access granularity,
/// matching the 64-bit remote atomics highlighted by the paper §5.3).
pub const WORD_BYTES: usize = 8;

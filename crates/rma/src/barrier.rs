//! A poisonable barrier.
//!
//! `std::sync::Barrier` deadlocks the whole fabric if one rank panics while
//! the others wait (the panicking thread never arrives). This barrier adds
//! MPI-abort-like semantics: a panicking rank *poisons* the barrier, which
//! wakes every waiter with a panic of its own, so the failure propagates to
//! the test/benchmark harness instead of hanging it.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, Ordering};

#[derive(Debug)]
struct State {
    arrived: usize,
    generation: u64,
}

/// A reusable N-party barrier that can be poisoned.
#[derive(Debug)]
pub struct PoisonBarrier {
    n: usize,
    state: Mutex<State>,
    cv: Condvar,
    poisoned: AtomicBool,
}

impl PoisonBarrier {
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        Self {
            n,
            state: Mutex::new(State {
                arrived: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Wait for all parties. Panics if the barrier is (or becomes)
    /// poisoned.
    pub fn wait(&self) {
        if self.poisoned.load(Ordering::Acquire) {
            panic!("fabric barrier poisoned: a peer rank panicked");
        }
        let mut g = self.state.lock();
        g.arrived += 1;
        if g.arrived == self.n {
            g.arrived = 0;
            g.generation += 1;
            self.cv.notify_all();
            return;
        }
        let my_gen = g.generation;
        while g.generation == my_gen && !self.poisoned.load(Ordering::Acquire) {
            self.cv.wait(&mut g);
        }
        if self.poisoned.load(Ordering::Acquire) {
            panic!("fabric barrier poisoned: a peer rank panicked");
        }
    }

    /// Poison the barrier, waking all current and future waiters with a
    /// panic.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        let _g = self.state.lock();
        self.cv.notify_all();
    }

    /// Has the barrier been poisoned?
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_synchronization() {
        let b = Arc::new(PoisonBarrier::new(4));
        let counter = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let b = b.clone();
                let c = counter.clone();
                s.spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                    b.wait();
                    // all increments must be visible after the barrier
                    assert_eq!(c.load(Ordering::SeqCst), 4);
                    b.wait();
                });
            }
        });
    }

    #[test]
    fn reusable_across_generations() {
        let b = Arc::new(PoisonBarrier::new(2));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let b = b.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        b.wait();
                    }
                });
            }
        });
    }

    #[test]
    fn poison_wakes_waiters() {
        let b = Arc::new(PoisonBarrier::new(2));
        let waiter = {
            let b = b.clone();
            std::thread::spawn(move || {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.wait()));
                r.is_err()
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        b.poison();
        assert!(waiter.join().unwrap(), "waiter must observe the poison");
        assert!(b.is_poisoned());
    }

    #[test]
    #[should_panic(expected = "poisoned")]
    fn wait_after_poison_panics() {
        let b = PoisonBarrier::new(1);
        b.poison();
        b.wait();
    }
}

//! Stress and property tests of the RMA fabric itself: window atomicity
//! under heavy contention, collective correctness at awkward rank counts,
//! and cost-model invariants.

use proptest::prelude::*;
use rma::{CostModel, FabricBuilder, WinId};

#[test]
fn oversubscribed_fabric_is_correct() {
    // 16 rank threads on however few cores: collectives and atomics must
    // stay correct under arbitrary interleavings
    let fabric = FabricBuilder::new(16)
        .cost(CostModel::zero())
        .window(1 << 12)
        .build();
    let w = WinId(0);
    fabric.run(|ctx| {
        for round in 0..20u64 {
            ctx.fadd_u64(w, (ctx.rank() + round as usize) % 16, 0, 1);
            let total = ctx.allreduce_sum_u64(1);
            assert_eq!(total, 16);
        }
        ctx.barrier();
        let local = ctx.aget_u64(w, ctx.rank(), 0);
        let grand = ctx.allreduce_sum_u64(local);
        assert_eq!(grand, 16 * 20, "lost or duplicated atomic increments");
    });
}

#[test]
fn mixed_puts_and_cas_with_word_isolation() {
    // writers hammer adjacent words; each word must only ever hold values
    // written to *that* word (no cross-word tearing at 8-byte granularity)
    let fabric = FabricBuilder::new(8)
        .cost(CostModel::zero())
        .window(1 << 10)
        .build();
    let w = WinId(0);
    fabric.run(|ctx| {
        let me = ctx.rank() as u64;
        for i in 0..200u64 {
            let tag = (me << 32) | i;
            ctx.put_u64(w, 0, ctx.rank(), tag);
            // read a neighbour's word: must decompose into (rank, counter)
            let peer = (ctx.rank() + 1) % ctx.nranks();
            let v = ctx.get_u64(w, 0, peer);
            if v != 0 {
                let r = v >> 32;
                let c = v & 0xFFFF_FFFF;
                assert_eq!(r as usize, peer, "foreign bits leaked into word");
                assert!(c < 200);
            }
        }
        ctx.barrier();
    });
}

#[test]
fn alltoallv_heavy_payloads_roundtrip() {
    let fabric = FabricBuilder::new(5).cost(CostModel::default()).build();
    let results = fabric.run(|ctx| {
        let me = ctx.rank();
        // rank s sends to rank t a vector of (s*1000 + t) repeated s+t times
        let rows: Vec<Vec<u64>> = (0..5)
            .map(|t| vec![(me * 1000 + t) as u64; me + t])
            .collect();
        let recv = ctx.alltoallv(rows);
        for (s, row) in recv.iter().enumerate() {
            assert_eq!(row.len(), s + me);
            assert!(row.iter().all(|&x| x == (s * 1000 + me) as u64));
        }
        true
    });
    assert!(results.iter().all(|&b| b));
}

#[test]
fn collectives_at_odd_rank_counts() {
    for n in [1usize, 3, 7, 13] {
        let fabric = FabricBuilder::new(n).cost(CostModel::default()).build();
        let r = fabric.run(|ctx| {
            let sum = ctx.allreduce_sum_u64(ctx.rank() as u64);
            let max = ctx.allreduce_max_u64(ctx.rank() as u64);
            let scan = ctx.exscan_sum_u64(1);
            (sum, max, scan)
        });
        let want_sum = (n as u64 * (n as u64 - 1)) / 2;
        for (rank, &(sum, max, scan)) in r.iter().enumerate() {
            assert_eq!(sum, want_sum, "n={n}");
            assert_eq!(max, n as u64 - 1);
            assert_eq!(scan, rank as u64);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn window_byte_io_roundtrips(
        off in 0usize..256,
        data in prop::collection::vec(any::<u8>(), 0..256)
    ) {
        let fabric = FabricBuilder::new(1).cost(CostModel::zero()).window(1024).build();
        let w = WinId(0);
        let ok = fabric.run(|ctx| {
            ctx.put_bytes(w, 0, off, &data);
            let mut back = vec![0u8; data.len()];
            ctx.get_bytes(w, 0, off, &mut back);
            back == data
        });
        prop_assert!(ok[0]);
    }

    #[test]
    fn transfer_cost_is_monotone_in_size(a in 0usize..100_000, b in 0usize..100_000) {
        let m = CostModel::default();
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(m.transfer(0, 1, lo) <= m.transfer(0, 1, hi));
        prop_assert!(m.transfer(0, 0, lo) <= m.transfer(0, 0, hi));
    }

    #[test]
    fn collective_costs_monotone_in_ranks(p in 1usize..4096, q in 1usize..4096) {
        let m = CostModel::default();
        let (lo, hi) = (p.min(q), p.max(q));
        prop_assert!(m.barrier(lo) <= m.barrier(hi));
        prop_assert!(m.reduce_like(lo, 64) <= m.reduce_like(hi, 64));
        prop_assert!(m.allgather(lo, 64) <= m.allgather(hi, 64));
    }

    #[test]
    fn sim_clock_never_decreases_through_ops(ops in prop::collection::vec(0u8..5, 1..40)) {
        let fabric = FabricBuilder::new(2).cost(CostModel::default()).window(1024).build();
        let w = WinId(0);
        let monotone = fabric.run(|ctx| {
            let mut last = ctx.now_ns();
            let mut ok = true;
            for &op in &ops {
                match op {
                    0 => { ctx.put_u64(w, 1 - ctx.rank(), 0, 1); }
                    1 => { let _ = ctx.get_u64(w, 1 - ctx.rank(), 0); }
                    2 => { let _ = ctx.fadd_u64(w, 1 - ctx.rank(), 1, 1); }
                    3 => { ctx.flush(1 - ctx.rank()); }
                    _ => { ctx.barrier(); }
                }
                let now = ctx.now_ns();
                ok &= now >= last;
                last = now;
            }
            // drain any barriers the peer still expects
            ok
        });
        // both ranks execute the same op sequence, so barriers match up
        prop_assert!(monotone.iter().all(|&b| b));
    }
}

//! Collective executor: run a [`Plan`] against a [`GdaRank`].
//!
//! Execution is **collective and symmetric**: every rank calls
//! [`execute`] with the *same* query and plan (plan with a
//! [`Catalog`](crate::planner::Catalog) from
//! [`Catalog::gather`](crate::planner::Catalog::gather) — it is
//! collective precisely so all ranks cost identically), and every
//! collective below fires in plan order on all ranks. Two ranks
//! disagreeing on a plan would deadlock the fabric.
//!
//! The executor carries bindings as `(root, cur)` pairs — the first and
//! the newest chain vertex, which is all the supported projections need
//! — deduplicated after every stage:
//!
//! - **driving stage**: point lookup (one DHT translation, owner rank
//!   keeps the binding; a deleted id is an empty result, not an error),
//!   local index-posting scan ([`gda::Transaction::local_index_scan`]),
//!   or full-partition sweep over the collective [`gda::CsrView`];
//! - **expand stages**: transactional
//!   [`gda::Transaction::neighbors_matching`] (pipelined one-sided chain
//!   reads), or Csr routing — bindings travel to the rank owning `cur`
//!   via `alltoallv` and probe its cached view adjacency, with a
//!   broadcast semi-join of qualifying target ids when the target
//!   pattern filters (the view has no vertex labels/properties);
//! - **aggregate stage**: targets are routed to their owner rank for
//!   machine-wide dedup, then combined with `allreduce`/`allgatherv`
//!   (sums are wrapping: generator properties span the full `u64`
//!   range).

use rustc_hash::FxHashSet;

use gda::{DPtr, GdaRank, Transaction};
use gdi::{
    AccessMode, Constraint, EdgeOrientation, GdiError, GdiResult, PropertyValue, Subconstraint,
};

use crate::ast::{AggTarget, Aggregate, NodePattern, Query};
use crate::physical::{AccessPath, ExpandPath, QueryOutput, QueryValue, StageStats};
use crate::planner::Plan;

/// Does `v` satisfy the pattern's label + property predicates (app-id
/// excluded — the driving stages handle it)?
fn node_matches(tx: &Transaction, v: DPtr, p: &NodePattern) -> GdiResult<bool> {
    for l in &p.labels {
        if !tx.has_label(v, *l)? {
            return Ok(false);
        }
    }
    for f in &p.props {
        let Some(val) = tx.property(v, f.ptype)? else {
            return Ok(false);
        };
        if !f.op.eval(val.cmp_total(&f.value)) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// The pattern as a storage-side DNF constraint (one conjunctive
/// subconstraint), stamped with the current metadata epoch.
fn pattern_constraint(p: &NodePattern, epoch: u64) -> Constraint {
    let mut sub = Subconstraint::new();
    for l in &p.labels {
        sub = sub.with_label(*l);
    }
    for f in &p.props {
        sub = sub.with_prop(f.ptype, f.op, f.value.clone());
    }
    Constraint::from_sub(sub).at_epoch(epoch)
}

fn dedup_pairs(v: &mut Vec<(DPtr, DPtr)>) {
    let mut seen = FxHashSet::default();
    v.retain(|&(a, b)| seen.insert((a.raw(), b.raw())));
}

/// Execute `plan` collectively. Every rank must call this with the same
/// `q`/`plan`; the returned [`QueryValue`] is identical on all ranks,
/// the per-stage counters are this rank's share.
pub fn execute(eng: &GdaRank, q: &Query, plan: &Plan) -> QueryOutput {
    let ctx = eng.ctx();
    ctx.record_query_exec();
    let nranks = eng.nranks();
    let epoch = eng.meta_epoch();
    // the view rendezvous is collective: it must run before the read
    // transaction's own collectives, in plan order
    let view = plan.uses_view.then(|| eng.olap_view());
    let tx = eng.begin_collective(AccessMode::ReadOnly);
    let mut stages: Vec<StageStats> = Vec::new();
    let record = |stages: &mut Vec<StageStats>, si: usize, rows: u64, expanded: u64, bytes: u64| {
        ctx.record_query_stage(rows, expanded, bytes);
        stages.push(StageStats {
            desc: plan
                .stages
                .get(si)
                .map(|s| s.desc.clone())
                .unwrap_or_default(),
            rows,
            expanded,
            comm_bytes: bytes,
        });
    };

    // ---- driving stage ---------------------------------------------------
    let mut bind: Vec<(DPtr, DPtr)> = match plan.choice.access {
        AccessPath::PointLookup => {
            let app = q.root.app_id.expect("point lookup requires an app-id");
            let mut b = Vec::new();
            match tx.translate_vertex_id(app) {
                // only the owner rank retains the binding, so dedup and
                // routing behave exactly like the scan paths
                Ok(v) if v.rank() == eng.rank() => {
                    if node_matches(&tx, v, &q.root).expect("root filter") {
                        b.push((v, v));
                    }
                }
                Ok(_) => {}
                // deleted or never-created id: an empty result (churn
                // safety — concurrent deletes must not panic readers)
                Err(GdiError::NotFound(_)) => {}
                Err(e) => panic!("point lookup failed: {e:?}"),
            }
            b
        }
        AccessPath::IndexScan(ix) => {
            let c = pattern_constraint(&q.root, epoch);
            tx.local_index_scan(ix, &c)
                .expect("index scan")
                .into_iter()
                .filter(|p| q.root.app_id.map(|a| a == p.app_id).unwrap_or(true))
                .map(|p| (p.vertex, p.vertex))
                .collect()
        }
        AccessPath::Sweep => {
            let view = view.as_ref().expect("sweep plans carry a view");
            let mut b = Vec::new();
            for i in 0..view.len() {
                if let Some(a) = q.root.app_id {
                    if view.apps[i] != a.0 {
                        continue;
                    }
                }
                let v = view.vids[i];
                if node_matches(&tx, v, &q.root).expect("root filter") {
                    b.push((v, v));
                }
            }
            b
        }
    };
    dedup_pairs(&mut bind);
    record(&mut stages, 0, bind.len() as u64, 0, 0);

    // ---- expand stages ---------------------------------------------------
    for (si, e) in q.expands.iter().enumerate() {
        let mut expanded = 0u64;
        let mut bytes = 0u64;
        match plan.choice.expand {
            ExpandPath::Tx => {
                let c = pattern_constraint(&e.target, epoch);
                let mut next = Vec::new();
                for &(root, cur) in &bind {
                    if e.close_to_root {
                        let nbrs = tx
                            .neighbors(cur, e.orient, e.edge_label)
                            .expect("close-cycle neighbors");
                        expanded += nbrs.len() as u64;
                        if nbrs.contains(&root) {
                            // the closing step filters bindings; `cur`
                            // stays the last non-closing variable
                            next.push((root, cur));
                        }
                    } else if e.target.is_trivial() {
                        // nothing to filter: plain edge-list walk, no
                        // holder prefetch
                        let nbrs = tx
                            .neighbors(cur, e.orient, e.edge_label)
                            .expect("expand neighbors");
                        expanded += nbrs.len() as u64;
                        for n in nbrs {
                            next.push((root, n));
                        }
                    } else {
                        let nbrs = tx
                            .neighbors_matching(cur, e.orient, e.edge_label, &c)
                            .expect("expand neighbors");
                        expanded += nbrs.len() as u64;
                        for n in nbrs {
                            next.push((root, n));
                        }
                    }
                }
                bind = next;
            }
            ExpandPath::Csr => {
                let view = view.as_ref().expect("csr plans carry a view");
                // semi-join: every rank qualifies its local partition
                // against the target pattern and broadcasts the ids (the
                // view has no vertex attributes). Collective — gated on
                // query shape only, identical on all ranks.
                let qual: Option<FxHashSet<u64>> = if e.close_to_root || e.target.is_trivial() {
                    None
                } else {
                    let mut mine = Vec::new();
                    for i in 0..view.len() {
                        let v = view.vids[i];
                        if node_matches(&tx, v, &e.target).expect("target filter") {
                            mine.push(v.raw());
                        }
                    }
                    bytes += mine.len() as u64 * 8;
                    Some(ctx.allgatherv(mine).into_iter().flatten().collect())
                };
                // route each binding to the rank owning `cur`, whose
                // view holds its adjacency
                let mut outbox: Vec<Vec<(u64, u64)>> = vec![Vec::new(); nranks];
                for &(root, cur) in &bind {
                    outbox[cur.rank()].push((root.raw(), cur.raw()));
                }
                bytes += bind.len() as u64 * 16;
                let inbox = ctx.alltoallv(outbox);
                let mut next = Vec::new();
                for (root_raw, cur_raw) in inbox.into_iter().flatten() {
                    let root = DPtr::from_raw(root_raw);
                    let cur = DPtr::from_raw(cur_raw);
                    let Some(&row) = view.index_of.get(&cur_raw) else {
                        continue;
                    };
                    let (tgts, lbls) = match e.orient {
                        EdgeOrientation::Outgoing => (view.out(row), view.out_labels(row)),
                        EdgeOrientation::Any => (view.any(row), view.any_labels(row)),
                        EdgeOrientation::Incoming | EdgeOrientation::Undirected => {
                            unreachable!("the planner never assigns csr to in/undirected expands")
                        }
                    };
                    for (t, l) in tgts.iter().zip(lbls) {
                        if let Some(el) = e.edge_label {
                            if *l != el.0 {
                                continue;
                            }
                        }
                        expanded += 1;
                        if e.close_to_root {
                            if *t == root {
                                next.push((root, cur));
                            }
                        } else if qual.as_ref().map(|s| s.contains(&t.raw())).unwrap_or(true) {
                            next.push((root, *t));
                        }
                    }
                }
                bind = next;
            }
        }
        dedup_pairs(&mut bind);
        record(&mut stages, si + 1, bind.len() as u64, expanded, bytes);
    }

    // ---- aggregate stage -------------------------------------------------
    // route the target vertex of each binding to its owner rank and
    // dedup there: distinct-target semantics without a global set
    let mut outbox: Vec<Vec<u64>> = vec![Vec::new(); nranks];
    for &(root, cur) in &bind {
        let v = match q.returns.target {
            AggTarget::Root => root,
            AggTarget::Last => cur,
        };
        outbox[v.rank()].push(v.raw());
    }
    let routed: u64 = outbox.iter().map(|o| o.len() as u64 * 8).sum();
    let mine: FxHashSet<u64> = ctx.alltoallv(outbox).into_iter().flatten().collect();
    let value = match &q.returns.agg {
        Aggregate::Count => QueryValue::Count(ctx.allreduce_sum_u64(mine.len() as u64)),
        Aggregate::Sum(pt) => {
            let mut s = 0u64;
            for &raw in &mine {
                if let Some(PropertyValue::U64(x)) =
                    tx.property(DPtr::from_raw(raw), *pt).expect("sum property")
                {
                    s = s.wrapping_add(x);
                }
            }
            let total = ctx
                .allgatherv(vec![s])
                .into_iter()
                .flatten()
                .fold(0u64, |a, b| a.wrapping_add(b));
            QueryValue::Sum(total)
        }
        Aggregate::CollectIds => {
            let mut ids: Vec<u64> = mine
                .iter()
                .map(|&raw| {
                    tx.vertex_app_id(DPtr::from_raw(raw))
                        .expect("collect app id")
                        .0
                })
                .collect();
            ids.sort_unstable();
            let mut all: Vec<u64> = ctx.allgatherv(ids).into_iter().flatten().collect();
            all.sort_unstable();
            QueryValue::Ids(all)
        }
    };
    record(
        &mut stages,
        1 + q.expands.len(),
        mine.len() as u64,
        0,
        routed,
    );
    tx.commit().expect("collective read-only commit");
    QueryOutput { value, stages }
}

/// Convenience: collectively gather a catalog, plan and execute in one
/// call, returning the plan alongside the output.
pub fn run(eng: &GdaRank, q: &Query) -> (Plan, QueryOutput) {
    let cat = crate::planner::Catalog::gather(eng);
    let plan = crate::planner::plan(&cat, q);
    let out = execute(eng, q, &plan);
    (plan, out)
}

//! The typed pattern/filter AST.
//!
//! A [`Query`] is a linear MATCH chain — a driving node pattern followed
//! by zero or more edge expansions — closed by a projection:
//!
//! ```text
//! MATCH (p:L0)-[:L1]->(c:L2) WHERE p.P0 > t1 AND c.P1 > t2
//! RETURN count(p)
//! ```
//!
//! ## Matching semantics
//!
//! A *binding* of a query with expansions `e1..ek` is a tuple
//! `(v0, v1, .., vk)` of vertices such that `v0` satisfies the root
//! [`NodePattern`] (all labels, all property predicates, and the app-id
//! equality when present), and for every step `i` there is an edge from
//! `v{i-1}` to `v{i}` satisfying the step's orientation and edge-label
//! constraint, with `v{i}` satisfying the step's target pattern. A
//! *cycle-closing* step instead requires an edge from `v{i-1}` back to
//! the root (`v{i} = v0`), the triangle-ish shape.
//!
//! The projection aggregates over the **distinct** vertices bound to one
//! variable (the root or the last pattern node) across all bindings:
//! count, sum of a `u64` property (wrapping, missing entries contribute
//! zero), or the sorted application ids.

use gdi::{AppVertexId, CmpOp, EdgeOrientation, LabelId, PTypeId, PropertyValue};

/// One property predicate: `property(ptype) <op> value`.
#[derive(Debug, Clone, PartialEq)]
pub struct PropFilter {
    /// Property type compared.
    pub ptype: PTypeId,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand side.
    pub value: PropertyValue,
}

/// A node pattern: conjunctive label + property predicates, and an
/// optional application-id equality (the DHT point-lookup predicate).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodePattern {
    /// Variable name (explain/debug only; semantics are positional).
    pub var: String,
    /// Labels the vertex must carry (all of them).
    pub labels: Vec<LabelId>,
    /// Property predicates (all must hold).
    pub props: Vec<PropFilter>,
    /// `id(var) = x` equality predicate — only meaningful on the root.
    pub app_id: Option<AppVertexId>,
}

impl NodePattern {
    /// A pattern with no predicates (matches every vertex).
    pub fn any(var: &str) -> Self {
        Self {
            var: var.to_string(),
            ..Self::default()
        }
    }

    /// Does the pattern carry no label/property/app-id predicate at all?
    pub fn is_trivial(&self) -> bool {
        self.labels.is_empty() && self.props.is_empty() && self.app_id.is_none()
    }
}

/// One edge-expansion step of the MATCH chain.
#[derive(Debug, Clone, PartialEq)]
pub struct Expand {
    /// Edge orientation relative to the previous pattern node.
    pub orient: EdgeOrientation,
    /// Required edge label, if any.
    pub edge_label: Option<LabelId>,
    /// Target node pattern. Ignored when `close_to_root` is set.
    pub target: NodePattern,
    /// Cycle-closing step: the edge must lead back to the root binding
    /// instead of binding a fresh node (`(a)-[..]->(b)-[..]->(a)`).
    pub close_to_root: bool,
}

/// Which chain variable the projection aggregates over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggTarget {
    /// The driving (first) pattern node.
    Root,
    /// The last non-closing pattern node of the chain.
    Last,
}

/// The aggregate computed over the distinct vertices of the target
/// variable.
#[derive(Debug, Clone, PartialEq)]
pub enum Aggregate {
    /// Number of distinct vertices.
    Count,
    /// Wrapping sum of the (single-entry `u64`) property over the
    /// distinct vertices; vertices without the property contribute 0.
    Sum(PTypeId),
    /// Sorted application ids of the distinct vertices.
    CollectIds,
}

/// The RETURN clause: an aggregate over one chain variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Projection {
    /// Variable aggregated over.
    pub target: AggTarget,
    /// The aggregate.
    pub agg: Aggregate,
}

/// A complete declarative query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The driving node pattern.
    pub root: NodePattern,
    /// Expansion steps, in chain order.
    pub expands: Vec<Expand>,
    /// The projection.
    pub returns: Projection,
}

impl Query {
    /// Variable name the projection aggregates over.
    pub fn target_var(&self) -> &str {
        match self.returns.target {
            AggTarget::Root => &self.root.var,
            AggTarget::Last => self
                .expands
                .iter()
                .rev()
                .find(|e| !e.close_to_root)
                .map(|e| e.target.var.as_str())
                .unwrap_or(&self.root.var),
        }
    }

    /// Does any expansion step use the given orientation?
    pub fn uses_orientation(&self, o: EdgeOrientation) -> bool {
        self.expands.iter().any(|e| e.orient == o)
    }

    /// Render the query in the Cypher-ish surface syntax (ids shown
    /// numerically; the parseable form needs name resolution).
    pub fn display(&self) -> String {
        let mut s = String::from("MATCH ");
        let node = |n: &NodePattern| {
            let mut t = format!("({}", n.var);
            for l in &n.labels {
                t.push_str(&format!(":#{}", l.0));
            }
            t.push(')');
            t
        };
        s.push_str(&node(&self.root));
        for e in &self.expands {
            let (l, r) = match e.orient {
                EdgeOrientation::Outgoing => ("-", "->"),
                EdgeOrientation::Incoming => ("<-", "-"),
                _ => ("-", "-"),
            };
            let lbl = e
                .edge_label
                .map(|l| format!("[:#{}]", l.0))
                .unwrap_or_else(|| "[]".to_string());
            s.push_str(&format!("{l}{lbl}{r}"));
            if e.close_to_root {
                s.push_str(&format!("({})", self.root.var));
            } else {
                s.push_str(&node(&e.target));
            }
        }
        let tgt = self.target_var();
        s.push_str(&match &self.returns.agg {
            Aggregate::Count => format!(" RETURN count(DISTINCT {tgt})"),
            Aggregate::Sum(p) => format!(" RETURN sum({tgt}.#{})", p.0),
            Aggregate::CollectIds => format!(" RETURN collect({tgt})"),
        });
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_var_resolution() {
        let q = Query {
            root: NodePattern::any("a"),
            expands: vec![
                Expand {
                    orient: EdgeOrientation::Outgoing,
                    edge_label: None,
                    target: NodePattern::any("b"),
                    close_to_root: false,
                },
                Expand {
                    orient: EdgeOrientation::Outgoing,
                    edge_label: None,
                    target: NodePattern::default(),
                    close_to_root: true,
                },
            ],
            returns: Projection {
                target: AggTarget::Last,
                agg: Aggregate::Count,
            },
        };
        // the closing step binds no fresh node: "last" is still b
        assert_eq!(q.target_var(), "b");
        assert!(q.display().contains("MATCH (a)"));
    }

    #[test]
    fn trivial_pattern() {
        assert!(NodePattern::any("x").is_trivial());
        let mut p = NodePattern::any("x");
        p.app_id = Some(AppVertexId(3));
        assert!(!p.is_trivial());
    }
}

//! Rule/cost-based planner: pick the driving access path and the
//! expansion traversal for a [`Query`].
//!
//! ## Rules (what is viable)
//!
//! - **Point lookup** needs an `id(root) = x` equality predicate — one
//!   DHT translation replaces any scan.
//! - **Index scan** needs an explicit index *covering* the root: the
//!   index is unfiltered (`labels` empty) or shares a label with the
//!   root pattern, so every root match is among its postings. The
//!   planner considers only the smallest covering index.
//! - **Sweep** (full-partition [`gda::CsrView`] iteration) is always
//!   viable.
//! - **Csr expansion** needs at least one expansion step and no
//!   `Incoming`/`Undirected` orientation (the view stores out/any
//!   adjacency only); **Tx expansion** is always viable.
//!
//! ## Cost (which viable choice wins)
//!
//! Stage costs come from the LogGP model in [`rma::cost::CostModel`] —
//! the same constants the simulated fabric charges — combined with
//! simple selectivity estimates: exact label frequencies where an index
//! publishes them, fixed priors for property predicates. The estimate
//! is the machine-wide critical path in simulated nanoseconds, so "the
//! cheapest plan" means the same thing as the benches' simulated time.
//!
//! Planning must be **deterministic across ranks**: the executor runs
//! collectives in plan order, so two ranks disagreeing on a plan would
//! deadlock the fabric. [`Catalog::gather`] is therefore collective
//! (every rank sees identical statistics), and everything downstream is
//! a pure function of `(Catalog, Query)`.

use gda::{GdaRank, IndexDef};
use gdi::{CmpOp, EdgeOrientation};
use rma::CostModel;

use crate::ast::{Aggregate, NodePattern, Query};
use crate::physical::{AccessPath, ExpandPath, PathChoice, StagePlan};

/// Fallback mean out-degree when no scan view is cached anywhere.
const DEFAULT_DEG_OUT: f64 = 8.0;
/// Holder decode + predicate evaluation: words touched per vertex.
const HOLDER_EVAL_WORDS: f64 = 48.0;
/// Holder decode + predicate evaluation: cpu ops per vertex.
const HOLDER_EVAL_OPS: f64 = 8.0;
/// Wire size of one routed `(root, cur)` binding pair.
const PAIR_BYTES: f64 = 16.0;
/// Encoded holder bytes moved by one remote holder fetch.
const HOLDER_WIRE_BYTES: usize = 192;

/// Statistics of one explicit index as the planner sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexStat {
    /// The index definition (labels decide covering).
    pub def: IndexDef,
    /// Machine-wide posting count.
    pub entries: u64,
}

/// Collectively gathered statistics the planner runs on. All ranks hold
/// an identical catalog, so planning is replicated instead of
/// coordinated.
#[derive(Debug, Clone, PartialEq)]
pub struct Catalog {
    /// Fabric size.
    pub nranks: usize,
    /// Machine-wide live vertex estimate.
    pub n_vertices: u64,
    /// Label universe size (selectivity prior for edge labels).
    pub n_labels: usize,
    /// Explicit indexes with machine-wide posting counts (id order).
    pub indexes: Vec<IndexStat>,
    /// Mean out-degree (exact when a scan view was cached everywhere).
    pub deg_out: f64,
    /// Mean undirected degree (out + in incidences per vertex).
    pub deg_any: f64,
    /// Every rank holds a cached scan view (a Csr stage revalidates
    /// instead of sweeping).
    pub view_cached: bool,
    /// The fabric's LogGP constants.
    pub cost: CostModel,
    /// Metadata epoch the catalog was taken at.
    pub meta_epoch: u64,
}

impl Catalog {
    /// Collectively gather planner statistics. Every rank must call
    /// this together; the result is identical on all ranks.
    pub fn gather(eng: &GdaRank) -> Catalog {
        let ctx = eng.ctx();
        let mut defs = eng.all_indexes();
        defs.sort_by_key(|d| d.id);
        // one exchange: per-index local posting counts + local view stats
        let mut local: Vec<u64> = defs
            .iter()
            .map(|d| eng.local_index_vertices(d.id).len() as u64)
            .collect();
        let peek = eng.olap_view_peek();
        let (lv, le_out, le_any, have) = peek
            .as_ref()
            .map(|v| {
                (
                    v.len() as u64,
                    v.out_edges() as u64,
                    v.any_edges() as u64,
                    1,
                )
            })
            .unwrap_or((0, 0, 0, 0));
        local.extend_from_slice(&[lv, le_out, le_any, have]);
        let gathered = ctx.allgatherv(local);
        let mut totals = vec![0u64; defs.len() + 4];
        for row in &gathered {
            for (t, v) in totals.iter_mut().zip(row) {
                *t += v;
            }
        }
        let (view_v, view_out, view_any, view_haves) = (
            totals[defs.len()],
            totals[defs.len() + 1],
            totals[defs.len() + 2],
            totals[defs.len() + 3],
        );
        let view_cached = view_haves as usize == eng.nranks();

        let indexes: Vec<IndexStat> = defs
            .into_iter()
            .zip(totals.iter())
            .map(|(def, &entries)| IndexStat { def, entries })
            .collect();
        // vertex count: an all-vertex index is exact; a view cached
        // everywhere is exact too; otherwise the largest index is a
        // lower bound
        let n_vertices = indexes
            .iter()
            .find(|s| s.def.labels.is_empty())
            .map(|s| s.entries)
            .or_else(|| view_cached.then_some(view_v))
            .or_else(|| indexes.iter().map(|s| s.entries).max())
            .unwrap_or(0)
            .max(1);
        let (deg_out, deg_any) = if view_cached && view_v > 0 {
            (
                view_out as f64 / view_v as f64,
                view_any as f64 / view_v as f64,
            )
        } else {
            (DEFAULT_DEG_OUT, 2.0 * DEFAULT_DEG_OUT)
        };
        Catalog {
            nranks: eng.nranks(),
            n_vertices,
            n_labels: eng.meta().all_labels().len().max(1),
            indexes,
            deg_out,
            deg_any,
            view_cached,
            cost: *ctx.cost_model(),
            meta_epoch: eng.meta_epoch(),
        }
    }

    /// Fraction of vertices carrying label `l` (exact when an index on
    /// exactly `{l}` exists; the tightest covering index otherwise).
    fn label_sel(&self, l: gdi::LabelId) -> f64 {
        let n = self.n_vertices as f64;
        let tightest = self
            .indexes
            .iter()
            .filter(|s| s.def.labels.contains(&l))
            .map(|s| s.entries as f64 / n)
            .fold(f64::INFINITY, f64::min);
        if tightest.is_finite() {
            tightest.clamp(1e-9, 1.0)
        } else {
            0.5
        }
    }

    /// Estimated fraction of vertices matching the pattern.
    fn pattern_sel(&self, p: &NodePattern) -> f64 {
        let mut s = 1.0f64;
        for l in &p.labels {
            s *= self.label_sel(*l);
        }
        for f in &p.props {
            s *= prop_sel(f.op);
        }
        if p.app_id.is_some() {
            s = s.min(1.0 / self.n_vertices as f64);
        }
        s.clamp(1e-9, 1.0)
    }

    /// The smallest explicit index covering the root pattern, if any.
    fn best_covering_index(&self, root: &NodePattern) -> Option<&IndexStat> {
        self.indexes
            .iter()
            .filter(|s| {
                s.def.labels.is_empty() || root.labels.iter().any(|l| s.def.labels.contains(l))
            })
            .min_by_key(|s| (s.entries, s.def.id))
    }

    fn holder_eval_ns(&self) -> f64 {
        self.cost.local_word_ns * HOLDER_EVAL_WORDS + self.cost.cpu_op_ns * HOLDER_EVAL_OPS
    }

    fn remote_holder_ns(&self) -> f64 {
        self.cost.transfer(0, 1, HOLDER_WIRE_BYTES) + self.holder_eval_ns()
    }

    /// Cost of making the scan view available (revalidation when cached
    /// everywhere, a full collective sweep otherwise).
    fn view_ns(&self) -> f64 {
        let p = self.nranks;
        if self.view_cached {
            p as f64 * self.cost.atomic(0, 1) + self.cost.barrier(p)
        } else {
            let local = self.n_vertices as f64 / p as f64;
            local * self.cost.local_word_ns * 64.0
                + self.cost.alltoallv(
                    p.saturating_sub(1),
                    (local * 16.0) as usize,
                    (local * 16.0) as usize,
                )
                + self.cost.barrier(p)
        }
    }
}

/// Property-predicate selectivity priors.
fn prop_sel(op: CmpOp) -> f64 {
    match op {
        CmpOp::Eq => 0.05,
        CmpOp::Ne => 0.95,
        _ => 1.0 / 3.0,
    }
}

/// An explainable physical plan: the chosen paths, per-stage estimates
/// and the costs of the alternatives that lost.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The winning access-path assignment.
    pub choice: PathChoice,
    /// Estimated machine-wide critical path, simulated nanoseconds.
    pub est_cost_ns: f64,
    /// Estimated distinct aggregate targets.
    pub est_rows: f64,
    /// Per-stage estimates, in execution order.
    pub stages: Vec<StagePlan>,
    /// `(choice, est_cost_ns)` of every viable alternative, cheapest
    /// first (includes the winner).
    pub alternatives: Vec<(String, f64)>,
    /// The executor must rendezvous on [`GdaRank::olap_view`] first.
    pub uses_view: bool,
    /// The query in display syntax (explain header).
    pub query: String,
}

impl Plan {
    /// Stable one-plan-per-call explain text (golden-tested): header,
    /// winning choice, per-stage estimates, ranked alternatives.
    pub fn explain(&self) -> String {
        let mut s = format!("query: {}\n", self.query);
        s.push_str(&format!(
            "choice: {} est={:.3}ms rows~{:.1}{}\n",
            self.choice,
            self.est_cost_ns / 1e6,
            self.est_rows,
            if self.uses_view { " [view]" } else { "" }
        ));
        for (i, st) in self.stages.iter().enumerate() {
            s.push_str(&format!(
                "  stage {}: {} rows~{:.1} est={:.3}ms\n",
                i + 1,
                st.desc,
                st.est_rows,
                st.est_ns / 1e6
            ));
        }
        s.push_str("alternatives:\n");
        for (name, ns) in &self.alternatives {
            s.push_str(&format!("  {:<24} {:.3}ms\n", name, ns / 1e6));
        }
        s
    }
}

/// Every viable access-path assignment for `q`, in a stable order.
pub fn viable_choices(cat: &Catalog, q: &Query) -> Vec<PathChoice> {
    let mut accesses = Vec::new();
    if q.root.app_id.is_some() {
        accesses.push(AccessPath::PointLookup);
    }
    if let Some(ix) = cat.best_covering_index(&q.root) {
        accesses.push(AccessPath::IndexScan(ix.def.id));
    }
    accesses.push(AccessPath::Sweep);

    let mut expands = vec![ExpandPath::Tx];
    if !q.expands.is_empty()
        && !q.uses_orientation(EdgeOrientation::Incoming)
        && !q.uses_orientation(EdgeOrientation::Undirected)
    {
        expands.push(ExpandPath::Csr);
    }
    let mut out = Vec::new();
    for &access in &accesses {
        for &expand in &expands {
            out.push(PathChoice { access, expand });
        }
    }
    out
}

fn pattern_desc(p: &NodePattern) -> String {
    let mut parts = vec![p.var.clone()];
    if !p.labels.is_empty() {
        parts.push(format!("labels={}", p.labels.len()));
    }
    if !p.props.is_empty() {
        parts.push(format!("props={}", p.props.len()));
    }
    format!("({})", parts.join(" "))
}

/// Cost one concrete choice. `None` when the choice is not viable for
/// the query (missing app-id, no covering index, incoming + csr).
pub fn plan_choice(cat: &Catalog, q: &Query, choice: PathChoice) -> Option<Plan> {
    let p = cat.nranks as f64;
    let n = cat.n_vertices as f64;
    let mut stages = Vec::new();
    let mut total = 0.0f64;
    let mut view_paid = false;
    let uses_view = matches!(choice.access, AccessPath::Sweep)
        || (!q.expands.is_empty() && choice.expand == ExpandPath::Csr);

    // ---- driving stage ---------------------------------------------------
    let mut rows;
    match choice.access {
        AccessPath::PointLookup => {
            q.root.app_id?;
            rows = if q.root.labels.is_empty() && q.root.props.is_empty() {
                1.0
            } else {
                (cat.pattern_sel(&q.root) * n).min(1.0)
            };
            let ns = 2.0 * cat.cost.transfer(0, 1, 64) + cat.holder_eval_ns();
            total += ns;
            stages.push(StagePlan {
                desc: format!("point-lookup {}", pattern_desc(&q.root)),
                est_rows: rows,
                est_ns: ns,
            });
        }
        AccessPath::IndexScan(id) => {
            let st = cat.indexes.iter().find(|s| s.def.id == id)?;
            if !(st.def.labels.is_empty()
                || q.root.labels.iter().any(|l| st.def.labels.contains(l)))
            {
                return None;
            }
            rows = (n * cat.pattern_sel(&q.root)).min(st.entries as f64);
            // holder filter per posting, plus the posting indirection
            // (tx-cache probe) a direct view sweep does not pay
            let ns = (st.entries as f64 / p) * (cat.holder_eval_ns() + cat.cost.cpu_op_ns);
            total += ns;
            stages.push(StagePlan {
                desc: format!("index-scan[{}] {}", st.def.name, pattern_desc(&q.root)),
                est_rows: rows,
                est_ns: ns,
            });
        }
        AccessPath::Sweep => {
            let mut ns = 0.0;
            if !view_paid {
                ns += cat.view_ns();
                view_paid = true;
            }
            ns += (n / p) * cat.holder_eval_ns();
            rows = n * cat.pattern_sel(&q.root);
            total += ns;
            stages.push(StagePlan {
                desc: format!("sweep {}", pattern_desc(&q.root)),
                est_rows: rows,
                est_ns: ns,
            });
        }
    }
    rows = rows.max(1e-3);

    // ---- expansion stages ------------------------------------------------
    for e in &q.expands {
        if matches!(
            e.orient,
            EdgeOrientation::Incoming | EdgeOrientation::Undirected
        ) && choice.expand == ExpandPath::Csr
        {
            return None;
        }
        let deg = match e.orient {
            EdgeOrientation::Outgoing => cat.deg_out,
            _ => cat.deg_any,
        };
        let esel = if e.edge_label.is_some() {
            1.0 / cat.n_labels as f64
        } else {
            1.0
        };
        let rloc = rows / p;
        let tsel = cat.pattern_sel(&e.target);
        let ns = match choice.expand {
            ExpandPath::Tx => {
                let edge_fetch =
                    cat.cost.transfer(0, 1, 64 + (deg * 24.0) as usize) + deg * cat.cost.cpu_op_ns;
                let filter = if !e.close_to_root && !e.target.is_trivial() {
                    deg * esel * cat.remote_holder_ns()
                } else {
                    0.0
                };
                rloc * (edge_fetch + filter)
            }
            ExpandPath::Csr => {
                let mut ns = 0.0;
                if !view_paid {
                    ns += cat.view_ns();
                    view_paid = true;
                }
                if !e.close_to_root && !e.target.is_trivial() {
                    // semi-join: local qualify scan + id broadcast
                    ns += (n / p) * cat.holder_eval_ns();
                    ns += cat
                        .cost
                        .allgather(cat.nranks, ((n * tsel * 8.0) / p) as usize);
                    ns += n * tsel * cat.cost.cpu_op_ns;
                }
                let routed = (rloc * PAIR_BYTES) as usize;
                ns += cat
                    .cost
                    .alltoallv(cat.nranks.saturating_sub(1), routed, routed);
                ns += rloc
                    * (2.0 * cat.cost.local_word_ns
                        + deg * (cat.cost.local_word_ns + cat.cost.cpu_op_ns));
                ns
            }
        };
        total += ns;
        rows = if e.close_to_root {
            rows * (deg * esel / n).min(1.0)
        } else {
            rows * deg * esel * tsel
        };
        rows = rows.max(1e-3);
        let dir = match e.orient {
            EdgeOrientation::Outgoing => "out",
            EdgeOrientation::Incoming => "in",
            _ => "any",
        };
        let what = if e.close_to_root {
            "close-cycle".to_string()
        } else {
            format!("to {}", pattern_desc(&e.target))
        };
        stages.push(StagePlan {
            desc: format!(
                "expand-{} {}{} {}",
                choice.expand,
                dir,
                if e.edge_label.is_some() {
                    "[lbl]"
                } else {
                    "[]"
                },
                what
            ),
            est_rows: rows,
            est_ns: ns,
        });
    }

    // ---- aggregate stage -------------------------------------------------
    let rloc = rows / p;
    let routed = (rloc * 8.0) as usize;
    let mut ns = cat
        .cost
        .alltoallv(cat.nranks.saturating_sub(1), routed, routed);
    ns += match &q.returns.agg {
        Aggregate::Count => cat.cost.reduce_like(cat.nranks, 8),
        Aggregate::Sum(_) => rloc * cat.holder_eval_ns() + cat.cost.allgather(cat.nranks, 8),
        Aggregate::CollectIds => {
            rloc * cat.holder_eval_ns() + cat.cost.allgather(cat.nranks, routed)
        }
    };
    total += ns;
    let agg_desc = match &q.returns.agg {
        Aggregate::Count => format!("count(distinct {})", q.target_var()),
        Aggregate::Sum(_) => format!("sum({}.prop)", q.target_var()),
        Aggregate::CollectIds => format!("collect({})", q.target_var()),
    };
    stages.push(StagePlan {
        desc: agg_desc,
        est_rows: rows,
        est_ns: ns,
    });

    Some(Plan {
        choice,
        est_cost_ns: total,
        est_rows: rows,
        stages,
        alternatives: Vec::new(),
        uses_view,
        query: q.display(),
    })
}

/// Plan `q`: cost every viable choice and keep the cheapest (ties break
/// towards the earlier choice in [`viable_choices`] order, so planning
/// is deterministic). The losing costs are kept in
/// [`Plan::alternatives`] for explain output.
pub fn plan(cat: &Catalog, q: &Query) -> Plan {
    let mut best: Option<Plan> = None;
    let mut alts: Vec<(String, f64)> = Vec::new();
    for choice in viable_choices(cat, q) {
        if let Some(p) = plan_choice(cat, q, choice) {
            alts.push((choice.to_string(), p.est_cost_ns));
            let better = best
                .as_ref()
                .map(|b| p.est_cost_ns < b.est_cost_ns)
                .unwrap_or(true);
            if better {
                best = Some(p);
            }
        }
    }
    let mut plan = best.expect("sweep+tx is always viable");
    alts.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then_with(|| a.0.cmp(&b.0)));
    plan.alternatives = alts;
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::AggTarget;
    use crate::builder::QueryBuilder;
    use gda::IndexId;
    use gdi::{AppVertexId, LabelId, PTypeId};

    fn cat() -> Catalog {
        Catalog {
            nranks: 4,
            n_vertices: 4096,
            n_labels: 4,
            indexes: vec![
                IndexStat {
                    def: IndexDef {
                        id: IndexId(1),
                        name: "__all".to_string(),
                        labels: vec![],
                        ptypes: vec![],
                    },
                    entries: 4096,
                },
                IndexStat {
                    def: IndexDef {
                        id: IndexId(2),
                        name: "lab1".to_string(),
                        labels: vec![LabelId(1)],
                        ptypes: vec![],
                    },
                    entries: 2048,
                },
            ],
            deg_out: 8.0,
            deg_any: 16.0,
            view_cached: true,
            cost: CostModel::default(),
            meta_epoch: 1,
        }
    }

    fn bi2ish() -> Query {
        QueryBuilder::node("p")
            .label(LabelId(1))
            .prop_gt(PTypeId(10), 100)
            .expand_out(Some(LabelId(2)))
            .to("c")
            .label(LabelId(3))
            .prop_gt(PTypeId(11), 200)
            .count(AggTarget::Root)
    }

    #[test]
    fn point_lookup_wins_with_app_id() {
        let q = QueryBuilder::node("p")
            .with_app_id(AppVertexId(7))
            .expand_any(None)
            .to("n")
            .count(AggTarget::Last);
        let pl = plan(&cat(), &q);
        assert_eq!(pl.choice.access, AccessPath::PointLookup);
        assert!(pl.alternatives.len() >= 4, "{:?}", pl.alternatives);
    }

    #[test]
    fn labeled_root_prefers_the_label_index() {
        let pl = plan(&cat(), &bi2ish());
        assert_eq!(pl.choice.access, AccessPath::IndexScan(IndexId(2)));
        // the covering index halves the holder evaluations vs a sweep
        let sweep = plan_choice(
            &cat(),
            &bi2ish(),
            PathChoice {
                access: AccessPath::Sweep,
                expand: pl.choice.expand,
            },
        )
        .unwrap();
        assert!(pl.est_cost_ns < sweep.est_cost_ns);
    }

    #[test]
    fn incoming_orientation_disables_csr() {
        let q = Query {
            root: NodePattern::any("a"),
            expands: vec![crate::ast::Expand {
                orient: EdgeOrientation::Incoming,
                edge_label: None,
                target: NodePattern::any("b"),
                close_to_root: false,
            }],
            returns: crate::ast::Projection {
                target: AggTarget::Last,
                agg: Aggregate::Count,
            },
        };
        for c in viable_choices(&cat(), &q) {
            assert_eq!(c.expand, ExpandPath::Tx);
        }
    }

    #[test]
    fn unindexed_catalog_has_no_index_choice() {
        let mut c = cat();
        c.indexes.clear();
        let choices = viable_choices(&c, &bi2ish());
        assert!(choices
            .iter()
            .all(|c| !matches!(c.access, AccessPath::IndexScan(_))));
        // and pattern selectivity falls back to priors without NaN
        assert!(c.pattern_sel(&bi2ish().root) > 0.0);
    }

    #[test]
    fn plans_are_deterministic() {
        let a = plan(&cat(), &bi2ish());
        let b = plan(&cat(), &bi2ish());
        assert_eq!(a, b);
        assert_eq!(a.explain(), b.explain());
    }
}

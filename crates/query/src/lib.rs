//! Declarative pattern queries over GDI-RMA: typed AST, Cypher-ish
//! parser, cost-aware planner and collective executor.
//!
//! The paper's BI workloads (Listing 3) are MATCH/WHERE/aggregate
//! shapes; this crate turns them from hand-compiled Rust into data.
//! A [`Query`] — built with [`QueryBuilder`] or parsed from text with
//! [`parse()`](parse::parse) — is planned by [`planner::plan`] against
//! a collectively
//! gathered [`planner::Catalog`], choosing per stage between the three
//! access paths the engine already exposes:
//!
//! - **DHT point lookup** when the root carries an `id(v) = x`
//!   predicate (one translation instead of any scan),
//! - **index-posting scan** when an explicit index covers a root label,
//! - **zero-transaction [`gda::CsrView`] sweep** otherwise,
//!
//! and between transactional neighbor fetches and cached-view Csr
//! routing for the expansion stages. [`executor::execute`] then runs
//! the [`planner::Plan`] as one collective read-only transaction (plus
//! the view rendezvous when the plan needs it), surfacing per-stage
//! row/communication counters through [`rma::CommStats`].
//!
//! Everything here is **collective and deterministic**: all ranks
//! gather the same catalog, derive the same plan, and hit the same
//! collectives in the same order.

#![warn(missing_docs)]

pub mod ast;
pub mod builder;
pub mod executor;
pub mod parse;
pub mod physical;
pub mod planner;

pub use ast::{AggTarget, Aggregate, Expand, NodePattern, Projection, PropFilter, Query};
pub use builder::QueryBuilder;
pub use executor::{execute, run};
pub use parse::{parse, ParseError};
pub use physical::{
    AccessPath, ExpandPath, PathChoice, QueryOutput, QueryValue, StagePlan, StageStats,
};
pub use planner::{plan, plan_choice, viable_choices, Catalog, IndexStat, Plan};

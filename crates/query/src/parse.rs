//! Minimal Cypher-ish text parser for the supported query fragment.
//!
//! Grammar (whitespace-insensitive, keywords case-insensitive):
//!
//! ```text
//! query  := MATCH node (edge node)* (WHERE cond (AND cond)*)? RETURN ret
//! node   := '(' var (':' Label)* ')'
//! edge   := '-[' (':' Label)? ']->'          outgoing
//!         | '<-[' (':' Label)? ']-'          incoming
//!         | '-[' (':' Label)? ']-'           any orientation
//! cond   := var '.' Prop op uint             op ∈ { > >= < <= = <> }
//!         | 'id(' var ')' '=' uint           root only
//! ret    := 'count(' DISTINCT? var ')'
//!         | 'sum(' var '.' Prop ')'
//!         | 'collect(' var ')'
//! ```
//!
//! Label and property names are resolved against a [`MetaSnapshot`]
//! replica (`GDI_GetLabelFromName` / `GDI_GetPropertyTypeFromName`), so
//! the same text works on any rank. A final node that repeats the root
//! variable (with no labels) turns the last expansion into a
//! cycle-closing step, e.g. `(a)-[:knows]->(b)-[:knows]->(a)`.

use gda::meta::MetaSnapshot;
use gdi::{AppVertexId, CmpOp, EdgeOrientation, LabelId, PropertyValue};

use crate::ast::{AggTarget, Aggregate, Expand, NodePattern, Projection, PropFilter, Query};

/// Parse failure: a message and the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub msg: String,
    /// Byte offset into the input where the error was detected.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Self { src, pos: 0 }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            msg: msg.into(),
            at: self.pos,
        })
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.src.len() - trimmed.len();
    }

    /// Consume `lit` (exact, after whitespace); false if absent.
    fn eat(&mut self, lit: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(lit) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    /// Consume a keyword (case-insensitive, must not run into a word
    /// character); false if absent.
    fn eat_kw(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = self.rest();
        if rest.len() >= kw.len() && rest[..kw.len()].eq_ignore_ascii_case(kw) {
            let boundary = rest[kw.len()..]
                .chars()
                .next()
                .map(|c| !c.is_alphanumeric() && c != '_')
                .unwrap_or(true);
            if boundary {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn expect(&mut self, lit: &str) -> Result<(), ParseError> {
        if self.eat(lit) {
            Ok(())
        } else {
            self.err(format!("expected `{lit}`"))
        }
    }

    fn ident(&mut self) -> Result<&'a str, ParseError> {
        self.skip_ws();
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|(_, c)| !c.is_alphanumeric() && *c != '_')
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        if end == 0 {
            return self.err("expected an identifier");
        }
        self.pos += end;
        Ok(&rest[..end])
    }

    fn uint(&mut self) -> Result<u64, ParseError> {
        self.skip_ws();
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|(_, c)| !c.is_ascii_digit())
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        if end == 0 {
            return self.err("expected an unsigned integer");
        }
        let n = rest[..end].parse::<u64>().map_err(|e| ParseError {
            msg: format!("integer literal: {e}"),
            at: self.pos,
        })?;
        self.pos += end;
        Ok(n)
    }
}

fn resolve_label(meta: &MetaSnapshot, name: &str, at: usize) -> Result<LabelId, ParseError> {
    meta.label_from_name(name).ok_or_else(|| ParseError {
        msg: format!("unknown label `{name}`"),
        at,
    })
}

fn parse_node(c: &mut Cursor, meta: &MetaSnapshot) -> Result<NodePattern, ParseError> {
    c.expect("(")?;
    let var = c.ident()?.to_string();
    let mut pat = NodePattern::any(&var);
    while c.eat(":") {
        let at = c.pos;
        let name = c.ident()?;
        pat.labels.push(resolve_label(meta, name, at)?);
    }
    c.expect(")")?;
    Ok(pat)
}

/// `(orientation, edge label)` of one edge spec, or `None` when the next
/// token does not start an edge.
fn parse_edge(
    c: &mut Cursor,
    meta: &MetaSnapshot,
) -> Result<Option<(EdgeOrientation, Option<LabelId>)>, ParseError> {
    let incoming = c.eat("<-[");
    if !incoming && !c.eat("-[") {
        return Ok(None);
    }
    let label = if c.eat(":") {
        let at = c.pos;
        let name = c.ident()?;
        Some(resolve_label(meta, name, at)?)
    } else {
        None
    };
    if incoming {
        c.expect("]-")?;
        return Ok(Some((EdgeOrientation::Incoming, label)));
    }
    c.expect("]-")?;
    if c.eat(">") {
        Ok(Some((EdgeOrientation::Outgoing, label)))
    } else {
        Ok(Some((EdgeOrientation::Any, label)))
    }
}

fn parse_cmp(c: &mut Cursor) -> Result<CmpOp, ParseError> {
    // two-char forms first
    for (lit, op) in [
        (">=", CmpOp::Ge),
        ("<=", CmpOp::Le),
        ("<>", CmpOp::Ne),
        (">", CmpOp::Gt),
        ("<", CmpOp::Lt),
        ("=", CmpOp::Eq),
    ] {
        if c.eat(lit) {
            return Ok(op);
        }
    }
    c.err("expected a comparison operator (> >= < <= = <>)")
}

/// Parse `text` into a [`Query`], resolving label and property-type
/// names against `meta`.
pub fn parse(text: &str, meta: &MetaSnapshot) -> Result<Query, ParseError> {
    let mut c = Cursor::new(text);
    if !c.eat_kw("MATCH") {
        return c.err("expected `MATCH`");
    }
    let root = parse_node(&mut c, meta)?;
    let mut expands: Vec<Expand> = Vec::new();
    while let Some((orient, edge_label)) = parse_edge(&mut c, meta)? {
        let target = parse_node(&mut c, meta)?;
        if target.var == root.var {
            if !target.labels.is_empty() {
                return c.err("a cycle-closing node repeats the root variable with no labels");
            }
            expands.push(Expand {
                orient,
                edge_label,
                target: NodePattern::default(),
                close_to_root: true,
            });
            break; // the chain must end at the closed cycle
        }
        expands.push(Expand {
            orient,
            edge_label,
            target,
            close_to_root: false,
        });
    }

    // variable table: root + non-closing targets, for WHERE/RETURN lookup
    let find_pat = |root: &mut NodePattern, expands: &mut Vec<Expand>, var: &str| {
        if root.var == var {
            return Some(0usize); // 0 = root, i+1 = expands[i]
        }
        expands
            .iter()
            .position(|e| !e.close_to_root && e.target.var == var)
            .map(|i| i + 1)
    };

    let mut root = root;
    if c.eat_kw("WHERE") {
        loop {
            c.skip_ws();
            let at = c.pos;
            if c.eat_kw("id") {
                c.expect("(")?;
                let var = c.ident()?.to_string();
                c.expect(")")?;
                c.expect("=")?;
                let id = c.uint()?;
                if var != root.var {
                    return Err(ParseError {
                        msg: format!("id() equality is only supported on the root (`{var}`)"),
                        at,
                    });
                }
                root.app_id = Some(AppVertexId(id));
            } else {
                let var = c.ident()?.to_string();
                c.expect(".")?;
                let pat = c.pos;
                let pname = c.ident()?.to_string();
                let ptype = meta.ptype_from_name(&pname).ok_or_else(|| ParseError {
                    msg: format!("unknown property type `{pname}`"),
                    at: pat,
                })?;
                let op = parse_cmp(&mut c)?;
                let v = c.uint()?;
                let Some(slot) = find_pat(&mut root, &mut expands, &var) else {
                    return Err(ParseError {
                        msg: format!("unbound variable `{var}`"),
                        at,
                    });
                };
                let filter = PropFilter {
                    ptype,
                    op,
                    value: PropertyValue::U64(v),
                };
                if slot == 0 {
                    root.props.push(filter);
                } else {
                    expands[slot - 1].target.props.push(filter);
                }
            }
            if !c.eat_kw("AND") {
                break;
            }
        }
    }

    if !c.eat_kw("RETURN") {
        return c.err("expected `RETURN`");
    }
    c.skip_ws();
    let at = c.pos;
    let func = c.ident()?.to_ascii_lowercase();
    c.expect("(")?;
    let (var, agg) = match func.as_str() {
        "count" => {
            c.eat_kw("DISTINCT");
            (c.ident()?.to_string(), Aggregate::Count)
        }
        "sum" => {
            let var = c.ident()?.to_string();
            c.expect(".")?;
            let pat = c.pos;
            let pname = c.ident()?.to_string();
            let ptype = meta.ptype_from_name(&pname).ok_or_else(|| ParseError {
                msg: format!("unknown property type `{pname}`"),
                at: pat,
            })?;
            (var, Aggregate::Sum(ptype))
        }
        "collect" => (c.ident()?.to_string(), Aggregate::CollectIds),
        other => {
            return Err(ParseError {
                msg: format!("unknown aggregate `{other}` (count/sum/collect)"),
                at,
            })
        }
    };
    c.expect(")")?;

    let last_var = expands
        .iter()
        .rev()
        .find(|e| !e.close_to_root)
        .map(|e| e.target.var.as_str())
        .unwrap_or(root.var.as_str());
    let target = if var == root.var {
        AggTarget::Root
    } else if var == last_var {
        AggTarget::Last
    } else {
        return Err(ParseError {
            msg: format!("aggregate variable `{var}` must be the root or the last pattern node"),
            at,
        });
    };

    c.skip_ws();
    if !c.rest().is_empty() {
        return c.err("trailing input after RETURN clause");
    }

    Ok(Query {
        root,
        expands,
        returns: Projection { target, agg },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gda::meta::MetaStore;

    fn meta() -> MetaSnapshot {
        let m = MetaStore::new();
        for l in ["person", "post", "knows", "likes"] {
            m.create_label(l).unwrap();
        }
        for p in ["age", "score"] {
            m.create_ptype(
                p,
                gdi::Datatype::Uint64,
                gdi::EntityType::VertexEdge,
                gdi::Multiplicity::Single,
                gdi::SizeType::Fixed,
                1,
            )
            .unwrap();
        }
        m.snapshot()
    }

    #[test]
    fn parses_bi2_shape() {
        let m = meta();
        let q = parse(
            "MATCH (p:person)-[:knows]->(c:post) WHERE p.age > 30 AND c.score >= 7 \
             RETURN count(DISTINCT p)",
            &m,
        )
        .unwrap();
        assert_eq!(q.root.labels, vec![m.label_from_name("person").unwrap()]);
        assert_eq!(q.expands.len(), 1);
        assert_eq!(
            q.expands[0].edge_label,
            Some(m.label_from_name("knows").unwrap())
        );
        assert_eq!(q.root.props.len(), 1);
        assert_eq!(q.expands[0].target.props.len(), 1);
        assert_eq!(q.returns.target, AggTarget::Root);
        assert_eq!(q.returns.agg, Aggregate::Count);
    }

    #[test]
    fn parses_point_lookup_and_orientations() {
        let m = meta();
        let q = parse(
            "MATCH (p)-[]-(n:person) WHERE id(p) = 42 RETURN collect(n)",
            &m,
        )
        .unwrap();
        assert_eq!(q.root.app_id, Some(AppVertexId(42)));
        assert_eq!(q.expands[0].orient, EdgeOrientation::Any);
        assert_eq!(q.returns.agg, Aggregate::CollectIds);
        assert_eq!(q.returns.target, AggTarget::Last);

        let q = parse("MATCH (a)<-[:likes]-(b) RETURN count(b)", &m).unwrap();
        assert_eq!(q.expands[0].orient, EdgeOrientation::Incoming);
    }

    #[test]
    fn parses_triangle_and_sum() {
        let m = meta();
        let q = parse(
            "MATCH (a:person)-[:knows]->(b)-[:knows]->(a) RETURN sum(a.age)",
            &m,
        )
        .unwrap();
        assert_eq!(q.expands.len(), 2);
        assert!(q.expands[1].close_to_root);
        assert_eq!(q.target_var(), "a");
        assert!(matches!(q.returns.agg, Aggregate::Sum(_)));
    }

    #[test]
    fn rejects_bad_input() {
        let m = meta();
        assert!(parse("MATCH (p:nosuch) RETURN count(p)", &m).is_err());
        assert!(parse("MATCH (p) RETURN count(q)", &m).is_err());
        assert!(parse(
            "MATCH (p)-[:knows]->(q) WHERE id(q) = 1 RETURN count(p)",
            &m
        )
        .is_err());
        assert!(parse("MATCH (p) RETURN count(p) garbage", &m).is_err());
        let e = parse("FETCH (p)", &m).unwrap_err();
        assert!(e.to_string().contains("MATCH"));
    }

    #[test]
    fn roundtrips_builder_display_shape() {
        let m = meta();
        let q = parse("MATCH (p:person) WHERE p.age <> 9 RETURN count(p)", &m).unwrap();
        assert!(q.display().starts_with("MATCH (p"));
        assert_eq!(q.root.props[0].op, CmpOp::Ne);
    }
}

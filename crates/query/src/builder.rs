//! Ergonomic builder for [`Query`] values.
//!
//! The builder walks the MATCH chain left to right: predicates apply to
//! the *current* pattern node (the root until the first [`QueryBuilder::expand`],
//! then the newest expansion target), and a projection method closes the
//! chain:
//!
//! ```
//! use gdi::{CmpOp, EdgeOrientation, LabelId, PTypeId};
//! use query::{AggTarget, QueryBuilder};
//!
//! let q = QueryBuilder::node("p")
//!     .label(LabelId(1))
//!     .prop_gt(PTypeId(10), 30)
//!     .expand_out(Some(LabelId(2)))
//!     .to("c")
//!     .label(LabelId(3))
//!     .prop_gt(PTypeId(11), 7)
//!     .count(AggTarget::Root);
//! assert_eq!(q.expands.len(), 1);
//! ```

use gdi::{AppVertexId, CmpOp, EdgeOrientation, LabelId, PTypeId, PropertyValue};

use crate::ast::{AggTarget, Aggregate, Expand, NodePattern, Projection, PropFilter, Query};

/// Fluent constructor of [`Query`] values; see the module docs.
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    root: NodePattern,
    expands: Vec<Expand>,
}

impl QueryBuilder {
    /// Start a chain at the driving node pattern.
    pub fn node(var: &str) -> Self {
        Self {
            root: NodePattern::any(var),
            expands: Vec::new(),
        }
    }

    fn cur(&mut self) -> &mut NodePattern {
        match self.expands.last_mut() {
            Some(e) => {
                assert!(
                    !e.close_to_root,
                    "cycle-closing expansions bind no target pattern"
                );
                &mut e.target
            }
            None => &mut self.root,
        }
    }

    /// Require a label on the current pattern node.
    pub fn label(mut self, l: LabelId) -> Self {
        self.cur().labels.push(l);
        self
    }

    /// Add a property predicate to the current pattern node.
    pub fn prop(mut self, ptype: PTypeId, op: CmpOp, value: PropertyValue) -> Self {
        self.cur().props.push(PropFilter { ptype, op, value });
        self
    }

    /// Shorthand: `property(ptype) > v` on the current pattern node.
    pub fn prop_gt(self, ptype: PTypeId, v: u64) -> Self {
        self.prop(ptype, CmpOp::Gt, PropertyValue::U64(v))
    }

    /// Pin the **root** to one application id (`id(var) = x`, the DHT
    /// point-lookup predicate). Panics when applied after an expansion.
    pub fn with_app_id(mut self, id: AppVertexId) -> Self {
        assert!(
            self.expands.is_empty(),
            "app-id equality is only supported on the root pattern"
        );
        self.root.app_id = Some(id);
        self
    }

    /// Add an expansion step; predicates now apply to its target.
    pub fn expand(mut self, orient: EdgeOrientation, edge_label: Option<LabelId>) -> Self {
        let n = self.expands.len();
        self.expands.push(Expand {
            orient,
            edge_label,
            target: NodePattern::any(&format!("_v{}", n + 1)),
            close_to_root: false,
        });
        self
    }

    /// [`QueryBuilder::expand`] with outgoing orientation.
    pub fn expand_out(self, edge_label: Option<LabelId>) -> Self {
        self.expand(EdgeOrientation::Outgoing, edge_label)
    }

    /// [`QueryBuilder::expand`] with any orientation.
    pub fn expand_any(self, edge_label: Option<LabelId>) -> Self {
        self.expand(EdgeOrientation::Any, edge_label)
    }

    /// Name the current expansion target (defaults to `_v<i>`).
    pub fn to(mut self, var: &str) -> Self {
        self.cur().var = var.to_string();
        self
    }

    /// Turn the newest expansion into a cycle-closing step: its edge must
    /// lead back to the root binding. Panics when the target already
    /// carries predicates, or when there is no expansion yet.
    pub fn close_cycle(mut self) -> Self {
        let e = self
            .expands
            .last_mut()
            .expect("close_cycle needs an expansion step");
        assert!(
            e.target.is_trivial(),
            "a cycle-closing step binds the root, not a fresh pattern"
        );
        e.close_to_root = true;
        self
    }

    fn finish(self, target: AggTarget, agg: Aggregate) -> Query {
        Query {
            root: self.root,
            expands: self.expands,
            returns: Projection { target, agg },
        }
    }

    /// Close the chain with `count(DISTINCT <target>)`.
    pub fn count(self, target: AggTarget) -> Query {
        self.finish(target, Aggregate::Count)
    }

    /// Close the chain with `sum(<target>.<ptype>)` (wrapping `u64`).
    pub fn sum(self, target: AggTarget, ptype: PTypeId) -> Query {
        self.finish(target, Aggregate::Sum(ptype))
    }

    /// Close the chain with `collect(<target>)` — sorted application ids.
    pub fn collect_ids(self, target: AggTarget) -> Query {
        self.finish(target, Aggregate::CollectIds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_builds_bi2_shape() {
        let q = QueryBuilder::node("p")
            .label(LabelId(1))
            .prop_gt(PTypeId(10), 100)
            .expand_out(Some(LabelId(2)))
            .to("c")
            .label(LabelId(3))
            .prop_gt(PTypeId(11), 200)
            .count(AggTarget::Root);
        assert_eq!(q.root.var, "p");
        assert_eq!(q.root.labels, vec![LabelId(1)]);
        assert_eq!(q.expands.len(), 1);
        assert_eq!(q.expands[0].edge_label, Some(LabelId(2)));
        assert_eq!(q.expands[0].target.var, "c");
        assert_eq!(q.returns.agg, Aggregate::Count);
    }

    #[test]
    fn triangle_shape() {
        let q = QueryBuilder::node("a")
            .label(LabelId(1))
            .expand_out(Some(LabelId(2)))
            .to("b")
            .expand_out(Some(LabelId(2)))
            .close_cycle()
            .count(AggTarget::Root);
        assert!(q.expands[1].close_to_root);
        assert_eq!(q.target_var(), "a");
    }

    #[test]
    #[should_panic(expected = "app-id equality")]
    fn app_id_after_expand_panics() {
        let _ = QueryBuilder::node("a")
            .expand_out(None)
            .with_app_id(AppVertexId(1));
    }

    #[test]
    fn point_lookup_collect() {
        let q = QueryBuilder::node("p")
            .with_app_id(AppVertexId(42))
            .expand_any(None)
            .to("n")
            .label(LabelId(5))
            .collect_ids(AggTarget::Last);
        assert_eq!(q.root.app_id, Some(AppVertexId(42)));
        assert_eq!(q.target_var(), "n");
    }
}

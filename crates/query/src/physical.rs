//! Physical vocabulary shared by the planner and the executor: access
//! paths, per-stage plan entries, runtime stage counters and result
//! values.

use std::fmt;

use gda::IndexId;

/// How the driving stage produces the initial bindings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    /// One DHT translation of the root's app-id equality predicate
    /// (`GDI_TranslateVertexID`), then a holder filter on the owner.
    PointLookup,
    /// Scan this rank's postings of an explicit index covering a root
    /// label, filtering each posting's holder.
    IndexScan(IndexId),
    /// Full-partition sweep over the zero-transaction [`gda::CsrView`]
    /// rows, filtering every local vertex.
    Sweep,
}

impl fmt::Display for AccessPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessPath::PointLookup => write!(f, "point-lookup"),
            AccessPath::IndexScan(id) => write!(f, "index-scan(ix{})", id.0),
            AccessPath::Sweep => write!(f, "sweep"),
        }
    }
}

/// How expansion stages traverse edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpandPath {
    /// Per-binding transactional neighbor fetch
    /// ([`gda::Transaction::neighbors_matching`] — pipelined one-sided
    /// chain reads plus holder filters).
    Tx,
    /// Route bindings to edge owners with `alltoallv` and probe the
    /// cached [`gda::CsrView`] adjacency (plus a broadcast semi-join of
    /// qualifying targets when the target pattern filters).
    Csr,
}

impl fmt::Display for ExpandPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpandPath::Tx => write!(f, "tx"),
            ExpandPath::Csr => write!(f, "csr"),
        }
    }
}

/// A complete access-path assignment for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathChoice {
    /// Driving stage access path.
    pub access: AccessPath,
    /// Expansion traversal path (ignored for expand-free queries).
    pub expand: ExpandPath,
}

impl fmt::Display for PathChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}", self.access, self.expand)
    }
}

/// One planned stage: a human-readable operator description plus the
/// planner's row/time estimates (global rows, simulated nanoseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct StagePlan {
    /// Operator description (stable explain text).
    pub desc: String,
    /// Estimated surviving bindings after the stage, machine-wide.
    pub est_rows: f64,
    /// Estimated simulated nanoseconds spent in the stage (critical
    /// path, LogGP model).
    pub est_ns: f64,
}

/// Measured counters of one executed stage on one rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageStats {
    /// Operator description (mirrors the [`StagePlan`] entry).
    pub desc: String,
    /// Bindings surviving the stage on this rank.
    pub rows: u64,
    /// Adjacency entries inspected by the stage on this rank.
    pub expanded: u64,
    /// Bytes this rank contributed to stage-level exchanges.
    pub comm_bytes: u64,
}

/// The value a query evaluates to (identical on every rank).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryValue {
    /// `count(DISTINCT target)`.
    Count(u64),
    /// Wrapping `sum(target.ptype)` over the distinct targets.
    Sum(u64),
    /// Sorted application ids of the distinct targets.
    Ids(Vec<u64>),
}

impl QueryValue {
    /// The count/sum as a scalar; for id lists, the number of ids.
    pub fn scalar(&self) -> u64 {
        match self {
            QueryValue::Count(n) | QueryValue::Sum(n) => *n,
            QueryValue::Ids(v) => v.len() as u64,
        }
    }
}

/// What one rank gets back from executing a plan: the (replicated)
/// value plus its local per-stage counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutput {
    /// The aggregate value, identical on every rank.
    pub value: QueryValue,
    /// This rank's per-stage execution counters.
    pub stages: Vec<StageStats>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms_are_stable() {
        let c = PathChoice {
            access: AccessPath::IndexScan(IndexId(3)),
            expand: ExpandPath::Csr,
        };
        assert_eq!(c.to_string(), "index-scan(ix3)+csr");
        let p = PathChoice {
            access: AccessPath::PointLookup,
            expand: ExpandPath::Tx,
        };
        assert_eq!(p.to_string(), "point-lookup+tx");
        assert_eq!(AccessPath::Sweep.to_string(), "sweep");
    }

    #[test]
    fn scalar_views() {
        assert_eq!(QueryValue::Count(4).scalar(), 4);
        assert_eq!(QueryValue::Ids(vec![9, 1]).scalar(), 2);
    }
}

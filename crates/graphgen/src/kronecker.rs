//! Graph500-style Kronecker (R-MAT) edge sampling.
//!
//! The Kronecker model (Leskovec et al.) recursively subdivides the
//! adjacency matrix into four quadrants chosen with probabilities
//! `A=0.57, B=0.19, C=0.19, D=0.05` (the Graph500 parameters), producing
//! the heavy-tail skewed degree distribution that the paper identifies as
//! the key performance-determining property of real graphs (§6.7).
//!
//! Sampling is **counter-based**: edge `i` of a graph is a pure function of
//! `(seed, i)`, so any rank can generate any slice of the edge stream
//! without coordination — this is what makes the generator "distributed and
//! in-memory": no file I/O, no shuffles, perfect determinism.

/// R-MAT quadrant probabilities (Graph500).
pub const A: f64 = 0.57;
pub const B: f64 = 0.19;
pub const C: f64 = 0.19;

/// A counter-based Kronecker edge sampler.
#[derive(Debug, Clone, Copy)]
pub struct KroneckerSampler {
    scale: u32,
    seed: u64,
    /// Odd multiplier for the bijective vertex scramble.
    scramble_mul: u64,
    scramble_xor: u64,
}

/// Stateless counter-based RNG: one u64 of high-quality bits per
/// `(seed, stream, counter)` triple (splitmix-style chain).
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[inline]
fn rng(seed: u64, stream: u64, counter: u64) -> u64 {
    mix(mix(seed ^ mix(stream)).wrapping_add(counter))
}

/// Public counter-based hash of a `(seed, a, b)` triple — the building
/// block of all deterministic assignment in this crate.
#[inline]
pub fn hash3(seed: u64, a: u64, b: u64) -> u64 {
    rng(seed, a, b)
}

impl KroneckerSampler {
    pub fn new(scale: u32, seed: u64) -> Self {
        assert!((1..=48).contains(&scale), "scale out of supported range");
        Self {
            scale,
            seed,
            scramble_mul: mix(seed ^ 0xABCD) | 1, // odd => bijective mod 2^s
            scramble_xor: mix(seed ^ 0x1234),
        }
    }

    /// Bijective vertex-id scramble within `[0, 2^scale)` (the Graph500
    /// permutation step, preventing low ids from all being hubs).
    #[inline]
    pub fn scramble(&self, v: u64) -> u64 {
        let mask = (1u64 << self.scale) - 1;
        (v.wrapping_mul(self.scramble_mul) ^ self.scramble_xor) & mask
    }

    /// Sample edge number `i` of the stream: a pure function of
    /// `(seed, i)`.
    pub fn edge(&self, i: u64) -> (u64, u64) {
        let mut u = 0u64;
        let mut v = 0u64;
        for level in 0..self.scale {
            let r = rng(self.seed, i, level as u64);
            // use 52 bits for a uniform double in [0,1)
            let p = (r >> 12) as f64 / (1u64 << 52) as f64;
            let (du, dv) = if p < A {
                (0, 0)
            } else if p < A + B {
                (0, 1)
            } else if p < A + B + C {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        (self.scramble(u), self.scramble(v))
    }

    /// Degree histogram over a sample of `take` edges (diagnostics/tests).
    pub fn sample_out_degrees(&self, take: u64) -> Vec<u64> {
        let n = 1u64 << self.scale;
        let mut deg = vec![0u64; n as usize];
        for i in 0..take {
            let (u, _) = self.edge(i);
            deg[u as usize] += 1;
        }
        deg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let s = KroneckerSampler::new(10, 7);
        assert_eq!(s.edge(123), s.edge(123));
        let s2 = KroneckerSampler::new(10, 8);
        let same = (0..100).filter(|&i| s.edge(i) == s2.edge(i)).count();
        assert!(same < 5, "different seeds must give different streams");
    }

    #[test]
    fn scramble_is_bijective() {
        let s = KroneckerSampler::new(10, 3);
        let mut seen = vec![false; 1024];
        for v in 0..1024u64 {
            let x = s.scramble(v) as usize;
            assert!(!seen[x], "collision at {v}");
            seen[x] = true;
        }
    }

    #[test]
    fn heavy_tail_degree_distribution() {
        // Kronecker graphs are skewed: the max degree should far exceed the
        // mean, and many vertices should have degree 0.
        let s = KroneckerSampler::new(12, 42);
        let m = 16u64 << 12;
        let deg = s.sample_out_degrees(m);
        let mean = m as f64 / deg.len() as f64;
        let max = *deg.iter().max().unwrap() as f64;
        let zeros = deg.iter().filter(|&&d| d == 0).count();
        assert!(max > 10.0 * mean, "max {max} vs mean {mean}");
        assert!(zeros > deg.len() / 10, "zeros {zeros}");
    }

    #[test]
    fn quadrant_probabilities_roughly_respected() {
        // top-left quadrant (both first bits 0) should appear with
        // probability ≈ A at the first level; measure via edge bit tops
        let scale = 8;
        let s = KroneckerSampler::new(scale, 99);
        let n = 1u64 << scale;
        let trials = 40_000u64;
        let mut tl = 0u64;
        for i in 0..trials {
            let (u, v) = s.edge(i);
            // undo the scramble by counting in scrambled space: instead,
            // check the unscrambled generation by resampling quadrants via
            // the same rng path
            let _ = (u, v);
            let r = rng(99, i, 0);
            let p = (r >> 12) as f64 / (1u64 << 52) as f64;
            if p < A {
                tl += 1;
            }
        }
        let frac = tl as f64 / trials as f64;
        assert!((frac - A).abs() < 0.02, "frac {frac}");
        let _ = n;
    }

    #[test]
    #[should_panic(expected = "scale out of supported range")]
    fn zero_scale_rejected() {
        let _ = KroneckerSampler::new(0, 1);
    }
}

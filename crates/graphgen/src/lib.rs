//! # `graphgen` — distributed in-memory LPG graph generator (§6.3)
//!
//! The paper's contribution #5: because no public dataset has the required
//! scale *and* rich labels/properties, the authors extend the Graph500
//! Kronecker generator with a user-specified selection of labels and
//! properties, generating the graph fully in memory, already distributed,
//! so it is immediately available for processing.
//!
//! This crate reimplements that generator:
//!
//! * [`kronecker`] — Graph500-style Kronecker/R-MAT edge sampling
//!   (`A=0.57, B=0.19, C=0.19, D=0.05`), with a bijective vertex scramble
//!   to destroy degree-locality, deterministic per `(seed, rank)`;
//! * [`lpg`] — deterministic label/property assignment: a configurable
//!   number of labels and property types (paper defaults: 20 labels, 13
//!   property types), hash-assigned so any rank can recompute any vertex's
//!   data without communication;
//! * [`load`] — collective ingestion of a rank's slice into a GDA database
//!   through the bulk-load interface.

pub mod kronecker;
pub mod load;
pub mod lpg;

pub use kronecker::KroneckerSampler;
pub use load::{install_metadata, load_into, sized_config, LpgMeta};
pub use lpg::LpgConfig;

/// Full specification of a generated graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphSpec {
    /// Vertex scale `s`: the graph has `2^s` vertices.
    pub scale: u32,
    /// Edge factor `e`: the graph has `e · 2^s` directed edges
    /// (paper default: 16).
    pub edge_factor: u32,
    /// RNG seed (whole-graph determinism).
    pub seed: u64,
    /// Label/property configuration.
    pub lpg: LpgConfig,
}

impl GraphSpec {
    /// A spec with the paper's default edge factor and LPG configuration.
    pub fn new(scale: u32, seed: u64) -> Self {
        Self {
            scale,
            edge_factor: 16,
            seed,
            lpg: LpgConfig::default(),
        }
    }

    /// Number of vertices `n = 2^s`.
    pub fn n_vertices(&self) -> u64 {
        1u64 << self.scale
    }

    /// Number of directed edges `m = e · 2^s`.
    pub fn n_edges(&self) -> u64 {
        self.edge_factor as u64 * self.n_vertices()
    }

    /// The vertex app-ids owned by `rank` under round-robin distribution.
    pub fn vertices_for_rank(&self, rank: usize, nranks: usize) -> Vec<u64> {
        (rank as u64..self.n_vertices()).step_by(nranks).collect()
    }

    /// This rank's contiguous share of the edge stream (deterministic:
    /// rank `r` of `P` generates edges `[r·m/P, (r+1)·m/P)`).
    pub fn edges_for_rank(&self, rank: usize, nranks: usize) -> Vec<(u64, u64)> {
        let m = self.n_edges();
        let lo = m * rank as u64 / nranks as u64;
        let hi = m * (rank as u64 + 1) / nranks as u64;
        let sampler = KroneckerSampler::new(self.scale, self.seed);
        (lo..hi).map(|i| sampler.edge(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        let s = GraphSpec::new(10, 42);
        assert_eq!(s.n_vertices(), 1024);
        assert_eq!(s.n_edges(), 16 * 1024);
    }

    #[test]
    fn vertex_partition_is_disjoint_and_complete() {
        let s = GraphSpec::new(8, 1);
        let nranks = 3;
        let mut all: Vec<u64> = (0..nranks)
            .flat_map(|r| s.vertices_for_rank(r, nranks))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..256).collect::<Vec<u64>>());
    }

    #[test]
    fn edge_partition_is_disjoint_and_complete() {
        let s = GraphSpec::new(6, 7);
        let whole = s.edges_for_rank(0, 1);
        let nranks = 4;
        let parts: Vec<(u64, u64)> = (0..nranks)
            .flat_map(|r| s.edges_for_rank(r, nranks))
            .collect();
        assert_eq!(whole, parts, "sharded generation must equal whole-graph");
        assert_eq!(whole.len() as u64, s.n_edges());
    }

    #[test]
    fn determinism_across_calls() {
        let s = GraphSpec::new(8, 123);
        assert_eq!(s.edges_for_rank(1, 4), s.edges_for_rank(1, 4));
        let s2 = GraphSpec::new(8, 124);
        assert_ne!(s.edges_for_rank(0, 1), s2.edges_for_rank(0, 1));
    }

    #[test]
    fn endpoints_in_range() {
        let s = GraphSpec::new(9, 5);
        for (u, v) in s.edges_for_rank(0, 1) {
            assert!(u < s.n_vertices());
            assert!(v < s.n_vertices());
        }
    }
}

//! Deterministic label & property assignment.
//!
//! The paper extends the Kronecker model "by adding support for a
//! user-specified selection (i.e., counts and sizes) of labels and
//! properties, and how they are assigned to vertices and edges"; the
//! defaults used in the evaluation are **20 labels and 13 property types**
//! (§6.3). Assignment here is hash-driven and therefore a pure function of
//! `(seed, vertex id)` — any rank can recompute any vertex's rich data
//! without communication, and tests can predict exact selectivities.

use crate::kronecker;

/// Configuration of the rich (label/property) part of the generated graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LpgConfig {
    /// Number of distinct labels in the database (paper default: 20).
    pub num_labels: usize,
    /// Number of distinct property types (paper default: 13).
    pub num_ptypes: usize,
    /// Labels per vertex.
    pub labels_per_vertex: usize,
    /// Property entries per vertex.
    pub props_per_vertex: usize,
    /// Size of one property value in bytes (8 = u64 values).
    pub prop_bytes: usize,
    /// Fraction of edges carrying a (lightweight) label.
    pub edge_label_fraction: f64,
}

impl Default for LpgConfig {
    fn default() -> Self {
        Self {
            num_labels: 20,
            num_ptypes: 13,
            labels_per_vertex: 1,
            props_per_vertex: 3,
            prop_bytes: 8,
            edge_label_fraction: 0.5,
        }
    }
}

impl LpgConfig {
    /// A configuration with no rich data (Graph500-like plain graph).
    pub fn bare() -> Self {
        Self {
            num_labels: 0,
            num_ptypes: 0,
            labels_per_vertex: 0,
            props_per_vertex: 0,
            prop_bytes: 0,
            edge_label_fraction: 0.0,
        }
    }

    /// Indices (into the database's generated label list) of the labels on
    /// vertex `app`.
    pub fn vertex_label_indices(&self, seed: u64, app: u64) -> Vec<usize> {
        if self.num_labels == 0 || self.labels_per_vertex == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.labels_per_vertex);
        for j in 0..self.labels_per_vertex {
            let h = kronecker::hash3(seed, app, 0x1a0 + j as u64);
            let idx = (h % self.num_labels as u64) as usize;
            if !out.contains(&idx) {
                out.push(idx);
            }
        }
        out
    }

    /// `(ptype index, value)` pairs of the properties on vertex `app`.
    pub fn vertex_props(&self, seed: u64, app: u64) -> Vec<(usize, u64)> {
        if self.num_ptypes == 0 || self.props_per_vertex == 0 {
            return Vec::new();
        }
        let mut out: Vec<(usize, u64)> = Vec::with_capacity(self.props_per_vertex);
        for j in 0..self.props_per_vertex {
            let idx =
                (kronecker::hash3(seed, app, 0x9e0 + j as u64) % self.num_ptypes as u64) as usize;
            if out.iter().any(|(i, _)| *i == idx) {
                continue;
            }
            let val = kronecker::hash3(seed, app, 0x7700 + idx as u64);
            out.push((idx, val));
        }
        out
    }

    /// The deterministic value of property type `idx` on vertex `app`
    /// (same function the generator uses — lets tests and workloads predict
    /// stored values).
    pub fn prop_value(&self, seed: u64, app: u64, idx: usize) -> u64 {
        kronecker::hash3(seed, app, 0x7700 + idx as u64)
    }

    /// Label index of edge `(u, v)`; `None` for unlabeled edges.
    pub fn edge_label_index(&self, seed: u64, u: u64, v: u64) -> Option<usize> {
        if self.num_labels == 0 || self.edge_label_fraction <= 0.0 {
            return None;
        }
        let h = kronecker::hash3(seed, u.rotate_left(32) ^ v, 0xED6E);
        let p = (h >> 12) as f64 / (1u64 << 52) as f64;
        if p < self.edge_label_fraction {
            Some((h % self.num_labels as u64) as usize)
        } else {
            None
        }
    }

    /// Approximate bytes of rich data per vertex (sizing heuristics).
    pub fn bytes_per_vertex(&self) -> usize {
        self.labels_per_vertex * 12 + self.props_per_vertex * (8 + self.prop_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = LpgConfig::default();
        assert_eq!(c.num_labels, 20);
        assert_eq!(c.num_ptypes, 13);
    }

    #[test]
    fn deterministic_assignment() {
        let c = LpgConfig::default();
        assert_eq!(c.vertex_label_indices(1, 42), c.vertex_label_indices(1, 42));
        assert_eq!(c.vertex_props(1, 42), c.vertex_props(1, 42));
        assert_ne!(c.vertex_props(1, 42), c.vertex_props(2, 42));
    }

    #[test]
    fn indices_in_range_and_unique() {
        let c = LpgConfig {
            labels_per_vertex: 3,
            props_per_vertex: 5,
            ..Default::default()
        };
        for app in 0..200u64 {
            let ls = c.vertex_label_indices(7, app);
            assert!(!ls.is_empty());
            let uniq: std::collections::HashSet<_> = ls.iter().collect();
            assert_eq!(uniq.len(), ls.len());
            assert!(ls.iter().all(|&i| i < c.num_labels));
            let ps = c.vertex_props(7, app);
            let puniq: std::collections::HashSet<_> = ps.iter().map(|(i, _)| i).collect();
            assert_eq!(puniq.len(), ps.len());
            assert!(ps.iter().all(|(i, _)| *i < c.num_ptypes));
        }
    }

    #[test]
    fn prop_value_matches_vertex_props() {
        let c = LpgConfig::default();
        for app in 0..100u64 {
            for (idx, val) in c.vertex_props(3, app) {
                assert_eq!(c.prop_value(3, app, idx), val);
            }
        }
    }

    #[test]
    fn edge_label_fraction_respected() {
        let c = LpgConfig {
            edge_label_fraction: 0.5,
            ..Default::default()
        };
        let labeled = (0..10_000u64)
            .filter(|&i| c.edge_label_index(9, i, i * 3 + 1).is_some())
            .count();
        let frac = labeled as f64 / 10_000.0;
        assert!((frac - 0.5).abs() < 0.03, "frac {frac}");
    }

    #[test]
    fn bare_config_produces_nothing() {
        let c = LpgConfig::bare();
        assert!(c.vertex_label_indices(1, 5).is_empty());
        assert!(c.vertex_props(1, 5).is_empty());
        assert!(c.edge_label_index(1, 2, 3).is_none());
    }

    #[test]
    fn label_distribution_covers_all_labels() {
        let c = LpgConfig::default();
        let mut seen = vec![false; c.num_labels];
        for app in 0..2000u64 {
            for i in c.vertex_label_indices(11, app) {
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "some labels never assigned");
    }
}

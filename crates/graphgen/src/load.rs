//! Collective ingestion of a generated graph into a GDA database.
//!
//! Mirrors the paper's experimental pipeline: the generator produces each
//! rank's slice fully in memory, metadata (labels, property types) is
//! registered once, and the slice is ingested through the BULK collective
//! path — no disks, no files, immediately queryable.

use gda::{EdgeSpec, GdaRank, VertexSpec};
use gdi::{
    AppVertexId, Datatype, EntityType, LabelId, Multiplicity, PTypeId, PropertyValue, SizeType,
};

use crate::{GraphSpec, LpgConfig};

/// Handles of the generated metadata in a database.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LpgMeta {
    /// Generated labels `L0..L{num_labels-1}`.
    pub labels: Vec<LabelId>,
    /// Generated property types `P0..P{num_ptypes-1}` (all `Uint64`).
    pub ptypes: Vec<PTypeId>,
    /// An explicit index over **all** vertices, created before ingestion:
    /// the `GDI_GetLocalVerticesOfIndex` entry point of Listings 2/3.
    pub all_index: Option<gda::IndexId>,
}

impl LpgMeta {
    /// Label handle of a generator label index.
    pub fn label(&self, idx: usize) -> LabelId {
        self.labels[idx]
    }

    /// P-type handle of a generator p-type index.
    pub fn ptype(&self, idx: usize) -> PTypeId {
        self.ptypes[idx]
    }
}

/// Collective: register the generator's labels and property types. Rank 0
/// creates them; all ranks return the same handles (replication refresh).
pub fn install_metadata(eng: &GdaRank, lpg: &LpgConfig) -> LpgMeta {
    if eng.rank() == 0 {
        eng.create_index("__all", Vec::new(), Vec::new())
            .expect("fresh database");
        for i in 0..lpg.num_labels {
            eng.create_label(&format!("L{i}")).expect("fresh database");
        }
        for i in 0..lpg.num_ptypes {
            eng.create_ptype(
                &format!("P{i}"),
                Datatype::Uint64,
                EntityType::VertexEdge,
                Multiplicity::Single,
                SizeType::Fixed,
                1,
            )
            .expect("fresh database");
        }
    }
    eng.ctx().barrier();
    eng.refresh_meta();
    let meta = eng.meta();
    let labels = (0..lpg.num_labels)
        .map(|i| meta.label_from_name(&format!("L{i}")).unwrap())
        .collect();
    let ptypes = (0..lpg.num_ptypes)
        .map(|i| meta.ptype_from_name(&format!("P{i}")).unwrap())
        .collect();
    drop(meta);
    let all_index = eng
        .all_indexes()
        .into_iter()
        .find(|d| d.name == "__all")
        .map(|d| d.id);
    LpgMeta {
        labels,
        ptypes,
        all_index,
    }
}

/// Build the [`VertexSpec`] of one vertex (labels + properties assigned by
/// the deterministic LPG functions).
pub fn vertex_spec(spec: &GraphSpec, meta: &LpgMeta, app: u64) -> VertexSpec {
    let mut v = VertexSpec::new(app);
    for idx in spec.lpg.vertex_label_indices(spec.seed, app) {
        v = v.with_label(meta.label(idx));
    }
    for (idx, val) in spec.lpg.vertex_props(spec.seed, app) {
        v = v.with_prop(meta.ptype(idx), PropertyValue::U64(val));
    }
    v
}

/// Build the [`EdgeSpec`] of one sampled edge.
pub fn edge_spec(spec: &GraphSpec, meta: &LpgMeta, u: u64, v: u64) -> EdgeSpec {
    let label = spec
        .lpg
        .edge_label_index(spec.seed, u, v)
        .map(|i| meta.label(i).0)
        .unwrap_or(0);
    EdgeSpec {
        from: AppVertexId(u),
        to: AppVertexId(v),
        label,
        directed: true,
    }
}

/// Collective: generate this rank's slice and bulk-load it. Returns the
/// rank-local ingestion report.
pub fn load_into(eng: &GdaRank, spec: &GraphSpec) -> (LpgMeta, gda::BulkReport) {
    let meta = install_metadata(eng, &spec.lpg);
    let vertices: Vec<VertexSpec> = spec
        .vertices_for_rank(eng.rank(), eng.nranks())
        .into_iter()
        .map(|app| vertex_spec(spec, &meta, app))
        .collect();
    let edges: Vec<EdgeSpec> = spec
        .edges_for_rank(eng.rank(), eng.nranks())
        .into_iter()
        .map(|(u, v)| edge_spec(spec, &meta, u, v))
        .collect();
    let report = eng.bulk_load(vertices, edges).expect("bulk load");
    (meta, report)
}

/// Suggested GDA configuration for a generated graph at a given rank count
/// (sizes block pools and DHT capacity with headroom).
pub fn sized_config(spec: &GraphSpec, nranks: usize) -> gda::GdaConfig {
    let v_per_rank = (spec.n_vertices() as usize).div_ceil(nranks);
    let e_per_rank = (spec.n_edges() as usize).div_ceil(nranks) * 2;
    gda::GdaConfig::sized_for(
        v_per_rank + 16,
        e_per_rank + 16,
        spec.lpg.bytes_per_vertex(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gda::GdaDb;
    use gdi::{AccessMode, EdgeOrientation};
    use rma::CostModel;

    #[test]
    fn load_small_graph_and_verify() {
        let spec = GraphSpec {
            scale: 7,
            edge_factor: 4,
            seed: 42,
            lpg: LpgConfig::default(),
        };
        let nranks = 4;
        let cfg = sized_config(&spec, nranks);
        let (db, fabric) = GdaDb::with_fabric("gen", cfg, nranks, CostModel::default());
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            let (meta, rep) = load_into(&eng, &spec);
            let total_v = ctx.allreduce_sum_u64(rep.vertices as u64);
            let total_he = ctx.allreduce_sum_u64(rep.half_edges as u64);
            assert_eq!(total_v, spec.n_vertices());
            // self-loops get one record per direction at the same holder;
            // every sampled edge contributes exactly 2 half-edges
            assert_eq!(total_he, 2 * spec.n_edges());

            // verify a sample of vertices: labels, properties, edges
            let tx = eng.begin(AccessMode::ReadOnly);
            for app in (ctx.rank() as u64..spec.n_vertices()).step_by(nranks * 7) {
                let v = tx.translate_vertex_id(AppVertexId(app)).unwrap();
                let expect_labels: Vec<LabelId> = spec
                    .lpg
                    .vertex_label_indices(spec.seed, app)
                    .into_iter()
                    .map(|i| meta.label(i))
                    .collect();
                let mut got = tx.labels(v).unwrap();
                let mut want = expect_labels.clone();
                got.sort();
                want.sort();
                assert_eq!(got, want, "labels of {app}");
                for (idx, val) in spec.lpg.vertex_props(spec.seed, app) {
                    assert_eq!(
                        tx.property(v, meta.ptype(idx)).unwrap(),
                        Some(PropertyValue::U64(val)),
                        "prop {idx} of {app}"
                    );
                }
            }
            tx.commit().unwrap();

            // total degree equals 2m (each directed edge counted at both
            // endpoints)
            let tx = eng.begin(AccessMode::ReadOnly);
            let mut local_deg = 0u64;
            for app in (ctx.rank() as u64..spec.n_vertices()).step_by(nranks) {
                let v = tx.translate_vertex_id(AppVertexId(app)).unwrap();
                local_deg += tx.edge_count(v, EdgeOrientation::Any).unwrap() as u64;
            }
            tx.commit().unwrap();
            let total_deg = ctx.allreduce_sum_u64(local_deg);
            assert_eq!(total_deg, 2 * spec.n_edges());
        });
    }

    #[test]
    fn bare_lpg_loads_without_metadata() {
        let spec = GraphSpec {
            scale: 6,
            edge_factor: 4,
            seed: 1,
            lpg: LpgConfig::bare(),
        };
        let cfg = sized_config(&spec, 2);
        let (db, fabric) = GdaDb::with_fabric("bare", cfg, 2, CostModel::zero());
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            let (meta, rep) = load_into(&eng, &spec);
            assert!(meta.labels.is_empty());
            assert!(meta.ptypes.is_empty());
            assert_eq!(rep.dangling_edges, 0);
        });
    }
}

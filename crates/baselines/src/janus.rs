//! JanusGraph-like baseline: a distributed LPG store with **two-sided**
//! access and eventual consistency.
//!
//! The paper attributes GDA's order-of-magnitude OLTP advantage to
//! one-sided fully-offloaded RDMA; JanusGraph's storage backend
//! (Cassandra/HBase) is message-mediated — every access costs a request
//! and a reply *plus server CPU time*. This analog reproduces those
//! mechanisms: per-operation RPCs with service-time accounting on the
//! target shard, optimistic read-modify-write (its default eventual
//! consistency), and service constants calibrated to the real system's
//! measured latencies (Fig. 5: no operation faster than 200 µs, vertex
//! deletions from ~2000 µs).

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rustc_hash::FxHashMap;

use graphgen::{kronecker::hash3, GraphSpec};
use rma::RankCtx;
use workloads::oltp::{Mix, OltpConfig, OltpResult, OpKind, OpStats};

/// Cost constants (ns) of the two-sided architecture.
#[derive(Debug, Clone, Copy)]
pub struct JanusCost {
    /// One-way message (client→server or back) over the datacenter network.
    pub msg_ns: f64,
    /// Server-side service time of a read (backend adjacency/property
    /// fetch, deserialization).
    pub read_service_ns: f64,
    /// Service time of a write (backend mutation + index upkeep).
    pub write_service_ns: f64,
    /// Service time of a vertex deletion (tombstoning vertex + edges).
    pub delete_service_ns: f64,
}

impl Default for JanusCost {
    fn default() -> Self {
        Self {
            msg_ns: 25_000.0,
            read_service_ns: 150_000.0,
            write_service_ns: 300_000.0,
            delete_service_ns: 1_800_000.0,
        }
    }
}

#[derive(Debug, Default, Clone)]
struct JVertex {
    labels: Vec<u32>,
    props: FxHashMap<u32, u64>,
    /// `(neighbor, label, dir)`; dir 0 = out, 1 = in.
    adj: Vec<(u64, u32, u8)>,
    version: u64,
}

#[derive(Debug, Default)]
struct Shard {
    verts: FxHashMap<u64, JVertex>,
}

/// The distributed store: one shard per rank, reachable only through
/// RPC-accounted operations (the internal `rpc` cost hook).
pub struct JanusStore {
    nranks: usize,
    shards: Vec<Mutex<Shard>>,
    busy_ns: Vec<AtomicU64>,
    pub cost: JanusCost,
}

impl JanusStore {
    pub fn new(nranks: usize) -> Self {
        Self {
            nranks,
            shards: (0..nranks).map(|_| Mutex::new(Shard::default())).collect(),
            busy_ns: (0..nranks).map(|_| AtomicU64::new(0)).collect(),
            cost: JanusCost::default(),
        }
    }

    #[inline]
    fn owner(&self, v: u64) -> usize {
        (v % self.nranks as u64) as usize
    }

    /// Charge one RPC: round trip on the client clock + service time on
    /// the target server's busy counter. `jitter` spreads service times
    /// like a real backend (GC, compaction, cache misses).
    fn rpc(&self, ctx: &RankCtx, target: usize, service_ns: f64, jitter: f64) -> f64 {
        let s = service_ns * jitter;
        ctx.charge_ns(2.0 * self.cost.msg_ns + s);
        self.busy_ns[target].fetch_add(s as u64, Ordering::Relaxed);
        s
    }

    /// Max accumulated server busy time (seconds) — the server-side
    /// throughput bound.
    pub fn max_server_busy_s(&self) -> f64 {
        self.busy_ns
            .iter()
            .map(|b| b.load(Ordering::Relaxed) as f64)
            .fold(0.0, f64::max)
            / 1e9
    }

    /// Collective: load the generated graph (each rank ingests its slice
    /// through writes, like a parallel client-side loader).
    pub fn load(&self, ctx: &RankCtx, spec: &GraphSpec) {
        for app in spec.vertices_for_rank(ctx.rank(), ctx.nranks()) {
            let t = self.owner(app);
            // bulk path: single write RPC per vertex
            self.rpc(ctx, t, self.cost.write_service_ns * 0.25, 1.0);
            let mut shard = self.shards[t].lock();
            let v = shard.verts.entry(app).or_default();
            v.labels = spec
                .lpg
                .vertex_label_indices(spec.seed, app)
                .into_iter()
                .map(|i| i as u32)
                .collect();
            v.props = spec
                .lpg
                .vertex_props(spec.seed, app)
                .into_iter()
                .map(|(i, val)| (i as u32, val))
                .collect();
        }
        ctx.barrier();
        for (u, w) in spec.edges_for_rank(ctx.rank(), ctx.nranks()) {
            let l = spec
                .lpg
                .edge_label_index(spec.seed, u, w)
                .map(|i| i as u32)
                .unwrap_or(u32::MAX);
            for (base, other, dir) in [(u, w, 0u8), (w, u, 1u8)] {
                let t = self.owner(base);
                self.rpc(ctx, t, self.cost.write_service_ns * 0.25, 1.0);
                let mut shard = self.shards[t].lock();
                if let Some(v) = shard.verts.get_mut(&base) {
                    v.adj.push((other, l, dir));
                }
            }
        }
        ctx.barrier();
    }

    /// Run an OLTP mix (same contract as `workloads::oltp::run_oltp`).
    pub fn run_oltp(
        &self,
        ctx: &RankCtx,
        spec: &GraphSpec,
        mix: &Mix,
        cfg: &OltpConfig,
    ) -> OltpResult {
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (ctx.rank() as u64).wrapping_mul(0x51AB));
        let n = spec.n_vertices();
        let mut next_new = n + ctx.rank() as u64 * 1_000_000_007;
        let mut added: Vec<u64> = Vec::new();
        let mut per_op: Vec<(OpKind, OpStats)> = OpKind::ALL
            .iter()
            .map(|k| (*k, OpStats::default()))
            .collect();
        let mut committed = 0u64;
        let mut aborted = 0u64;
        let start = ctx.now_ns();

        for i in 0..cfg.ops_per_rank {
            let kind = mix.sample(&mut rng);
            let jitter =
                0.75 + (hash3(cfg.seed, i as u64, ctx.rank() as u64) % 1000) as f64 / 800.0;
            let t0 = ctx.now_ns();
            let ok = self.run_one(
                ctx,
                spec,
                kind,
                &mut rng,
                n,
                &mut next_new,
                &mut added,
                jitter,
            );
            let dt = ctx.now_ns() - t0;
            let st = &mut per_op.iter_mut().find(|(k, _)| *k == kind).unwrap().1;
            st.attempts += 1;
            st.latency.add(dt);
            if ok {
                st.committed += 1;
                committed += 1;
            } else {
                aborted += 1;
            }
        }
        OltpResult {
            committed,
            aborted,
            per_op,
            sim_ns: ctx.now_ns() - start,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_one(
        &self,
        ctx: &RankCtx,
        _spec: &GraphSpec,
        kind: OpKind,
        rng: &mut SmallRng,
        n: u64,
        next_new: &mut u64,
        added: &mut Vec<u64>,
        jitter: f64,
    ) -> bool {
        let c = self.cost;
        match kind {
            OpKind::GetVertexProps => {
                let app = rng.gen_range(0..n);
                let t = self.owner(app);
                self.rpc(ctx, t, c.read_service_ns, jitter);
                self.shards[t].lock().verts.contains_key(&app)
            }
            OpKind::CountEdges | OpKind::GetEdges => {
                let app = rng.gen_range(0..n);
                let t = self.owner(app);
                let deg = {
                    let shard = self.shards[t].lock();
                    shard.verts.get(&app).map(|v| v.adj.len())
                };
                match deg {
                    Some(d) => {
                        // adjacency fetch cost grows with the result size
                        self.rpc(ctx, t, c.read_service_ns + 500.0 * d as f64, jitter);
                        true
                    }
                    None => {
                        self.rpc(ctx, t, c.read_service_ns, jitter);
                        false
                    }
                }
            }
            OpKind::AddVertex => {
                *next_new += 1;
                let app = *next_new;
                let t = self.owner(app);
                self.rpc(ctx, t, c.write_service_ns, jitter);
                self.shards[t].lock().verts.insert(
                    app,
                    JVertex {
                        labels: vec![(app % 20) as u32],
                        ..Default::default()
                    },
                );
                added.push(app);
                true
            }
            OpKind::DeleteVertex => {
                let app = added.pop().unwrap_or_else(|| rng.gen_range(0..n));
                let t = self.owner(app);
                let removed = {
                    let mut shard = self.shards[t].lock();
                    shard.verts.remove(&app)
                };
                match removed {
                    Some(v) => {
                        self.rpc(ctx, t, c.delete_service_ns, jitter);
                        // tombstone mirrors (one write RPC per neighbor)
                        for (w, _, _) in &v.adj {
                            let tw = self.owner(*w);
                            self.rpc(ctx, tw, c.write_service_ns * 0.5, 1.0);
                            let mut shard = self.shards[tw].lock();
                            if let Some(nv) = shard.verts.get_mut(w) {
                                nv.adj.retain(|(x, _, _)| *x != app);
                            }
                        }
                        true
                    }
                    None => {
                        self.rpc(ctx, t, c.read_service_ns, jitter);
                        false
                    }
                }
            }
            OpKind::UpdateVertexProp => {
                // optimistic read-modify-write: two RPCs with a version
                // check — concurrent writers produce genuine aborts
                let app = rng.gen_range(0..n);
                let t = self.owner(app);
                let ver = {
                    self.rpc(ctx, t, c.read_service_ns, jitter);
                    let shard = self.shards[t].lock();
                    match shard.verts.get(&app) {
                        Some(v) => v.version,
                        None => return false,
                    }
                };
                std::thread::yield_now(); // widen the race window honestly
                self.rpc(ctx, t, c.write_service_ns, jitter);
                let mut shard = self.shards[t].lock();
                match shard.verts.get_mut(&app) {
                    Some(v) if v.version == ver => {
                        v.version += 1;
                        v.props.insert(0, rng.gen());
                        true
                    }
                    _ => false,
                }
            }
            OpKind::AddEdge => {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                for (base, other, dir) in [(a, b, 0u8), (b, a, 1u8)] {
                    let t = self.owner(base);
                    self.rpc(ctx, t, c.write_service_ns, jitter);
                    let mut shard = self.shards[t].lock();
                    match shard.verts.get_mut(&base) {
                        Some(v) => {
                            v.version += 1;
                            v.adj.push((other, 0, dir));
                        }
                        None => return false,
                    }
                }
                true
            }
        }
    }

    /// Total vertices currently stored (diagnostics).
    pub fn total_vertices(&self) -> usize {
        self.shards.iter().map(|s| s.lock().verts.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::LpgConfig;
    use rma::{CostModel, FabricBuilder};
    use std::sync::Arc;

    fn spec() -> GraphSpec {
        GraphSpec {
            scale: 7,
            edge_factor: 4,
            seed: 17,
            lpg: LpgConfig::default(),
        }
    }

    #[test]
    fn load_stores_everything() {
        let spec = spec();
        let store = Arc::new(JanusStore::new(2));
        let fabric = FabricBuilder::new(2)
            .cost(CostModel::default())
            .backend(rma::BackendKind::Sim)
            .build();
        let s = store.clone();
        fabric.run(move |ctx| {
            s.load(ctx, &spec);
        });
        assert_eq!(store.total_vertices(), spec.n_vertices() as usize);
        assert!(store.max_server_busy_s() > 0.0);
    }

    #[test]
    fn oltp_runs_and_is_slower_than_typical_gda_latency() {
        let spec = spec();
        let store = Arc::new(JanusStore::new(2));
        let fabric = FabricBuilder::new(2)
            .cost(CostModel::default())
            .backend(rma::BackendKind::Sim)
            .build();
        let s = store.clone();
        let results = fabric.run(move |ctx| {
            s.load(ctx, &spec);
            ctx.barrier();
            s.run_oltp(
                ctx,
                &spec,
                &Mix::LINKBENCH,
                &OltpConfig {
                    ops_per_rank: 300,
                    seed: 5,
                },
            )
        });
        for r in &results {
            assert!(r.committed > 0);
            // architecture floor: nothing completes faster than one RPC
            for (_, st) in &r.per_op {
                if st.latency.count() > 0 {
                    assert!(
                        st.latency.percentile_ns(1.0) >= 150_000.0,
                        "Janus op faster than its RPC floor"
                    );
                }
            }
            let fail = r.failure_fraction();
            assert!(fail < 0.2, "failure fraction too high: {fail}");
        }
    }

    #[test]
    fn concurrent_updates_produce_some_aborts() {
        let spec = GraphSpec {
            scale: 3, // tiny: force contention
            edge_factor: 2,
            seed: 3,
            lpg: LpgConfig::bare(),
        };
        let store = Arc::new(JanusStore::new(8));
        let fabric = FabricBuilder::new(8).cost(CostModel::zero()).build();
        let s = store.clone();
        let results = fabric.run(move |ctx| {
            s.load(ctx, &spec);
            ctx.barrier();
            let mix = Mix {
                name: "updates",
                weights: [0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0],
            };
            s.run_oltp(
                ctx,
                &spec,
                &mix,
                &OltpConfig {
                    ops_per_rank: 400,
                    seed: 9,
                },
            )
        });
        let aborted: u64 = results.iter().map(|r| r.aborted).sum();
        let committed: u64 = results.iter().map(|r| r.committed).sum();
        assert!(committed > 0);
        assert!(aborted > 0, "optimistic concurrency produced no conflicts");
    }
}

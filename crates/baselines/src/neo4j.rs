//! Neo4j-like baseline: a single-server graph database.
//!
//! Neo4j in the paper's setup runs on **one server** (Table 1: 1 server /
//! 128 cores), so its throughput cannot scale horizontally and all clients
//! funnel into one machine. Mechanically this analog provides:
//!
//! * a global reader-writer lock over the store (coarse transaction
//!   isolation — readers share, writers serialize);
//! * heavyweight per-operation service: record/object materialization per
//!   touched element, calibrated to the millisecond latencies the paper
//!   measured (Fig. 5: most operations below 20 ms, ms-granular timer);
//! * client→server RPC latency per operation;
//! * a bounded server core pool: aggregate service time divided by the
//!   core count caps the achievable throughput, producing the flat
//!   scaling lines of Figs. 4–6.
//!
//! OLAP (BFS, k-hop, BI2) runs server-side and sequentially per query,
//! which is why Neo4j's analytic runtimes in Fig. 6 sit orders of
//! magnitude above GDA's.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rustc_hash::FxHashMap;

use graphgen::{kronecker::hash3, GraphSpec};
use rma::RankCtx;
use workloads::oltp::{Mix, OltpConfig, OltpResult, OpKind, OpStats};

/// Cost constants (ns) of the single-server architecture.
#[derive(Debug, Clone, Copy)]
pub struct Neo4jCost {
    /// Client→server round trip.
    pub rpc_ns: f64,
    /// Base service of a simple read (record materialization, tx state).
    pub read_service_ns: f64,
    /// Base service of a write (WAL, record update, index upkeep).
    pub write_service_ns: f64,
    /// Vertex deletion (detach-delete semantics).
    pub delete_service_ns: f64,
    /// Per-edge traversal cost during OLAP queries.
    pub traverse_edge_ns: f64,
    /// Per-vertex scan cost during OLAP queries.
    pub scan_vertex_ns: f64,
}

impl Default for Neo4jCost {
    fn default() -> Self {
        Self {
            rpc_ns: 60_000.0,
            read_service_ns: 2_200_000.0,
            write_service_ns: 5_500_000.0,
            delete_service_ns: 11_000_000.0,
            traverse_edge_ns: 260.0,
            scan_vertex_ns: 1_800.0,
        }
    }
}

#[derive(Debug, Default, Clone)]
struct N4Vertex {
    labels: Vec<u32>,
    props: FxHashMap<u32, u64>,
    /// `(neighbor, label, dir)`; dir 0 = out, 1 = in.
    adj: Vec<(u64, u32, u8)>,
}

#[derive(Debug, Default)]
struct Inner {
    verts: FxHashMap<u64, N4Vertex>,
}

/// The single-server store.
pub struct Neo4jStore {
    inner: RwLock<Inner>,
    busy_ns: AtomicU64,
    /// Worker cores of the single server (paper setup: 128).
    pub cores: usize,
    pub cost: Neo4jCost,
}

impl Default for Neo4jStore {
    fn default() -> Self {
        Self::new(128)
    }
}

impl Neo4jStore {
    pub fn new(cores: usize) -> Self {
        Self {
            inner: RwLock::new(Inner::default()),
            busy_ns: AtomicU64::new(0),
            cores,
            cost: Neo4jCost::default(),
        }
    }

    fn charge(&self, ctx: &RankCtx, service_ns: f64, jitter: f64) {
        let s = service_ns * jitter;
        ctx.charge_ns(self.cost.rpc_ns + s);
        self.busy_ns.fetch_add(s as u64, Ordering::Relaxed);
    }

    /// Aggregate server busy time divided by the core pool: the server-side
    /// makespan bound in seconds.
    pub fn server_makespan_s(&self) -> f64 {
        self.busy_ns.load(Ordering::Relaxed) as f64 / self.cores as f64 / 1e9
    }

    /// Load the full generated graph (rank 0 only; Neo4j ingestion is a
    /// single-machine bulk import).
    pub fn load(&self, ctx: &RankCtx, spec: &GraphSpec) {
        if ctx.rank() == 0 {
            let mut g = self.inner.write();
            for app in 0..spec.n_vertices() {
                let v = g.verts.entry(app).or_default();
                v.labels = spec
                    .lpg
                    .vertex_label_indices(spec.seed, app)
                    .into_iter()
                    .map(|i| i as u32)
                    .collect();
                v.props = spec
                    .lpg
                    .vertex_props(spec.seed, app)
                    .into_iter()
                    .map(|(i, val)| (i as u32, val))
                    .collect();
            }
            for (u, w) in spec.edges_for_rank(0, 1) {
                let l = spec
                    .lpg
                    .edge_label_index(spec.seed, u, w)
                    .map(|i| i as u32)
                    .unwrap_or(u32::MAX);
                if let Some(v) = g.verts.get_mut(&u) {
                    v.adj.push((w, l, 0));
                }
                if let Some(v) = g.verts.get_mut(&w) {
                    v.adj.push((u, l, 1));
                }
            }
            // bulk import cost on the server
            let items = spec.n_vertices() + 2 * spec.n_edges();
            ctx.charge_ns(items as f64 * self.cost.scan_vertex_ns);
        }
        ctx.barrier();
    }

    /// Run an OLTP mix (same contract as `workloads::oltp::run_oltp`).
    /// All ranks act as clients of the one server.
    pub fn run_oltp(
        &self,
        ctx: &RankCtx,
        spec: &GraphSpec,
        mix: &Mix,
        cfg: &OltpConfig,
    ) -> OltpResult {
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (ctx.rank() as u64).wrapping_mul(0x4E04));
        let n = spec.n_vertices();
        let mut next_new = n + ctx.rank() as u64 * 1_000_000_007;
        let mut added: Vec<u64> = Vec::new();
        let mut per_op: Vec<(OpKind, OpStats)> = OpKind::ALL
            .iter()
            .map(|k| (*k, OpStats::default()))
            .collect();
        let (mut committed, mut aborted) = (0u64, 0u64);
        let start = ctx.now_ns();

        for i in 0..cfg.ops_per_rank {
            let kind = mix.sample(&mut rng);
            // long-tail jitter: JVM GC pauses and page faults
            let h = hash3(cfg.seed, i as u64, ctx.rank() as u64);
            let jitter =
                0.6 + (h % 1000) as f64 / 400.0 + if h.is_multiple_of(97) { 8.0 } else { 0.0 }; // outliers
            let t0 = ctx.now_ns();
            let ok = self.run_one(ctx, kind, &mut rng, n, &mut next_new, &mut added, jitter);
            let dt = ctx.now_ns() - t0;
            let st = &mut per_op.iter_mut().find(|(k, _)| *k == kind).unwrap().1;
            st.attempts += 1;
            st.latency.add(dt);
            if ok {
                st.committed += 1;
                committed += 1;
            } else {
                aborted += 1;
            }
        }
        OltpResult {
            committed,
            aborted,
            per_op,
            sim_ns: ctx.now_ns() - start,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_one(
        &self,
        ctx: &RankCtx,
        kind: OpKind,
        rng: &mut SmallRng,
        n: u64,
        next_new: &mut u64,
        added: &mut Vec<u64>,
        jitter: f64,
    ) -> bool {
        let c = self.cost;
        match kind {
            OpKind::GetVertexProps => {
                self.charge(ctx, c.read_service_ns, jitter);
                let g = self.inner.read();
                g.verts.contains_key(&rng.gen_range(0..n))
            }
            OpKind::CountEdges | OpKind::GetEdges => {
                let app = rng.gen_range(0..n);
                let g = self.inner.read();
                match g.verts.get(&app) {
                    Some(v) => {
                        let d = v.adj.len() as f64;
                        drop(g);
                        self.charge(ctx, c.read_service_ns + c.traverse_edge_ns * d, jitter);
                        true
                    }
                    None => {
                        drop(g);
                        self.charge(ctx, c.read_service_ns, jitter);
                        false
                    }
                }
            }
            OpKind::AddVertex => {
                *next_new += 1;
                let app = *next_new;
                self.charge(ctx, c.write_service_ns, jitter);
                let mut g = self.inner.write();
                g.verts.insert(app, N4Vertex::default());
                added.push(app);
                true
            }
            OpKind::DeleteVertex => {
                let app = added.pop().unwrap_or_else(|| rng.gen_range(0..n));
                let mut g = self.inner.write();
                match g.verts.remove(&app) {
                    Some(v) => {
                        for (w, _, _) in &v.adj {
                            if let Some(nv) = g.verts.get_mut(w) {
                                nv.adj.retain(|(x, _, _)| *x != app);
                            }
                        }
                        let d = v.adj.len() as f64;
                        drop(g);
                        self.charge(
                            ctx,
                            c.delete_service_ns + c.write_service_ns * 0.1 * d,
                            jitter,
                        );
                        true
                    }
                    None => {
                        drop(g);
                        self.charge(ctx, c.read_service_ns, jitter);
                        false
                    }
                }
            }
            OpKind::UpdateVertexProp => {
                let app = rng.gen_range(0..n);
                self.charge(ctx, c.write_service_ns, jitter);
                let mut g = self.inner.write();
                match g.verts.get_mut(&app) {
                    Some(v) => {
                        v.props.insert(0, rng.gen());
                        true
                    }
                    None => false,
                }
            }
            OpKind::AddEdge => {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                self.charge(ctx, c.write_service_ns, jitter);
                let mut g = self.inner.write();
                if !g.verts.contains_key(&a) || !g.verts.contains_key(&b) {
                    return false;
                }
                g.verts.get_mut(&a).unwrap().adj.push((b, 0, 0));
                g.verts.get_mut(&b).unwrap().adj.push((a, 0, 1));
                true
            }
        }
    }

    // ------------------------------------------------------------------
    // OLAP (server-side, sequential per query)
    // ------------------------------------------------------------------

    /// Server-side BFS; only rank 0 executes, all ranks barrier. Returns
    /// `(visited, levels)` for cross-checking against GDA and Graph500.
    pub fn bfs(&self, ctx: &RankCtx, root: u64) -> (u64, u32) {
        let result = if ctx.rank() == 0 {
            let g = self.inner.read();
            let mut seen: FxHashMap<u64, u32> = FxHashMap::default();
            let mut frontier = vec![root];
            seen.insert(root, 0);
            let mut levels = 0;
            let mut edges_touched = 0u64;
            while !frontier.is_empty() {
                let mut next = Vec::new();
                for v in frontier {
                    if let Some(vx) = g.verts.get(&v) {
                        for &(w, _, _) in &vx.adj {
                            edges_touched += 1;
                            if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(w) {
                                e.insert(0);
                                next.push(w);
                            }
                        }
                    }
                }
                if next.is_empty() {
                    break;
                }
                levels += 1;
                frontier = next;
            }
            let service = edges_touched as f64 * self.cost.traverse_edge_ns
                + seen.len() as f64 * self.cost.scan_vertex_ns;
            self.charge(ctx, service, 1.0);
            (seen.len() as u64, levels)
        } else {
            (0, 0)
        };
        let visited = ctx.bcast(
            0,
            if ctx.rank() == 0 {
                Some(result.0)
            } else {
                None
            },
        );
        let levels = ctx.bcast(
            0,
            if ctx.rank() == 0 {
                Some(result.1)
            } else {
                None
            },
        );
        (visited, levels)
    }

    /// Server-side k-hop count.
    pub fn khop(&self, ctx: &RankCtx, root: u64, k: u32) -> u64 {
        let result = if ctx.rank() == 0 {
            let g = self.inner.read();
            let mut seen: std::collections::HashSet<u64> = Default::default();
            let mut frontier = vec![root];
            seen.insert(root);
            let mut edges_touched = 0u64;
            for _ in 0..k {
                let mut next = Vec::new();
                for v in frontier {
                    if let Some(vx) = g.verts.get(&v) {
                        for &(w, _, _) in &vx.adj {
                            edges_touched += 1;
                            if seen.insert(w) {
                                next.push(w);
                            }
                        }
                    }
                }
                frontier = next;
            }
            self.charge(
                ctx,
                edges_touched as f64 * self.cost.traverse_edge_ns
                    + seen.len() as f64 * self.cost.scan_vertex_ns,
                1.0,
            );
            seen.len() as u64
        } else {
            0
        };
        ctx.bcast(0, if ctx.rank() == 0 { Some(result) } else { None })
    }

    /// Server-side BI-2-style aggregate (same predicate as
    /// `workloads::bi2`): full scan + neighbor expansion.
    pub fn bi2(&self, ctx: &RankCtx, params: &workloads::bi2::Bi2Params) -> u64 {
        let result = if ctx.rank() == 0 {
            let g = self.inner.read();
            let mut count = 0u64;
            let mut touched = 0u64;
            for (_, v) in g.verts.iter() {
                touched += 1;
                if !v.labels.contains(&(params.person_label as u32)) {
                    continue;
                }
                let Some(&age) = v.props.get(&(params.person_prop as u32)) else {
                    continue;
                };
                if age <= params.person_threshold {
                    continue;
                }
                for &(w, l, dir) in &v.adj {
                    touched += 1;
                    if dir != 0 || l != params.edge_label as u32 {
                        continue;
                    }
                    if let Some(wx) = g.verts.get(&w) {
                        if wx.labels.contains(&(params.target_label as u32))
                            && wx
                                .props
                                .get(&(params.target_prop as u32))
                                .is_some_and(|&c| c > params.target_threshold)
                        {
                            count += 1;
                            break;
                        }
                    }
                }
            }
            self.charge(ctx, touched as f64 * self.cost.scan_vertex_ns, 1.0);
            count
        } else {
            0
        };
        ctx.bcast(0, if ctx.rank() == 0 { Some(result) } else { None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::LpgConfig;
    use rma::{CostModel, FabricBuilder};
    use std::sync::Arc;

    fn spec() -> GraphSpec {
        GraphSpec {
            scale: 7,
            edge_factor: 4,
            seed: 13,
            lpg: LpgConfig::default(),
        }
    }

    #[test]
    fn oltp_latencies_are_millisecond_scale() {
        let spec = spec();
        let store = Arc::new(Neo4jStore::new(8));
        let fabric = FabricBuilder::new(2)
            .cost(CostModel::default())
            .backend(rma::BackendKind::Sim)
            .build();
        let s = store.clone();
        let results = fabric.run(move |ctx| {
            s.load(ctx, &spec);
            s.run_oltp(
                ctx,
                &spec,
                &Mix::LINKBENCH,
                &OltpConfig {
                    ops_per_rank: 200,
                    seed: 2,
                },
            )
        });
        for r in &results {
            assert!(r.committed > 0);
            for (_, st) in &r.per_op {
                if st.latency.count() > 0 {
                    assert!(
                        st.latency.percentile_ns(5.0) >= 1_000_000.0,
                        "Neo4j op faster than 1 ms"
                    );
                }
            }
        }
        assert!(store.server_makespan_s() > 0.0);
    }

    #[test]
    fn bfs_agrees_with_reference() {
        let spec = GraphSpec {
            scale: 6,
            edge_factor: 4,
            seed: 11,
            lpg: LpgConfig::bare(),
        };
        // reference from the raw edge list
        let n = spec.n_vertices() as usize;
        let mut adj = vec![Vec::new(); n];
        for (u, v) in spec.edges_for_rank(0, 1) {
            adj[u as usize].push(v as usize);
            adj[v as usize].push(u as usize);
        }
        let mut seen = std::collections::HashSet::new();
        let mut q = std::collections::VecDeque::new();
        seen.insert(0usize);
        q.push_back(0usize);
        while let Some(v) = q.pop_front() {
            for &w in &adj[v] {
                if seen.insert(w) {
                    q.push_back(w);
                }
            }
        }
        let store = Arc::new(Neo4jStore::new(4));
        let fabric = FabricBuilder::new(2)
            .cost(CostModel::default())
            .backend(rma::BackendKind::Sim)
            .build();
        let s = store.clone();
        let got = fabric.run(move |ctx| {
            s.load(ctx, &spec);
            s.bfs(ctx, 0)
        });
        for (visited, _) in got {
            assert_eq!(visited, seen.len() as u64);
        }
    }

    #[test]
    fn bi2_matches_workloads_reference() {
        let spec = GraphSpec {
            scale: 6,
            edge_factor: 8,
            seed: 99,
            lpg: LpgConfig {
                num_labels: 4,
                num_ptypes: 4,
                labels_per_vertex: 2,
                props_per_vertex: 3,
                edge_label_fraction: 1.0,
                ..Default::default()
            },
        };
        let params = workloads::bi2::Bi2Params {
            person_threshold: u64::MAX / 8,
            target_threshold: u64::MAX / 8,
            ..Default::default()
        };
        let want = workloads::bi2::bi2_reference(&spec, &params);
        let store = Arc::new(Neo4jStore::new(4));
        let fabric = FabricBuilder::new(3)
            .cost(CostModel::default())
            .backend(rma::BackendKind::Sim)
            .build();
        let s = store.clone();
        let got = fabric.run(move |ctx| {
            s.load(ctx, &spec);
            s.bi2(ctx, &params)
        });
        assert!(got.iter().all(|&c| c == want));
    }
}

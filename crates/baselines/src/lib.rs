//! # `baselines` — the comparison systems of the paper's evaluation (§6.2)
//!
//! The paper compares GDI-RMA against Neo4j 5.10, JanusGraph 0.6.2 and the
//! Graph500 reference BFS. None of those can run here (JVM services, a
//! Cray supercomputer), so this crate implements **architectural analogs**
//! whose *mechanisms* produce the paper's performance relationships rather
//! than hard-coding them (substitution rationale in `docs/ARCHITECTURE.md`):
//!
//! * [`graph500`] — distributed CSR level-synchronous BFS on the same RMA
//!   fabric: no transactions, no LPG, bitmap visited sets. The
//!   non-transactional upper bound GDA is compared against in Fig. 6e/6f.
//! * [`janus`] — a distributed LPG store accessed through **two-sided**
//!   request/reply operations (every access consumes server CPU and two
//!   message latencies — the architectural contrast to one-sided RDMA),
//!   with eventual consistency and optimistic read-modify-write (conflicts
//!   surface as failed transactions).
//! * [`neo4j`] — a **single-server** store behind a global reader-writer
//!   lock with heavyweight per-operation object materialization and
//!   client/server RPC, the reason for its millisecond latencies and flat
//!   scaling curves in Figs. 4–6.
//!
//! Per-operation service constants are calibrated to the latency
//! histograms the paper measured for the real systems (Fig. 5): GDA in the
//! 1–100 µs range, JanusGraph no faster than 200 µs, Neo4j in
//! milliseconds.

pub mod graph500;
pub mod janus;
pub mod neo4j;

pub use graph500::{build_csr, csr_bfs, Csr};
pub use janus::JanusStore;
pub use neo4j::Neo4jStore;

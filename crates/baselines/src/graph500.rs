//! Graph500-style reference BFS: distributed CSR, no transactions, no LPG.
//!
//! This is the "very competitive target" of §6.5: a tuned traversal kernel
//! operating on a static simple graph with none of a database's costs —
//! no translation DHT, no holders, no locks, no properties. GDA's BFS is
//! expected to land within a small factor of it (the paper reports 2–4×,
//! sometimes parity).

use rustc_hash::FxHashMap;

use graphgen::GraphSpec;
use rma::RankCtx;

/// A rank-local CSR shard of the undirected graph. Vertex `v` is owned by
/// rank `v mod P` and has local index `v div P` (same round-robin
/// placement as GDA, making runs directly comparable).
#[derive(Debug, Default)]
pub struct Csr {
    pub nranks: usize,
    pub rank: usize,
    /// Global ids of local vertices: `local i` ↔ `global i*P + rank`.
    pub n_local: usize,
    offsets: Vec<usize>,
    targets: Vec<u64>,
}

impl Csr {
    /// Neighbors of local vertex `i`.
    pub fn neighbors(&self, i: usize) -> &[u64] {
        &self.targets[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Local index of a global vertex owned by this rank.
    #[inline]
    pub fn local_index(&self, v: u64) -> usize {
        debug_assert_eq!(v as usize % self.nranks, self.rank);
        v as usize / self.nranks
    }

    /// Number of local edge endpoints.
    pub fn n_local_edges(&self) -> usize {
        self.targets.len()
    }
}

/// Collective: build the distributed CSR from the generated edge stream
/// (each rank samples its slice, half-edges are routed to owners with one
/// all-to-all, then sorted into CSR — the standard Graph500 construction).
pub fn build_csr(ctx: &RankCtx, spec: &GraphSpec) -> Csr {
    let nranks = ctx.nranks();
    let rank = ctx.rank();
    let mut rows: Vec<Vec<(u64, u64)>> = (0..nranks).map(|_| Vec::new()).collect();
    for (u, v) in spec.edges_for_rank(rank, nranks) {
        rows[u as usize % nranks].push((u, v));
        rows[v as usize % nranks].push((v, u));
    }
    let recv = ctx.alltoallv(rows);

    let n_local = spec.n_vertices() as usize / nranks
        + usize::from(rank < spec.n_vertices() as usize % nranks);
    let mut adj: Vec<Vec<u64>> = vec![Vec::new(); n_local];
    for (src, dst) in recv.into_iter().flatten() {
        adj[src as usize / nranks].push(dst);
    }
    ctx.charge_cpu(adj.iter().map(Vec::len).sum::<usize>() as u64 + 1);

    let mut offsets = Vec::with_capacity(n_local + 1);
    let mut targets = Vec::new();
    offsets.push(0);
    for mut list in adj {
        list.sort_unstable();
        targets.extend_from_slice(&list);
        offsets.push(targets.len());
    }
    Csr {
        nranks,
        rank,
        n_local,
        offsets,
        targets,
    }
}

/// Level-synchronous BFS from `root`. Returns `(visited, levels)` — the
/// same contract as the GDA BFS, so results can be cross-checked.
pub fn csr_bfs(ctx: &RankCtx, csr: &Csr, root: u64) -> (u64, u32) {
    let nranks = ctx.nranks();
    let mut visited = vec![false; csr.n_local];
    let mut frontier: Vec<usize> = Vec::new();
    if root as usize % nranks == csr.rank {
        let i = csr.local_index(root);
        visited[i] = true;
        frontier.push(i);
    }
    let mut total = ctx.allreduce_sum_u64(frontier.len() as u64);
    let mut levels = 0u32;
    loop {
        let mut rows: Vec<Vec<u64>> = (0..nranks).map(|_| Vec::new()).collect();
        for &i in &frontier {
            for &t in csr.neighbors(i) {
                rows[t as usize % nranks].push(t);
            }
        }
        ctx.charge_cpu(frontier.len() as u64 + 1);
        let recv = ctx.alltoallv(rows);
        let mut next = Vec::new();
        for t in recv.into_iter().flatten() {
            let i = csr.local_index(t);
            if !visited[i] {
                visited[i] = true;
                next.push(i);
            }
        }
        let n = ctx.allreduce_sum_u64(next.len() as u64);
        if n == 0 {
            break;
        }
        total += n;
        frontier = next;
        levels += 1;
    }
    (total, levels)
}

/// Degree map (global id → degree) of this rank's shard, for tests.
pub fn local_degrees(csr: &Csr) -> FxHashMap<u64, usize> {
    (0..csr.n_local)
        .map(|i| ((i * csr.nranks + csr.rank) as u64, csr.neighbors(i).len()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::LpgConfig;
    use rma::{CostModel, FabricBuilder};

    fn spec() -> GraphSpec {
        GraphSpec {
            scale: 7,
            edge_factor: 5,
            seed: 13,
            lpg: LpgConfig::bare(),
        }
    }

    #[test]
    fn csr_has_all_edges() {
        let spec = spec();
        let fabric = FabricBuilder::new(4)
            .cost(CostModel::default())
            .backend(rma::BackendKind::Sim)
            .build();
        fabric.run(|ctx| {
            let csr = build_csr(ctx, &spec);
            let local: u64 = csr.n_local_edges() as u64;
            let total = ctx.allreduce_sum_u64(local);
            assert_eq!(total, 2 * spec.n_edges());
            let nv = ctx.allreduce_sum_u64(csr.n_local as u64);
            assert_eq!(nv, spec.n_vertices());
        });
    }

    #[test]
    fn bfs_identical_across_rank_counts() {
        let spec = spec();
        let mut results = Vec::new();
        for nranks in [1usize, 2, 5] {
            let fabric = FabricBuilder::new(nranks)
                .cost(CostModel::default())
                .build();
            let r = fabric.run(|ctx| {
                let csr = build_csr(ctx, &spec);
                csr_bfs(ctx, &csr, 1)
            });
            results.push(r[0]);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
        assert!(results[0].0 > 1, "BFS reached nothing");
    }

    #[test]
    fn degrees_match_direct_count() {
        let spec = spec();
        let mut want: FxHashMap<u64, usize> = FxHashMap::default();
        for (u, v) in spec.edges_for_rank(0, 1) {
            *want.entry(u).or_insert(0) += 1;
            *want.entry(v).or_insert(0) += 1;
        }
        let fabric = FabricBuilder::new(3).cost(CostModel::zero()).build();
        fabric.run(|ctx| {
            let csr = build_csr(ctx, &spec);
            for (v, d) in local_degrees(&csr) {
                assert_eq!(d, want.get(&v).copied().unwrap_or(0), "vertex {v}");
            }
        });
    }
}

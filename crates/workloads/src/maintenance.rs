//! Sustained update-heavy churn with incremental checkpoints and
//! background maintenance: the churn-proportional durability scenario.
//!
//! A persistence-enabled server takes one **full** checkpoint over the
//! bulk-loaded base graph, then serves `rounds` of tracked update-heavy
//! session traffic; after each round it publishes a **delta**
//! checkpoint (dirty chunks only) and runs a collective maintenance
//! pass (MVCC vacuum, free-list vacuum, chain compaction, snapshot
//! checksum verification). The run ends with a kill and a recovery from
//! the full+delta chain plus the redo tail, verified with
//! read-your-committed-writes. Per round the scenario samples delta
//! bytes/stall (the churn-proportional gate: flat in database size,
//! linear in churn) and the live-block count (the vacuum's
//! bounded-garbage gate).
//!
//! Used by `gdi-bench`'s `maintenance_sweep` for the cost curves and by
//! the workload's own test for correctness.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use gda::persist::PersistOptions;
use gda::GdaDb;
use gdi::{AppVertexId, GdiError, PropertyValue};
use graphgen::{load_into, sized_config, GraphSpec, LpgMeta};
use rma::CostModel;
use server::{GdiServer, Op, OpOutcome, OpReply, RecoverySummary, ServerOptions};

/// Shape of one churn-and-maintain run.
#[derive(Debug, Clone)]
pub struct MaintenanceScenario {
    /// Fabric ranks.
    pub nranks: usize,
    /// Kronecker scale of the bulk-loaded base graph (the database-size
    /// axis: churn below is independent of it).
    pub scale: u32,
    /// Concurrent tracked client sessions.
    pub sessions: usize,
    /// Tracked vertices each session owns (the hot set its updates
    /// hammer).
    pub tracked_per_session: usize,
    /// Churn rounds (each: traffic → delta checkpoint → maintenance).
    pub rounds: usize,
    /// Tracked ops per session per round (the churn axis).
    pub ops_per_round: usize,
    /// RNG seed.
    pub seed: u64,
    /// Persistence directory.
    pub dir: PathBuf,
    /// Server tuning.
    pub server: ServerOptions,
    /// Fabric cost model.
    pub cost: CostModel,
    /// Fabric execution backend (`None` = process default).
    pub backend: Option<rma::BackendKind>,
}

impl MaintenanceScenario {
    /// A small default shape writing under `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            nranks: 2,
            scale: 7,
            sessions: 4,
            tracked_per_session: 12,
            rounds: 3,
            ops_per_round: 40,
            seed: 0xC0DE,
            dir: dir.into(),
            server: ServerOptions::default(),
            cost: CostModel::default(),
            backend: None,
        }
    }
}

/// One checkpoint, as sampled by the scenario.
#[derive(Debug, Clone, Default)]
pub struct CheckpointSample {
    /// Published checkpoint id.
    pub id: u64,
    /// Full snapshot (`true`) or delta (`false`).
    pub full: bool,
    /// Snapshot bytes written, summed over ranks.
    pub bytes: u64,
    /// Dirty chunks shipped, summed over ranks (0 for full).
    pub chunks: u64,
    /// Simulated seconds commits were stalled (max over ranks).
    pub sim_stall_s: f64,
}

/// One maintenance pass, as sampled by the scenario.
#[derive(Debug, Clone, Default)]
pub struct MaintSample {
    /// Archived versions the vacuum freed.
    pub vacuumed_versions: u64,
    /// Blocks the vacuum returned to the free lists.
    pub vacuumed_blocks: u64,
    /// Continuation blocks compaction moved.
    pub compacted_blocks: u64,
    /// Snapshot-chain bytes checksum-verified.
    pub verified_bytes: u64,
    /// Verifier failures (must stay 0).
    pub verify_errors: u64,
    /// Allocated blocks across all ranks *after* the pass — the
    /// bounded-garbage gate watches this stay flat across rounds.
    pub live_blocks: u64,
}

/// Outcome of one churn-and-maintain run.
#[derive(Debug, Clone)]
pub struct MaintenanceRunReport {
    /// The initial full checkpoint (grows with database size).
    pub full: CheckpointSample,
    /// One delta checkpoint per churn round (should track churn, not
    /// database size).
    pub deltas: Vec<CheckpointSample>,
    /// One maintenance pass per churn round.
    pub maint: Vec<MaintSample>,
    /// Block-pool capacity across all ranks (denominator for
    /// `live_blocks`).
    pub total_blocks: u64,
    /// Tracked writes the old server acknowledged as committed.
    pub committed_writes: u64,
    /// Read-back checks performed after recovery.
    pub checks: u64,
    /// Checks that failed (empty = zero divergence).
    pub mismatches: Vec<String>,
    /// What recovery replayed.
    pub recovery: Option<RecoverySummary>,
    /// Wall-clock seconds of the serving phase.
    pub serve_wall_s: f64,
    /// Wall-clock seconds from `recover()` to serving + verified.
    pub restart_wall_s: f64,
}

impl MaintenanceRunReport {
    /// Zero divergence and a clean verifier?
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty() && self.maint.iter().all(|m| m.verify_errors == 0)
    }

    /// Bytes of the largest delta checkpoint (the churn-cost headline).
    pub fn max_delta_bytes(&self) -> u64 {
        self.deltas.iter().map(|d| d.bytes).max().unwrap_or(0)
    }

    /// Live blocks after the last maintenance pass.
    pub fn final_live_blocks(&self) -> u64 {
        self.maint.last().map(|m| m.live_blocks).unwrap_or(0)
    }
}

/// What a session's tracked vertex must look like after recovery.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Expect {
    Present(u64),
    Deleted,
}

/// One session's round of update-heavy churn against its own tracked
/// set: ~80% property overwrites (each archiving an MVCC pre-image —
/// the garbage the vacuum must bound), ~10% delete, ~10% insert, so the
/// population stays roughly constant while the DHT and block pool
/// churn.
fn drive_session_round(
    session: &server::Session,
    expect: &mut HashMap<u64, Expect>,
    rng: &mut SmallRng,
    meta: &LpgMeta,
    next_new: &mut u64,
    stamp: &mut u64,
    ops: usize,
) -> u64 {
    let p0 = meta.ptype(0);
    let mut committed = 0u64;
    for _ in 0..ops {
        let live: Vec<u64> = expect
            .iter()
            .filter_map(|(v, e)| matches!(e, Expect::Present(_)).then_some(*v))
            .collect();
        *stamp += 1;
        let op = match rng.gen_range(0..100) {
            0..=79 if !live.is_empty() => Op::UpdateVertexProp {
                v: AppVertexId(live[rng.gen_range(0..live.len())]),
                ptype: p0,
                value: PropertyValue::U64(1_000_000 + *stamp),
            },
            80..=89 if !live.is_empty() => Op::DeleteVertex {
                v: AppVertexId(live[rng.gen_range(0..live.len())]),
            },
            _ => {
                *next_new += 1;
                Op::AddVertex {
                    v: AppVertexId(*next_new),
                    label: None,
                    prop: Some((p0, PropertyValue::U64(*next_new))),
                }
            }
        };
        match session.execute(op.clone()) {
            Ok(OpOutcome::Committed(_)) => {
                committed += 1;
                match &op {
                    Op::UpdateVertexProp {
                        v,
                        value: PropertyValue::U64(x),
                        ..
                    } => {
                        expect.insert(v.0, Expect::Present(*x));
                    }
                    Op::DeleteVertex { v } => {
                        expect.insert(v.0, Expect::Deleted);
                    }
                    Op::AddVertex { v, .. } => {
                        expect.insert(v.0, Expect::Present(v.0));
                    }
                    _ => {}
                }
            }
            // aborted or shed: no state change to track; indeterminate
            // does not occur in this closed-loop healthy-run scenario,
            // but drop the vertex from verification if it ever does
            Ok(OpOutcome::Indeterminate(_)) => {
                if let Op::UpdateVertexProp { v, .. }
                | Op::DeleteVertex { v }
                | Op::AddVertex { v, .. } = &op
                {
                    expect.remove(&v.0);
                }
            }
            _ => {}
        }
    }
    committed
}

/// Run the full churn-and-maintain scenario: full checkpoint → rounds
/// of (traffic, delta checkpoint, maintenance) → kill → recover →
/// verify.
pub fn run_maintenance_churn(cfg: &MaintenanceScenario) -> MaintenanceRunReport {
    let spec = GraphSpec {
        scale: cfg.scale,
        edge_factor: 8,
        seed: cfg.seed,
        lpg: graphgen::LpgConfig::default(),
    };
    let n_base = spec.n_vertices();
    let mut gcfg = sized_config(&spec, cfg.nranks);
    // headroom: tracked sets, their bounded archive chains, and the
    // insert/delete churn
    let extra = (cfg.sessions * cfg.tracked_per_session * 8).next_power_of_two();
    gcfg.blocks_per_rank += extra * 2;
    gcfg.dht_heap_per_rank += extra * 2;
    let total_blocks = (gcfg.blocks_per_rank * cfg.nranks) as u64;

    let span = (cfg.tracked_per_session + cfg.rounds * cfg.ops_per_round) as u64 + 1;
    let mut expects: Vec<HashMap<u64, Expect>> =
        (0..cfg.sessions).map(|_| HashMap::new()).collect();
    let mut rngs: Vec<SmallRng> = (0..cfg.sessions)
        .map(|s| SmallRng::seed_from_u64(cfg.seed ^ (s as u64).wrapping_mul(0x9E37_79B9)))
        .collect();
    let mut next_new: Vec<u64> = (0..cfg.sessions)
        .map(|s| n_base + 1 + s as u64 * span)
        .collect();
    let mut stamps: Vec<u64> = (0..cfg.sessions).map(|s| (s as u64) << 32).collect();
    let mut committed_writes = 0u64;

    // ---- phase 1: load, full checkpoint, churn rounds, kill ----------
    let serve_t0 = std::time::Instant::now();
    let mut full = CheckpointSample::default();
    let mut deltas: Vec<CheckpointSample> = Vec::new();
    let mut maint: Vec<MaintSample> = Vec::new();
    let meta = {
        let db: Arc<GdaDb> = GdaDb::new("maintenance", gcfg, cfg.nranks);
        db.enable_persistence(PersistOptions::new(&cfg.dir))
            .expect("fresh persistence dir");
        let fabric = match cfg.backend {
            Some(b) => gcfg.build_fabric_on(cfg.nranks, cfg.cost, b),
            None => gcfg.build_fabric(cfg.nranks, cfg.cost),
        };
        let metas = fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            let (meta, _) = load_into(&eng, &spec);
            meta
        });
        let meta = metas.into_iter().next().expect("at least one rank");

        let srv = GdiServer::new(db.clone(), cfg.server.clone());
        std::thread::scope(|scope| {
            let s = &srv;
            let ranks = scope.spawn(move || fabric.run(|ctx| s.serve_rank(ctx)));
            // seed each session's tracked set
            std::thread::scope(|inner| {
                for (s_idx, expect) in expects.iter_mut().enumerate() {
                    let srv = srv.clone();
                    let meta = &meta;
                    let base = n_base + 1 + s_idx as u64 * span;
                    let tracked = cfg.tracked_per_session;
                    inner.spawn(move || {
                        let session = srv.session();
                        for k in 0..tracked as u64 {
                            let id = base + k;
                            if let Ok(OpOutcome::Committed(_)) = session.execute(Op::AddVertex {
                                v: AppVertexId(id),
                                label: None,
                                prop: Some((meta.ptype(0), PropertyValue::U64(id))),
                            }) {
                                expect.insert(id, Expect::Present(id));
                            }
                        }
                    });
                }
            });
            for e in &expects {
                committed_writes += e.len() as u64;
            }
            for n in &mut next_new {
                *n += cfg.tracked_per_session as u64;
            }
            // the full base: grows with database size
            let ck = srv.checkpoint();
            if ck.is_err() {
                srv.shutdown();
            }
            let ck = ck.expect("initial full checkpoint");
            assert!(ck.full, "first checkpoint must be a full snapshot");
            full = CheckpointSample {
                id: ck.id,
                full: ck.full,
                bytes: ck.per_rank_bytes.iter().sum(),
                chunks: ck.per_rank_chunks.iter().sum(),
                sim_stall_s: ck.sim_stall_s,
            };
            // churn rounds: traffic → delta checkpoint → maintenance
            for _round in 0..cfg.rounds {
                std::thread::scope(|inner| {
                    let meta = &meta;
                    let work = expects
                        .iter_mut()
                        .zip(rngs.iter_mut())
                        .zip(next_new.iter_mut().zip(stamps.iter_mut()));
                    for ((expect, rng), (next, stamp)) in work {
                        let srv = srv.clone();
                        let ops = cfg.ops_per_round;
                        inner.spawn(move || {
                            let session = srv.session();
                            drive_session_round(&session, expect, rng, meta, next, stamp, ops)
                        });
                    }
                });
                let ck = srv.checkpoint();
                if ck.is_err() {
                    srv.shutdown();
                }
                let ck = ck.expect("round checkpoint");
                deltas.push(CheckpointSample {
                    id: ck.id,
                    full: ck.full,
                    bytes: ck.per_rank_bytes.iter().sum(),
                    chunks: ck.per_rank_chunks.iter().sum(),
                    sim_stall_s: ck.sim_stall_s,
                });
                let m = srv.maintenance();
                if m.is_err() {
                    srv.shutdown();
                }
                let m = m.expect("round maintenance");
                maint.push(MaintSample {
                    vacuumed_versions: m.vacuumed_versions,
                    vacuumed_blocks: m.vacuumed_blocks,
                    compacted_blocks: m.compacted_blocks,
                    verified_bytes: m.verified_bytes,
                    verify_errors: m.verify_errors,
                    live_blocks: total_blocks.saturating_sub(m.free_blocks),
                });
            }
            srv.shutdown();
            ranks.join().expect("serving fabric panicked");
        });
        committed_writes = committed_writes.max(srv.metrics().committed());
        meta
        // db, fabric, server dropped here: the crash (the last round's
        // post-checkpoint commits live only in the redo tails)
    };
    let serve_wall_s = serve_t0.elapsed().as_secs_f64();

    // ---- phase 2: recover and verify zero divergence -----------------
    let restart_t0 = std::time::Instant::now();
    let mut ropts = PersistOptions::new(&cfg.dir);
    ropts.backend = cfg.backend;
    let (srv, fabric) = GdiServer::recover(ropts, cfg.cost, cfg.server.clone())
        .expect("recover from persistence dir");
    let mut mismatches: Vec<String> = Vec::new();
    let mut checks = 0u64;
    let mut recovery = None;
    std::thread::scope(|scope| {
        let s = &srv;
        let ranks = scope.spawn(move || fabric.run(|ctx| s.serve_rank(ctx)));
        let session = srv.session();
        for expect in &expects {
            for (&v, e) in expect {
                checks += 1;
                let got = session.execute(Op::GetVertexProps {
                    v: AppVertexId(v),
                    ptype: Some(meta.ptype(0)),
                });
                match (got, e) {
                    (Ok(OpOutcome::Committed(OpReply::Props(p))), Expect::Present(want))
                        if p == vec![PropertyValue::U64(*want)] => {}
                    (Ok(OpOutcome::Aborted(GdiError::NotFound(_))), Expect::Deleted) => {}
                    (got, want) => {
                        mismatches.push(format!("vertex {v}: got {got:?}, want {want:?}"))
                    }
                }
            }
        }
        recovery = srv.metrics().recovery;
        srv.shutdown();
        ranks.join().expect("recovered fabric panicked");
    });
    let restart_wall_s = restart_t0.elapsed().as_secs_f64();

    MaintenanceRunReport {
        full,
        deltas,
        maint,
        total_blocks,
        committed_writes,
        checks,
        mismatches,
        recovery,
        serve_wall_s,
        restart_wall_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_rounds_round_trip_with_bounded_garbage() {
        let dir = crate::scratch::ScratchDir::new("wl-maintenance");
        let mut cfg = MaintenanceScenario::new(dir.path());
        // delta bytes scale with churn (dirty 256-byte chunks), full
        // bytes with graph size: keep the churn small relative to the
        // scale-7 windows so the ≪ gate is meaningful
        cfg.scale = 7;
        cfg.sessions = 2;
        cfg.tracked_per_session = 8;
        cfg.rounds = 3;
        cfg.ops_per_round = 12;
        cfg.cost = CostModel::zero();
        let report = run_maintenance_churn(&cfg);
        assert!(report.committed_writes > 0, "{report:?}");
        assert!(report.checks > 0);
        assert!(
            report.passed(),
            "divergence or verifier errors:\n{}",
            report.mismatches.join("\n")
        );
        // the first checkpoint is the full base; the rounds publish
        // deltas whose bytes are a small fraction of it
        assert!(report.full.full);
        assert_eq!(report.deltas.len(), 3);
        assert!(
            report.deltas.iter().any(|d| !d.full),
            "churn rounds never published a delta: {:?}",
            report.deltas
        );
        let max_delta = report.max_delta_bytes();
        assert!(
            max_delta * 2 < report.full.bytes,
            "delta bytes {} not ≪ full bytes {}",
            max_delta,
            report.full.bytes
        );
        // update-heavy churn with a per-round vacuum keeps the live
        // block count bounded (no monotone garbage growth)
        let first = report.maint.first().unwrap().live_blocks;
        let last = report.final_live_blocks();
        assert!(
            last <= first + first / 4,
            "live blocks grew unbounded: {first} -> {last}"
        );
        assert!(
            report
                .maint
                .iter()
                .map(|m| m.vacuumed_versions)
                .sum::<u64>()
                > 0,
            "the vacuum never reclaimed anything: {:?}",
            report.maint
        );
        let rec = report.recovery.expect("recovery metrics present");
        assert_eq!(rec.errors, 0);
    }
}

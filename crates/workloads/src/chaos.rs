//! Chaos scenario: live traffic through an injected storage fault,
//! graceful degradation, repair, and crash recovery — the MTTR axis.
//!
//! One run drives tracked session traffic against a persistence-enabled
//! server, then arms a **persistent fault** on the shared fault plane
//! ([`gda::faults`]) at a configurable storage point. The server must
//! degrade to read-only mode (entered either by the failing collective
//! checkpoint or by the serve loop observing redo-append errors):
//! during degradation every read of previously committed data must keep
//! serving without a single abort, while writes are rejected with the
//! typed [`server::SubmitError::ReadOnly`] — unexecuted, so they must
//! be *absent* after recovery. Disarming the fault and taking one
//! successful checkpoint exits degradation; a post-repair write phase
//! re-fills the redo tails; then the process image is killed and a
//! fresh server recovers from disk. The report carries the full
//! degradation ledger plus **MTTR**: wall-clock seconds from
//! [`server::GdiServer::recover`] to a serving database with every
//! committed write verified present and every rejected write verified
//! absent.
//!
//! Used by `tests/` for correctness and by the `chaos_sweep` bench for
//! the recovery-success-rate / MTTR grid across fault points and rank
//! counts.

use std::path::PathBuf;
use std::sync::Arc;

use gda::faults::{self, FaultMode, PERSISTENT};
use gda::persist::PersistOptions;
use gda::{GdaConfig, GdaDb};
use gdi::AppVertexId;
use rma::CostModel;
use server::{GdiServer, Op, OpOutcome, OpReply, ServerOptions, SubmitError};

/// Shape of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosScenario {
    /// Fabric ranks.
    pub nranks: usize,
    /// Concurrent tracked client sessions.
    pub sessions: usize,
    /// Committed writes per session before the fault is armed.
    pub ops_before: usize,
    /// Write *attempts* per session while degraded (all must be
    /// rejected read-only).
    pub ops_during: usize,
    /// Committed writes per session after repair (these live in the
    /// redo tails at kill time).
    pub ops_after: usize,
    /// Persistence directory.
    pub dir: PathBuf,
    /// Server tuning for both the original and the recovered server.
    pub server: ServerOptions,
    /// Fabric cost model.
    pub cost: CostModel,
    /// Fault point to arm (a [`gda::faults`] name). `redo.append`
    /// degrades via the serve loop's store-health observer; the
    /// checkpoint-path points degrade via the failing collective
    /// checkpoint.
    pub fault_point: &'static str,
    /// Fabric execution backend: `None` follows the process default
    /// (`GDI_FABRIC_BACKEND`, else simulated), `Some(_)` pins one.
    pub backend: Option<rma::BackendKind>,
}

impl ChaosScenario {
    /// A small default shape writing under `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            nranks: 2,
            sessions: 4,
            ops_before: 16,
            ops_during: 8,
            ops_after: 16,
            dir: dir.into(),
            server: ServerOptions::default(),
            cost: CostModel::default(),
            fault_point: faults::SNAP_WRITE,
            backend: None,
        }
    }
}

/// Outcome of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Did the armed fault flip the server into degraded mode?
    pub degraded_entered: bool,
    /// Did the post-repair checkpoint exit degraded mode?
    pub degraded_exited: bool,
    /// Reads served while degraded.
    pub degraded_reads: u64,
    /// Reads that aborted while degraded (the contract: **zero**).
    pub degraded_read_aborts: u64,
    /// Writes rejected with the typed read-only error while degraded.
    pub write_rejects: u64,
    /// Degraded-phase write attempts that were *not* rejected.
    pub write_leaks: u64,
    /// Tracked writes acknowledged as committed (before + after).
    pub committed_writes: u64,
    /// Individual read-back checks performed post-recovery.
    pub checks: u64,
    /// Checks that failed (empty = run passed).
    pub mismatches: Vec<String>,
    /// Redo records replayed with zero errors during recovery.
    pub recovery_errors: u64,
    /// Fault-plane probes that actually fired.
    pub fault_hits: u64,
    /// Wall-clock seconds of the serving phase (traffic + fault +
    /// repair).
    pub serve_wall_s: f64,
    /// Mean time to recovery: seconds from `recover()` to a serving,
    /// fully verified database.
    pub mttr_s: f64,
}

impl ChaosReport {
    /// Full pass: degradation entered and exited, zero read aborts,
    /// zero write leaks, zero recovery errors, zero mismatches.
    pub fn passed(&self) -> bool {
        self.degraded_entered
            && self.degraded_exited
            && self.degraded_read_aborts == 0
            && self.write_leaks == 0
            && self.recovery_errors == 0
            && self.mismatches.is_empty()
    }
}

fn add(v: u64) -> Op {
    Op::AddVertex {
        v: AppVertexId(v),
        label: None,
        prop: None,
    }
}

/// Commit `n` writes for one session: fresh vertices from its disjoint
/// id range, chained with an edge every fourth op. Returns the
/// committed `(id, expected_edge_count)` ledger.
fn commit_phase(
    session: &server::Session,
    next: &mut u64,
    committed: &mut Vec<(u64, usize)>,
    n: usize,
) {
    for i in 0..n {
        let v = *next;
        *next += 1;
        if matches!(session.execute(add(v)), Ok(OpOutcome::Committed(_))) {
            committed.push((v, 0));
        }
        // chain an edge back to the previous committed vertex
        if i % 4 == 3 && committed.len() >= 2 {
            let (a, _) = committed[committed.len() - 2];
            let (b, _) = committed[committed.len() - 1];
            let e = Op::AddEdge {
                from: AppVertexId(a),
                to: AppVertexId(b),
                label: None,
            };
            if matches!(session.execute(e), Ok(OpOutcome::Committed(_))) {
                let len = committed.len();
                committed[len - 2].1 += 1;
                committed[len - 1].1 += 1;
            }
        }
    }
}

/// Run the full chaos scenario: serve → fault → degrade → repair →
/// kill → recover → verify. Contract violations land in the report
/// (not panics), so benches can sweep the fault grid.
pub fn run_chaos(cfg: &ChaosScenario) -> ChaosReport {
    // headroom for every tracked insert (sessions write disjoint ranges)
    let span = (cfg.ops_before + cfg.ops_during + cfg.ops_after + 2) as u64;
    let mut gcfg = GdaConfig::tiny();
    let extra = (cfg.sessions as u64 * span).next_power_of_two() as usize;
    gcfg.blocks_per_rank += extra * 2;
    gcfg.dht_heap_per_rank += extra * 2;

    let mut next: Vec<u64> = (0..cfg.sessions).map(|s| 1 + s as u64 * span).collect();
    let mut committed: Vec<Vec<(u64, usize)>> = vec![Vec::new(); cfg.sessions];
    let mut rejected: Vec<u64> = Vec::new();

    let mut degraded_entered = false;
    let mut degraded_exited = false;
    let mut degraded_reads = 0u64;
    let mut degraded_read_aborts = 0u64;
    let mut write_rejects = 0u64;
    let mut write_leaks = 0u64;
    let mut fault_hits = 0u64;

    // ---- phase 1: serve, fault, degrade, repair, kill ----------------
    let serve_t0 = std::time::Instant::now();
    {
        let db: Arc<GdaDb> = GdaDb::new("chaos", gcfg, cfg.nranks);
        let store = db
            .enable_persistence(PersistOptions::new(&cfg.dir))
            .expect("fresh persistence dir");
        let fabric = match cfg.backend {
            Some(b) => gcfg.build_fabric_on(cfg.nranks, cfg.cost, b),
            None => gcfg.build_fabric(cfg.nranks, cfg.cost),
        };
        fabric.run(|ctx| {
            db.attach(ctx).init_collective();
        });
        let srv = GdiServer::new(db.clone(), cfg.server.clone());
        std::thread::scope(|scope| {
            let s = &srv;
            let ranks = scope.spawn(move || fabric.run(|ctx| s.serve_rank(ctx)));

            // healthy traffic + anchoring checkpoint
            std::thread::scope(|ts| {
                for (next, committed) in next.iter_mut().zip(committed.iter_mut()) {
                    let srv = srv.clone();
                    ts.spawn(move || {
                        let session = srv.session();
                        commit_phase(&session, next, committed, cfg.ops_before);
                    });
                }
            });
            if srv.checkpoint().is_err() {
                srv.shutdown();
                ranks.join().expect("serving fabric panicked");
                panic!("healthy anchoring checkpoint failed");
            }

            // arm the persistent fault and force degradation
            let plane = store.fault_plane();
            plane.arm_at(cfg.fault_point, None, 0, PERSISTENT, FaultMode::Error);
            if cfg.fault_point == faults::REDO_APPEND {
                // appends fail silently under the commit; the serve
                // loop's health observer must notice the error counter
                let session = srv.session();
                let v = next[0];
                next[0] += 1;
                if matches!(session.execute(add(v)), Ok(OpOutcome::Committed(_))) {
                    // in memory it committed; the exit checkpoint below
                    // re-anchors it, so it stays verifiable
                    committed[0].push((v, 0));
                }
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
                while !srv.degraded() && std::time::Instant::now() < deadline {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            } else {
                // the collective checkpoint votes abort on the injected
                // error and the server degrades on the spot
                let _ = srv.checkpoint();
            }
            degraded_entered = srv.degraded();

            // degraded phase: reads must keep serving abort-free,
            // writes must bounce with the typed error
            if degraded_entered {
                let session = srv.session();
                for ledger in &committed {
                    for &(v, edges) in ledger {
                        degraded_reads += 1;
                        match session.execute(Op::CountEdges { v: AppVertexId(v) }) {
                            Ok(OpOutcome::Committed(OpReply::Count(c))) if c == edges => {}
                            _ => degraded_read_aborts += 1,
                        }
                    }
                }
                for next in next.iter_mut() {
                    for _ in 0..cfg.ops_during {
                        let v = *next;
                        *next += 1;
                        match session.execute(add(v)) {
                            Err(SubmitError::ReadOnly) => {
                                write_rejects += 1;
                                rejected.push(v);
                            }
                            _ => write_leaks += 1,
                        }
                    }
                }
            }

            // repair: disarm, checkpoint out of degradation, resume
            plane.disarm_all();
            fault_hits = plane.fired();
            if srv.checkpoint().is_err() {
                srv.shutdown();
                ranks.join().expect("serving fabric panicked");
                panic!("post-repair checkpoint failed");
            }
            degraded_exited = !srv.degraded();
            std::thread::scope(|ts| {
                for (next, committed) in next.iter_mut().zip(committed.iter_mut()) {
                    let srv = srv.clone();
                    ts.spawn(move || {
                        let session = srv.session();
                        commit_phase(&session, next, committed, cfg.ops_after);
                    });
                }
            });

            srv.shutdown();
            ranks.join().expect("serving fabric panicked");
        });
        // db, fabric, server all dropped here: the crash
    }
    let serve_wall_s = serve_t0.elapsed().as_secs_f64();

    // ---- phase 2: recover and verify (MTTR clock) --------------------
    let mttr_t0 = std::time::Instant::now();
    let mut ropts = PersistOptions::new(&cfg.dir);
    ropts.backend = cfg.backend;
    let (srv, fabric) = GdiServer::recover_with_ranks(ropts, cfg.cost, cfg.server.clone(), None)
        .expect("recover from persistence dir");
    let mut mismatches: Vec<String> = Vec::new();
    let mut checks = 0u64;
    let mut recovery_errors = 0u64;
    std::thread::scope(|scope| {
        let s = &srv;
        let ranks = scope.spawn(move || fabric.run(|ctx| s.serve_rank(ctx)));
        let session = srv.session();
        for ledger in &committed {
            for &(v, edges) in ledger {
                checks += 1;
                match session.execute(Op::CountEdges { v: AppVertexId(v) }) {
                    Ok(OpOutcome::Committed(OpReply::Count(c))) if c == edges => {}
                    got => mismatches.push(format!(
                        "committed vertex {v}: got {got:?}, want {edges} edges"
                    )),
                }
            }
        }
        for &v in &rejected {
            checks += 1;
            match session.execute(Op::CountEdges { v: AppVertexId(v) }) {
                Ok(OpOutcome::Aborted(gdi::GdiError::NotFound(_))) => {}
                got => mismatches.push(format!("rejected write {v} leaked through: {got:?}")),
            }
        }
        recovery_errors = srv.metrics().recovery.map(|r| r.errors).unwrap_or(u64::MAX);
        srv.shutdown();
        ranks.join().expect("recovered fabric panicked");
    });
    let mttr_s = mttr_t0.elapsed().as_secs_f64();

    ChaosReport {
        degraded_entered,
        degraded_exited,
        degraded_reads,
        degraded_read_aborts,
        write_rejects,
        write_leaks,
        committed_writes: committed.iter().map(|l| l.len() as u64).sum(),
        checks,
        mismatches,
        recovery_errors,
        fault_hits,
        serve_wall_s,
        mttr_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_round_trip_checkpoint_fault() {
        let dir = crate::scratch::ScratchDir::new("wl-chaos");
        let mut cfg = ChaosScenario::new(dir.path());
        cfg.cost = CostModel::zero();
        let report = run_chaos(&cfg);
        assert!(report.committed_writes > 0, "{report:?}");
        assert!(report.write_rejects > 0, "{report:?}");
        assert!(report.degraded_reads > 0, "{report:?}");
        assert!(report.fault_hits >= 1, "{report:?}");
        assert!(
            report.passed(),
            "chaos contract violated:\n{}\n{report:?}",
            report.mismatches.join("\n")
        );
    }

    #[test]
    fn chaos_round_trip_redo_append_fault() {
        let dir = crate::scratch::ScratchDir::new("wl-chaos-redo");
        let mut cfg = ChaosScenario::new(dir.path());
        cfg.cost = CostModel::zero();
        cfg.fault_point = faults::REDO_APPEND;
        let report = run_chaos(&cfg);
        assert!(
            report.passed(),
            "chaos contract violated:\n{}\n{report:?}",
            report.mismatches.join("\n")
        );
    }
}

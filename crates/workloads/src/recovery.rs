//! Kill-and-restart traffic scenario: the crash/restart axis.
//!
//! Drives tracked, deterministic session traffic against a
//! persistence-enabled server, triggers a **collective checkpoint
//! mid-traffic**, keeps committing (those commits live only in the redo
//! tails), then *kills* the process image — drops the server, fabric and
//! database — and boots a fresh one from disk with
//! [`server::GdiServer::recover`]. Verification asserts
//! **read-your-committed-writes across the restart**: every op the old
//! server acknowledged as committed must read back identically from the
//! recovered one (property values, deletions, edge counts, and a sample
//! of the bulk-loaded base graph), and nothing uncommitted may appear.
//!
//! Used by `gda/tests` + `tests/` for correctness and by the
//! `recovery_sweep` bench for the checkpoint-stall / replay-time curves.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use gda::persist::{CheckpointReport, PersistOptions};
use gda::GdaDb;
use gdi::{AppVertexId, GdiError, PropertyValue};
use graphgen::{load_into, sized_config, GraphSpec, LpgMeta};
use rma::CostModel;
use server::{GdiServer, Op, OpOutcome, OpReply, RecoverySummary, ServerOptions};

/// Shape of one kill-and-restart run.
#[derive(Debug, Clone)]
pub struct RecoveryScenario {
    /// Fabric ranks.
    pub nranks: usize,
    /// Kronecker scale of the bulk-loaded base graph.
    pub scale: u32,
    /// Concurrent tracked client sessions.
    pub sessions: usize,
    /// Tracked ops per session *before* the mid-traffic checkpoint.
    pub ops_before: usize,
    /// Tracked ops per session *after* it (these live only in the redo
    /// tails at kill time).
    pub ops_after: usize,
    /// RNG seed.
    pub seed: u64,
    /// Persistence directory.
    pub dir: PathBuf,
    /// Server tuning for both the original and the recovered server.
    pub server: ServerOptions,
    /// Fabric cost model.
    pub cost: CostModel,
    /// Base-graph vertices sampled for cross-restart read comparison.
    pub base_sample: usize,
    /// Rank count of the **recovered** server: `None` restarts at the
    /// original topology; `Some(Q ≠ nranks)` reshards the snapshot and
    /// redo logs onto `Q` ranks during recovery (elastic restart).
    pub restart_ranks: Option<usize>,
    /// Tracked ops per session driven against the *recovered* server
    /// after verification (post-restart throughput measurement; 0 =
    /// skip).
    pub post_ops: usize,
    /// Fabric execution backend for both the original and the recovered
    /// server: `None` follows the process default (`GDI_FABRIC_BACKEND`,
    /// else simulated), `Some(_)` pins one.
    pub backend: Option<rma::BackendKind>,
}

impl RecoveryScenario {
    /// A small default shape writing under `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            nranks: 2,
            scale: 7,
            sessions: 8,
            ops_before: 30,
            ops_after: 30,
            seed: 0xFEED,
            dir: dir.into(),
            server: ServerOptions::default(),
            cost: CostModel::default(),
            base_sample: 16,
            restart_ranks: None,
            post_ops: 0,
            backend: None,
        }
    }
}

/// Outcome of a kill-and-restart run.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Tracked writes the old server acknowledged as committed.
    pub committed_writes: u64,
    /// Tracked ops acknowledged as aborted (no effect expected).
    pub aborted_writes: u64,
    /// Commit-uncertain outcomes (excluded from verification).
    pub indeterminate: u64,
    /// Individual read-back checks performed post-recovery.
    pub checks: u64,
    /// Checks that failed (empty vector = scenario passed).
    pub mismatches: Vec<String>,
    /// The mid-traffic checkpoint's report.
    pub checkpoint: CheckpointReport,
    /// What recovery replayed (from the recovered server's metrics).
    pub recovery: Option<RecoverySummary>,
    /// Wall-clock seconds of the serving phase (traffic + checkpoint).
    pub serve_wall_s: f64,
    /// Wall-clock seconds from `recover()` to a serving, verified
    /// database (includes replay — or the full redistribution on an
    /// elastic restart).
    pub restart_wall_s: f64,
    /// Tracked ops committed against the recovered server after
    /// verification (0 when `post_ops` is 0).
    pub post_committed: u64,
    /// Wall-clock seconds of that post-restart traffic phase.
    pub post_wall_s: f64,
}

impl RecoveryReport {
    /// Did every committed write read back identically?
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// What one session expects a tracked vertex to look like.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Expect {
    /// Present with this (last committed) property value.
    Present(u64),
    /// Committed as deleted.
    Deleted,
}

/// Per-session ground truth accumulated from acknowledged outcomes.
#[derive(Debug, Default)]
struct Tracker {
    /// Tracked vertex → expected state (vertices with an indeterminate
    /// outcome are removed and land in `tainted`).
    expect: HashMap<u64, Expect>,
    /// Committed tracked edges (`a → b`), both endpoints tracked.
    edges: Vec<(u64, u64)>,
    /// Vertices excluded from verification (commit-uncertain).
    tainted: Vec<u64>,
    committed: u64,
    aborted: u64,
    indeterminate: u64,
}

impl Tracker {
    fn live(&self) -> Vec<u64> {
        self.expect
            .iter()
            .filter_map(|(v, e)| matches!(e, Expect::Present(_)).then_some(*v))
            .collect()
    }

    /// Expected `CountEdges` (any orientation) of a tracked vertex:
    /// tracked edges only — tracked ids are disjoint from the base
    /// graph and from other sessions.
    fn edge_count(&self, v: u64) -> usize {
        self.edges
            .iter()
            .filter(|(a, b)| *a == v || *b == v)
            .count()
    }

    fn apply(&mut self, op: &Op, outcome: &OpOutcome) {
        match outcome {
            OpOutcome::Committed(_) => {
                self.committed += 1;
                match op {
                    Op::AddVertex { v, prop, .. } => {
                        let val = match prop {
                            Some((_, PropertyValue::U64(x))) => *x,
                            _ => 0,
                        };
                        self.expect.insert(v.0, Expect::Present(val));
                    }
                    Op::UpdateVertexProp {
                        v,
                        value: PropertyValue::U64(x),
                        ..
                    } => {
                        self.expect.insert(v.0, Expect::Present(*x));
                    }
                    Op::DeleteVertex { v } => {
                        self.expect.insert(v.0, Expect::Deleted);
                        self.edges.retain(|(a, b)| *a != v.0 && *b != v.0);
                    }
                    Op::AddEdge { from, to, .. } => {
                        self.edges.push((from.0, to.0));
                    }
                    _ => {}
                }
            }
            // shed before execution: provably no effects, same as abort
            OpOutcome::Aborted(_) | OpOutcome::DeadlineExceeded => self.aborted += 1,
            OpOutcome::Indeterminate(_) => {
                self.indeterminate += 1;
                // commit-uncertain: drop every touched vertex from
                // verification, honestly
                for v in op_vertices(op) {
                    self.expect.remove(&v);
                    self.edges.retain(|(a, b)| *a != v && *b != v);
                    self.tainted.push(v);
                }
            }
        }
    }
}

fn op_vertices(op: &Op) -> Vec<u64> {
    match op {
        Op::GetVertexProps { v, .. }
        | Op::CountEdges { v }
        | Op::GetEdges { v }
        | Op::AddVertex { v, .. }
        | Op::DeleteVertex { v }
        | Op::UpdateVertexProp { v, .. } => vec![v.0],
        Op::AddEdge { from, to, .. } => vec![from.0, to.0],
    }
}

/// Generate and execute one tracked op for a session.
fn step(
    session: &server::Session,
    tracker: &mut Tracker,
    rng: &mut SmallRng,
    meta: &LpgMeta,
    next_new: &mut u64,
    update_counter: &mut u64,
) {
    let p0 = meta.ptype(0);
    let live = tracker.live();
    let op = match rng.gen_range(0..100) {
        // create dominates so the tracked population grows
        0..=49 => {
            *next_new += 1;
            Op::AddVertex {
                v: AppVertexId(*next_new),
                label: Some(meta.label(0)),
                prop: Some((p0, PropertyValue::U64(*next_new))),
            }
        }
        50..=69 if !live.is_empty() => {
            *update_counter += 1;
            Op::UpdateVertexProp {
                v: AppVertexId(live[rng.gen_range(0..live.len())]),
                ptype: p0,
                value: PropertyValue::U64(1_000_000_000 + *update_counter),
            }
        }
        70..=84 if live.len() >= 2 => {
            let a = live[rng.gen_range(0..live.len())];
            let mut b = live[rng.gen_range(0..live.len())];
            if a == b {
                b = live[(live.iter().position(|x| *x == a).unwrap() + 1) % live.len()];
            }
            if a == b {
                return; // only one live vertex; skip this step
            }
            Op::AddEdge {
                from: AppVertexId(a),
                to: AppVertexId(b),
                label: None,
            }
        }
        85..=94 if !live.is_empty() => Op::DeleteVertex {
            v: AppVertexId(live[rng.gen_range(0..live.len())]),
        },
        _ => {
            *next_new += 1;
            Op::AddVertex {
                v: AppVertexId(*next_new),
                label: None,
                prop: Some((p0, PropertyValue::U64(*next_new))),
            }
        }
    };
    // a shed submission (pause/shutdown) has no effect to track
    if let Ok(outcome) = session.execute(op.clone()) {
        tracker.apply(&op, &outcome);
    }
}

/// Drive one traffic phase: every session executes `ops` tracked ops
/// (closed loop), multiplexed over a small worker pool.
fn drive_phase(
    srv: &GdiServer,
    meta: &LpgMeta,
    trackers: &mut [Tracker],
    rngs: &mut [SmallRng],
    next_new: &mut [u64],
    update_counters: &mut [u64],
    ops: usize,
) {
    std::thread::scope(|scope| {
        let meta = &*meta;
        let work = trackers
            .iter_mut()
            .zip(rngs.iter_mut())
            .zip(next_new.iter_mut().zip(update_counters.iter_mut()));
        for ((tracker, rng), (next, upd)) in work {
            let srv = srv.clone();
            scope.spawn(move || {
                let session = srv.session();
                for _ in 0..ops {
                    step(&session, tracker, rng, meta, next, upd);
                }
            });
        }
    });
}

/// Run the full kill-and-restart scenario. Panics only on harness-level
/// failures (e.g. the mid-traffic checkpoint itself erroring); data
/// mismatches are reported, not panicked, so benches can sweep.
pub fn run_kill_restart(cfg: &RecoveryScenario) -> RecoveryReport {
    let spec = GraphSpec {
        scale: cfg.scale,
        edge_factor: 8,
        seed: cfg.seed,
        lpg: graphgen::LpgConfig::default(),
    };
    let n_base = spec.n_vertices();
    // headroom for the tracked inserts on top of the base graph
    let mut gcfg = sized_config(&spec, cfg.nranks);
    let extra = (cfg.sessions * (cfg.ops_before + cfg.ops_after)).next_power_of_two();
    gcfg.blocks_per_rank += extra * 2;
    gcfg.dht_heap_per_rank += extra * 2;

    let span = (cfg.ops_before + cfg.ops_after) as u64 + 1;
    let mut trackers: Vec<Tracker> = (0..cfg.sessions).map(|_| Tracker::default()).collect();
    let mut rngs: Vec<SmallRng> = (0..cfg.sessions)
        .map(|s| SmallRng::seed_from_u64(cfg.seed ^ (s as u64).wrapping_mul(0x9E37_79B9)))
        .collect();
    let mut next_new: Vec<u64> = (0..cfg.sessions)
        .map(|s| n_base + 1 + s as u64 * span)
        .collect();
    let mut update_counters: Vec<u64> = vec![0; cfg.sessions];

    // ---- phase 1: load, serve, checkpoint mid-traffic, kill ----------
    let serve_t0 = std::time::Instant::now();
    let (meta, checkpoint, base_counts) = {
        let db: Arc<GdaDb> = GdaDb::new("recovery", gcfg, cfg.nranks);
        db.enable_persistence(PersistOptions::new(&cfg.dir))
            .expect("fresh persistence dir");
        let fabric = match cfg.backend {
            Some(b) => gcfg.build_fabric_on(cfg.nranks, cfg.cost, b),
            None => gcfg.build_fabric(cfg.nranks, cfg.cost),
        };
        let metas = fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            let (meta, _) = load_into(&eng, &spec);
            meta
        });
        let meta = metas.into_iter().next().expect("at least one rank");

        let srv = GdiServer::new(db.clone(), cfg.server.clone());
        let mut checkpoint = None;
        let mut base_counts: Vec<(u64, usize)> = Vec::new();
        std::thread::scope(|scope| {
            let s = &srv;
            let ranks = scope.spawn(move || fabric.run(|ctx| s.serve_rank(ctx)));
            drive_phase(
                &srv,
                &meta,
                &mut trackers,
                &mut rngs,
                &mut next_new,
                &mut update_counters,
                cfg.ops_before,
            );
            // the mid-traffic collective checkpoint; stop serving before
            // panicking on failure — thread::scope joins the ranks
            // thread, which loops until shutdown, so a bare expect here
            // would hang the scenario instead of failing it
            let ck = srv.checkpoint();
            if ck.is_err() {
                srv.shutdown();
            }
            checkpoint = Some(ck.expect("mid-traffic checkpoint"));
            drive_phase(
                &srv,
                &meta,
                &mut trackers,
                &mut rngs,
                &mut next_new,
                &mut update_counters,
                cfg.ops_after,
            );
            // record a base-graph read sample to compare across restart
            let session = srv.session();
            for i in 0..cfg.base_sample as u64 {
                let v = (i * 37) % n_base;
                if let Ok(OpOutcome::Committed(OpReply::Count(c))) =
                    session.execute(Op::CountEdges { v: AppVertexId(v) })
                {
                    base_counts.push((v, c));
                }
            }
            srv.shutdown();
            ranks.join().expect("serving fabric panicked");
        });
        (meta, checkpoint.unwrap(), base_counts)
        // db, fabric, server all dropped here: the crash
    };
    let serve_wall_s = serve_t0.elapsed().as_secs_f64();

    // ---- phase 2: recover from disk (same topology or elastic) and
    // verify ------------------------------------------------------------
    let restart_t0 = std::time::Instant::now();
    let mut ropts = PersistOptions::new(&cfg.dir);
    ropts.backend = cfg.backend;
    let (srv, fabric) =
        GdiServer::recover_with_ranks(ropts, cfg.cost, cfg.server.clone(), cfg.restart_ranks)
            .expect("recover from persistence dir");
    let mut mismatches: Vec<String> = Vec::new();
    let mut checks = 0u64;
    let mut recovery = None;
    let mut post_committed = 0u64;
    let mut post_wall_s = 0.0f64;
    let mut restart_wall_s = 0.0f64;
    // what the *old* server acknowledged (post-restart traffic below
    // must not count into the cross-restart verification totals)
    let committed_old: u64 = trackers.iter().map(|t| t.committed).sum();
    let aborted_old: u64 = trackers.iter().map(|t| t.aborted).sum();
    let indeterminate_old: u64 = trackers.iter().map(|t| t.indeterminate).sum();
    std::thread::scope(|scope| {
        let s = &srv;
        let ranks = scope.spawn(move || fabric.run(|ctx| s.serve_rank(ctx)));
        let session = srv.session();
        let mut check = |op: Op, want: Result<OpReply, ()>, what: String| {
            checks += 1;
            match (session.execute(op), &want) {
                (Ok(OpOutcome::Committed(got)), Ok(exp)) if got == *exp => {}
                (Ok(OpOutcome::Aborted(GdiError::NotFound(_))), Err(())) => {}
                (got, _) => mismatches.push(format!("{what}: got {got:?}, want {want:?}")),
            }
        };
        for tracker in &trackers {
            for (&v, expect) in &tracker.expect {
                match expect {
                    Expect::Present(val) => {
                        check(
                            Op::GetVertexProps {
                                v: AppVertexId(v),
                                ptype: Some(meta.ptype(0)),
                            },
                            Ok(OpReply::Props(vec![PropertyValue::U64(*val)])),
                            format!("prop of committed vertex {v}"),
                        );
                        check(
                            Op::CountEdges { v: AppVertexId(v) },
                            Ok(OpReply::Count(tracker.edge_count(v))),
                            format!("edge count of committed vertex {v}"),
                        );
                    }
                    Expect::Deleted => check(
                        Op::GetVertexProps {
                            v: AppVertexId(v),
                            ptype: None,
                        },
                        Err(()),
                        format!("committed delete of vertex {v}"),
                    ),
                }
            }
        }
        for (v, count) in &base_counts {
            check(
                Op::CountEdges { v: AppVertexId(*v) },
                Ok(OpReply::Count(*count)),
                format!("base-graph edge count of vertex {v}"),
            );
        }
        recovery = srv.metrics().recovery;
        // the restore metric ends at "serving + verified": the optional
        // post-restart traffic phase must not inflate it
        restart_wall_s = restart_t0.elapsed().as_secs_f64();
        // post-restart traffic: the recovered (possibly resharded)
        // server keeps serving tracked sessions — throughput sample
        if cfg.post_ops > 0 {
            let before: u64 = trackers.iter().map(|t| t.committed).sum();
            let post_t0 = std::time::Instant::now();
            drive_phase(
                &srv,
                &meta,
                &mut trackers,
                &mut rngs,
                &mut next_new,
                &mut update_counters,
                cfg.post_ops,
            );
            post_wall_s = post_t0.elapsed().as_secs_f64();
            post_committed = trackers.iter().map(|t| t.committed).sum::<u64>() - before;
        }
        srv.shutdown();
        ranks.join().expect("recovered fabric panicked");
    });

    RecoveryReport {
        committed_writes: committed_old,
        aborted_writes: aborted_old,
        indeterminate: indeterminate_old,
        checks,
        mismatches,
        checkpoint,
        recovery,
        serve_wall_s,
        restart_wall_s,
        post_committed,
        post_wall_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_restart_round_trip() {
        let dir = crate::scratch::ScratchDir::new("wl-recovery");
        let mut cfg = RecoveryScenario::new(dir.path());
        cfg.scale = 6;
        cfg.sessions = 4;
        cfg.ops_before = 20;
        cfg.ops_after = 20;
        cfg.cost = CostModel::zero();
        let report = run_kill_restart(&cfg);
        assert!(report.committed_writes > 0, "{report:?}");
        assert!(report.checks > 0);
        assert_eq!(report.indeterminate, 0, "healthy run should be certain");
        assert!(
            report.passed(),
            "read-your-committed-writes violated:\n{}",
            report.mismatches.join("\n")
        );
        let rec = report.recovery.expect("recovery metrics present");
        assert_eq!(rec.errors, 0);
        assert!(rec.records > 0, "redo tail replayed: {rec:?}");
        assert_eq!(report.checkpoint.id, 1);
    }
}

//! OLTP interactive workloads (Table 3, Fig. 4, Fig. 5).
//!
//! The paper stresses GDA "with a high-velocity stream of graph queries and
//! transactions" in four mixes taken from LinkBench and prior GDB
//! evaluations. Each operation runs as a **single-process transaction**
//! (Table 2's recommendation for interactive workloads); conflicts abort
//! and are reported as failed transactions, exactly like the percentages
//! annotated in Fig. 4c/4d.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use gda::GdaRank;
use gdi::{AccessMode, AppVertexId, EdgeOrientation, GdiError, PropertyValue};
use graphgen::{GraphSpec, LpgMeta};

use crate::latency::Histogram;

/// The seven operation kinds of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// "Get vertex properties"
    GetVertexProps,
    /// "Count edges of a vertex"
    CountEdges,
    /// "Get edges of a vertex"
    GetEdges,
    /// "Add a new vertex"
    AddVertex,
    /// "Delete a vertex"
    DeleteVertex,
    /// "Update a vertex property"
    UpdateVertexProp,
    /// "Add a new edge"
    AddEdge,
}

impl OpKind {
    pub const ALL: [OpKind; 7] = [
        OpKind::GetVertexProps,
        OpKind::CountEdges,
        OpKind::GetEdges,
        OpKind::AddVertex,
        OpKind::DeleteVertex,
        OpKind::UpdateVertexProp,
        OpKind::AddEdge,
    ];

    pub fn name(self) -> &'static str {
        match self {
            OpKind::GetVertexProps => "retrieve vertex",
            OpKind::CountEdges => "count edges",
            OpKind::GetEdges => "retrieve edges",
            OpKind::AddVertex => "insert vertex",
            OpKind::DeleteVertex => "delete vertex",
            OpKind::UpdateVertexProp => "update vertex",
            OpKind::AddEdge => "add edges",
        }
    }

    /// Is this a read-only operation?
    pub fn is_read(self) -> bool {
        matches!(
            self,
            OpKind::GetVertexProps | OpKind::CountEdges | OpKind::GetEdges
        )
    }
}

/// An operation mix: weights per op kind (Table 3 columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mix {
    pub name: &'static str,
    /// Weights in `OpKind::ALL` order; need not sum to 1 (normalized).
    pub weights: [f64; 7],
}

impl Mix {
    /// "Read Mostly" (RM): 99.8 % reads [Weaver evaluation].
    pub const READ_MOSTLY: Mix = Mix {
        name: "read mostly",
        weights: [0.288, 0.117, 0.593, 0.0, 0.0, 0.0, 0.002],
    };

    /// "Read Intensive" (RI): 75 % reads [Weaver evaluation].
    pub const READ_INTENSIVE: Mix = Mix {
        name: "read intensive",
        weights: [0.217, 0.088, 0.445, 0.0, 0.0, 0.0, 0.25],
    };

    /// "Write Intensive" (WI): 80 % updates [G-Tran evaluation].
    pub const WRITE_INTENSIVE: Mix = Mix {
        name: "write intensive",
        weights: [0.091, 0.0, 0.109, 0.2, 0.067, 0.133, 0.40],
    };

    /// LinkBench (LB): 69 % reads [Armstrong et al.].
    pub const LINKBENCH: Mix = Mix {
        name: "LinkBench",
        weights: [0.129, 0.049, 0.512, 0.026, 0.01, 0.074, 0.20],
    };

    /// All four paper mixes in Table 3 order.
    pub fn table3() -> [Mix; 4] {
        [
            Mix::READ_MOSTLY,
            Mix::READ_INTENSIVE,
            Mix::WRITE_INTENSIVE,
            Mix::LINKBENCH,
        ]
    }

    /// Fraction of read operations (Table 3's "Read queries" row).
    pub fn read_fraction(&self) -> f64 {
        let total: f64 = self.weights.iter().sum();
        let reads: f64 = OpKind::ALL
            .iter()
            .zip(self.weights.iter())
            .filter(|(k, _)| k.is_read())
            .map(|(_, w)| w)
            .sum();
        reads / total
    }

    /// Sample an operation kind.
    pub fn sample(&self, rng: &mut SmallRng) -> OpKind {
        let total: f64 = self.weights.iter().sum();
        let mut x = rng.gen::<f64>() * total;
        for (k, w) in OpKind::ALL.iter().zip(self.weights.iter()) {
            if x < *w {
                return *k;
            }
            x -= w;
        }
        OpKind::GetVertexProps
    }
}

/// Driver configuration.
#[derive(Debug, Clone, Copy)]
pub struct OltpConfig {
    /// Transactions issued per rank.
    pub ops_per_rank: usize,
    /// RNG seed (combined with the rank id).
    pub seed: u64,
}

impl Default for OltpConfig {
    fn default() -> Self {
        Self {
            ops_per_rank: 1000,
            seed: 0xBEEF,
        }
    }
}

/// Per-operation statistics.
#[derive(Debug, Clone, Default)]
pub struct OpStats {
    pub attempts: u64,
    pub committed: u64,
    pub latency: Histogram,
}

/// Result of an OLTP run on one rank.
#[derive(Debug, Clone)]
pub struct OltpResult {
    pub committed: u64,
    pub aborted: u64,
    pub per_op: Vec<(OpKind, OpStats)>,
    /// Simulated time consumed by this rank, ns.
    pub sim_ns: f64,
}

impl OltpResult {
    /// Failed-transaction fraction (the Fig. 4 annotations).
    pub fn failure_fraction(&self) -> f64 {
        let total = self.committed + self.aborted;
        if total == 0 {
            0.0
        } else {
            self.aborted as f64 / total as f64
        }
    }
}

/// Run `cfg.ops_per_rank` transactions of `mix` against a loaded graph.
/// Call from every rank (each runs its own independent stream).
pub fn run_oltp(
    eng: &GdaRank,
    spec: &GraphSpec,
    meta: &LpgMeta,
    mix: &Mix,
    cfg: &OltpConfig,
) -> OltpResult {
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (eng.rank() as u64).wrapping_mul(0x9E37));
    let n = spec.n_vertices();
    // fresh vertices get ids above the base graph, disjoint per rank
    let mut next_new = n + eng.rank() as u64 * 1_000_000_007;
    let mut added: Vec<u64> = Vec::new();

    let mut per_op: Vec<(OpKind, OpStats)> = OpKind::ALL
        .iter()
        .map(|k| (*k, OpStats::default()))
        .collect();
    let mut committed = 0u64;
    let mut aborted = 0u64;
    let start_ns = eng.ctx().now_ns();

    for _ in 0..cfg.ops_per_rank {
        let kind = mix.sample(&mut rng);
        let t0 = eng.ctx().now_ns();
        let ok = run_one(
            eng,
            spec,
            meta,
            kind,
            &mut rng,
            n,
            &mut next_new,
            &mut added,
        );
        let dt = eng.ctx().now_ns() - t0;
        let stats = &mut per_op.iter_mut().find(|(k, _)| *k == kind).unwrap().1;
        stats.attempts += 1;
        stats.latency.add(dt);
        if ok {
            stats.committed += 1;
            committed += 1;
        } else {
            aborted += 1;
        }
    }

    OltpResult {
        committed,
        aborted,
        per_op,
        sim_ns: eng.ctx().now_ns() - start_ns,
    }
}

/// Execute one operation as a single-process transaction. Returns whether
/// it committed.
#[allow(clippy::too_many_arguments)]
fn run_one(
    eng: &GdaRank,
    _spec: &GraphSpec,
    meta: &LpgMeta,
    kind: OpKind,
    rng: &mut SmallRng,
    n: u64,
    next_new: &mut u64,
    added: &mut Vec<u64>,
) -> bool {
    let mode = if kind.is_read() {
        AccessMode::ReadOnly
    } else {
        AccessMode::ReadWrite
    };
    let tx = eng.begin(mode);
    let mut body = || -> Result<(), GdiError> {
        match kind {
            OpKind::GetVertexProps => {
                let v = tx.translate_vertex_id(AppVertexId(rng.gen_range(0..n)))?;
                if !meta.ptypes.is_empty() {
                    let p = meta.ptype(rng.gen_range(0..meta.ptypes.len()));
                    let _ = tx.property(v, p)?;
                } else {
                    let _ = tx.labels(v)?;
                }
            }
            OpKind::CountEdges => {
                let v = tx.translate_vertex_id(AppVertexId(rng.gen_range(0..n)))?;
                let _ = tx.edge_count(v, EdgeOrientation::Any)?;
            }
            OpKind::GetEdges => {
                let v = tx.translate_vertex_id(AppVertexId(rng.gen_range(0..n)))?;
                let _ = tx.edges(v, EdgeOrientation::Any)?;
            }
            OpKind::AddVertex => {
                *next_new += 1;
                let app = *next_new;
                let v = tx.create_vertex(AppVertexId(app))?;
                if !meta.labels.is_empty() {
                    tx.add_label(v, meta.label(app as usize % meta.labels.len()))?;
                }
                if !meta.ptypes.is_empty() {
                    tx.add_property(v, meta.ptype(0), &PropertyValue::U64(app))?;
                }
                added.push(app);
            }
            OpKind::DeleteVertex => {
                // prefer deleting a vertex this stream added, like
                // LinkBench's node deletes; fall back to a base vertex
                let app = added.pop().unwrap_or_else(|| rng.gen_range(0..n));
                let v = tx.translate_vertex_id(AppVertexId(app))?;
                tx.delete_vertex(v)?;
            }
            OpKind::UpdateVertexProp => {
                let v = tx.translate_vertex_id(AppVertexId(rng.gen_range(0..n)))?;
                if !meta.ptypes.is_empty() {
                    let p = meta.ptype(rng.gen_range(0..meta.ptypes.len()));
                    tx.update_property(v, p, &PropertyValue::U64(rng.gen()))?;
                }
            }
            OpKind::AddEdge => {
                let a = tx.translate_vertex_id(AppVertexId(rng.gen_range(0..n)))?;
                let b = tx.translate_vertex_id(AppVertexId(rng.gen_range(0..n)))?;
                let label = if meta.labels.is_empty() {
                    None
                } else {
                    Some(meta.label(rng.gen_range(0..meta.labels.len())))
                };
                tx.add_edge(a, b, label, true)?;
            }
        }
        Ok(())
    };
    match body() {
        Ok(()) => tx.commit().is_ok(),
        Err(_) => {
            tx.abort();
            false
        }
    }
}

/// Aggregate throughput in queries/second of a set of per-rank results,
/// using the maximum simulated time as the makespan.
pub fn throughput_qps(results: &[OltpResult]) -> f64 {
    let ops: u64 = results.iter().map(|r| r.committed).sum();
    let max_ns = results.iter().map(|r| r.sim_ns).fold(0.0, f64::max);
    if max_ns <= 0.0 {
        0.0
    } else {
        ops as f64 / (max_ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_read_fractions() {
        assert!((Mix::READ_MOSTLY.read_fraction() - 0.998).abs() < 1e-9);
        assert!((Mix::READ_INTENSIVE.read_fraction() - 0.75).abs() < 1e-9);
        assert!((Mix::WRITE_INTENSIVE.read_fraction() - 0.20).abs() < 1e-9);
        assert!((Mix::LINKBENCH.read_fraction() - 0.69).abs() < 1e-9);
    }

    #[test]
    fn mix_sampling_matches_weights() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mix = Mix::LINKBENCH;
        let mut counts = [0u64; 7];
        const N: usize = 100_000;
        for _ in 0..N {
            let k = mix.sample(&mut rng);
            let i = OpKind::ALL.iter().position(|x| *x == k).unwrap();
            counts[i] += 1;
        }
        let total: f64 = mix.weights.iter().sum();
        for (i, w) in mix.weights.iter().enumerate() {
            let expect = w / total;
            let got = counts[i] as f64 / N as f64;
            assert!(
                (got - expect).abs() < 0.01,
                "op {i}: got {got} want {expect}"
            );
        }
    }

    #[test]
    fn op_kind_read_classification() {
        assert!(OpKind::GetEdges.is_read());
        assert!(OpKind::CountEdges.is_read());
        assert!(!OpKind::AddEdge.is_read());
        assert!(!OpKind::DeleteVertex.is_read());
    }

    #[test]
    fn throughput_computation() {
        let mk = |committed, sim_ns| OltpResult {
            committed,
            aborted: 0,
            per_op: Vec::new(),
            sim_ns,
        };
        let qps = throughput_qps(&[mk(500, 1e9), mk(500, 2e9)]);
        assert!((qps - 500.0).abs() < 1e-9, "{qps}");
        assert_eq!(throughput_qps(&[]), 0.0);
    }
}

//! Elastic-reshard traffic scenario: run at `P` ranks, checkpoint
//! mid-traffic, kill, restart at `Q ≠ P` ranks, verify, keep serving.
//!
//! A thin shape over the kill-and-restart machinery of
//! [`crate::recovery`] — the scenario is identical except that the
//! recovered server boots a **different rank count**
//! ([`server::GdiServer::recover_with_ranks`]), which forces the full
//! redistribution path in `gda`: remapped vertex ownership, rewritten
//! `DPtr`s, re-placed DHT entries and index partitions, and a fresh
//! `Q`-topology checkpoint — all verified by the same
//! read-your-committed-writes checks (tracked property values,
//! deletions, edge counts, and a base-graph sample), plus an optional
//! post-reshard traffic phase measuring throughput on the new topology.

use std::path::PathBuf;

use rma::CostModel;
use server::ServerOptions;

use crate::recovery::{run_kill_restart, RecoveryReport, RecoveryScenario};

/// Shape of one scale-out / scale-in run.
#[derive(Debug, Clone)]
pub struct ReshardScenario {
    /// Ranks serving the original traffic (the snapshot topology `P`).
    pub ranks_before: usize,
    /// Ranks of the recovered server (the live topology `Q`).
    pub ranks_after: usize,
    /// Kronecker scale of the bulk-loaded base graph.
    pub scale: u32,
    /// Concurrent tracked client sessions.
    pub sessions: usize,
    /// Tracked ops per session before the mid-traffic checkpoint.
    pub ops_before: usize,
    /// Tracked ops per session after it (redo-tail-only at kill time).
    pub ops_after: usize,
    /// Tracked ops per session against the resharded server after
    /// verification (post-reshard throughput; 0 = skip).
    pub ops_post: usize,
    /// RNG seed.
    pub seed: u64,
    /// Persistence directory.
    pub dir: PathBuf,
    /// Server tuning for both servers.
    pub server: ServerOptions,
    /// Fabric cost model.
    pub cost: CostModel,
    /// Execution backend for both fabrics (`None` = process default,
    /// i.e. `GDI_FABRIC_BACKEND` or the simulated clock).
    pub backend: Option<rma::BackendKind>,
}

impl ReshardScenario {
    /// A small default scale-out shape (2 → 4) writing under `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            ranks_before: 2,
            ranks_after: 4,
            scale: 7,
            sessions: 8,
            ops_before: 30,
            ops_after: 30,
            ops_post: 20,
            seed: 0xE1A5,
            dir: dir.into(),
            server: ServerOptions::default(),
            cost: CostModel::default(),
            backend: None,
        }
    }
}

/// Run the scale-out/in scenario; the report's `mismatches` must be
/// empty for a correct reshard (zero lost or stale committed writes).
pub fn run_reshard(cfg: &ReshardScenario) -> RecoveryReport {
    let mut inner = RecoveryScenario::new(&cfg.dir);
    inner.nranks = cfg.ranks_before;
    inner.scale = cfg.scale;
    inner.sessions = cfg.sessions;
    inner.ops_before = cfg.ops_before;
    inner.ops_after = cfg.ops_after;
    inner.post_ops = cfg.ops_post;
    inner.seed = cfg.seed;
    inner.server = cfg.server.clone();
    inner.cost = cfg.cost;
    inner.backend = cfg.backend;
    inner.restart_ranks = Some(cfg.ranks_after);
    run_kill_restart(&inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(p: usize, q: usize) -> RecoveryReport {
        let dir = crate::scratch::ScratchDir::new(&format!("wl-reshard-{p}-{q}"));
        let mut cfg = ReshardScenario::new(dir.path());
        cfg.ranks_before = p;
        cfg.ranks_after = q;
        cfg.scale = 6;
        cfg.sessions = 4;
        cfg.ops_before = 20;
        cfg.ops_after = 20;
        cfg.ops_post = 10;
        cfg.cost = CostModel::zero();
        run_reshard(&cfg)
    }

    #[test]
    fn scale_out_round_trip() {
        let report = run(2, 4);
        assert!(report.committed_writes > 0, "{report:?}");
        assert!(
            report.passed(),
            "read-your-committed-writes across a 2→4 reshard violated:\n{}",
            report.mismatches.join("\n")
        );
        let rec = report.recovery.expect("recovery metrics");
        assert_eq!(rec.resharded_from, Some(2));
        assert_eq!(rec.ranks_restored, 4);
        assert_eq!(rec.errors, 0);
        assert!(report.post_committed > 0, "resharded server must serve");
    }

    #[test]
    fn scale_in_round_trip() {
        let report = run(4, 2);
        assert!(report.committed_writes > 0, "{report:?}");
        assert!(
            report.passed(),
            "read-your-committed-writes across a 4→2 reshard violated:\n{}",
            report.mismatches.join("\n")
        );
        let rec = report.recovery.expect("recovery metrics");
        assert_eq!(rec.resharded_from, Some(4));
        assert_eq!(rec.ranks_restored, 2);
        assert!(report.post_committed > 0);
    }
}

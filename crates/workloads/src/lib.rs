//! # `workloads` — graph-database workloads expressed against GDI (§4, §6)
//!
//! Everything the paper evaluates, written on top of the GDI routines the
//! way Listings 1–3 prescribe:
//!
//! * [`oltp`] — the four interactive workload mixes of Table 3
//!   (Read Mostly, Read Intensive, Write Intensive, LinkBench), driven as
//!   streams of single-process transactions, with success/abort accounting;
//! * [`latency`] — log-bucketed latency histograms (Fig. 5);
//! * [`locality`] — vertex-id samplers (uniform vs Zipf) for the
//!   lookup-locality sweeps of the translation-cache bench;
//! * [`analytics`] — OLAP algorithms in collective transactions: BFS,
//!   PageRank, CDLP (community detection by label propagation), WCC
//!   (weakly connected components), LCC (local clustering coefficient) and
//!   k-hop neighborhoods (Fig. 6);
//! * [`gnn`] — graph convolution training forward pass (Listing 2,
//!   Fig. 6c/6d);
//! * [`bi2`] — the business-intelligence aggregate query in the style of
//!   Listing 3 / LDBC BI (Fig. 6b);
//! * [`traffic`] — the serving-path twin of [`oltp`]: the same Table-3
//!   mixes replayed through the `server` crate's concurrent sessions
//!   (request batching + group commit) instead of direct engine calls;
//! * [`recovery`] — the crash/restart axis: tracked traffic with a
//!   mid-stream collective checkpoint, a kill, a recovery from disk,
//!   and read-your-committed-writes verification across the restart;
//! * [`maintenance`] — the churn-proportional durability axis: rounds
//!   of update-heavy traffic, each closed by a delta checkpoint and a
//!   collective maintenance pass (MVCC vacuum, compaction, snapshot
//!   verification), killed and recovered from the full+delta chain;
//! * [`chaos`] — the fault-injection axis: live traffic through a
//!   persistent storage fault on the shared fault plane, graceful
//!   degradation to read-only, repair, kill, and recovery with an MTTR
//!   measurement;
//! * [`reshard`] — the elastic axis: the same kill-and-restart, but the
//!   recovered server boots a **different rank count** (scale-out and
//!   scale-in across the restart), forcing the full redistribution
//!   path, with a post-reshard throughput phase;
//! * [`scratch`] — self-cleaning temp directories shared by the
//!   crash/restart tests and benches.

pub mod analytics;
pub mod bi2;
pub mod chaos;
pub mod gnn;
pub mod latency;
pub mod locality;
pub mod maintenance;
pub mod olsp;
pub mod oltp;
pub mod queries;
pub mod recovery;
pub mod reshard;
pub mod scratch;
pub mod traffic;

pub use latency::Histogram;
pub use locality::VertexSampler;
pub use oltp::{Mix, OltpConfig, OltpResult, OpKind};

//! Iterative value-propagation analytics: PageRank, CDLP, WCC (Fig. 6a/6b).
//!
//! All three follow the same bulk-synchronous skeleton the paper's OLAP
//! evaluation uses: per iteration, every rank computes messages from its
//! local vertices' current values, delivers them to the owners of the
//! target vertices with one `alltoallv`, and updates local state. The
//! iteration counts match the paper's parameters (PR: `i=10, d=0.85`;
//! CDLP/WCC: `i=5`).

use rustc_hash::FxHashMap;

use gda::GdaRank;

use super::{route, CsrView};

/// PageRank with `iters` power iterations and damping factor `damping`
/// (paper: `i=10, df=0.85`). Returns the local vertices' scores, parallel
/// to `view.apps`. Dangling mass is redistributed uniformly, so scores sum
/// to 1 across all ranks.
pub fn pagerank(eng: &GdaRank, view: &CsrView, iters: usize, damping: f64) -> Vec<f64> {
    let ctx = eng.ctx();
    let nranks = ctx.nranks();
    let n_global = ctx.allreduce_sum_u64(view.len() as u64) as f64;
    let mut pr = vec![1.0 / n_global; view.len()];

    for _ in 0..iters {
        // combine contributions per destination before sending (the
        // combining optimization real systems use to cut message volume)
        let mut dangling = 0.0f64;
        let mut combined: FxHashMap<u64, f64> = FxHashMap::default();
        for (i, &score) in pr.iter().enumerate() {
            let out = view.out(i);
            if out.is_empty() {
                dangling += score;
            } else {
                let share = score / out.len() as f64;
                for t in out {
                    *combined.entry(t.raw()).or_insert(0.0) += share;
                }
            }
        }
        ctx.charge_cpu(view.out_edges() as u64 + view.len() as u64 + 1);
        let rows = route(
            nranks,
            combined
                .into_iter()
                .map(|(raw, c)| (gda::DPtr::from_raw(raw), c)),
        );
        let recv = ctx.alltoallv(rows);
        let global_dangling = ctx.allreduce_sum_f64(dangling);

        let base = (1.0 - damping) / n_global + damping * global_dangling / n_global;
        for v in pr.iter_mut() {
            *v = base;
        }
        for (raw, c) in recv.into_iter().flatten() {
            pr[view.index_of[&raw]] += damping * c;
        }
    }
    pr
}

/// Community Detection using Label Propagation (CDLP), `iters` synchronous
/// rounds (paper: `i=5`). Every vertex adopts the most frequent label among
/// its neighbors (ties broken towards the smallest label), starting from
/// its own app id — the LDBC Graphalytics definition.
pub fn cdlp(eng: &GdaRank, view: &CsrView, iters: usize) -> Vec<u64> {
    let ctx = eng.ctx();
    let nranks = ctx.nranks();
    let mut labels: Vec<u64> = view.apps.clone();

    for _ in 0..iters {
        let msgs = (0..view.len()).flat_map(|i| {
            let l = labels[i];
            view.any(i).iter().map(move |&t| (t, l))
        });
        let rows = route(nranks, msgs);
        let recv = ctx.alltoallv(rows);
        ctx.charge_cpu(view.any_edges() as u64 + 1);

        // most-frequent incoming label per vertex, ties to the minimum
        let mut freq: FxHashMap<(usize, u64), u64> = FxHashMap::default();
        for (raw, l) in recv.into_iter().flatten() {
            *freq.entry((view.index_of[&raw], l)).or_insert(0) += 1;
        }
        let mut best: Vec<Option<(u64, u64)>> = vec![None; view.len()]; // (count, label)
        for ((i, l), c) in freq {
            let cand = (c, l);
            best[i] = Some(match best[i] {
                None => cand,
                Some((bc, bl)) => {
                    if c > bc || (c == bc && l < bl) {
                        cand
                    } else {
                        (bc, bl)
                    }
                }
            });
        }
        for (i, b) in best.into_iter().enumerate() {
            if let Some((_, l)) = b {
                labels[i] = l;
            }
        }
    }
    labels
}

/// Weakly Connected Components by iterative minimum-label propagation,
/// `iters` rounds (paper: `i=5`). Returns the component label (minimum
/// reachable app id within the horizon) per local vertex. With
/// `iters >= diameter` the labels are the exact WCC ids.
pub fn wcc(eng: &GdaRank, view: &CsrView, iters: usize) -> Vec<u64> {
    let ctx = eng.ctx();
    let nranks = ctx.nranks();
    let mut comp: Vec<u64> = view.apps.clone();

    for _ in 0..iters {
        // only changed values need to propagate; first round sends all
        let msgs = (0..view.len()).flat_map(|i| {
            let c = comp[i];
            view.any(i).iter().map(move |&t| (t, c))
        });
        let rows = route(nranks, msgs);
        let recv = ctx.alltoallv(rows);
        ctx.charge_cpu(view.any_edges() as u64 + 1);
        let mut changed = false;
        for (raw, c) in recv.into_iter().flatten() {
            let i = view.index_of[&raw];
            if c < comp[i] {
                comp[i] = c;
                changed = true;
            }
        }
        if !ctx.allreduce_any(changed) {
            break;
        }
    }
    comp
}

/// Run WCC to convergence (for exact component counts in tests/benches).
pub fn wcc_converged(eng: &GdaRank, view: &CsrView) -> Vec<u64> {
    wcc(eng, view, usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytics::build_view;
    use gda::GdaDb;
    use graphgen::{load_into, sized_config, GraphSpec, LpgConfig};
    use rma::CostModel;

    fn spec() -> GraphSpec {
        GraphSpec {
            scale: 6,
            edge_factor: 4,
            seed: 21,
            lpg: LpgConfig::bare(),
        }
    }

    fn undirected_adj(spec: &GraphSpec) -> Vec<Vec<usize>> {
        let n = spec.n_vertices() as usize;
        let mut adj = vec![Vec::new(); n];
        for (u, v) in spec.edges_for_rank(0, 1) {
            adj[u as usize].push(v as usize);
            adj[v as usize].push(u as usize);
        }
        adj
    }

    #[test]
    fn pagerank_sums_to_one_and_matches_reference() {
        let spec = spec();
        let nranks = 4;
        let cfg = sized_config(&spec, nranks);
        let (db, fabric) = GdaDb::with_fabric("pr", cfg, nranks, CostModel::default());
        // sequential reference PageRank on the raw edge list
        let n = spec.n_vertices() as usize;
        let mut out_adj = vec![Vec::new(); n];
        for (u, v) in spec.edges_for_rank(0, 1) {
            out_adj[u as usize].push(v as usize);
        }
        let iters = 10;
        let d = 0.85;
        let mut want = vec![1.0 / n as f64; n];
        for _ in 0..iters {
            let mut next = vec![0.0; n];
            let mut dangling = 0.0;
            for v in 0..n {
                if out_adj[v].is_empty() {
                    dangling += want[v];
                } else {
                    let share = want[v] / out_adj[v].len() as f64;
                    for &w in &out_adj[v] {
                        next[w] += d * share;
                    }
                }
            }
            for x in next.iter_mut() {
                *x += (1.0 - d) / n as f64 + d * dangling / n as f64;
            }
            want = next;
        }

        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            load_into(&eng, &spec);
            let apps = spec.vertices_for_rank(ctx.rank(), ctx.nranks());
            let view = build_view(&eng, &apps);
            let pr = pagerank(&eng, &view, iters, d);
            let local_sum: f64 = pr.iter().sum();
            let total = ctx.allreduce_sum_f64(local_sum);
            assert!((total - 1.0).abs() < 1e-9, "sum {total}");
            for (i, &app) in view.apps.iter().enumerate() {
                assert!(
                    (pr[i] - want[app as usize]).abs() < 1e-12,
                    "vertex {app}: {} vs {}",
                    pr[i],
                    want[app as usize]
                );
            }
        });
    }

    #[test]
    fn wcc_matches_union_find() {
        let spec = spec();
        let nranks = 3;
        let cfg = sized_config(&spec, nranks);
        let (db, fabric) = GdaDb::with_fabric("wcc", cfg, nranks, CostModel::default());
        // reference components via union-find
        let n = spec.n_vertices() as usize;
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        for (u, v) in spec.edges_for_rank(0, 1) {
            let (ru, rv) = (find(&mut parent, u as usize), find(&mut parent, v as usize));
            if ru != rv {
                parent[ru.max(rv)] = ru.min(rv);
            }
        }
        // canonical component label = min vertex id in component
        let mut want = vec![0u64; n];
        for (v, w) in want.iter_mut().enumerate() {
            *w = find(&mut parent, v) as u64;
        }

        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            load_into(&eng, &spec);
            let apps = spec.vertices_for_rank(ctx.rank(), ctx.nranks());
            let view = build_view(&eng, &apps);
            let comp = wcc_converged(&eng, &view);
            for (i, &app) in view.apps.iter().enumerate() {
                assert_eq!(comp[i], want[app as usize], "vertex {app}");
            }
        });
    }

    #[test]
    fn cdlp_matches_sequential_simulation() {
        let spec = spec();
        let nranks = 2;
        let iters = 5;
        let cfg = sized_config(&spec, nranks);
        let (db, fabric) = GdaDb::with_fabric("cdlp", cfg, nranks, CostModel::default());
        // sequential synchronous CDLP with identical tie-breaking
        let adj = undirected_adj(&spec);
        let n = adj.len();
        let mut want: Vec<u64> = (0..n as u64).collect();
        for _ in 0..iters {
            let mut next = want.clone();
            for v in 0..n {
                if adj[v].is_empty() {
                    continue;
                }
                let mut freq: std::collections::HashMap<u64, u64> = Default::default();
                for &w in &adj[v] {
                    *freq.entry(want[w]).or_insert(0) += 1;
                }
                let best = freq
                    .into_iter()
                    .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
                    .unwrap()
                    .0;
                next[v] = best;
            }
            want = next;
        }

        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            load_into(&eng, &spec);
            let apps = spec.vertices_for_rank(ctx.rank(), ctx.nranks());
            let view = build_view(&eng, &apps);
            let labels = cdlp(&eng, &view, iters);
            for (i, &app) in view.apps.iter().enumerate() {
                assert_eq!(labels[i], want[app as usize], "vertex {app}");
            }
        });
    }
}

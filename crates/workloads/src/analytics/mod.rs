//! OLAP graph analytics in collective transactions (§4, Fig. 6).
//!
//! Every algorithm follows the paper's pattern (Listing 2): each rank
//! processes its local partition of the vertex set and ranks exchange
//! per-iteration values with collective communication (`alltoallv`,
//! `allreduce`).
//!
//! All algorithms consume a [`CsrView`] — the per-rank CSR mirror of the
//! local partition (`gda::scan`). Two builders produce one:
//!
//! * the **tx-based builder** ([`build_view`] / [`build_view_indexed`]):
//!   a collective read transaction fetching adjacency through GDI, one
//!   `neighbors` call per vertex — the reference path, kept as the
//!   differential oracle;
//! * the **scan builder** ([`scan_view`], or `GdaRank::olap_view` for
//!   the cached variant): one sequential sweep of the raw storage
//!   windows, no transactions, no DHT translations — the fast path.
//!
//! The iterative algorithms exchange values keyed by internal id
//! (`DPtr`), whose rank field gives the message destination for free.

pub mod iterative;
pub mod lcc;
pub mod traversal;

pub use iterative::{cdlp, pagerank, wcc, wcc_converged};
pub use lcc::lcc;
pub use traversal::{bfs, khop, BfsResult};

use std::rc::Rc;

pub use gda::{CsrView, ScanPartition};
use gda::{DPtr, GdaRank, Transaction};
use gdi::{AccessMode, AppVertexId, EdgeOrientation};

/// The adjacency rows of one cached vertex, read through the
/// transaction: neighbors in record order with their inline edge labels
/// (0 = unlabeled) — the exact rows the scan layer decodes from raw
/// blocks, so the two builders are comparable edge for edge.
fn tx_adjacency(tx: &Transaction, vid: DPtr, orient: EdgeOrientation) -> Vec<(DPtr, u32)> {
    tx.edges(vid, orient)
        .unwrap()
        .into_iter()
        .map(|e| {
            let (o, t) = tx.edge_endpoints(e).unwrap();
            let nbr = if o == vid { t } else { o };
            let lbl = tx.edge_labels(e).unwrap().first().map(|l| l.0).unwrap_or(0);
            (nbr, lbl)
        })
        .collect()
}

/// The one parameterized tx-based builder behind [`build_view`] and
/// [`build_view_indexed`]: fetch every `(app, vid)` item's holder
/// through the open collective transaction and assemble the CSR.
fn build_view_from(tx: &Transaction, items: Vec<(u64, DPtr)>) -> CsrView {
    let mut apps = Vec::with_capacity(items.len());
    let mut vids = Vec::with_capacity(items.len());
    let mut out = Vec::with_capacity(items.len());
    let mut any = Vec::with_capacity(items.len());
    for (app, vid) in items {
        apps.push(app);
        vids.push(vid);
        out.push(tx_adjacency(tx, vid, EdgeOrientation::Outgoing));
        any.push(tx_adjacency(tx, vid, EdgeOrientation::Any));
    }
    CsrView::from_adjacency(apps, vids, out, any)
}

/// Collective: build the local view from this rank's partition of an
/// explicit index (`GDI_GetLocalVerticesOfIndex`) — the paper's entry
/// point for OLAP scans (Listings 2/3). Unlike [`build_view`], no DHT
/// translation is needed: postings already carry internal ids, and the
/// holders live in local memory.
pub fn build_view_indexed(eng: &GdaRank, index: gda::IndexId) -> CsrView {
    let tx = eng.begin_collective(AccessMode::ReadOnly);
    let mut postings = eng.local_index_vertices(index);
    postings.sort_by_key(|p| p.app_id);
    let view = build_view_from(
        &tx,
        postings
            .into_iter()
            .map(|p| (p.app_id.0, p.vertex))
            .collect(),
    );
    tx.commit().expect("read-only collective commit");
    view
}

/// Collective: build the local view of the given app-id partition by
/// translating ids and fetching adjacency through a collective read
/// transaction (the tx-based reference path — the scan layer's
/// differential oracle).
pub fn build_view(eng: &GdaRank, apps: &[u64]) -> CsrView {
    let tx = eng.begin_collective(AccessMode::ReadOnly);
    let items = apps
        .iter()
        .map(|&app| {
            let vid = tx
                .translate_vertex_id(AppVertexId(app))
                .expect("view vertex must exist");
            (app, vid)
        })
        .collect();
    let view = build_view_from(&tx, items);
    tx.commit().expect("read-only collective commit");
    view
}

/// Collective: the zero-transaction scan build of this rank's partition
/// (every live local vertex) — one raw-window sweep, no caching. Use
/// `GdaRank::olap_view` for the epoch-validated cached variant.
pub fn scan_view(eng: &GdaRank) -> Rc<CsrView> {
    gda::scan::build_view(eng, ScanPartition::LocalAll)
}

/// Route `(target, payload)` messages into per-rank rows for `alltoallv`
/// (the destination rank is the `DPtr`'s rank field).
pub fn route<T>(nranks: usize, msgs: impl IntoIterator<Item = (DPtr, T)>) -> Vec<Vec<(u64, T)>> {
    let mut rows: Vec<Vec<(u64, T)>> = (0..nranks).map(|_| Vec::new()).collect();
    for (dp, payload) in msgs {
        rows[dp.rank()].push((dp.raw(), payload));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use gda::GdaDb;
    use graphgen::{load_into, sized_config, GraphSpec};
    use rma::CostModel;

    #[test]
    fn view_covers_partition_and_degrees() {
        let spec = GraphSpec {
            scale: 6,
            edge_factor: 4,
            seed: 3,
            lpg: graphgen::LpgConfig::bare(),
        };
        let nranks = 2;
        let cfg = sized_config(&spec, nranks);
        let (db, fabric) = GdaDb::with_fabric("v", cfg, nranks, CostModel::default());
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            let (_, _) = load_into(&eng, &spec);
            let apps = spec.vertices_for_rank(ctx.rank(), ctx.nranks());
            let view = build_view(&eng, &apps);
            assert_eq!(view.len(), apps.len());
            // out-degree sum over all ranks equals m
            let total = ctx.allreduce_sum_u64(view.out_edges() as u64);
            assert_eq!(total, spec.n_edges());
            // each vid resolves back
            for (i, vid) in view.vids.iter().enumerate() {
                assert_eq!(view.index_of[&vid.raw()], i);
            }
        });
    }

    /// The scan builder and the tx builder must produce logically
    /// identical views — the in-crate differential oracle (the full
    /// churn-driven proptest lives in `gdi-tests`).
    #[test]
    fn scan_view_matches_tx_view() {
        let spec = GraphSpec {
            scale: 6,
            edge_factor: 4,
            seed: 9,
            lpg: graphgen::LpgConfig::default(),
        };
        let nranks = 3;
        let cfg = sized_config(&spec, nranks);
        let (db, fabric) = GdaDb::with_fabric("sv", cfg, nranks, CostModel::default());
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            let (meta, _) = load_into(&eng, &spec);
            let scan = scan_view(&eng);
            let tx_view = build_view(&eng, &scan.apps.clone());
            assert!(scan.logical_eq(&tx_view), "scan view diverges from tx view");
            // the indexed tx builder agrees too (same partition: the
            // generator installs an index over all vertices)
            if let Some(ix) = meta.all_index {
                let ix_view = build_view_indexed(&eng, ix);
                assert!(scan.logical_eq(&ix_view));
            }
            // cached variant: second call reuses, still identical
            let v1 = eng.olap_view();
            let v2 = eng.olap_view();
            assert!(std::rc::Rc::ptr_eq(&v1, &v2));
            assert!(v1.logical_eq(&tx_view));
        });
    }

    #[test]
    fn route_groups_by_rank() {
        let msgs = vec![
            (DPtr::new(0, 128), 1u64),
            (DPtr::new(2, 128), 2u64),
            (DPtr::new(0, 256), 3u64),
        ];
        let rows = route(3, msgs);
        assert_eq!(rows[0].len(), 2);
        assert_eq!(rows[1].len(), 0);
        assert_eq!(rows[2].len(), 1);
        assert_eq!(rows[2][0], (DPtr::new(2, 128).raw(), 2));
    }
}

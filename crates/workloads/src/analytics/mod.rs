//! OLAP graph analytics in collective transactions (§4, Fig. 6).
//!
//! Every algorithm follows the paper's pattern (Listing 2): a **collective
//! read transaction** in which each rank processes its local partition of
//! the vertex set, fetching graph data through GDI, and ranks exchange
//! per-iteration values with collective communication (`alltoallv`,
//! `allreduce`).
//!
//! [`LocalView`] materializes the local partition once per algorithm run —
//! app ids, internal ids and adjacency — through GDI calls inside the
//! collective transaction; the iterative algorithms then exchange values
//! keyed by internal id (`DPtr`), whose rank field gives the message
//! destination for free.

pub mod iterative;
pub mod lcc;
pub mod traversal;

pub use iterative::{cdlp, pagerank, wcc, wcc_converged};
pub use lcc::lcc;
pub use traversal::{bfs, khop, BfsResult};

use rustc_hash::FxHashMap;

use gda::{DPtr, GdaRank};
use gdi::{AccessMode, AppVertexId, EdgeOrientation};

/// The local partition of the graph, materialized through GDI.
#[derive(Debug, Default)]
pub struct LocalView {
    /// Application ids of the local vertices (round-robin partition).
    pub apps: Vec<u64>,
    /// Internal ids, parallel to `apps`.
    pub vids: Vec<DPtr>,
    /// Internal id (raw) → local index.
    pub index_of: FxHashMap<u64, usize>,
    /// App id → local index.
    pub app_index: FxHashMap<u64, usize>,
    /// Outgoing neighbors per local vertex.
    pub adj_out: Vec<Vec<DPtr>>,
    /// All neighbors (any direction) per local vertex.
    pub adj_any: Vec<Vec<DPtr>>,
}

impl LocalView {
    /// Number of local vertices.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    /// Local out-degree sum (diagnostics).
    pub fn out_edges(&self) -> usize {
        self.adj_out.iter().map(Vec::len).sum()
    }
}

/// Collective: build the local view from this rank's partition of an
/// explicit index (`GDI_GetLocalVerticesOfIndex`) — the paper's entry
/// point for OLAP scans (Listings 2/3). Unlike [`build_view`], no DHT
/// translation is needed: postings already carry internal ids, and the
/// holders live in local memory.
pub fn build_view_indexed(eng: &GdaRank, index: gda::IndexId) -> LocalView {
    let tx = eng.begin_collective(gdi::AccessMode::ReadOnly);
    let mut postings = eng.local_index_vertices(index);
    postings.sort_by_key(|p| p.app_id);
    let mut view = LocalView::default();
    for (i, p) in postings.iter().enumerate() {
        view.apps.push(p.app_id.0);
        view.vids.push(p.vertex);
        view.index_of.insert(p.vertex.raw(), i);
        view.app_index.insert(p.app_id.0, i);
        view.adj_out.push(
            tx.neighbors(p.vertex, EdgeOrientation::Outgoing, None)
                .unwrap(),
        );
        view.adj_any
            .push(tx.neighbors(p.vertex, EdgeOrientation::Any, None).unwrap());
    }
    tx.commit().expect("read-only collective commit");
    view
}

/// Collective: build the local view of the given app-id partition by
/// translating ids and fetching adjacency through a collective read
/// transaction.
pub fn build_view(eng: &GdaRank, apps: &[u64]) -> LocalView {
    let tx = eng.begin_collective(AccessMode::ReadOnly);
    let mut view = LocalView {
        apps: apps.to_vec(),
        ..Default::default()
    };
    for (i, &app) in apps.iter().enumerate() {
        let vid = tx
            .translate_vertex_id(AppVertexId(app))
            .expect("view vertex must exist");
        view.vids.push(vid);
        view.index_of.insert(vid.raw(), i);
        view.app_index.insert(app, i);
        view.adj_out
            .push(tx.neighbors(vid, EdgeOrientation::Outgoing, None).unwrap());
        view.adj_any
            .push(tx.neighbors(vid, EdgeOrientation::Any, None).unwrap());
    }
    tx.commit().expect("read-only collective commit");
    view
}

/// Route `(target, payload)` messages into per-rank rows for `alltoallv`
/// (the destination rank is the `DPtr`'s rank field).
pub fn route<T>(nranks: usize, msgs: impl IntoIterator<Item = (DPtr, T)>) -> Vec<Vec<(u64, T)>> {
    let mut rows: Vec<Vec<(u64, T)>> = (0..nranks).map(|_| Vec::new()).collect();
    for (dp, payload) in msgs {
        rows[dp.rank()].push((dp.raw(), payload));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use gda::GdaDb;
    use graphgen::{load_into, sized_config, GraphSpec};
    use rma::CostModel;

    #[test]
    fn view_covers_partition_and_degrees() {
        let spec = GraphSpec {
            scale: 6,
            edge_factor: 4,
            seed: 3,
            lpg: graphgen::LpgConfig::bare(),
        };
        let nranks = 2;
        let cfg = sized_config(&spec, nranks);
        let (db, fabric) = GdaDb::with_fabric("v", cfg, nranks, CostModel::default());
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            let (_, _) = load_into(&eng, &spec);
            let apps = spec.vertices_for_rank(ctx.rank(), ctx.nranks());
            let view = build_view(&eng, &apps);
            assert_eq!(view.len(), apps.len());
            // out-degree sum over all ranks equals m
            let total = ctx.allreduce_sum_u64(view.out_edges() as u64);
            assert_eq!(total, spec.n_edges());
            // each vid resolves back
            for (i, vid) in view.vids.iter().enumerate() {
                assert_eq!(view.index_of[&vid.raw()], i);
            }
        });
    }

    #[test]
    fn route_groups_by_rank() {
        let msgs = vec![
            (DPtr::new(0, 128), 1u64),
            (DPtr::new(2, 128), 2u64),
            (DPtr::new(0, 256), 3u64),
        ];
        let rows = route(3, msgs);
        assert_eq!(rows[0].len(), 2);
        assert_eq!(rows[1].len(), 0);
        assert_eq!(rows[2].len(), 1);
        assert_eq!(rows[2][0], (DPtr::new(2, 128).raw(), 2));
    }
}

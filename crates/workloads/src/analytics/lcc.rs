//! Local Clustering Coefficient (Fig. 6b).
//!
//! The paper singles out LCC as the most expensive OLAP workload
//! (`O(n + m^{3/2})` vs `O(n + m)` for BFS, §6.5). This distributed
//! implementation uses the pair-query formulation: for every local vertex
//! `v` and every unordered neighbor pair `(w1, w2)` it asks the owner of
//! `w1` whether `w2 ∈ N(w1)`; positive answers are counted as triangles
//! through `v`. Queries travel in one `alltoallv`, answers in a second —
//! two collective rounds total.

use rustc_hash::FxHashSet;

use gda::{DPtr, GdaRank};

use super::{route, CsrView};

/// Compute the local clustering coefficient of every local vertex
/// (parallel to `view.apps`). The graph is treated as undirected with
/// parallel edges deduplicated, per the LDBC Graphalytics definition.
pub fn lcc(eng: &GdaRank, view: &CsrView) -> Vec<f64> {
    let ctx = eng.ctx();
    let nranks = ctx.nranks();

    // deduplicated undirected neighborhoods (excluding self-loops)
    let nbr_sets: Vec<FxHashSet<u64>> = (0..view.len())
        .map(|i| {
            view.any(i)
                .iter()
                .map(|d| d.raw())
                .filter(|&raw| raw != view.vids[i].raw())
                .collect()
        })
        .collect();

    // queries: (w1, w2, origin_vertex_local_idx); grouped by owner of w1
    let mut queries: Vec<(DPtr, (u64, u64, u32))> = Vec::new();
    for (i, set) in nbr_sets.iter().enumerate() {
        let mut sorted: Vec<u64> = set.iter().copied().collect();
        sorted.sort_unstable();
        for (a_pos, &w1) in sorted.iter().enumerate() {
            for &w2 in &sorted[a_pos + 1..] {
                queries.push((DPtr::from_raw(w1), (w1, w2, i as u32)));
            }
        }
    }
    ctx.charge_cpu(queries.len() as u64 + view.len() as u64 + 1);
    let rows = route(nranks, queries);
    let recv = ctx.alltoallv(rows);

    // answer: does w2 ∈ N(w1)? route hits back to the asker's rank
    let me = ctx.rank();
    let mut answers: Vec<Vec<u32>> = (0..nranks).map(|_| Vec::new()).collect();
    for (asker_rank, row) in recv.into_iter().enumerate() {
        for (_w1_raw, (w1, w2, origin_idx)) in row {
            let i = view.index_of[&w1];
            debug_assert_eq!(DPtr::from_raw(w1).rank(), me);
            if nbr_sets[i].contains(&w2) {
                answers[asker_rank].push(origin_idx);
            }
        }
    }
    ctx.charge_cpu(answers.iter().map(Vec::len).sum::<usize>() as u64 + 1);
    let hits = ctx.alltoallv(answers);

    let mut triangles = vec![0u64; view.len()];
    for idx in hits.into_iter().flatten() {
        triangles[idx as usize] += 1;
    }
    view.apps
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let d = nbr_sets[i].len() as u64;
            if d < 2 {
                0.0
            } else {
                2.0 * triangles[i] as f64 / (d * (d - 1)) as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytics::build_view;
    use gda::GdaDb;
    use graphgen::{load_into, sized_config, GraphSpec, LpgConfig};
    use rma::CostModel;
    use std::collections::HashSet;

    /// Brute-force reference LCC over the raw edge list.
    fn reference_lcc(spec: &GraphSpec) -> Vec<f64> {
        let n = spec.n_vertices() as usize;
        let mut nbrs: Vec<HashSet<usize>> = vec![HashSet::new(); n];
        for (u, v) in spec.edges_for_rank(0, 1) {
            if u != v {
                nbrs[u as usize].insert(v as usize);
                nbrs[v as usize].insert(u as usize);
            }
        }
        (0..n)
            .map(|v| {
                let d = nbrs[v].len();
                if d < 2 {
                    return 0.0;
                }
                let ns: Vec<usize> = nbrs[v].iter().copied().collect();
                let mut t = 0u64;
                for i in 0..ns.len() {
                    for j in i + 1..ns.len() {
                        if nbrs[ns[i]].contains(&ns[j]) {
                            t += 1;
                        }
                    }
                }
                2.0 * t as f64 / (d * (d - 1)) as f64
            })
            .collect()
    }

    #[test]
    fn lcc_matches_bruteforce() {
        let spec = GraphSpec {
            scale: 6,
            edge_factor: 6,
            seed: 31,
            lpg: LpgConfig::bare(),
        };
        let want = reference_lcc(&spec);
        let nranks = 3;
        let cfg = sized_config(&spec, nranks);
        let (db, fabric) = GdaDb::with_fabric("lcc", cfg, nranks, CostModel::default());
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            load_into(&eng, &spec);
            let apps = spec.vertices_for_rank(ctx.rank(), ctx.nranks());
            let view = build_view(&eng, &apps);
            let got = lcc(&eng, &view);
            for (i, &app) in view.apps.iter().enumerate() {
                assert!(
                    (got[i] - want[app as usize]).abs() < 1e-12,
                    "vertex {app}: {} vs {}",
                    got[i],
                    want[app as usize]
                );
            }
            // sanity: at least one vertex participates in a triangle
            let any = ctx.allreduce_any(got.iter().any(|&c| c > 0.0));
            assert!(any, "no triangles in the test graph");
        });
    }
}

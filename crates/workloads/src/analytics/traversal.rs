//! BFS and k-hop neighborhood queries (Fig. 6e/6f).
//!
//! Level-synchronous distributed BFS in the Graph500 style: per level, each
//! rank expands its local frontier through the adjacency it fetched via
//! GDI, routes discovered vertices to their owners with one `alltoallv`,
//! and the ranks agree on termination with an `allreduce` of the next
//! frontier size. Edges are traversed in both directions (Graph500 treats
//! the Kronecker graph as undirected).

use gda::GdaRank;

use super::{route, CsrView};

/// Result of a BFS / k-hop run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BfsResult {
    /// Vertices reached (including the root).
    pub visited: u64,
    /// Levels expanded (root = level 0).
    pub levels: u32,
}

/// Full BFS from `root_app`.
pub fn bfs(eng: &GdaRank, view: &CsrView, root_app: u64) -> BfsResult {
    bounded_bfs(eng, view, root_app, u32::MAX)
}

/// k-hop neighborhood query: number of distinct vertices within `k` hops
/// of `root_app` (the paper's 2-/3-/4-hop workloads, Fig. 6e).
pub fn khop(eng: &GdaRank, view: &CsrView, root_app: u64, k: u32) -> u64 {
    bounded_bfs(eng, view, root_app, k).visited
}

fn bounded_bfs(eng: &GdaRank, view: &CsrView, root_app: u64, max_levels: u32) -> BfsResult {
    let ctx = eng.ctx();
    let nranks = ctx.nranks();
    let mut visited = vec![false; view.len()];
    let mut frontier: Vec<usize> = Vec::new();
    if let Some(&i) = view.app_index.get(&root_app) {
        visited[i] = true;
        frontier.push(i);
    }
    let mut total_visited = ctx.allreduce_sum_u64(frontier.len() as u64);
    assert!(total_visited == 1, "BFS root {root_app} not found");
    let mut levels = 0u32;

    loop {
        if levels >= max_levels {
            break;
        }
        // expand: messages to the owners of discovered vertices
        let msgs = frontier
            .iter()
            .flat_map(|&i| view.any(i).iter().map(|&t| (t, ())));
        let rows = route(nranks, msgs);
        let recv = ctx.alltoallv(rows);
        ctx.charge_cpu(frontier.len() as u64 + 1);

        let mut next: Vec<usize> = Vec::new();
        for (raw, ()) in recv.into_iter().flatten() {
            let i = view.index_of[&raw];
            if !visited[i] {
                visited[i] = true;
                next.push(i);
            }
        }
        let next_total = ctx.allreduce_sum_u64(next.len() as u64);
        if next_total == 0 {
            break;
        }
        total_visited += next_total;
        frontier = next;
        levels += 1;
    }
    BfsResult {
        visited: total_visited,
        levels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytics::build_view;
    use gda::GdaDb;
    use graphgen::{load_into, sized_config, GraphSpec, LpgConfig};
    use rma::CostModel;
    use std::collections::{HashSet, VecDeque};

    fn spec() -> GraphSpec {
        GraphSpec {
            scale: 6,
            edge_factor: 4,
            seed: 11,
            lpg: LpgConfig::bare(),
        }
    }

    /// Sequential reference BFS over the raw edge list (undirected).
    fn reference_bfs(spec: &GraphSpec, root: u64, max_levels: u32) -> (u64, u32) {
        let n = spec.n_vertices() as usize;
        let mut adj = vec![Vec::new(); n];
        for (u, v) in spec.edges_for_rank(0, 1) {
            adj[u as usize].push(v as usize);
            adj[v as usize].push(u as usize);
        }
        let mut seen = HashSet::new();
        let mut q = VecDeque::new();
        seen.insert(root as usize);
        q.push_back((root as usize, 0u32));
        let mut levels = 0;
        while let Some((v, d)) = q.pop_front() {
            if d >= max_levels {
                continue;
            }
            for &w in &adj[v] {
                if seen.insert(w) {
                    levels = levels.max(d + 1);
                    q.push_back((w, d + 1));
                }
            }
        }
        (seen.len() as u64, levels)
    }

    #[test]
    fn bfs_matches_reference() {
        let spec = spec();
        let nranks = 4;
        let cfg = sized_config(&spec, nranks);
        let (db, fabric) = GdaDb::with_fabric("bfs", cfg, nranks, CostModel::default());
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            load_into(&eng, &spec);
            let apps = spec.vertices_for_rank(ctx.rank(), ctx.nranks());
            let view = build_view(&eng, &apps);
            for root in [0u64, 5, 17] {
                let got = bfs(&eng, &view, root);
                let (want_visited, want_levels) = reference_bfs(&spec, root, u32::MAX);
                assert_eq!(got.visited, want_visited, "root {root}");
                assert_eq!(got.levels, want_levels, "root {root}");
            }
        });
    }

    #[test]
    fn khop_matches_reference_and_is_monotone() {
        let spec = spec();
        let nranks = 2;
        let cfg = sized_config(&spec, nranks);
        let (db, fabric) = GdaDb::with_fabric("khop", cfg, nranks, CostModel::default());
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            load_into(&eng, &spec);
            let apps = spec.vertices_for_rank(ctx.rank(), ctx.nranks());
            let view = build_view(&eng, &apps);
            let mut prev = 0;
            for k in 1..=4 {
                let got = khop(&eng, &view, 3, k);
                let (want, _) = reference_bfs(&spec, 3, k);
                assert_eq!(got, want, "k={k}");
                assert!(got >= prev, "k-hop counts must be monotone");
                prev = got;
            }
        });
    }

    #[test]
    fn isolated_root_visits_itself() {
        // scale-6 Kronecker has isolated vertices; find one and BFS from it
        let spec = spec();
        let mut deg = vec![0u64; spec.n_vertices() as usize];
        for (u, v) in spec.edges_for_rank(0, 1) {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let isolated = deg.iter().position(|&d| d == 0).expect("none isolated") as u64;
        let cfg = sized_config(&spec, 1);
        let (db, fabric) = GdaDb::with_fabric("iso", cfg, 1, CostModel::zero());
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            load_into(&eng, &spec);
            let apps = spec.vertices_for_rank(ctx.rank(), 1);
            let view = build_view(&eng, &apps);
            let r = bfs(&eng, &view, isolated);
            assert_eq!(r.visited, 1);
            assert_eq!(r.levels, 0);
        });
    }
}

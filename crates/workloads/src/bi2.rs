//! Business-intelligence aggregate query (OLSP; Listing 3, Fig. 6b).
//!
//! The paper's running example: *"How many people are over 30 years old
//! and drive a red car?"* — a filter on an indexed vertex set, a
//! label-filtered edge expansion, and a property filter on the neighbors,
//! closed by a global reduction. Expressed on the generated LPG graph:
//!
//! ```text
//! MATCH (p:L<pl>) WHERE p.P<pp> > t1
//!       AND p -[:L<el>]-> (c:L<cl>) AND c.P<cp> > t2
//! RETURN count(p)
//! ```
//!
//! The query runs as a collective read transaction: each rank scans its
//! local partition (Listing 3 uses `GDI_GetLocalVerticesOfIndex`), fetches
//! neighbor holders one-sidedly, and the ranks combine counts with an
//! `allreduce` — exactly the structure of Listing 3.

use gda::GdaRank;
use gdi::{AccessMode, AppVertexId, EdgeOrientation, GdiError, LabelId, PTypeId, PropertyValue};
use graphgen::{GraphSpec, LpgMeta};
use query::{AggTarget, Query, QueryBuilder};

/// Parameters of the BI-2-style query, in generator index space.
#[derive(Debug, Clone, Copy)]
pub struct Bi2Params {
    /// Label index of the "person" side.
    pub person_label: usize,
    /// Property index filtered on the person (`> person_threshold`).
    pub person_prop: usize,
    pub person_threshold: u64,
    /// Required edge label index.
    pub edge_label: usize,
    /// Label index required on the neighbor ("car").
    pub target_label: usize,
    /// Property index filtered on the neighbor (`> target_threshold`).
    pub target_prop: usize,
    pub target_threshold: u64,
}

impl Default for Bi2Params {
    fn default() -> Self {
        Self {
            person_label: 0,
            person_prop: 0,
            person_threshold: u64::MAX / 2,
            edge_label: 1,
            target_label: 2,
            target_prop: 1,
            target_threshold: u64::MAX / 2,
        }
    }
}

/// Run the query over this rank's partition; returns the **global** count
/// (identical on every rank, via allreduce).
pub fn bi2(eng: &GdaRank, spec: &GraphSpec, meta: &LpgMeta, params: &Bi2Params) -> u64 {
    let person: LabelId = meta.label(params.person_label);
    let edge_l: LabelId = meta.label(params.edge_label);
    let target_l: LabelId = meta.label(params.target_label);
    let pp: PTypeId = meta.ptype(params.person_prop);
    let tp: PTypeId = meta.ptype(params.target_prop);

    let tx = eng.begin_collective(AccessMode::ReadOnly);
    let mut local_count = 0u64;
    for app in spec.vertices_for_rank(eng.rank(), eng.nranks()) {
        // a generated vertex may have been deleted since ingestion
        // (churn): an absent id contributes nothing, it is not an error
        let v = match tx.translate_vertex_id(AppVertexId(app)) {
            Ok(v) => v,
            Err(GdiError::NotFound(_)) => continue,
            Err(e) => panic!("translate failed: {e:?}"),
        };
        if !tx.has_label(v, person).unwrap() {
            continue;
        }
        let Some(PropertyValue::U64(age)) = tx.property(v, pp).unwrap() else {
            continue;
        };
        if age <= params.person_threshold {
            continue;
        }
        // edge expansion with a label condition (the "constraint" of
        // Listing 3, line 9-10)
        let things = tx
            .neighbors(v, EdgeOrientation::Outgoing, Some(edge_l))
            .unwrap();
        let mut drives_red_car = false;
        for obj in things {
            if !tx.has_label(obj, target_l).unwrap() {
                continue;
            }
            if let Some(PropertyValue::U64(c)) = tx.property(obj, tp).unwrap() {
                if c > params.target_threshold {
                    drives_red_car = true;
                    break;
                }
            }
        }
        if drives_red_car {
            local_count += 1;
        }
    }
    tx.commit().expect("collective read commit");
    eng.ctx().allreduce_sum_u64(local_count)
}

/// The same query as a declarative [`Query`] for the `query` planner —
/// the hand-compiled [`bi2`] above stays as its differential oracle.
pub fn bi2_query(meta: &LpgMeta, params: &Bi2Params) -> Query {
    QueryBuilder::node("p")
        .label(meta.label(params.person_label))
        .prop_gt(meta.ptype(params.person_prop), params.person_threshold)
        .expand_out(Some(meta.label(params.edge_label)))
        .to("c")
        .label(meta.label(params.target_label))
        .prop_gt(meta.ptype(params.target_prop), params.target_threshold)
        .count(AggTarget::Root)
}

/// Sequential reference evaluation of the same predicate directly on the
/// generator functions — used by tests and by EXPERIMENTS.md to verify the
/// distributed result exactly.
pub fn bi2_reference(spec: &GraphSpec, params: &Bi2Params) -> u64 {
    let n = spec.n_vertices();
    // adjacency with edge-label indices
    let mut adj: Vec<Vec<(u64, Option<usize>)>> = vec![Vec::new(); n as usize];
    for (u, v) in spec.edges_for_rank(0, 1) {
        let l = spec.lpg.edge_label_index(spec.seed, u, v);
        adj[u as usize].push((v, l));
    }
    let qualifies_target = |w: u64| {
        spec.lpg
            .vertex_label_indices(spec.seed, w)
            .contains(&params.target_label)
            && spec
                .lpg
                .vertex_props(spec.seed, w)
                .iter()
                .any(|(i, val)| *i == params.target_prop && *val > params.target_threshold)
    };
    (0..n)
        .filter(|&v| {
            spec.lpg
                .vertex_label_indices(spec.seed, v)
                .contains(&params.person_label)
                && spec
                    .lpg
                    .vertex_props(spec.seed, v)
                    .iter()
                    .any(|(i, val)| *i == params.person_prop && *val > params.person_threshold)
                && adj[v as usize]
                    .iter()
                    .any(|&(w, l)| l == Some(params.edge_label) && qualifies_target(w))
        })
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use gda::GdaDb;
    use graphgen::{load_into, sized_config, GraphSpec};
    use rma::CostModel;

    #[test]
    fn bi2_matches_reference_exactly() {
        let spec = GraphSpec {
            scale: 7,
            edge_factor: 8,
            seed: 99,
            // few labels/ptypes + all edges labeled → the query has a
            // non-trivial selectivity we can assert on
            lpg: graphgen::LpgConfig {
                num_labels: 4,
                num_ptypes: 4,
                labels_per_vertex: 2,
                props_per_vertex: 3,
                edge_label_fraction: 1.0,
                ..Default::default()
            },
        };
        let params = Bi2Params {
            person_threshold: u64::MAX / 8, // generous filters so the
            target_threshold: u64::MAX / 8, // count is non-trivial
            ..Default::default()
        };
        let want = bi2_reference(&spec, &params);
        assert!(want > 0, "test query selects nothing — tune parameters");

        let nranks = 3;
        let cfg = sized_config(&spec, nranks);
        let (db, fabric) = GdaDb::with_fabric("bi2", cfg, nranks, CostModel::default());
        let counts = fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            let (meta, _) = load_into(&eng, &spec);
            bi2(&eng, &spec, &meta, &params)
        });
        for c in counts {
            assert_eq!(c, want);
        }
    }

    /// The declarative port ([`bi2_query`] through the planner and
    /// executor) and the hand-compiled [`bi2`] are differential oracles
    /// for each other — and both match the sequential reference.
    #[test]
    fn declarative_port_matches_hand_compiled() {
        let spec = GraphSpec {
            scale: 7,
            edge_factor: 8,
            seed: 99,
            lpg: graphgen::LpgConfig {
                num_labels: 4,
                num_ptypes: 4,
                labels_per_vertex: 2,
                props_per_vertex: 3,
                edge_label_fraction: 1.0,
                ..Default::default()
            },
        };
        let params = Bi2Params {
            person_threshold: u64::MAX / 8,
            target_threshold: u64::MAX / 8,
            ..Default::default()
        };
        let want = bi2_reference(&spec, &params);
        let nranks = 4;
        let cfg = sized_config(&spec, nranks);
        let (db, fabric) = GdaDb::with_fabric("bi2q", cfg, nranks, CostModel::default());
        let results = fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            let (meta, _) = crate::queries::load_with_label_indexes(&eng, &spec);
            let hand = bi2(&eng, &spec, &meta, &params);
            let q = bi2_query(&meta, &params);
            let (_plan, out) = query::executor::run(&eng, &q);
            (hand, out.value)
        });
        for (hand, declarative) in results {
            assert_eq!(hand, want);
            assert_eq!(declarative, query::QueryValue::Count(want));
        }
    }

    /// Churn regression: deleting generated vertices after load must not
    /// panic either evaluation path (the DHT probe used to
    /// `expect("generated vertex")`), and both paths must still agree.
    #[test]
    fn survives_churn_and_paths_agree() {
        let spec = GraphSpec {
            scale: 7,
            edge_factor: 8,
            seed: 42,
            lpg: graphgen::LpgConfig {
                num_labels: 4,
                num_ptypes: 4,
                labels_per_vertex: 2,
                props_per_vertex: 3,
                edge_label_fraction: 1.0,
                ..Default::default()
            },
        };
        let params = Bi2Params {
            person_threshold: u64::MAX / 8,
            target_threshold: u64::MAX / 8,
            ..Default::default()
        };
        let nranks = 3;
        let cfg = sized_config(&spec, nranks);
        let (db, fabric) = GdaDb::with_fabric("bi2churn", cfg, nranks, CostModel::default());
        let results = fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            let (meta, _) = crate::queries::load_with_label_indexes(&eng, &spec);
            // every rank deletes ~25% of its stripe via individual RW
            // transactions; a conflicting delete (vertex mirrors span
            // ranks) simply aborts and is skipped
            let mut removed = 0u64;
            for app in spec.vertices_for_rank(eng.rank(), eng.nranks()) {
                if app % 4 != 1 {
                    continue;
                }
                let tx = eng.begin(AccessMode::ReadWrite);
                let deleted = match tx.translate_vertex_id(AppVertexId(app)) {
                    Ok(v) => tx.delete_vertex(v).is_ok(),
                    Err(_) => false,
                };
                if deleted {
                    if tx.commit().is_ok() {
                        removed += 1;
                    }
                } else {
                    tx.abort();
                }
            }
            ctx.barrier();
            let removed = ctx.allreduce_sum_u64(removed);
            let hand = bi2(&eng, &spec, &meta, &params);
            let q = bi2_query(&meta, &params);
            let (_plan, out) = query::executor::run(&eng, &q);
            (removed, hand, out.value)
        });
        let (removed0, hand0, _) = results[0].clone();
        assert!(removed0 > 0, "no delete survived — churn never happened");
        assert!(
            hand0 <= bi2_reference(&spec, &params),
            "churn can only shrink the count"
        );
        for (removed, hand, declarative) in results {
            assert_eq!(removed, removed0);
            assert_eq!(hand, hand0, "ranks disagree on the hand-compiled count");
            assert_eq!(declarative, query::QueryValue::Count(hand0));
        }
    }

    #[test]
    fn impossible_filter_counts_zero() {
        let spec = GraphSpec {
            scale: 5,
            edge_factor: 4,
            seed: 7,
            lpg: Default::default(),
        };
        let params = Bi2Params {
            person_threshold: u64::MAX, // nothing exceeds MAX
            ..Default::default()
        };
        assert_eq!(bi2_reference(&spec, &params), 0);
        let cfg = sized_config(&spec, 2);
        let (db, fabric) = GdaDb::with_fabric("bi0", cfg, 2, CostModel::zero());
        let counts = fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            let (meta, _) = load_into(&eng, &spec);
            bi2(&eng, &spec, &meta, &params)
        });
        assert!(counts.iter().all(|&c| c == 0));
    }
}

//! Mixed-traffic session driver: replays the Table-3 OLTP mixes through
//! the `server` crate's session front-end instead of calling the engine
//! directly (`oltp::run_oltp`'s serving-path twin).
//!
//! Sessions are closed-loop clients: each keeps exactly one op in flight.
//! A bounded pool of worker threads multiplexes many sessions (10 →
//! 10 000) by submitting one op per owned session per round and then
//! awaiting all of that round's tickets, so the server sees
//! `sessions`-wide concurrency without needing one OS thread per
//! session.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use gda::GdaDb;
use gdi::{AppVertexId, PropertyValue};
use graphgen::{load_into, GraphSpec, LpgMeta};
use rma::Fabric;
use server::{
    GdiServer, Op, OpOutcome, ServeSummary, ServerMetrics, ServerOptions, SubmitError, Ticket,
};

use crate::oltp::{Mix, OpKind};

/// Traffic shape.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Concurrent client sessions.
    pub sessions: usize,
    /// Closed-loop ops each session issues.
    pub ops_per_session: usize,
    /// Table-3 operation mix.
    pub mix: Mix,
    /// RNG seed (combined with the session id).
    pub seed: u64,
    /// Worker threads multiplexing the sessions.
    pub workers: usize,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        Self {
            sessions: 64,
            ops_per_session: 20,
            mix: Mix::LINKBENCH,
            seed: 0xC0FFEE,
            workers: 8,
        }
    }
}

/// What one session observed.
#[derive(Debug, Clone, Default)]
pub struct SessionReport {
    pub committed: u64,
    pub aborted: u64,
    /// Committed ops that were pure reads (Table-3 read kinds).
    pub read_committed: u64,
    /// Aborted ops that were pure reads — zero under the MVCC snapshot
    /// path, whose read transactions never take locks and never abort.
    pub read_aborted: u64,
    /// Commit-uncertain outcomes (failed group commit under resource
    /// exhaustion; see `server::OpOutcome::Indeterminate`).
    pub indeterminate: u64,
    /// Submissions shed by admission control.
    pub rejected: u64,
    /// Requests shed unexecuted after outliving the per-op deadline
    /// (`server::OpOutcome::DeadlineExceeded`; zero without a deadline).
    pub deadline_exceeded: u64,
    /// Outcomes received (must equal accepted submissions: no lost acks).
    pub acks: u64,
}

/// Aggregate of a traffic run.
#[derive(Debug, Clone)]
pub struct TrafficReport {
    pub per_session: Vec<SessionReport>,
    /// Wall-clock seconds spent driving the traffic.
    pub wall_s: f64,
}

impl TrafficReport {
    pub fn committed(&self) -> u64 {
        self.per_session.iter().map(|s| s.committed).sum()
    }

    pub fn aborted(&self) -> u64 {
        self.per_session.iter().map(|s| s.aborted).sum()
    }

    pub fn read_committed(&self) -> u64 {
        self.per_session.iter().map(|s| s.read_committed).sum()
    }

    pub fn read_aborted(&self) -> u64 {
        self.per_session.iter().map(|s| s.read_aborted).sum()
    }

    pub fn indeterminate(&self) -> u64 {
        self.per_session.iter().map(|s| s.indeterminate).sum()
    }

    pub fn rejected(&self) -> u64 {
        self.per_session.iter().map(|s| s.rejected).sum()
    }

    pub fn deadline_exceeded(&self) -> u64 {
        self.per_session.iter().map(|s| s.deadline_exceeded).sum()
    }

    pub fn acks(&self) -> u64 {
        self.per_session.iter().map(|s| s.acks).sum()
    }

    pub fn abort_fraction(&self) -> f64 {
        let (c, a) = (self.committed(), self.aborted());
        if c + a == 0 {
            0.0
        } else {
            a as f64 / (c + a) as f64
        }
    }
}

/// Per-session generator state.
struct SessionState {
    rng: SmallRng,
    /// Next fresh application id (disjoint per session).
    next_new: u64,
    /// App ids this session added (preferred delete victims, LinkBench
    /// style).
    added: Vec<u64>,
    report: SessionReport,
}

/// Translate one sampled Table-3 op kind into a server request.
fn build_op(
    kind: OpKind,
    rng: &mut SmallRng,
    n: u64,
    meta: &LpgMeta,
    next_new: &mut u64,
    added: &mut Vec<u64>,
) -> Op {
    match kind {
        OpKind::GetVertexProps => Op::GetVertexProps {
            v: AppVertexId(rng.gen_range(0..n)),
            ptype: if meta.ptypes.is_empty() {
                None
            } else {
                Some(meta.ptype(rng.gen_range(0..meta.ptypes.len())))
            },
        },
        OpKind::CountEdges => Op::CountEdges {
            v: AppVertexId(rng.gen_range(0..n)),
        },
        OpKind::GetEdges => Op::GetEdges {
            v: AppVertexId(rng.gen_range(0..n)),
        },
        OpKind::AddVertex => {
            *next_new += 1;
            let app = *next_new;
            added.push(app);
            Op::AddVertex {
                v: AppVertexId(app),
                label: if meta.labels.is_empty() {
                    None
                } else {
                    Some(meta.label(app as usize % meta.labels.len()))
                },
                prop: if meta.ptypes.is_empty() {
                    None
                } else {
                    Some((meta.ptype(0), PropertyValue::U64(app)))
                },
            }
        }
        OpKind::DeleteVertex => Op::DeleteVertex {
            v: AppVertexId(added.pop().unwrap_or_else(|| rng.gen_range(0..n))),
        },
        OpKind::UpdateVertexProp => {
            if meta.ptypes.is_empty() {
                // bare LPG: nothing to update, degrade to a point read
                Op::CountEdges {
                    v: AppVertexId(rng.gen_range(0..n)),
                }
            } else {
                Op::UpdateVertexProp {
                    v: AppVertexId(rng.gen_range(0..n)),
                    ptype: meta.ptype(rng.gen_range(0..meta.ptypes.len())),
                    value: PropertyValue::U64(rng.gen()),
                }
            }
        }
        OpKind::AddEdge => Op::AddEdge {
            from: AppVertexId(rng.gen_range(0..n)),
            to: AppVertexId(rng.gen_range(0..n)),
            label: if meta.labels.is_empty() {
                None
            } else {
                Some(meta.label(rng.gen_range(0..meta.labels.len())))
            },
        },
    }
}

/// Drive `cfg.sessions` concurrent sessions against a serving database.
/// Call while the server's rank loops are live; returns when every
/// session finished its ops (all accepted submissions acknowledged).
pub fn run_traffic(
    server: &GdiServer,
    spec: &GraphSpec,
    meta: &LpgMeta,
    cfg: &TrafficConfig,
) -> TrafficReport {
    let n = spec.n_vertices();
    let workers = cfg.workers.clamp(1, cfg.sessions.max(1));
    let span = cfg.ops_per_session as u64 + 1;
    let mut states: Vec<SessionState> = (0..cfg.sessions)
        .map(|s| SessionState {
            rng: SmallRng::seed_from_u64(cfg.seed ^ (s as u64).wrapping_mul(0x9E37_79B9)),
            // fresh ids above the base graph, disjoint between sessions
            next_new: n + 1 + s as u64 * span,
            added: Vec::new(),
            report: SessionReport::default(),
        })
        .collect();

    let t0 = std::time::Instant::now();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let chunk = cfg.sessions.div_ceil(workers);
        for states_chunk in states.chunks_mut(chunk.max(1)) {
            let server = server.clone();
            let mix = cfg.mix;
            handles.push(scope.spawn(move || {
                let session = server.session();
                let mut round: Vec<(usize, bool, Ticket)> = Vec::new();
                for _ in 0..cfg.ops_per_session {
                    round.clear();
                    for (i, st) in states_chunk.iter_mut().enumerate() {
                        let kind = mix.sample(&mut st.rng);
                        let op =
                            build_op(kind, &mut st.rng, n, meta, &mut st.next_new, &mut st.added);
                        let is_read = op.is_read();
                        match session.submit(op) {
                            Ok(t) => round.push((i, is_read, t)),
                            Err(
                                SubmitError::Overloaded { .. }
                                | SubmitError::Paused
                                | SubmitError::ShuttingDown
                                | SubmitError::ReadOnly,
                            ) => {
                                st.report.rejected += 1;
                            }
                        }
                    }
                    for (i, is_read, ticket) in round.drain(..) {
                        let st = &mut states_chunk[i];
                        st.report.acks += 1;
                        match ticket.wait() {
                            OpOutcome::Committed(_) => {
                                st.report.committed += 1;
                                if is_read {
                                    st.report.read_committed += 1;
                                }
                            }
                            OpOutcome::Aborted(_) => {
                                st.report.aborted += 1;
                                if is_read {
                                    st.report.read_aborted += 1;
                                }
                            }
                            OpOutcome::Indeterminate(_) => st.report.indeterminate += 1,
                            OpOutcome::DeadlineExceeded => st.report.deadline_exceeded += 1,
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("traffic worker panicked");
        }
    });

    TrafficReport {
        per_session: states.into_iter().map(|s| s.report).collect(),
        wall_s: t0.elapsed().as_secs_f64(),
    }
}

/// Everything one serving run produced.
#[derive(Debug, Clone)]
pub struct ServeRun {
    /// What the sessions observed.
    pub traffic: TrafficReport,
    /// Per-rank serve-loop summaries (batches, executed ops, sim time).
    pub summaries: Vec<ServeSummary>,
    /// Final server metrics (latency percentiles, abort rates, fabric
    /// counters of the serve phase).
    pub metrics: ServerMetrics,
}

impl ServeRun {
    /// Committed ops per simulated second (slowest serving rank is the
    /// makespan) — the serving twin of `oltp::throughput_qps`.
    pub fn sim_throughput_qps(&self) -> f64 {
        let max_ns = self
            .summaries
            .iter()
            .map(|s| s.sim_serve_ns)
            .fold(0.0f64, f64::max);
        if max_ns <= 0.0 {
            0.0
        } else {
            self.traffic.committed() as f64 / (max_ns / 1e9)
        }
    }
}

/// Serve already-loaded data: start rank serve loops on `fabric`, drive
/// `cfg` traffic, shut down, and collect every report.
pub fn serve(
    db: &Arc<GdaDb>,
    fabric: &Fabric,
    opts: ServerOptions,
    spec: &GraphSpec,
    meta: &LpgMeta,
    cfg: &TrafficConfig,
) -> ServeRun {
    let server = GdiServer::new(db.clone(), opts);
    let mut summaries = None;
    let mut traffic = None;
    std::thread::scope(|s| {
        let srv = &server;
        let ranks = s.spawn(move || fabric.run(|ctx| srv.serve_rank(ctx)));
        traffic = Some(run_traffic(srv, spec, meta, cfg));
        srv.shutdown();
        summaries = Some(ranks.join().expect("serving fabric panicked"));
    });
    ServeRun {
        traffic: traffic.unwrap(),
        summaries: summaries.unwrap(),
        metrics: server.metrics(),
    }
}

/// Bulk-load `spec` into a fresh database, then [`serve`] it.
pub fn load_and_serve(
    db: &Arc<GdaDb>,
    fabric: &Fabric,
    opts: ServerOptions,
    spec: &GraphSpec,
    cfg: &TrafficConfig,
) -> ServeRun {
    let metas = fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let (meta, _) = load_into(&eng, spec);
        meta
    });
    let meta = metas.into_iter().next().expect("at least one rank");
    serve(db, fabric, opts, spec, &meta, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::LpgConfig;

    #[test]
    fn op_generation_covers_kinds() {
        let spec = GraphSpec {
            scale: 6,
            edge_factor: 4,
            seed: 1,
            lpg: LpgConfig::default(),
        };
        let meta = LpgMeta {
            labels: vec![gdi::LabelId(1)],
            ptypes: vec![gdi::PTypeId(3)],
            all_index: None,
        };
        let mut rng = SmallRng::seed_from_u64(9);
        let mut next_new = 1000;
        let mut added = vec![];
        for kind in OpKind::ALL {
            let op = build_op(
                kind,
                &mut rng,
                spec.n_vertices(),
                &meta,
                &mut next_new,
                &mut added,
            );
            assert_eq!(op.is_read(), kind.is_read(), "{kind:?} vs {op:?}");
        }
        // AddVertex recorded its id and the later DeleteVertex consumed it
        // (LinkBench-style: deletes prefer own inserts)
        assert!(added.is_empty());
        assert_eq!(next_new, 1001);
    }
}

//! Graph Neural Network workload: graph convolution forward pass
//! (Listing 2; Fig. 6c/6d).
//!
//! The paper trains a graph convolution model through GDI: feature vectors
//! are vertex properties; each layer aggregates neighbor features
//! (summation), applies an MLP (a dense `k×k` transform) and a
//! non-linearity, and writes the new features back with
//! `GDI_UpdatePropertyOfVertex` — a collective transaction per layer. The
//! feature dimension `k` is the scaling knob of Fig. 6c/6d
//! (`k ∈ {4, 16, 64, 256, 500}`).

use rustc_hash::FxHashMap;

use gda::{DPtr, GdaRank};
use gdi::{AccessMode, Datatype, EntityType, Multiplicity, PTypeId, PropertyValue, SizeType};
use graphgen::kronecker::hash3;

use crate::analytics::{route, CsrView};

/// GNN configuration.
#[derive(Debug, Clone, Copy)]
pub struct GnnConfig {
    /// Number of graph-convolution layers.
    pub layers: usize,
    /// Feature dimension `k`.
    pub k: usize,
    /// Seed for weights and feature initialization.
    pub seed: u64,
}

/// Collective: register the feature-vector property type (`Double`, fixed
/// size `k`) and return its handle on every rank.
pub fn install_feature_ptype(eng: &GdaRank, k: usize) -> PTypeId {
    if eng.rank() == 0 {
        eng.create_ptype(
            "feature_vec",
            Datatype::Double,
            EntityType::Vertex,
            Multiplicity::Single,
            SizeType::Fixed,
            k,
        )
        .expect("feature ptype");
    }
    eng.ctx().barrier();
    eng.refresh_meta();
    eng.meta().ptype_from_name("feature_vec").unwrap()
}

/// Deterministic initial feature of a vertex.
fn init_feature(seed: u64, app: u64, k: usize) -> Vec<f64> {
    (0..k)
        .map(|j| {
            let h = hash3(seed, app, 0xFEA7 + j as u64);
            (h % 2048) as f64 / 2048.0 - 0.5
        })
        .collect()
}

/// Deterministic MLP weight `W[i][j] ∈ [-0.5, 0.5] / sqrt(k)`.
fn weight(seed: u64, layer: usize, i: usize, j: usize, k: usize) -> f64 {
    let h = hash3(seed ^ 0x3141, (layer * 1_000_003 + i) as u64, j as u64);
    ((h % 4096) as f64 / 4096.0 - 0.5) / (k as f64).sqrt()
}

/// Collective: initialize every local vertex's feature property
/// (collective write transaction).
pub fn init_features(eng: &GdaRank, view: &CsrView, ptype: PTypeId, cfg: &GnnConfig) {
    let tx = eng.begin_collective(AccessMode::ReadWrite);
    for (i, &vid) in view.vids.iter().enumerate() {
        let f = init_feature(cfg.seed, view.apps[i], cfg.k);
        tx.update_property(vid, ptype, &PropertyValue::F64Vec(f))
            .expect("feature init");
    }
    tx.commit().expect("feature init commit");
}

/// One graph-convolution layer (Listing 2's loop body): aggregate incoming
/// neighbor features, transform, write back. Returns the Frobenius norm of
/// the new local feature matrix (a cheap training-progress proxy).
pub fn conv_layer(
    eng: &GdaRank,
    view: &CsrView,
    ptype: PTypeId,
    cfg: &GnnConfig,
    layer: usize,
) -> f64 {
    let ctx = eng.ctx();
    let nranks = ctx.nranks();

    // read current features + push to out-neighborhood owners
    let tx = eng.begin_collective(AccessMode::ReadOnly);
    let mut feats: Vec<Vec<f64>> = Vec::with_capacity(view.len());
    for &vid in &view.vids {
        let f = match tx.property(vid, ptype).expect("feature read") {
            Some(PropertyValue::F64Vec(v)) => v,
            Some(PropertyValue::F64(x)) => vec![x],
            _ => vec![0.0; cfg.k],
        };
        feats.push(f);
    }
    tx.commit().expect("feature fetch commit");

    let msgs = (0..view.len()).flat_map(|i| {
        let f = feats[i].clone();
        view.out(i).iter().map(move |&t| (t, f.clone()))
    });
    let rows = route(nranks, msgs);
    let recv = ctx.alltoallv(rows);

    // aggregate (sum) per local vertex, seeded with the vertex's own
    // feature (self-loop in the convolution)
    let mut agg: FxHashMap<u64, Vec<f64>> = FxHashMap::default();
    for (raw, f) in recv.into_iter().flatten() {
        let e = agg.entry(raw).or_insert_with(|| vec![0.0; cfg.k]);
        for (a, x) in e.iter_mut().zip(f.iter()) {
            *a += x;
        }
    }
    ctx.charge_cpu((view.len() * cfg.k * cfg.k) as u64 + 1);

    // transform + non-linearity + write-back
    let tx = eng.begin_collective(AccessMode::ReadWrite);
    let mut norm = 0.0f64;
    for (i, &vid) in view.vids.iter().enumerate() {
        let mut h = feats[i].clone();
        if let Some(a) = agg.get(&DPtr::from_raw(vid.raw()).raw()) {
            for (x, y) in h.iter_mut().zip(a.iter()) {
                *x += y;
            }
        }
        // MLP: out = tanh(W · h)
        let mut out = vec![0.0f64; cfg.k];
        for (r, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (c, x) in h.iter().enumerate() {
                acc += weight(cfg.seed, layer, r, c, cfg.k) * x;
            }
            *o = acc.tanh();
            norm += *o * *o;
        }
        tx.update_property(vid, ptype, &PropertyValue::F64Vec(out))
            .expect("feature update");
    }
    tx.commit().expect("feature update commit");
    ctx.allreduce_sum_f64(norm).sqrt()
}

/// Full forward pass: `cfg.layers` convolution layers (the Fig. 6c/6d
/// workload). Returns the per-layer global feature norms.
pub fn train_forward(eng: &GdaRank, view: &CsrView, ptype: PTypeId, cfg: &GnnConfig) -> Vec<f64> {
    (0..cfg.layers)
        .map(|l| conv_layer(eng, view, ptype, cfg, l))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytics::build_view;
    use gda::GdaDb;
    use graphgen::{load_into, sized_config, GraphSpec, LpgConfig};
    use rma::CostModel;

    fn run_gnn(nranks: usize, cfg_gnn: GnnConfig) -> Vec<f64> {
        let spec = GraphSpec {
            scale: 5,
            edge_factor: 4,
            seed: 5,
            lpg: LpgConfig::bare(),
        };
        let mut cfg = sized_config(&spec, nranks);
        // feature vectors need extra block capacity
        cfg.blocks_per_rank *= 4;
        let (db, fabric) = GdaDb::with_fabric("gnn", cfg, nranks, CostModel::default());
        let norms = fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            load_into(&eng, &spec);
            let apps = spec.vertices_for_rank(ctx.rank(), ctx.nranks());
            let view = build_view(&eng, &apps);
            let pt = install_feature_ptype(&eng, cfg_gnn.k);
            init_features(&eng, &view, pt, &cfg_gnn);
            train_forward(&eng, &view, pt, &cfg_gnn)
        });
        norms[0].clone()
    }

    #[test]
    fn forward_pass_is_deterministic_and_rank_independent() {
        let cfg = GnnConfig {
            layers: 2,
            k: 4,
            seed: 77,
        };
        let a = run_gnn(1, cfg);
        let b = run_gnn(3, cfg);
        assert_eq!(a.len(), 2);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(
                (x - y).abs() < 1e-9,
                "result depends on rank count: {x} vs {y}"
            );
        }
        assert!(a.iter().all(|n| n.is_finite() && *n > 0.0));
    }

    #[test]
    fn feature_dimension_respected() {
        let cfg = GnnConfig {
            layers: 1,
            k: 7,
            seed: 1,
        };
        let f = init_feature(cfg.seed, 42, cfg.k);
        assert_eq!(f.len(), 7);
        assert!(f.iter().all(|x| (-0.5..=0.5).contains(x)));
        // weights are bounded
        let w = weight(1, 0, 3, 4, 7);
        assert!(w.abs() <= 0.5);
    }
}

//! A second business-intelligence workload: group-by aggregation with a
//! global top-k (the other canonical LDBC BI query shape besides the
//! filter-expand-count of [`crate::bi2`]).
//!
//! *"Which labels are carried by the most vertices, and what is the
//! average P0 value per label?"* — every rank aggregates its local index
//! partition inside a collective read transaction, partial aggregates are
//! merged with one `allgatherv`, and all ranks deterministically select
//! the top-k. This is the "fetch large parts of a graph and use data
//! summarization and aggregation" class of §2.

use rustc_hash::FxHashMap;

use gda::GdaRank;
use gdi::{AccessMode, LabelId, PropertyValue};
use graphgen::{GraphSpec, LpgMeta};

/// Aggregate of one label group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelGroup {
    pub label: LabelId,
    pub count: u64,
    /// Mean of property P0 over group members that carry it.
    pub mean_p0: f64,
}

/// Collective: group vertices by label, aggregate counts and P0 means,
/// return the global top-k groups by count (ties towards the smaller
/// label id). Identical on every rank.
pub fn top_labels(eng: &GdaRank, meta: &LpgMeta, k: usize) -> Vec<LabelGroup> {
    let ctx = eng.ctx();
    let index = meta.all_index.expect("generated database has __all index");
    let p0 = meta.ptypes.first().copied();

    // local aggregation inside a collective read transaction
    let tx = eng.begin_collective(AccessMode::ReadOnly);
    let mut acc: FxHashMap<u32, (u64, f64, u64)> = FxHashMap::default(); // label -> (count, sum, n_with_p0)
    for posting in eng.local_index_vertices(index) {
        let labels = tx.labels(posting.vertex).unwrap();
        let p0_val = p0
            .and_then(|pt| tx.property(posting.vertex, pt).unwrap())
            .and_then(|v| match v {
                PropertyValue::U64(x) => Some(x as f64),
                other => other.as_f64(),
            });
        for l in labels {
            let e = acc.entry(l.0).or_insert((0, 0.0, 0));
            e.0 += 1;
            if let Some(x) = p0_val {
                e.1 += x;
                e.2 += 1;
            }
        }
    }
    tx.commit().expect("collective read commit");

    // global merge: one allgatherv of the partial aggregates
    let mine: Vec<(u32, u64, f64, u64)> =
        acc.into_iter().map(|(l, (c, s, n))| (l, c, s, n)).collect();
    let all = ctx.allgatherv(mine);
    let mut merged: FxHashMap<u32, (u64, f64, u64)> = FxHashMap::default();
    for (l, c, s, n) in all.into_iter().flatten() {
        let e = merged.entry(l).or_insert((0, 0.0, 0));
        e.0 += c;
        e.1 += s;
        e.2 += n;
    }
    ctx.charge_cpu(merged.len() as u64 + 1);

    let mut groups: Vec<LabelGroup> = merged
        .into_iter()
        .map(|(l, (c, s, n))| LabelGroup {
            label: LabelId(l),
            count: c,
            mean_p0: if n == 0 { 0.0 } else { s / n as f64 },
        })
        .collect();
    groups.sort_by(|a, b| b.count.cmp(&a.count).then(a.label.cmp(&b.label)));
    groups.truncate(k);
    groups
}

/// Sequential reference evaluation directly on the generator functions.
pub fn top_labels_reference(spec: &GraphSpec, meta: &LpgMeta, k: usize) -> Vec<LabelGroup> {
    let mut acc: FxHashMap<u32, (u64, f64, u64)> = FxHashMap::default();
    for app in 0..spec.n_vertices() {
        let props = spec.lpg.vertex_props(spec.seed, app);
        let p0_val = props.iter().find(|(i, _)| *i == 0).map(|(_, v)| *v as f64);
        for idx in spec.lpg.vertex_label_indices(spec.seed, app) {
            let l = meta.label(idx);
            let e = acc.entry(l.0).or_insert((0, 0.0, 0));
            e.0 += 1;
            if let Some(x) = p0_val {
                e.1 += x;
                e.2 += 1;
            }
        }
    }
    let mut groups: Vec<LabelGroup> = acc
        .into_iter()
        .map(|(l, (c, s, n))| LabelGroup {
            label: LabelId(l),
            count: c,
            mean_p0: if n == 0 { 0.0 } else { s / n as f64 },
        })
        .collect();
    groups.sort_by(|a, b| b.count.cmp(&a.count).then(a.label.cmp(&b.label)));
    groups.truncate(k);
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use gda::GdaDb;
    use graphgen::{load_into, sized_config, LpgConfig};
    use rma::CostModel;

    #[test]
    fn top_labels_matches_reference() {
        let spec = GraphSpec {
            scale: 7,
            edge_factor: 4,
            seed: 55,
            lpg: LpgConfig {
                num_labels: 6,
                labels_per_vertex: 2,
                ..Default::default()
            },
        };
        let nranks = 3;
        let cfg = sized_config(&spec, nranks);
        let (db, fabric) = GdaDb::with_fabric("olsp", cfg, nranks, CostModel::default());
        let got = fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            let (meta, _) = load_into(&eng, &spec);
            let groups = top_labels(&eng, &meta, 3);
            (groups, meta)
        });
        let (groups0, meta) = &got[0];
        // identical on all ranks
        for (g, _) in &got {
            assert_eq!(g, groups0);
        }
        let want = top_labels_reference(&spec, meta, 3);
        assert_eq!(groups0.len(), want.len());
        for (a, b) in groups0.iter().zip(want.iter()) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.count, b.count);
            let scale = b.mean_p0.abs().max(1.0);
            assert!((a.mean_p0 - b.mean_p0).abs() < 1e-9 * scale);
        }
        // sorted by count descending
        assert!(groups0.windows(2).all(|w| w[0].count >= w[1].count));
    }

    #[test]
    fn k_truncation() {
        let spec = GraphSpec {
            scale: 5,
            edge_factor: 2,
            seed: 9,
            lpg: LpgConfig::default(),
        };
        let cfg = sized_config(&spec, 1);
        let (db, fabric) = GdaDb::with_fabric("olsp2", cfg, 1, CostModel::zero());
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            let (meta, _) = load_into(&eng, &spec);
            assert_eq!(top_labels(&eng, &meta, 1).len(), 1);
            assert!(top_labels(&eng, &meta, 100).len() <= spec.lpg.num_labels);
        });
    }
}

//! Unique, self-cleaning scratch directories for the crash/restart
//! scenarios — one shared guard instead of a hand-rolled temp-dir
//! discipline per test/bench (the hand-rolled variants skipped cleanup
//! on panic, accumulating persistence directories in the system tmp).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique temp-directory path removed on drop — including on panic,
/// so failed runs leave nothing behind.
///
/// The directory itself is not created here: the persistence layer
/// creates it on demand. Any stale leftover of the same name (from a
/// killed process of the same pid, unlikely but possible) is removed
/// up front.
pub struct ScratchDir(PathBuf);

impl ScratchDir {
    /// A fresh path under the system temp dir, unique per process and
    /// call, tagged for identification in `ls /tmp`.
    pub fn new(tag: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "gdi-scratch-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

//! Lookup-locality axis for the OLTP benches: vertex-id samplers.
//!
//! The Table-3 drivers pick target vertices uniformly, which is the
//! worst case for any translation cache. Real interactive graph traffic
//! is heavily skewed (LinkBench measures a Zipf-like access pattern on
//! the Facebook social graph), so the locality sweep samples vertex ids
//! either **uniformly** or from a **Zipf** distribution with tunable
//! exponent. Zipf ranks are scattered over the id space with a bijective
//! multiplicative map so the hot set spreads across all owner ranks
//! instead of clustering on low ids.

use rand::rngs::SmallRng;
use rand::Rng;

/// Scatter multiplier: prime and far larger than any bench vertex count,
/// so `r -> (r * SCATTER) % n` is a bijection on `0..n` for every
/// `n < SCATTER`.
const SCATTER: u64 = 1_000_000_007;

/// How a driver picks target vertex ids in `0..n`.
#[derive(Debug, Clone)]
pub enum VertexSampler {
    /// Every vertex equally likely (the Table-3 default).
    Uniform { n: u64 },
    /// Zipf-distributed ranks (rank 1 hottest) with precomputed CDF.
    Zipf { n: u64, cdf: Vec<f64> },
}

impl VertexSampler {
    pub fn uniform(n: u64) -> Self {
        assert!(n > 0);
        VertexSampler::Uniform { n }
    }

    /// Zipf over `n` vertices with exponent `s` (`s ≈ 1` is the classic
    /// web/social skew; larger `s` is hotter).
    pub fn zipf(n: u64, s: f64) -> Self {
        assert!(n > 0 && n < SCATTER, "Zipf sampler sized for bench graphs");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(s);
            cdf.push(acc);
        }
        VertexSampler::Zipf { n, cdf }
    }

    /// Number of vertices sampled over.
    pub fn n(&self) -> u64 {
        match self {
            VertexSampler::Uniform { n } | VertexSampler::Zipf { n, .. } => *n,
        }
    }

    /// Short label for bench tables.
    pub fn label(&self) -> &'static str {
        match self {
            VertexSampler::Uniform { .. } => "uniform",
            VertexSampler::Zipf { .. } => "zipf",
        }
    }

    /// Draw one vertex id in `0..n`.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        match self {
            VertexSampler::Uniform { n } => rng.gen_range(0..*n),
            VertexSampler::Zipf { n, cdf } => {
                let total = *cdf.last().expect("non-empty CDF");
                let x = rng.gen::<f64>() * total;
                let rank = cdf.partition_point(|&c| c < x) as u64;
                (rank.min(n - 1) * SCATTER) % n
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rustc_hash::FxHashMap;

    fn histogram(s: &VertexSampler, draws: usize) -> FxHashMap<u64, u64> {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut h = FxHashMap::default();
        for _ in 0..draws {
            let v = s.sample(&mut rng);
            assert!(v < s.n());
            *h.entry(v).or_insert(0) += 1;
        }
        h
    }

    #[test]
    fn uniform_covers_the_space_evenly() {
        let s = VertexSampler::uniform(64);
        let h = histogram(&s, 64_000);
        assert!(h.len() >= 60, "only {} distinct ids drawn", h.len());
        let max = *h.values().max().unwrap();
        assert!(max < 3_000, "uniform sampler too skewed: {max}");
    }

    #[test]
    fn zipf_is_heavily_skewed() {
        let s = VertexSampler::zipf(1024, 1.0);
        let h = histogram(&s, 50_000);
        let mut counts: Vec<u64> = h.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u64 = counts.iter().take(10).sum();
        // with s=1.0 over 1024 ids, the 10 hottest ids carry ~39% of mass
        assert!(
            top10 as f64 > 0.3 * 50_000.0,
            "Zipf top-10 mass too small: {top10}"
        );
    }

    #[test]
    fn zipf_hot_set_spreads_over_ranks() {
        // the scatter map must not leave the hot ids adjacent (which
        // would pin them all to a couple of owner ranks)
        let s = VertexSampler::zipf(1000, 1.2);
        let h = histogram(&s, 20_000);
        let mut hot: Vec<(u64, u64)> = h.into_iter().collect();
        hot.sort_unstable_by_key(|e| std::cmp::Reverse(e.1));
        let owners: std::collections::HashSet<u64> =
            hot.iter().take(8).map(|(v, _)| v % 4).collect();
        assert!(owners.len() >= 3, "hot set clustered: {owners:?}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let s = VertexSampler::zipf(256, 0.9);
        let mut a = SmallRng::seed_from_u64(3);
        let mut b = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}

//! LDBC-style declarative query suite over the generated LPG graph.
//!
//! Five query shapes exercising every access path the `query` planner
//! can choose (Listing 3 generalized from one hand-compiled function to
//! data):
//!
//! | name                 | shape                                   | expected driving path |
//! |----------------------|-----------------------------------------|-----------------------|
//! | `hop-filter-count`   | 1-hop filter + count (the BI2 shape)    | indexed label scan    |
//! | `two-hop`            | 2-hop expansion, filtered far end       | full-partition sweep  |
//! | `point-neighborhood` | `id(p) = x` + 1-hop collect             | DHT point lookup      |
//! | `indexed-sum`        | indexed aggregate, no expansion         | indexed label scan    |
//! | `triangle`           | label-filtered 3-hop cycle close        | indexed label scan    |
//!
//! [`reference_eval`] interprets any supported [`Query`] directly on the
//! deterministic generator functions — the sequential oracle every
//! distributed execution (planner-picked or forced-path) is checked
//! against. Comparisons mirror the engine's total order
//! ([`PropertyValue::cmp_total`]), so the oracle and the executor agree
//! bit-for-bit.

use gdi::{CmpOp, EdgeOrientation, LabelId, PTypeId, PropertyValue};
use graphgen::load::{edge_spec, vertex_spec};
use graphgen::{install_metadata, GraphSpec, LpgMeta};
use query::{AggTarget, NodePattern, Query, QueryBuilder, QueryValue};
use rustc_hash::FxHashSet;

use gda::{EdgeSpec, GdaRank, IndexId, VertexSpec};

/// Thresholds and the lookup id shared by the suite (generator space).
#[derive(Debug, Clone, Copy)]
pub struct SuiteParams {
    /// Root-side property threshold (`> t1`).
    pub t1: u64,
    /// Target-side property threshold (`> t2`).
    pub t2: u64,
    /// Application id probed by `point-neighborhood`.
    pub point_id: u64,
}

impl Default for SuiteParams {
    fn default() -> Self {
        Self {
            t1: u64::MAX / 8,
            t2: u64::MAX / 8,
            point_id: 1,
        }
    }
}

/// Collective: install metadata, create one explicit index **per
/// generated label** (`lab0..`) *before* ingestion (postings are only
/// maintained from creation time onward), then bulk-load the graph.
/// Returns the metadata handles and the per-label index ids, in label
/// order.
pub fn load_with_label_indexes(eng: &GdaRank, spec: &GraphSpec) -> (LpgMeta, Vec<IndexId>) {
    let meta = install_metadata(eng, &spec.lpg);
    if eng.rank() == 0 {
        for (i, l) in meta.labels.iter().enumerate() {
            eng.create_index(&format!("lab{i}"), vec![*l], Vec::new())
                .expect("fresh database");
        }
    }
    eng.ctx().barrier();
    let mut label_ix: Vec<(usize, IndexId)> = eng
        .all_indexes()
        .into_iter()
        .filter_map(|d| {
            d.name
                .strip_prefix("lab")
                .and_then(|s| s.parse::<usize>().ok())
                .map(|i| (i, d.id))
        })
        .collect();
    label_ix.sort_unstable();
    let vertices: Vec<VertexSpec> = spec
        .vertices_for_rank(eng.rank(), eng.nranks())
        .into_iter()
        .map(|app| vertex_spec(spec, &meta, app))
        .collect();
    let edges: Vec<EdgeSpec> = spec
        .edges_for_rank(eng.rank(), eng.nranks())
        .into_iter()
        .map(|(u, v)| edge_spec(spec, &meta, u, v))
        .collect();
    eng.bulk_load(vertices, edges).expect("bulk load");
    (meta, label_ix.into_iter().map(|(_, id)| id).collect())
}

/// The five-query suite (named, in stable order). Requires the
/// generator configuration to provide ≥3 labels and ≥3 property types
/// (the bench harnesses' `rich_lpg` shape).
pub fn suite(meta: &LpgMeta, p: &SuiteParams) -> Vec<(&'static str, Query)> {
    assert!(
        meta.labels.len() >= 3 && meta.ptypes.len() >= 3,
        "the query suite needs >=3 labels and >=3 ptypes"
    );
    let (l0, l1, l2) = (meta.label(0), meta.label(1), meta.label(2));
    let (p0, p1, p2) = (meta.ptype(0), meta.ptype(1), meta.ptype(2));
    vec![
        (
            "hop-filter-count",
            QueryBuilder::node("p")
                .label(l0)
                .prop_gt(p0, p.t1)
                .expand_out(Some(l1))
                .to("c")
                .label(l2)
                .prop_gt(p1, p.t2)
                .count(AggTarget::Root),
        ),
        (
            "two-hop",
            QueryBuilder::node("a")
                .prop_gt(p0, p.t1)
                .expand_out(None)
                .to("b")
                .expand_out(None)
                .to("c")
                .prop_gt(p1, p.t2)
                .count(AggTarget::Last),
        ),
        (
            "point-neighborhood",
            QueryBuilder::node("p")
                .with_app_id(gdi::AppVertexId(p.point_id))
                .expand_any(None)
                .to("n")
                .collect_ids(AggTarget::Last),
        ),
        (
            "indexed-sum",
            QueryBuilder::node("v")
                .label(l1)
                .prop_gt(p1, p.t1)
                .sum(AggTarget::Root, p2),
        ),
        (
            "triangle",
            QueryBuilder::node("a")
                .label(l0)
                .expand_out(Some(l1))
                .to("b")
                .expand_out(None)
                .to("c")
                .expand_out(Some(l1))
                .close_cycle()
                .count(AggTarget::Root),
        ),
    ]
}

/// The suite in Cypher-ish text form (parser round-trip fodder for
/// docs/tests; uses the generator's `L<i>`/`P<i>` metadata names).
pub fn suite_text(p: &SuiteParams) -> Vec<(&'static str, String)> {
    vec![
        (
            "hop-filter-count",
            format!(
                "MATCH (p:L0)-[:L1]->(c:L2) WHERE p.P0 > {} AND c.P1 > {} \
                 RETURN count(DISTINCT p)",
                p.t1, p.t2
            ),
        ),
        (
            "two-hop",
            format!(
                "MATCH (a)-[]->(b)-[]->(c) WHERE a.P0 > {} AND c.P1 > {} RETURN count(c)",
                p.t1, p.t2
            ),
        ),
        (
            "point-neighborhood",
            format!(
                "MATCH (p)-[]-(n) WHERE id(p) = {} RETURN collect(n)",
                p.point_id
            ),
        ),
        (
            "indexed-sum",
            format!("MATCH (v:L1) WHERE v.P1 > {} RETURN sum(v.P2)", p.t1),
        ),
        (
            "triangle",
            "MATCH (a:L0)-[:L1]->(b)-[]->(c)-[:L1]->(a) RETURN count(a)".to_string(),
        ),
    ]
}

/// Sequential oracle: interpret `q` directly on the generator functions
/// (no database). Semantics mirror the distributed executor exactly —
/// distinct-target aggregation, wrapping sums, engine total order for
/// property comparisons.
pub fn reference_eval(spec: &GraphSpec, meta: &LpgMeta, q: &Query) -> QueryValue {
    let n = spec.n_vertices();
    let lidx = |l: LabelId| meta.labels.iter().position(|x| *x == l);
    let pidx = |p: PTypeId| meta.ptypes.iter().position(|x| *x == p);
    let prop_val = |v: u64, p: PTypeId| -> Option<u64> {
        pidx(p).and_then(|i| {
            spec.lpg
                .vertex_props(spec.seed, v)
                .into_iter()
                .find(|(j, _)| *j == i)
                .map(|(_, val)| val)
        })
    };
    let cmp_ok =
        |val: u64, op: CmpOp, rhs: &PropertyValue| op.eval(PropertyValue::U64(val).cmp_total(rhs));
    let node_ok = |v: u64, pat: &NodePattern| -> bool {
        let ls = spec.lpg.vertex_label_indices(spec.seed, v);
        pat.labels
            .iter()
            .all(|l| lidx(*l).map(|i| ls.contains(&i)).unwrap_or(false))
            && pat.props.iter().all(|f| {
                prop_val(v, f.ptype)
                    .map(|x| cmp_ok(x, f.op, &f.value))
                    .unwrap_or(false)
            })
            && pat.app_id.map(|a| a.0 == v).unwrap_or(true)
    };

    // adjacency in generator space, with edge-label indices
    let mut out: Vec<Vec<(u64, Option<usize>)>> = vec![Vec::new(); n as usize];
    let mut inn: Vec<Vec<(u64, Option<usize>)>> = vec![Vec::new(); n as usize];
    for (u, v) in spec.edges_for_rank(0, 1) {
        let l = spec.lpg.edge_label_index(spec.seed, u, v);
        out[u as usize].push((v, l));
        inn[v as usize].push((u, l));
    }
    let edge_ok = |l: Option<usize>, want: Option<LabelId>| match want {
        None => true,
        Some(w) => lidx(w).is_some() && l == lidx(w),
    };

    let mut bind: FxHashSet<(u64, u64)> = (0..n)
        .filter(|&v| node_ok(v, &q.root))
        .map(|v| (v, v))
        .collect();
    for e in &q.expands {
        let mut next = FxHashSet::default();
        for &(root, cur) in &bind {
            let nbrs: Vec<(u64, Option<usize>)> = match e.orient {
                EdgeOrientation::Outgoing => out[cur as usize].clone(),
                EdgeOrientation::Incoming => inn[cur as usize].clone(),
                EdgeOrientation::Any => {
                    let mut both = out[cur as usize].clone();
                    both.extend_from_slice(&inn[cur as usize]);
                    both
                }
                // the generator emits directed edges only
                EdgeOrientation::Undirected => Vec::new(),
            };
            for (w, l) in nbrs {
                if !edge_ok(l, e.edge_label) {
                    continue;
                }
                if e.close_to_root {
                    if w == root {
                        next.insert((root, cur));
                    }
                } else if node_ok(w, &e.target) {
                    next.insert((root, w));
                }
            }
        }
        bind = next;
    }

    let targets: FxHashSet<u64> = bind
        .iter()
        .map(|&(r, c)| match q.returns.target {
            AggTarget::Root => r,
            AggTarget::Last => c,
        })
        .collect();
    match &q.returns.agg {
        query::Aggregate::Count => QueryValue::Count(targets.len() as u64),
        query::Aggregate::Sum(pt) => QueryValue::Sum(
            targets
                .iter()
                .filter_map(|&v| prop_val(v, *pt))
                .fold(0u64, |a, b| a.wrapping_add(b)),
        ),
        query::Aggregate::CollectIds => {
            let mut ids: Vec<u64> = targets.into_iter().collect();
            ids.sort_unstable();
            QueryValue::Ids(ids)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gda::GdaDb;
    use graphgen::sized_config;
    use query::{executor, planner};
    use rma::CostModel;

    fn rich_spec(scale: u32, seed: u64) -> GraphSpec {
        GraphSpec {
            scale,
            edge_factor: 8,
            seed,
            lpg: graphgen::LpgConfig {
                num_labels: 4,
                num_ptypes: 4,
                labels_per_vertex: 2,
                props_per_vertex: 3,
                edge_label_fraction: 1.0,
                ..Default::default()
            },
        }
    }

    /// Every suite query, planner-picked, matches the sequential oracle
    /// on every rank.
    #[test]
    fn suite_matches_reference() {
        let spec = rich_spec(7, 11);
        let params = SuiteParams::default();
        let nranks = 4;
        let cfg = sized_config(&spec, nranks);
        let (db, fabric) = GdaDb::with_fabric("qsuite", cfg, nranks, CostModel::default());
        let metas = fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            let (meta, ixs) = load_with_label_indexes(&eng, &spec);
            assert_eq!(ixs.len(), spec.lpg.num_labels);
            let mut got = Vec::new();
            for (name, q) in suite(&meta, &params) {
                let (_plan, out) = executor::run(&eng, &q);
                got.push((name, q, out.value));
            }
            (meta, got)
        });
        let (meta, got) = &metas[0];
        for (name, q, value) in got {
            let want = reference_eval(&spec, meta, q);
            assert_eq!(value, &want, "query {name} diverged from the oracle");
        }
        // all ranks agree
        for m in &metas[1..] {
            for ((n0, _, v0), (n1, _, v1)) in got.iter().zip(&m.1) {
                assert_eq!(n0, n1);
                assert_eq!(v0, v1, "ranks disagree on {n0}");
            }
        }
    }

    /// The textual forms parse to exactly the builder-built queries.
    #[test]
    fn suite_text_parses_to_suite() {
        let spec = rich_spec(6, 3);
        let params = SuiteParams::default();
        let cfg = sized_config(&spec, 2);
        let (db, fabric) = GdaDb::with_fabric("qtext", cfg, 2, CostModel::zero());
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            let (meta, _) = load_with_label_indexes(&eng, &spec);
            let built = suite(&meta, &params);
            let texts = suite_text(&params);
            let snap = eng.meta().clone();
            for ((name, q), (tname, text)) in built.iter().zip(&texts) {
                assert_eq!(name, tname);
                let mut parsed = query::parse(text, &snap).unwrap_or_else(|e| {
                    panic!("{name}: {e}");
                });
                // a closing expand's target node is never consulted; the
                // builder auto-names it while the parser leaves it blank
                let mut q = q.clone();
                for e in parsed.expands.iter_mut().chain(q.expands.iter_mut()) {
                    if e.close_to_root {
                        e.target.var.clear();
                    }
                }
                assert_eq!(parsed, q, "{name}: text and builder forms differ");
            }
        });
    }

    /// The planner spreads the suite across all three driving paths.
    #[test]
    fn planner_diversifies_access_paths() {
        // large enough that a point lookup beats scanning the `__all`
        // index — at tiny scales the planner (correctly) prefers the scan
        let spec = rich_spec(10, 5);
        let params = SuiteParams::default();
        let nranks = 4;
        let cfg = sized_config(&spec, nranks);
        let (db, fabric) = GdaDb::with_fabric("qdiv", cfg, nranks, CostModel::default());
        let picks = fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            let (meta, _) = load_with_label_indexes(&eng, &spec);
            // warm the view so csr staging is costed as cached
            let _ = eng.olap_view();
            let cat = planner::Catalog::gather(&eng);
            suite(&meta, &params)
                .into_iter()
                .map(|(name, q)| (name, planner::plan(&cat, &q).choice))
                .collect::<Vec<_>>()
        });
        let picks = &picks[0];
        let kinds: FxHashSet<&'static str> = picks
            .iter()
            .map(|(_, c)| match c.access {
                query::AccessPath::PointLookup => "point",
                query::AccessPath::IndexScan(_) => "index",
                query::AccessPath::Sweep => "sweep",
            })
            .collect();
        assert!(
            kinds.contains("point") && kinds.contains("index"),
            "expected path diversity, got {picks:?}"
        );
    }
}

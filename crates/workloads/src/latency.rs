//! Log-bucketed latency histograms (the data behind Fig. 5).
//!
//! The paper plots per-operation latency histograms with microsecond
//! resolution for GDA/JanusGraph and millisecond resolution for Neo4j. We
//! use logarithmic buckets (factor 2) from 64 ns to ~4 s, which covers
//! both regimes, plus exact mean/percentile extraction.

/// A histogram with power-of-two bucket edges.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// `buckets[i]` counts samples in `[min_ns · 2^i, min_ns · 2^(i+1))`.
    buckets: Vec<u64>,
    min_ns: f64,
    count: u64,
    sum_ns: f64,
    max_ns: f64,
}

const NUM_BUCKETS: usize = 26; // 64ns .. ~4.3s

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self {
            buckets: vec![0; NUM_BUCKETS],
            min_ns: 64.0,
            count: 0,
            sum_ns: 0.0,
            max_ns: 0.0,
        }
    }

    /// Record one sample (nanoseconds).
    pub fn add(&mut self, ns: f64) {
        let idx = if ns <= self.min_ns {
            0
        } else {
            ((ns / self.min_ns).log2() as usize).min(NUM_BUCKETS - 1)
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns += ns;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns / self.count as f64
        }
    }

    /// Maximum recorded sample.
    pub fn max_ns(&self) -> f64 {
        self.max_ns
    }

    /// Approximate percentile (bucket upper edge), `p ∈ (0, 100]`.
    pub fn percentile_ns(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.min_ns * 2f64.powi(i as i32 + 1);
            }
        }
        self.min_ns * 2f64.powi(NUM_BUCKETS as i32)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// `(bucket lower edge in ns, count)` pairs for plotting; empty
    /// buckets are skipped.
    pub fn series(&self) -> Vec<(f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (self.min_ns * 2f64.powi(i as i32), c))
            .collect()
    }

    /// Raw bucket counts (fixed length), for serialization across ranks.
    pub fn raw(&self) -> (&[u64], u64, f64, f64) {
        (&self.buckets, self.count, self.sum_ns, self.max_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_means() {
        let mut h = Histogram::new();
        h.add(1_000.0);
        h.add(3_000.0);
        assert_eq!(h.count(), 2);
        assert!((h.mean_ns() - 2_000.0).abs() < 1e-9);
        assert_eq!(h.max_ns(), 3_000.0);
    }

    #[test]
    fn percentiles_monotone() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.add(i as f64 * 1_000.0); // 1µs .. 1ms
        }
        let p50 = h.percentile_ns(50.0);
        let p95 = h.percentile_ns(95.0);
        let p99 = h.percentile_ns(99.0);
        assert!(p50 <= p95 && p95 <= p99);
        assert!((250_000.0..=1_200_000.0).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn tiny_and_huge_samples_clamp() {
        let mut h = Histogram::new();
        h.add(0.5);
        h.add(1e12); // beyond the last bucket
        assert_eq!(h.count(), 2);
        let s = h.series();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].0, 64.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.add(500.0);
        b.add(5_000.0);
        b.add(50_000.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_ns(), 50_000.0);
        assert_eq!(a.series().iter().map(|(_, c)| c).sum::<u64>(), 3);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.percentile_ns(99.0), 0.0);
        assert!(h.series().is_empty());
    }
}

//! Bounded MPSC request queues: many client sessions push, one serving
//! rank drains. The bound is the admission-control surface — a full queue
//! either blocks the submitter (backpressure) or rejects the request,
//! depending on the server's [`crate::AdmissionPolicy`].

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A blocking bounded MPSC queue (Mutex + two Condvars).
pub(crate) struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

/// Why a push did not take effect.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum PushError<T> {
    /// Queue at capacity (admission control: retry or shed).
    Full(T),
    /// Queue closed by shutdown: the request was not accepted.
    Closed(T),
}

impl<T> BoundedQueue<T> {
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "queue capacity must be positive");
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(cap.min(1024)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        }
    }

    /// Non-blocking push; fails when full or closed.
    pub fn try_push(&self, t: T) -> Result<(), PushError<T>> {
        let mut g = self.inner.lock();
        if g.closed {
            return Err(PushError::Closed(t));
        }
        if g.items.len() >= self.cap {
            return Err(PushError::Full(t));
        }
        g.items.push_back(t);
        drop(g);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking push: waits while the queue is full (backpressure). Fails
    /// only if the queue closes while waiting.
    pub fn push_wait(&self, t: T) -> Result<(), PushError<T>> {
        let mut g = self.inner.lock();
        loop {
            if g.closed {
                return Err(PushError::Closed(t));
            }
            if g.items.len() < self.cap {
                g.items.push_back(t);
                drop(g);
                self.not_empty.notify_one();
                return Ok(());
            }
            self.not_full.wait(&mut g);
        }
    }

    /// Dequeue up to `max` items, waiting up to `timeout` for the first
    /// one. Returns the drained batch and whether the queue is closed
    /// (a closed queue is still drained until empty).
    pub fn drain_wait(&self, max: usize, timeout: Duration) -> (Vec<T>, bool) {
        let deadline = Instant::now() + timeout;
        let mut g = self.inner.lock();
        // wait on the *remaining* deadline until items arrive, the queue
        // closes, or the timeout truly elapses — a spurious condvar
        // wakeup must not surface as an early empty batch
        while g.items.is_empty() && !g.closed {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            self.not_empty.wait_for(&mut g, deadline - now);
        }
        let n = g.items.len().min(max);
        let batch: Vec<T> = g.items.drain(..n).collect();
        let closed = g.closed;
        drop(g);
        if n > 0 {
            self.not_full.notify_all();
        }
        (batch, closed)
    }

    /// Close the queue: submitters fail fast, the drainer keeps going
    /// until empty.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current depth (admission metrics).
    pub fn len(&self) -> usize {
        self.inner.lock().items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bounded_push_and_drain() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
        let (batch, closed) = q.drain_wait(10, Duration::from_millis(1));
        assert_eq!(batch, vec![1, 2]);
        assert!(!closed);
    }

    #[test]
    fn close_rejects_and_drains_remaining() {
        let q = BoundedQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err(PushError::Closed(8)));
        let (batch, closed) = q.drain_wait(10, Duration::from_millis(1));
        assert_eq!(batch, vec![7]);
        assert!(closed);
    }

    #[test]
    fn blocking_push_applies_backpressure() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(0u64).unwrap();
        let q2 = q.clone();
        let pusher = std::thread::spawn(move || q2.push_wait(1).is_ok());
        // the pusher must be blocked until we drain
        std::thread::sleep(Duration::from_millis(20));
        let (b1, _) = q.drain_wait(1, Duration::from_millis(1));
        assert_eq!(b1, vec![0]);
        assert!(pusher.join().unwrap());
        let (b2, _) = q.drain_wait(1, Duration::from_millis(100));
        assert_eq!(b2, vec![1]);
    }

    /// Regression: a spurious (or unrelated) condvar wakeup used to be
    /// treated as a timeout, returning an empty batch early. `drain_wait`
    /// must keep waiting on the remaining deadline until an item arrives.
    #[test]
    fn drain_wait_survives_spurious_wakeups() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let q2 = q.clone();
        let waker = std::thread::spawn(move || {
            // notifications with nothing enqueued (models a spurious wake)
            for _ in 0..3 {
                std::thread::sleep(Duration::from_millis(5));
                q2.not_empty.notify_all();
            }
            std::thread::sleep(Duration::from_millis(5));
            q2.try_push(42).unwrap();
        });
        let (batch, closed) = q.drain_wait(8, Duration::from_secs(5));
        waker.join().unwrap();
        assert_eq!(batch, vec![42], "woke early without an item");
        assert!(!closed);
    }

    /// A close while waiting still wakes the drainer promptly.
    #[test]
    fn drain_wait_wakes_on_close() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let q2 = q.clone();
        let closer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            q2.close();
        });
        let t0 = std::time::Instant::now();
        let (batch, closed) = q.drain_wait(8, Duration::from_secs(5));
        closer.join().unwrap();
        assert!(batch.is_empty());
        assert!(closed);
        assert!(t0.elapsed() < Duration::from_secs(4), "missed the close");
    }

    #[test]
    fn drain_times_out_empty() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        let t0 = std::time::Instant::now();
        let (batch, closed) = q.drain_wait(8, Duration::from_millis(10));
        assert!(batch.is_empty());
        assert!(!closed);
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }
}

//! The multi-session GDI server: request routing, per-rank serve loops,
//! OLAP rendezvous, admission control and shutdown.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gda::dptr::owner_rank;
use gda::persist::{CheckpointReport, PersistOptions, RankRecovery, RecoveryPlan};
use gda::{GdaDb, GdaRank};
use gdi::{GdiError, GdiResult};
use parking_lot::{Condvar, Mutex};
use rma::{CostModel, Fabric, RankCtx, RankReport};

use crate::batch::execute_batch;
use crate::metrics::{RankCounters, RankMetrics, RecoverySummary, ServerMetrics};
use crate::queue::{BoundedQueue, PushError};
use crate::request::{Op, OpOutcome, OpReply, Request, Ticket, TicketInner};

/// What happens when a session submits into a full rank queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Block the submitter until the queue has room (backpressure).
    Block,
    /// Reject immediately with [`SubmitError::Overloaded`] (load
    /// shedding; the client decides whether to retry).
    Reject,
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Bound of each per-rank request queue.
    pub queue_capacity: usize,
    /// Maximum requests drained (and hence coalesced) per serve cycle.
    pub max_batch: usize,
    /// Coalesce compatible ops into shared transactions with one group
    /// commit per cycle. `false` serves one transaction per request.
    pub group_commit: bool,
    /// Maximum writes per grouped transaction: bounds the write-lock
    /// footprint one group holds while it executes.
    pub write_group: usize,
    /// Full-queue behaviour.
    pub admission: AdmissionPolicy,
    /// How long a serving rank sleeps on an empty queue before re-polling
    /// (also the OLAP rendezvous latency bound).
    pub poll_interval: Duration,
    /// Which serving rank a session's ops land on.
    pub route: RoutePolicy,
    /// Background maintenance cadence: `Some(n)` makes rank 0's serve
    /// loop submit a collective [`GdaRank::maintenance`] pass after
    /// every `n` drain cycles it executes (MVCC vacuum below the
    /// snapshot floor, free-list vacuum, chain compaction, snapshot
    /// checksum verification). Passes ride the OLAP rendezvous, so they
    /// run between batches when no transaction is in flight. `None`
    /// (the default) leaves maintenance to explicit
    /// [`GdiServer::maintenance`] calls.
    pub maintenance_interval: Option<u64>,
    /// Per-op service deadline: a request still queued `deadline` after
    /// submission is shed at drain time with
    /// [`OpOutcome::DeadlineExceeded`] instead of executing (bounded
    /// staleness under overload or injected stalls). `None` (default)
    /// never sheds.
    pub deadline: Option<Duration>,
    /// Capacity of the idempotency dedup window (token → decided
    /// outcome, FIFO-evicted). Bounds the memory a retry storm can pin.
    pub dedup_window: usize,
}

/// Which serving rank executes a submitted op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutePolicy {
    /// Route every op to the rank owning its routing vertex (round-robin
    /// partitioning): object access inside the serve loop is rank-local.
    /// The low-latency deployment when clients can address any server.
    #[default]
    Owner,
    /// Route every op to the session's *connected* rank (`session id mod
    /// P`), regardless of which rank owns the data — the paper's
    /// deployment shape, where a query lands on whatever server the
    /// client connected to and the server reaches remote vertices with
    /// one-sided RMA. Makes the read path pay real remote-access costs
    /// (where lock-free snapshot reads shine against lock round trips).
    SessionAffine,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self {
            queue_capacity: 1024,
            max_batch: 64,
            group_commit: true,
            write_group: 16,
            admission: AdmissionPolicy::Block,
            poll_interval: Duration::from_micros(200),
            route: RoutePolicy::Owner,
            maintenance_interval: None,
            deadline: None,
            dedup_window: 1024,
        }
    }
}

impl ServerOptions {
    /// The unbatched baseline: every request is its own transaction.
    pub fn unbatched() -> Self {
        Self {
            max_batch: 1,
            group_commit: false,
            ..Self::default()
        }
    }
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Admission control shed the request ([`AdmissionPolicy::Reject`]).
    Overloaded {
        /// The rank whose queue was full.
        rank: usize,
        /// Queue depth observed at rejection.
        depth: usize,
    },
    /// Admission is paused (a checkpoint is draining in-flight work)
    /// and the policy is [`AdmissionPolicy::Reject`]; retry shortly.
    /// Under [`AdmissionPolicy::Block`] submitters wait instead.
    Paused,
    /// The server no longer accepts requests.
    ShuttingDown,
    /// The server is in **degraded read-only mode** (a checkpoint failed
    /// or the persistence store reported write errors): reads keep
    /// serving, writes are rejected until the next successful
    /// [`GdiServer::checkpoint`] proves durability is back.
    ReadOnly,
}

/// A collective OLAP job: every rank runs the closure against its engine
/// handle (collectives allowed inside); rank 0's return value resolves
/// the submitter's ticket.
pub type OlapJobFn = dyn for<'r, 'd, 'c, 'f> Fn(&'r GdaRank<'d, 'c, 'f>) -> f64 + Send + Sync;

struct OlapPending {
    job: Arc<OlapJobFn>,
    ticket: Arc<TicketInner>,
    /// Ranks that finished this job; the slot is tombstoned (payload
    /// dropped) once every rank has served it, so `olap_jobs` holds live
    /// closures only for jobs still in flight.
    served_by: usize,
}

/// A job the server drops without ever running (server torn down before
/// any rank served it) still resolves its ticket — no lost acks.
impl Drop for OlapPending {
    fn drop(&mut self) {
        self.ticket
            .fulfill_if_pending(OpOutcome::Aborted(gdi::GdiError::TransactionClosed));
    }
}

/// Bounded token → decided-outcome map (FIFO eviction). Only *decided*
/// outcomes are recorded — committed ops so a retry never double-applies;
/// aborted, indeterminate and deadline-shed attempts stay absent so a
/// retry may honestly re-execute.
pub(crate) struct DedupWindow {
    capacity: usize,
    map: rustc_hash::FxHashMap<u64, OpOutcome>,
    order: std::collections::VecDeque<u64>,
}

impl DedupWindow {
    fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            map: rustc_hash::FxHashMap::default(),
            order: std::collections::VecDeque::new(),
        }
    }

    pub(crate) fn get(&self, token: u64) -> Option<OpOutcome> {
        self.map.get(&token).cloned()
    }

    pub(crate) fn record(&mut self, token: u64, outcome: OpOutcome) {
        if self.map.insert(token, outcome).is_none() {
            self.order.push_back(token);
            while self.order.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }
}

struct ServerInner {
    db: Arc<GdaDb>,
    opts: ServerOptions,
    queues: Vec<BoundedQueue<Request>>,
    counters: Vec<RankCounters>,
    accepting: AtomicBool,
    serving: AtomicUsize,
    started: Instant,
    next_session: AtomicU64,
    /// Submitted OLAP jobs, indexed by submission order; a slot is
    /// tombstoned to `None` once every rank has served it.
    olap_jobs: Mutex<Vec<Option<OlapPending>>>,
    olap_submitted: AtomicU64,
    fabric_reports: Mutex<Vec<Option<RankReport>>>,
    /// Admission pause gate: a *count* of outstanding pauses (concurrent
    /// checkpoints and explicit operator pauses compose — resuming one
    /// never cancels another). While non-zero, `Block`-policy submitters
    /// wait on the condvar and `Reject`-policy submitters are shed with
    /// [`SubmitError::Paused`] (checkpoint stall bounding).
    paused: Mutex<usize>,
    pause_cv: Condvar,
    /// Successful collective checkpoints triggered through this server.
    checkpoints: AtomicU64,
    /// Collective maintenance passes submitted through this server
    /// (explicit [`GdiServer::maintenance`] calls plus scheduled passes
    /// from [`ServerOptions::maintenance_interval`]).
    maintenance_runs: AtomicU64,
    /// Pending (or completed) crash-recovery plan; serve loops run it
    /// collectively before their first drain.
    recovery: Mutex<Option<Arc<RecoveryPlan>>>,
    recovery_stats: Mutex<Vec<Option<RankRecovery>>>,
    /// Which fabric backend the serve loops run on (recorded by the
    /// first [`GdiServer::serve_rank`] from its rank context).
    backend: Mutex<Option<rma::BackendKind>>,
    /// Degraded read-only mode gate: set on a failed checkpoint or on
    /// observed store write errors, cleared by the next successful
    /// checkpoint. While set, write submissions are rejected with
    /// [`SubmitError::ReadOnly`]; reads serve normally.
    degraded: AtomicBool,
    /// Times the server transitioned *into* degraded mode.
    degraded_entries: AtomicU64,
    /// Write submissions rejected while degraded.
    write_rejects: AtomicU64,
    /// Retries performed by [`Session::execute_idempotent`].
    retries: AtomicU64,
    /// Store redo-log error count at the last health observation (the
    /// serve loop enters degraded mode when it grows).
    last_log_errors: AtomicU64,
    /// Idempotency window shared by all serving ranks.
    dedup: Mutex<DedupWindow>,
}

/// Per-rank summary returned by [`GdiServer::serve_rank`].
#[derive(Debug, Clone)]
pub struct ServeSummary {
    pub rank: usize,
    /// Requests this rank executed (committed + aborted).
    pub executed: u64,
    /// Drain cycles.
    pub batches: u64,
    /// Collective OLAP jobs participated in.
    pub olap_jobs: u64,
    /// Nanoseconds this rank spent serving on the fabric's active clock:
    /// simulated ns on the LogGP backend, real elapsed ns on the
    /// wall-clock backend (see [`ServeSummary::backend`]).
    pub sim_serve_ns: f64,
    /// Active-clock nanoseconds spent inside **read** requests (the
    /// read-path service time the MVCC benches gate on — the blended
    /// [`ServeSummary::sim_serve_ns`] hides the read-side win behind
    /// write-commit bookkeeping).
    pub sim_read_ns: f64,
    /// Read requests those nanoseconds covered.
    pub read_ops: u64,
    /// Fabric execution backend this rank served on.
    pub backend: rma::BackendKind,
}

/// The multi-session service front-end over one [`GdaDb`].
///
/// Cheap to clone (shared state behind an `Arc`): hand clones to client
/// threads, call [`GdiServer::serve_rank`] from every fabric rank.
#[derive(Clone)]
pub struct GdiServer(Arc<ServerInner>);

impl GdiServer {
    pub fn new(db: Arc<GdaDb>, opts: ServerOptions) -> Self {
        assert!(opts.max_batch >= 1, "max_batch must be positive");
        let nranks = db.nranks();
        GdiServer(Arc::new(ServerInner {
            opts: opts.clone(),
            queues: (0..nranks)
                .map(|_| BoundedQueue::new(opts.queue_capacity))
                .collect(),
            counters: (0..nranks).map(|_| RankCounters::default()).collect(),
            accepting: AtomicBool::new(true),
            serving: AtomicUsize::new(0),
            started: Instant::now(),
            next_session: AtomicU64::new(0),
            olap_jobs: Mutex::new(Vec::new()),
            olap_submitted: AtomicU64::new(0),
            fabric_reports: Mutex::new((0..nranks).map(|_| None).collect()),
            paused: Mutex::new(0),
            pause_cv: Condvar::new(),
            checkpoints: AtomicU64::new(0),
            maintenance_runs: AtomicU64::new(0),
            recovery: Mutex::new(None),
            recovery_stats: Mutex::new((0..nranks).map(|_| None).collect()),
            backend: Mutex::new(None),
            degraded: AtomicBool::new(false),
            degraded_entries: AtomicU64::new(0),
            write_rejects: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            last_log_errors: AtomicU64::new(0),
            dedup: Mutex::new(DedupWindow::new(opts.dedup_window)),
            db,
        }))
    }

    /// Boot a server from a persistence directory after a crash: reads
    /// the latest snapshot manifest, rebuilds the database object and a
    /// fresh fabric, and arms the recovery plan. The caller runs
    /// [`GdiServer::serve_rank`] on every rank of the returned fabric
    /// as usual — each serve loop first restores its rank (windows +
    /// redo replay, collective) and then starts draining requests.
    /// Recovery metrics land in [`ServerMetrics::recovery`].
    pub fn recover(
        opts: PersistOptions,
        cost: CostModel,
        server_opts: ServerOptions,
    ) -> GdiResult<(GdiServer, Fabric)> {
        Self::recover_with_ranks(opts, cost, server_opts, None)
    }

    /// [`GdiServer::recover`] with an **elastic target topology**: boot
    /// the latest snapshot (written by `P` ranks) onto `Some(Q)` ranks.
    /// The serve loops run the full redistribution collectively before
    /// draining any request (see `gda::persist::recover_with_topology`);
    /// once they serve, the database is a native `Q`-rank database with
    /// its own published checkpoint. `None` keeps the snapshot's
    /// topology.
    pub fn recover_with_ranks(
        opts: PersistOptions,
        cost: CostModel,
        server_opts: ServerOptions,
        target_ranks: Option<usize>,
    ) -> GdiResult<(GdiServer, Fabric)> {
        let (db, fabric, plan) = gda::persist::recover_with_topology(opts, cost, target_ranks)?;
        let server = GdiServer::new(db, server_opts);
        *server.0.recovery.lock() = Some(plan);
        Ok((server, fabric))
    }

    /// The database being served.
    pub fn db(&self) -> &Arc<GdaDb> {
        &self.0.db
    }

    /// Open a new client session.
    pub fn session(&self) -> Session {
        Session {
            server: self.clone(),
            id: self.0.next_session.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Number of ranks currently inside their serve loop.
    pub fn serving_ranks(&self) -> usize {
        self.0.serving.load(Ordering::SeqCst)
    }

    /// The owning rank of an op (round-robin vertex partitioning).
    pub fn route(&self, op: &Op) -> usize {
        owner_rank(op.routing_vertex(), self.0.db.nranks())
    }

    /// Submit a collective OLAP job: all serving ranks rendezvous, run the
    /// closure (engine collectives allowed), and rank 0's result resolves
    /// the ticket.
    pub fn submit_olap(
        &self,
        job: impl for<'r, 'd, 'c, 'f> Fn(&'r GdaRank<'d, 'c, 'f>) -> f64 + Send + Sync + 'static,
    ) -> Result<Ticket, SubmitError> {
        // the accepting check, the push and the counter publish happen
        // under the jobs lock, and shutdown() takes the same lock after
        // flipping `accepting`: a job is either fully published before
        // the queues close (every rank serves it before exiting) or
        // rejected — never half-visible
        let mut jobs = self.0.olap_jobs.lock();
        if !self.0.accepting.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        let ticket = Arc::new(TicketInner::default());
        jobs.push(Some(OlapPending {
            job: Arc::new(job),
            ticket: ticket.clone(),
            served_by: 0,
        }));
        // publish after the job is in place: serve loops read the counter
        // first, then index the vec
        self.0.olap_submitted.fetch_add(1, Ordering::SeqCst);
        Ok(Ticket(ticket))
    }

    /// Pause admission at the [`Op`] level: `Block`-policy submitters
    /// wait, `Reject`-policy submitters are shed with
    /// [`SubmitError::Paused`]. Used around collective checkpoints to
    /// bound the amount of queued work a checkpoint must drain behind.
    /// Pauses nest: admission resumes when every pause has been matched
    /// by a [`GdiServer::resume_admission`].
    pub fn pause_admission(&self) {
        *self.0.paused.lock() += 1;
    }

    /// Release one [`GdiServer::pause_admission`]; wakes blocked
    /// submitters once no pause remains outstanding.
    pub fn resume_admission(&self) {
        let mut g = self.0.paused.lock();
        *g = g.saturating_sub(1);
        if *g == 0 {
            self.0.pause_cv.notify_all();
        }
    }

    /// Is admission currently paused?
    pub fn admission_paused(&self) -> bool {
        *self.0.paused.lock() > 0
    }

    /// Is the server in degraded read-only mode (failed checkpoint or
    /// observed store write errors; exits on the next successful
    /// [`GdiServer::checkpoint`])?
    pub fn degraded(&self) -> bool {
        self.0.degraded.load(Ordering::SeqCst)
    }

    /// Flip into degraded read-only mode (idempotent; counts only the
    /// transition). Reads keep serving; writes are rejected with
    /// [`SubmitError::ReadOnly`] until a checkpoint succeeds.
    fn enter_degraded(&self, why: &str) {
        if !self.0.degraded.swap(true, Ordering::SeqCst) {
            self.0.degraded_entries.fetch_add(1, Ordering::Relaxed);
            eprintln!("[server] entering degraded read-only mode: {why}");
        }
    }

    /// Leave degraded mode after a successful checkpoint.
    fn exit_degraded(&self) {
        if self.0.degraded.swap(false, Ordering::SeqCst) {
            eprintln!("[server] checkpoint succeeded; leaving degraded read-only mode");
        }
    }

    /// Serve-loop health probe: new redo-log write errors on the
    /// persistence store (commits whose durability was lost, see
    /// `gda::persist::PersistStore::log_errors`) degrade the server to
    /// read-only until a checkpoint captures the lost tail.
    fn observe_store_health(&self) {
        if let Some(store) = self.0.db.persistence() {
            let errs = store.log_errors();
            let prev = self.0.last_log_errors.swap(errs, Ordering::Relaxed);
            if errs > prev {
                self.enter_degraded("redo-log append errors observed");
            }
        }
    }

    /// Trigger a durable collective checkpoint while serving: pauses
    /// admission, rendezvouses every serving rank through the
    /// collective-job machinery (each runs [`GdaRank::checkpoint`]),
    /// resumes admission and returns the published report. Requires the
    /// database to have persistence enabled and rank loops serving.
    pub fn checkpoint(&self) -> GdiResult<CheckpointReport> {
        let store = self
            .0
            .db
            .persistence()
            .ok_or(GdiError::InvalidArgument("persistence not enabled"))?;
        self.pause_admission();
        let submitted = self.submit_olap(|eng| match eng.checkpoint() {
            Ok(_) => 1.0,
            Err(e) => {
                eprintln!("[server] checkpoint failed on rank {}: {e}", eng.rank());
                0.0
            }
        });
        let outcome = match submitted {
            Ok(ticket) => ticket.wait(),
            Err(_) => {
                self.resume_admission();
                return Err(GdiError::Io("server is shutting down".into()));
            }
        };
        self.resume_admission();
        match outcome {
            OpOutcome::Committed(OpReply::Scalar(v)) if v > 0.5 => {
                self.0.checkpoints.fetch_add(1, Ordering::Relaxed);
                // durability is proven again: the published snapshot
                // covers everything a lost redo tail failed to log
                self.0
                    .last_log_errors
                    .store(store.log_errors(), Ordering::Relaxed);
                self.exit_degraded();
                store
                    .last_checkpoint()
                    .ok_or(GdiError::Io("checkpoint report missing".into()))
            }
            OpOutcome::Committed(_) => {
                self.enter_degraded("collective checkpoint failed");
                Err(GdiError::Io("checkpoint failed; see rank logs".into()))
            }
            _ => Err(GdiError::Io("checkpoint job did not complete".into())),
        }
    }

    /// Run one collective background-maintenance pass while serving:
    /// pauses admission, rendezvouses every serving rank through the
    /// collective-job machinery (each runs [`GdaRank::maintenance`] —
    /// MVCC version vacuum below the snapshot floor, free-list vacuum,
    /// holder-chain compaction, snapshot checksum verification), resumes
    /// admission and returns the aggregated report. The pass runs at
    /// the OLAP rendezvous point, where no serve-loop transaction is in
    /// flight — the quiescence the maintenance passes require.
    pub fn maintenance(&self) -> GdiResult<gda::MaintenanceReport> {
        // report slot lives outside ServerInner so the job closure
        // (stored inside ServerInner) never creates an Arc cycle
        let slot: Arc<Mutex<Option<gda::MaintenanceReport>>> = Arc::new(Mutex::new(None));
        let sink = slot.clone();
        self.pause_admission();
        let submitted = self.submit_olap(move |eng| match eng.maintenance() {
            Ok(report) => {
                // identical on every rank (the report is allreduce-summed)
                *sink.lock() = Some(report);
                1.0
            }
            Err(e) => {
                eprintln!("[server] maintenance failed on rank {}: {e}", eng.rank());
                0.0
            }
        });
        let outcome = match submitted {
            Ok(ticket) => ticket.wait(),
            Err(_) => {
                self.resume_admission();
                return Err(GdiError::Io("server is shutting down".into()));
            }
        };
        self.resume_admission();
        match outcome {
            OpOutcome::Committed(OpReply::Scalar(v)) if v > 0.5 => {
                self.0.maintenance_runs.fetch_add(1, Ordering::Relaxed);
                slot.lock()
                    .take()
                    .ok_or(GdiError::Io("maintenance report missing".into()))
            }
            OpOutcome::Committed(_) => {
                Err(GdiError::Io("maintenance failed; see rank logs".into()))
            }
            _ => Err(GdiError::Io("maintenance job did not complete".into())),
        }
    }

    pub(crate) fn submit_from(&self, op: Op, session: u64) -> Result<Ticket, SubmitError> {
        self.submit_with_token(op, session, None)
    }

    pub(crate) fn submit_with_token(
        &self,
        op: Op,
        session: u64,
        token: Option<u64>,
    ) -> Result<Ticket, SubmitError> {
        if !self.0.accepting.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        // degraded read-only mode: writes are rejected with a typed
        // error the client can distinguish from overload; reads pass
        if !op.is_read() && self.0.degraded.load(Ordering::SeqCst) {
            self.0.write_rejects.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::ReadOnly);
        }
        {
            let mut paused = self.0.paused.lock();
            if *paused > 0 {
                match self.0.opts.admission {
                    AdmissionPolicy::Block => {
                        // also wake on shutdown (shutdown notifies the
                        // condvar without touching the pause count)
                        while *paused > 0 && self.0.accepting.load(Ordering::SeqCst) {
                            self.0.pause_cv.wait(&mut paused);
                        }
                    }
                    AdmissionPolicy::Reject => return Err(SubmitError::Paused),
                }
            }
        }
        if !self.0.accepting.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        let rank = match self.0.opts.route {
            RoutePolicy::Owner => self.route(&op),
            RoutePolicy::SessionAffine => session as usize % self.0.db.nranks(),
        };
        let ticket = Arc::new(TicketInner::default());
        let req = Request {
            op,
            ticket: ticket.clone(),
            submitted: Instant::now(),
            token,
        };
        self.0.counters[rank]
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        let res = match self.0.opts.admission {
            AdmissionPolicy::Block => self.0.queues[rank].push_wait(req),
            AdmissionPolicy::Reject => self.0.queues[rank].try_push(req),
        };
        match res {
            Ok(()) => Ok(Ticket(ticket)),
            Err(PushError::Full(_)) => {
                self.0.counters[rank]
                    .rejected
                    .fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::Overloaded {
                    rank,
                    depth: self.0.queues[rank].len(),
                })
            }
            Err(PushError::Closed(_)) => {
                // count the shed so `submitted` keeps balancing against
                // committed + aborted + rejected in metrics snapshots
                self.0.counters[rank]
                    .rejected
                    .fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::ShuttingDown)
            }
        }
    }

    /// Stop accepting new work and close all queues. Already-queued
    /// requests are still served; every accepted ticket resolves.
    pub fn shutdown(&self) {
        self.0.accepting.store(false, Ordering::SeqCst);
        // wake submitters blocked on a paused gate so they observe the
        // shutdown instead of waiting forever (the pause count itself
        // is left to its owners); the lock orders this notify against a
        // submitter's check-then-wait, so no wakeup is lost
        {
            let _gate = self.0.paused.lock();
            self.0.pause_cv.notify_all();
        }
        // synchronize with any in-flight submit_olap: after this lock
        // round-trip the OLAP job count is final, so a rank observing a
        // closed queue also observes every job it must still serve
        drop(self.0.olap_jobs.lock());
        for q in &self.0.queues {
            q.close();
        }
    }

    /// The serve loop of one fabric rank: drain → batch → group commit →
    /// fan outcomes back, until shutdown drains everything. Call from
    /// every rank inside `fabric.run` (after the database was loaded).
    pub fn serve_rank(&self, ctx: &RankCtx) -> ServeSummary {
        let inner = &*self.0;
        // If this rank's loop unwinds (an engine panic), fail the whole
        // server fast instead of wedging clients: stop admissions, close
        // every queue, and drain this rank's queue so its pending tickets
        // resolve (as aborts, via the Request drop-guard).
        struct PanicGuard<'a> {
            inner: &'a ServerInner,
            rank: usize,
        }
        impl Drop for PanicGuard<'_> {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    self.inner.accepting.store(false, Ordering::SeqCst);
                    for q in &self.inner.queues {
                        q.close();
                    }
                    loop {
                        let (batch, _) = self.inner.queues[self.rank]
                            .drain_wait(usize::MAX, Duration::from_millis(0));
                        if batch.is_empty() {
                            break;
                        }
                    }
                }
            }
        }
        let _guard = PanicGuard {
            inner,
            rank: ctx.rank(),
        };
        let eng = inner.db.attach(ctx);
        let rank = ctx.rank();
        *inner.backend.lock() = Some(ctx.backend());
        let trace = std::env::var_os("GDI_SERVER_TRACE").is_some();
        // crash recovery: restore this rank (collective — every serve
        // loop of a recovered server enters here) before serving
        let plan = inner.recovery.lock().clone();
        if let Some(plan) = plan {
            match plan.restore_rank(&eng) {
                Ok(stats) => {
                    inner.recovery_stats.lock()[rank] = Some(stats);
                }
                // a failed restore is fatal: poison the fabric (via the
                // guard) rather than serve a half-recovered database
                Err(e) => panic!("recovery failed on rank {rank}: {e}"),
            }
        }
        inner.serving.fetch_add(1, Ordering::SeqCst);
        let sim_t0 = ctx.now_ns();
        let mut olap_served: u64 = 0;
        let mut batches: u64 = 0;
        let mut executed: u64 = 0;
        let mut read_timing = crate::batch::ReadTiming::default();
        loop {
            // collective rendezvous: all ranks run pending OLAP jobs in
            // submission order before draining more interactive work
            while olap_served < inner.olap_submitted.load(Ordering::SeqCst) {
                ctx.barrier();
                let idx = olap_served as usize;
                let pending = {
                    let jobs = inner.olap_jobs.lock();
                    let p = jobs[idx].as_ref().expect("job served before tombstone");
                    (p.job.clone(), p.ticket.clone())
                };
                let value = (pending.0)(&eng);
                ctx.barrier();
                if rank == 0 {
                    pending
                        .1
                        .fulfill(OpOutcome::Committed(OpReply::Scalar(value)));
                }
                // the fulfillment above must be visible before any rank
                // can tombstone the slot (whose drop-guard would
                // otherwise resolve the ticket as aborted)
                ctx.barrier();
                let mut jobs = inner.olap_jobs.lock();
                if let Some(p) = jobs[idx].as_mut() {
                    p.served_by += 1;
                    if p.served_by == inner.db.nranks() {
                        jobs[idx] = None;
                    }
                }
                drop(jobs);
                olap_served += 1;
            }
            let (batch, closed) =
                inner.queues[rank].drain_wait(inner.opts.max_batch, inner.opts.poll_interval);
            // rank 0 doubles as the health observer: store write errors
            // degrade the server to read-only until a checkpoint succeeds
            if rank == 0 {
                self.observe_store_health();
            }
            if batch.is_empty() {
                if closed && olap_served == inner.olap_submitted.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            if trace {
                eprintln!("[serve r{rank}] drained {} closed={closed}", batch.len());
            }
            ctx.record_drain(batch.len());
            batches += 1;
            executed += batch.len() as u64;
            inner.counters[rank].batches.fetch_add(1, Ordering::Relaxed);
            let t = execute_batch(
                &eng,
                &inner.counters[rank],
                batch,
                &inner.opts,
                &inner.dedup,
            );
            read_timing.read_ns += t.read_ns;
            read_timing.read_ops += t.read_ops;
            // background maintenance cadence: rank 0 enqueues a
            // collective pass every n of its drain cycles; it executes
            // at the next OLAP rendezvous, where no serve-loop
            // transaction is in flight (the quiescence the passes need)
            if rank == 0 {
                if let Some(n) = inner.opts.maintenance_interval {
                    if n > 0 && batches.is_multiple_of(n) {
                        let ok = self.submit_olap(|eng| match eng.maintenance() {
                            Ok(_) => 1.0,
                            Err(e) => {
                                eprintln!(
                                    "[server] scheduled maintenance failed on rank {}: {e}",
                                    eng.rank()
                                );
                                0.0
                            }
                        });
                        if ok.is_ok() {
                            inner.maintenance_runs.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
        }
        if trace {
            eprintln!("[serve r{rank}] exiting after {executed} ops / {batches} batches");
        }
        inner.fabric_reports.lock()[rank] = Some(ctx.stats_snapshot());
        inner.serving.fetch_sub(1, Ordering::SeqCst);
        ServeSummary {
            rank,
            executed,
            batches,
            olap_jobs: olap_served,
            sim_serve_ns: ctx.now_ns() - sim_t0,
            sim_read_ns: read_timing.read_ns,
            read_ops: read_timing.read_ops,
            backend: ctx.backend(),
        }
    }

    /// Live metrics snapshot (callable at any time).
    pub fn metrics(&self) -> ServerMetrics {
        let inner = &*self.0;
        let reports = inner.fabric_reports.lock();
        let per_rank = inner
            .counters
            .iter()
            .enumerate()
            .map(|(rank, c)| RankMetrics {
                rank,
                submitted: c.submitted.load(Ordering::Relaxed),
                rejected: c.rejected.load(Ordering::Relaxed),
                committed: c.committed.load(Ordering::Relaxed),
                aborted: c.aborted.load(Ordering::Relaxed),
                batches: c.batches.load(Ordering::Relaxed),
                grouped_ops: c.grouped_ops.load(Ordering::Relaxed),
                fallback_ops: c.fallback_ops.load(Ordering::Relaxed),
                deadline_misses: c.deadline_misses.load(Ordering::Relaxed),
                dedup_hits: c.dedup_hits.load(Ordering::Relaxed),
                queue_depth: inner.queues[rank].len(),
                latency: c.latency.lock().clone(),
                fabric: reports[rank],
            })
            .collect();
        let recovery = inner.recovery.lock().as_ref().map(|plan| {
            let stats = inner.recovery_stats.lock();
            let mut sum = RecoverySummary {
                snapshot_id: plan.snapshot_id(),
                ..RecoverySummary::default()
            };
            for s in stats.iter().flatten() {
                sum.snapshot_bytes += s.snapshot_bytes;
                sum.log_bytes += s.log_bytes;
                sum.records += s.records;
                sum.applied += s.applied;
                sum.errors += s.errors;
                sum.max_sim_restore_s = sum.max_sim_restore_s.max(s.sim_restore_s);
                sum.max_wall_restore_s = sum.max_wall_restore_s.max(s.wall_restore_s);
                sum.ranks_restored += 1;
                sum.resharded_from = sum.resharded_from.or(s.resharded_from);
            }
            sum
        });
        ServerMetrics {
            per_rank,
            wall_elapsed_s: inner.started.elapsed().as_secs_f64(),
            checkpoints: inner.checkpoints.load(Ordering::Relaxed),
            maintenance_runs: inner.maintenance_runs.load(Ordering::Relaxed),
            recovery,
            backend: *inner.backend.lock(),
            degraded: inner.degraded.load(Ordering::SeqCst),
            degraded_entries: inner.degraded_entries.load(Ordering::Relaxed),
            write_rejects: inner.write_rejects.load(Ordering::Relaxed),
            retries: inner.retries.load(Ordering::Relaxed),
            fault_hits: inner
                .db
                .persistence()
                .map(|s| s.fault_plane().fired())
                .unwrap_or(0),
        }
    }
}

/// A lightweight client handle: submit ops, await outcomes. Thousands of
/// sessions can share one server; a session itself is not thread-safe
/// (clone the server and open more sessions instead).
pub struct Session {
    server: GdiServer,
    id: u64,
}

impl Session {
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Submit asynchronously; the ticket resolves to exactly one outcome.
    pub fn submit(&self, op: Op) -> Result<Ticket, SubmitError> {
        self.server.submit_from(op, self.id)
    }

    /// Submit and wait (one closed-loop op).
    pub fn execute(&self, op: Op) -> Result<OpOutcome, SubmitError> {
        self.submit(op).map(|t| t.wait())
    }

    /// Submit with a client-supplied **idempotency token** and bounded
    /// retries. The serving rank consults the server's dedup window
    /// before executing a tokened op and records its committed outcome
    /// after, so resubmitting the same token never double-applies: a
    /// retry whose earlier attempt actually committed gets the recorded
    /// outcome back instead of re-executing.
    ///
    /// Undecided outcomes are retried up to `max_retries` times:
    /// [`OpOutcome::DeadlineExceeded`] (shed before execution — always
    /// safe), [`OpOutcome::Indeterminate`] (the retry re-executes; if it
    /// decides, the decision is recorded for any further retry), and
    /// transient admission failures ([`SubmitError::Overloaded`] /
    /// [`SubmitError::Paused`]). Decided outcomes (commit or abort)
    /// return immediately. The last undecided outcome is returned when
    /// the retry budget runs out.
    pub fn execute_idempotent(
        &self,
        op: Op,
        token: u64,
        max_retries: usize,
    ) -> Result<OpOutcome, SubmitError> {
        let mut last: Option<OpOutcome> = None;
        for attempt in 0..=max_retries {
            if attempt > 0 {
                self.server.0.retries.fetch_add(1, Ordering::Relaxed);
            }
            match self
                .server
                .submit_with_token(op.clone(), self.id, Some(token))
            {
                Ok(t) => match t.wait() {
                    out @ (OpOutcome::Committed(_) | OpOutcome::Aborted(_)) => return Ok(out),
                    // undecided: retry; a decided earlier attempt is
                    // resolved by the serving rank's dedup-window check
                    out => last = Some(out),
                },
                // transient admission failures are worth the retry budget
                Err(SubmitError::Overloaded { .. } | SubmitError::Paused)
                    if attempt < max_retries => {}
                Err(e) => return Err(e),
            }
        }
        Ok(last.expect("at least one attempt ran"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_window_records_and_evicts_fifo() {
        let mut w = DedupWindow::new(2);
        assert!(w.get(1).is_none());
        w.record(1, OpOutcome::Committed(OpReply::Unit));
        w.record(2, OpOutcome::Committed(OpReply::Count(3)));
        assert_eq!(w.get(1), Some(OpOutcome::Committed(OpReply::Unit)));
        // re-recording an existing token must not double-enter the queue
        w.record(1, OpOutcome::Committed(OpReply::Unit));
        w.record(3, OpOutcome::Committed(OpReply::Unit));
        assert!(w.get(1).is_none(), "oldest token evicted");
        assert!(w.get(2).is_some() && w.get(3).is_some());
    }
}

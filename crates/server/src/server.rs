//! The multi-session GDI server: request routing, per-rank serve loops,
//! OLAP rendezvous, admission control and shutdown.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gda::dptr::owner_rank;
use gda::{GdaDb, GdaRank};
use parking_lot::Mutex;
use rma::{RankCtx, RankReport};

use crate::batch::execute_batch;
use crate::metrics::{RankCounters, RankMetrics, ServerMetrics};
use crate::queue::{BoundedQueue, PushError};
use crate::request::{Op, OpOutcome, OpReply, Request, Ticket, TicketInner};

/// What happens when a session submits into a full rank queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Block the submitter until the queue has room (backpressure).
    Block,
    /// Reject immediately with [`SubmitError::Overloaded`] (load
    /// shedding; the client decides whether to retry).
    Reject,
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Bound of each per-rank request queue.
    pub queue_capacity: usize,
    /// Maximum requests drained (and hence coalesced) per serve cycle.
    pub max_batch: usize,
    /// Coalesce compatible ops into shared transactions with one group
    /// commit per cycle. `false` serves one transaction per request.
    pub group_commit: bool,
    /// Maximum writes per grouped transaction: bounds the write-lock
    /// footprint one group holds while it executes.
    pub write_group: usize,
    /// Full-queue behaviour.
    pub admission: AdmissionPolicy,
    /// How long a serving rank sleeps on an empty queue before re-polling
    /// (also the OLAP rendezvous latency bound).
    pub poll_interval: Duration,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self {
            queue_capacity: 1024,
            max_batch: 64,
            group_commit: true,
            write_group: 16,
            admission: AdmissionPolicy::Block,
            poll_interval: Duration::from_micros(200),
        }
    }
}

impl ServerOptions {
    /// The unbatched baseline: every request is its own transaction.
    pub fn unbatched() -> Self {
        Self {
            max_batch: 1,
            group_commit: false,
            ..Self::default()
        }
    }
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Admission control shed the request ([`AdmissionPolicy::Reject`]).
    Overloaded { rank: usize, depth: usize },
    /// The server no longer accepts requests.
    ShuttingDown,
}

/// A collective OLAP job: every rank runs the closure against its engine
/// handle (collectives allowed inside); rank 0's return value resolves
/// the submitter's ticket.
pub type OlapJobFn = dyn for<'r, 'd, 'c, 'f> Fn(&'r GdaRank<'d, 'c, 'f>) -> f64 + Send + Sync;

struct OlapPending {
    job: Arc<OlapJobFn>,
    ticket: Arc<TicketInner>,
    /// Ranks that finished this job; the slot is tombstoned (payload
    /// dropped) once every rank has served it, so `olap_jobs` holds live
    /// closures only for jobs still in flight.
    served_by: usize,
}

/// A job the server drops without ever running (server torn down before
/// any rank served it) still resolves its ticket — no lost acks.
impl Drop for OlapPending {
    fn drop(&mut self) {
        self.ticket
            .fulfill_if_pending(OpOutcome::Aborted(gdi::GdiError::TransactionClosed));
    }
}

struct ServerInner {
    db: Arc<GdaDb>,
    opts: ServerOptions,
    queues: Vec<BoundedQueue<Request>>,
    counters: Vec<RankCounters>,
    accepting: AtomicBool,
    serving: AtomicUsize,
    started: Instant,
    next_session: AtomicU64,
    /// Submitted OLAP jobs, indexed by submission order; a slot is
    /// tombstoned to `None` once every rank has served it.
    olap_jobs: Mutex<Vec<Option<OlapPending>>>,
    olap_submitted: AtomicU64,
    fabric_reports: Mutex<Vec<Option<RankReport>>>,
}

/// Per-rank summary returned by [`GdiServer::serve_rank`].
#[derive(Debug, Clone)]
pub struct ServeSummary {
    pub rank: usize,
    /// Requests this rank executed (committed + aborted).
    pub executed: u64,
    /// Drain cycles.
    pub batches: u64,
    /// Collective OLAP jobs participated in.
    pub olap_jobs: u64,
    /// Simulated nanoseconds this rank spent serving.
    pub sim_serve_ns: f64,
}

/// The multi-session service front-end over one [`GdaDb`].
///
/// Cheap to clone (shared state behind an `Arc`): hand clones to client
/// threads, call [`GdiServer::serve_rank`] from every fabric rank.
#[derive(Clone)]
pub struct GdiServer(Arc<ServerInner>);

impl GdiServer {
    pub fn new(db: Arc<GdaDb>, opts: ServerOptions) -> Self {
        assert!(opts.max_batch >= 1, "max_batch must be positive");
        let nranks = db.nranks();
        GdiServer(Arc::new(ServerInner {
            opts: opts.clone(),
            queues: (0..nranks)
                .map(|_| BoundedQueue::new(opts.queue_capacity))
                .collect(),
            counters: (0..nranks).map(|_| RankCounters::default()).collect(),
            accepting: AtomicBool::new(true),
            serving: AtomicUsize::new(0),
            started: Instant::now(),
            next_session: AtomicU64::new(0),
            olap_jobs: Mutex::new(Vec::new()),
            olap_submitted: AtomicU64::new(0),
            fabric_reports: Mutex::new((0..nranks).map(|_| None).collect()),
            db,
        }))
    }

    /// The database being served.
    pub fn db(&self) -> &Arc<GdaDb> {
        &self.0.db
    }

    /// Open a new client session.
    pub fn session(&self) -> Session {
        Session {
            server: self.clone(),
            id: self.0.next_session.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Number of ranks currently inside their serve loop.
    pub fn serving_ranks(&self) -> usize {
        self.0.serving.load(Ordering::SeqCst)
    }

    /// The owning rank of an op (round-robin vertex partitioning).
    pub fn route(&self, op: &Op) -> usize {
        owner_rank(op.routing_vertex(), self.0.db.nranks())
    }

    /// Submit a collective OLAP job: all serving ranks rendezvous, run the
    /// closure (engine collectives allowed), and rank 0's result resolves
    /// the ticket.
    pub fn submit_olap(
        &self,
        job: impl for<'r, 'd, 'c, 'f> Fn(&'r GdaRank<'d, 'c, 'f>) -> f64 + Send + Sync + 'static,
    ) -> Result<Ticket, SubmitError> {
        // the accepting check, the push and the counter publish happen
        // under the jobs lock, and shutdown() takes the same lock after
        // flipping `accepting`: a job is either fully published before
        // the queues close (every rank serves it before exiting) or
        // rejected — never half-visible
        let mut jobs = self.0.olap_jobs.lock();
        if !self.0.accepting.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        let ticket = Arc::new(TicketInner::default());
        jobs.push(Some(OlapPending {
            job: Arc::new(job),
            ticket: ticket.clone(),
            served_by: 0,
        }));
        // publish after the job is in place: serve loops read the counter
        // first, then index the vec
        self.0.olap_submitted.fetch_add(1, Ordering::SeqCst);
        Ok(Ticket(ticket))
    }

    pub(crate) fn submit(&self, op: Op) -> Result<Ticket, SubmitError> {
        if !self.0.accepting.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        let rank = self.route(&op);
        let ticket = Arc::new(TicketInner::default());
        let req = Request {
            op,
            ticket: ticket.clone(),
            submitted: Instant::now(),
        };
        self.0.counters[rank]
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        let res = match self.0.opts.admission {
            AdmissionPolicy::Block => self.0.queues[rank].push_wait(req),
            AdmissionPolicy::Reject => self.0.queues[rank].try_push(req),
        };
        match res {
            Ok(()) => Ok(Ticket(ticket)),
            Err(PushError::Full(_)) => {
                self.0.counters[rank]
                    .rejected
                    .fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::Overloaded {
                    rank,
                    depth: self.0.queues[rank].len(),
                })
            }
            Err(PushError::Closed(_)) => {
                // count the shed so `submitted` keeps balancing against
                // committed + aborted + rejected in metrics snapshots
                self.0.counters[rank]
                    .rejected
                    .fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::ShuttingDown)
            }
        }
    }

    /// Stop accepting new work and close all queues. Already-queued
    /// requests are still served; every accepted ticket resolves.
    pub fn shutdown(&self) {
        self.0.accepting.store(false, Ordering::SeqCst);
        // synchronize with any in-flight submit_olap: after this lock
        // round-trip the OLAP job count is final, so a rank observing a
        // closed queue also observes every job it must still serve
        drop(self.0.olap_jobs.lock());
        for q in &self.0.queues {
            q.close();
        }
    }

    /// The serve loop of one fabric rank: drain → batch → group commit →
    /// fan outcomes back, until shutdown drains everything. Call from
    /// every rank inside `fabric.run` (after the database was loaded).
    pub fn serve_rank(&self, ctx: &RankCtx) -> ServeSummary {
        let inner = &*self.0;
        // If this rank's loop unwinds (an engine panic), fail the whole
        // server fast instead of wedging clients: stop admissions, close
        // every queue, and drain this rank's queue so its pending tickets
        // resolve (as aborts, via the Request drop-guard).
        struct PanicGuard<'a> {
            inner: &'a ServerInner,
            rank: usize,
        }
        impl Drop for PanicGuard<'_> {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    self.inner.accepting.store(false, Ordering::SeqCst);
                    for q in &self.inner.queues {
                        q.close();
                    }
                    loop {
                        let (batch, _) = self.inner.queues[self.rank]
                            .drain_wait(usize::MAX, Duration::from_millis(0));
                        if batch.is_empty() {
                            break;
                        }
                    }
                }
            }
        }
        let _guard = PanicGuard {
            inner,
            rank: ctx.rank(),
        };
        let eng = inner.db.attach(ctx);
        let rank = ctx.rank();
        let trace = std::env::var_os("GDI_SERVER_TRACE").is_some();
        inner.serving.fetch_add(1, Ordering::SeqCst);
        let sim_t0 = ctx.now_ns();
        let mut olap_served: u64 = 0;
        let mut batches: u64 = 0;
        let mut executed: u64 = 0;
        loop {
            // collective rendezvous: all ranks run pending OLAP jobs in
            // submission order before draining more interactive work
            while olap_served < inner.olap_submitted.load(Ordering::SeqCst) {
                ctx.barrier();
                let idx = olap_served as usize;
                let pending = {
                    let jobs = inner.olap_jobs.lock();
                    let p = jobs[idx].as_ref().expect("job served before tombstone");
                    (p.job.clone(), p.ticket.clone())
                };
                let value = (pending.0)(&eng);
                ctx.barrier();
                if rank == 0 {
                    pending
                        .1
                        .fulfill(OpOutcome::Committed(OpReply::Scalar(value)));
                }
                // the fulfillment above must be visible before any rank
                // can tombstone the slot (whose drop-guard would
                // otherwise resolve the ticket as aborted)
                ctx.barrier();
                let mut jobs = inner.olap_jobs.lock();
                if let Some(p) = jobs[idx].as_mut() {
                    p.served_by += 1;
                    if p.served_by == inner.db.nranks() {
                        jobs[idx] = None;
                    }
                }
                drop(jobs);
                olap_served += 1;
            }
            let (batch, closed) =
                inner.queues[rank].drain_wait(inner.opts.max_batch, inner.opts.poll_interval);
            if batch.is_empty() {
                if closed && olap_served == inner.olap_submitted.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            if trace {
                eprintln!("[serve r{rank}] drained {} closed={closed}", batch.len());
            }
            ctx.record_drain(batch.len());
            batches += 1;
            executed += batch.len() as u64;
            inner.counters[rank].batches.fetch_add(1, Ordering::Relaxed);
            execute_batch(
                &eng,
                &inner.counters[rank],
                batch,
                inner.opts.group_commit,
                inner.opts.write_group,
            );
        }
        if trace {
            eprintln!("[serve r{rank}] exiting after {executed} ops / {batches} batches");
        }
        inner.fabric_reports.lock()[rank] = Some(ctx.stats_snapshot());
        inner.serving.fetch_sub(1, Ordering::SeqCst);
        ServeSummary {
            rank,
            executed,
            batches,
            olap_jobs: olap_served,
            sim_serve_ns: ctx.now_ns() - sim_t0,
        }
    }

    /// Live metrics snapshot (callable at any time).
    pub fn metrics(&self) -> ServerMetrics {
        let inner = &*self.0;
        let reports = inner.fabric_reports.lock();
        let per_rank = inner
            .counters
            .iter()
            .enumerate()
            .map(|(rank, c)| RankMetrics {
                rank,
                submitted: c.submitted.load(Ordering::Relaxed),
                rejected: c.rejected.load(Ordering::Relaxed),
                committed: c.committed.load(Ordering::Relaxed),
                aborted: c.aborted.load(Ordering::Relaxed),
                batches: c.batches.load(Ordering::Relaxed),
                grouped_ops: c.grouped_ops.load(Ordering::Relaxed),
                fallback_ops: c.fallback_ops.load(Ordering::Relaxed),
                queue_depth: inner.queues[rank].len(),
                latency: c.latency.lock().clone(),
                fabric: reports[rank],
            })
            .collect();
        ServerMetrics {
            per_rank,
            wall_elapsed_s: inner.started.elapsed().as_secs_f64(),
        }
    }
}

/// A lightweight client handle: submit ops, await outcomes. Thousands of
/// sessions can share one server; a session itself is not thread-safe
/// (clone the server and open more sessions instead).
pub struct Session {
    server: GdiServer,
    id: u64,
}

impl Session {
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Submit asynchronously; the ticket resolves to exactly one outcome.
    pub fn submit(&self, op: Op) -> Result<Ticket, SubmitError> {
        self.server.submit(op)
    }

    /// Submit and wait (one closed-loop op).
    pub fn execute(&self, op: Op) -> Result<OpOutcome, SubmitError> {
        self.submit(op).map(|t| t.wait())
    }
}

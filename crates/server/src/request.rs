//! The request/response vocabulary of the service layer.
//!
//! A client session submits [`Op`]s; each submission yields a [`Ticket`]
//! that resolves to exactly one [`OpOutcome`] — the acknowledgement
//! contract the stress tests assert (no lost acks, no double-apply).

use std::sync::Arc;
use std::time::Instant;

use gdi::{AppVertexId, GdiError, LabelId, PTypeId, PropertyValue};
use parking_lot::{Condvar, Mutex};

/// One client operation, mirroring the Table-3 interactive op kinds plus
/// the read-only point queries. Each op names the application vertex that
/// determines its owning rank (see [`crate::GdiServer::route`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Read one property (or the labels when `ptype` is `None`).
    GetVertexProps {
        v: AppVertexId,
        ptype: Option<PTypeId>,
    },
    /// Count incident edges.
    CountEdges { v: AppVertexId },
    /// Retrieve incident edge handles (returns the count to the client).
    GetEdges { v: AppVertexId },
    /// Insert a vertex, optionally labeled and with one property.
    AddVertex {
        v: AppVertexId,
        label: Option<LabelId>,
        prop: Option<(PTypeId, PropertyValue)>,
    },
    /// Delete a vertex and its incident edges.
    DeleteVertex { v: AppVertexId },
    /// Set/replace one property on a vertex.
    UpdateVertexProp {
        v: AppVertexId,
        ptype: PTypeId,
        value: PropertyValue,
    },
    /// Add a directed edge.
    AddEdge {
        from: AppVertexId,
        to: AppVertexId,
        label: Option<LabelId>,
    },
}

impl Op {
    /// The vertex whose owner rank serves this op.
    pub fn routing_vertex(&self) -> AppVertexId {
        match self {
            Op::GetVertexProps { v, .. }
            | Op::CountEdges { v }
            | Op::GetEdges { v }
            | Op::AddVertex { v, .. }
            | Op::DeleteVertex { v }
            | Op::UpdateVertexProp { v, .. } => *v,
            Op::AddEdge { from, .. } => *from,
        }
    }

    /// Read-only ops execute in the shared read transaction of a batch.
    pub fn is_read(&self) -> bool {
        matches!(
            self,
            Op::GetVertexProps { .. } | Op::CountEdges { .. } | Op::GetEdges { .. }
        )
    }

    /// The application id a successful `AddVertex` makes visible (used by
    /// the batcher to keep duplicate creates out of one group commit).
    pub fn creates_vertex(&self) -> Option<AppVertexId> {
        match self {
            Op::AddVertex { v, .. } => Some(*v),
            _ => None,
        }
    }
}

/// Successful payload of an op.
#[derive(Debug, Clone, PartialEq)]
pub enum OpReply {
    /// Write acknowledged (no payload).
    Unit,
    /// A count (edge counts, edge listings).
    Count(usize),
    /// Property values (empty when the vertex has none of the type).
    Props(Vec<PropertyValue>),
    /// Labels of a vertex.
    Labels(Vec<LabelId>),
    /// Scalar result of an OLAP job.
    Scalar(f64),
}

/// Exactly-once resolution of a submitted op.
#[derive(Debug, Clone, PartialEq)]
pub enum OpOutcome {
    /// The op committed (alone or as part of a group commit).
    Committed(OpReply),
    /// The op aborted; no effects are visible.
    Aborted(GdiError),
    /// A group commit failed mid-write-back (resource exhaustion): the
    /// engine does not report which objects persisted, so this op may or
    /// may not be applied. The distributed-systems "commit uncertain"
    /// answer — clients must not blindly retry non-idempotent ops.
    Indeterminate(GdiError),
    /// The op spent longer than [`crate::ServerOptions::deadline`] queued
    /// and was shed *before execution*: provably zero effects, always
    /// safe to retry (see [`crate::Session::execute_idempotent`]).
    DeadlineExceeded,
}

impl OpOutcome {
    pub fn is_committed(&self) -> bool {
        matches!(self, OpOutcome::Committed(_))
    }
}

/// Shared slot fulfilled by the serving rank, waited on by the client.
#[derive(Debug, Default)]
pub(crate) struct TicketInner {
    slot: Mutex<Option<OpOutcome>>,
    ready: Condvar,
}

impl TicketInner {
    pub(crate) fn fulfill(&self, outcome: OpOutcome) {
        let mut g = self.slot.lock();
        debug_assert!(g.is_none(), "ticket fulfilled twice (double ack)");
        *g = Some(outcome);
        self.ready.notify_all();
    }

    /// Resolve with `outcome` only if still pending (used by the
    /// drop-guard below; never overwrites a real ack).
    pub(crate) fn fulfill_if_pending(&self, outcome: OpOutcome) {
        let mut g = self.slot.lock();
        if g.is_none() {
            *g = Some(outcome);
            self.ready.notify_all();
        }
    }
}

/// Client-side handle to a pending op. `wait` blocks until the serving
/// rank publishes the outcome; every accepted submission is guaranteed to
/// be fulfilled exactly once (also on server shutdown).
#[derive(Debug, Clone)]
pub struct Ticket(pub(crate) Arc<TicketInner>);

impl Ticket {
    /// Block until the outcome is available.
    pub fn wait(&self) -> OpOutcome {
        let mut g = self.0.slot.lock();
        loop {
            if let Some(out) = g.clone() {
                return out;
            }
            self.0.ready.wait(&mut g);
        }
    }

    /// Non-blocking probe.
    pub fn try_get(&self) -> Option<OpOutcome> {
        self.0.slot.lock().clone()
    }
}

/// A routed request as it travels through a rank queue.
pub(crate) struct Request {
    pub op: Op,
    pub ticket: Arc<TicketInner>,
    pub submitted: Instant,
    /// Client-supplied idempotency token: the serving rank consults the
    /// dedup window before executing and records the committed outcome
    /// after, so a retried token never double-applies.
    pub token: Option<u64>,
}

/// No lost acks, ever: a request dropped before execution (a panicking
/// serve loop unwinding its batch, a queue torn down mid-flight) still
/// resolves its ticket — as an abort, which is honest, since an
/// unexecuted op has no visible effects.
impl Drop for Request {
    fn drop(&mut self) {
        self.ticket
            .fulfill_if_pending(OpOutcome::Aborted(GdiError::TransactionClosed));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_and_classification() {
        let v = AppVertexId(7);
        assert!(Op::CountEdges { v }.is_read());
        assert!(!Op::DeleteVertex { v }.is_read());
        let e = Op::AddEdge {
            from: AppVertexId(3),
            to: AppVertexId(9),
            label: None,
        };
        assert_eq!(e.routing_vertex(), AppVertexId(3));
        assert_eq!(e.creates_vertex(), None);
        let c = Op::AddVertex {
            v,
            label: None,
            prop: None,
        };
        assert_eq!(c.creates_vertex(), Some(v));
    }

    #[test]
    fn ticket_fulfil_and_wait() {
        let inner = Arc::new(TicketInner::default());
        let t = Ticket(inner.clone());
        assert!(t.try_get().is_none());
        inner.fulfill(OpOutcome::Committed(OpReply::Unit));
        assert_eq!(t.wait(), OpOutcome::Committed(OpReply::Unit));
    }
}

//! Live service metrics: per-rank throughput, latency percentiles and
//! abort rates, plus the fabric-level [`rma::RankReport`] counters
//! (requests served, batches drained, messages, simulated busy time)
//! collected when serving stops.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::Mutex;
use rma::RankReport;

/// Log2-bucketed nanosecond histogram (64 buckets), mergeable.
#[derive(Debug, Clone)]
pub struct LatencyHist {
    buckets: [u64; 64],
    count: u64,
    sum_ns: f64,
    max_ns: f64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self {
            buckets: [0; 64],
            count: 0,
            sum_ns: 0.0,
            max_ns: 0.0,
        }
    }
}

impl LatencyHist {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&mut self, ns: f64) {
        let b = (ns.max(1.0) as u64).ilog2().min(63) as usize;
        self.buckets[b] += 1;
        self.count += 1;
        self.sum_ns += ns;
        self.max_ns = self.max_ns.max(ns);
    }

    pub fn merge(&mut self, other: &LatencyHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns / self.count as f64
        }
    }

    pub fn max_ns(&self) -> f64 {
        self.max_ns
    }

    /// Upper bound of the bucket containing the p-th percentile sample,
    /// clamped to the largest observed sample — a bucket's power-of-two
    /// ceiling must never report a percentile above `max_ns` (e.g. a
    /// single 100 ns sample used to report p99 = 128).
    pub fn percentile_ns(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return ((1u64 << (i + 1).min(63)) as f64).min(self.max_ns);
            }
        }
        self.max_ns
    }
}

/// Counters one serving rank updates while draining (shared with the
/// metrics snapshotting side).
#[derive(Debug, Default)]
pub(crate) struct RankCounters {
    pub submitted: AtomicU64,
    pub rejected: AtomicU64,
    pub committed: AtomicU64,
    pub aborted: AtomicU64,
    pub batches: AtomicU64,
    pub grouped_ops: AtomicU64,
    pub fallback_ops: AtomicU64,
    /// Requests shed at drain time because they outlived the configured
    /// per-op deadline (resolved [`crate::OpOutcome::DeadlineExceeded`],
    /// never executed).
    pub deadline_misses: AtomicU64,
    /// Requests answered from the idempotency dedup window instead of
    /// re-executing (a retried token whose outcome was already decided).
    pub dedup_hits: AtomicU64,
    pub latency: Mutex<LatencyHist>,
}

impl RankCounters {
    pub fn complete(&self, committed: bool, grouped: bool, submitted_at: Instant) {
        if committed {
            self.committed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.aborted.fetch_add(1, Ordering::Relaxed);
        }
        if grouped {
            self.grouped_ops.fetch_add(1, Ordering::Relaxed);
        } else {
            self.fallback_ops.fetch_add(1, Ordering::Relaxed);
        }
        self.latency
            .lock()
            .add(submitted_at.elapsed().as_nanos() as f64);
    }
}

/// Snapshot of one rank's service state.
#[derive(Debug, Clone)]
pub struct RankMetrics {
    pub rank: usize,
    pub submitted: u64,
    pub rejected: u64,
    pub committed: u64,
    pub aborted: u64,
    pub batches: u64,
    /// Ops that committed/aborted as part of a group commit.
    pub grouped_ops: u64,
    /// Ops that went through the one-transaction-per-request fallback.
    pub fallback_ops: u64,
    /// Requests shed unexecuted because they outlived the per-op
    /// deadline ([`crate::ServerOptions::deadline`]).
    pub deadline_misses: u64,
    /// Requests answered from the idempotency dedup window without
    /// re-execution.
    pub dedup_hits: u64,
    pub queue_depth: usize,
    /// Client-observed **wall-clock** latency (submit → ack), including
    /// queueing and host scheduling. This is the serving-path SLO view;
    /// it is *not* on the simulated clock that sim-throughput uses (the
    /// engine-side simulated latencies are fig5's domain).
    pub latency: LatencyHist,
    /// Fabric counters of the serve phase (filled after serving stops).
    pub fabric: Option<RankReport>,
}

impl RankMetrics {
    pub fn abort_fraction(&self) -> f64 {
        let total = self.committed + self.aborted;
        if total == 0 {
            0.0
        } else {
            self.aborted as f64 / total as f64
        }
    }
}

/// What a crash recovery did, aggregated over ranks (built from
/// `gda::persist::RankRecovery` by [`crate::GdiServer::metrics`]).
#[derive(Debug, Clone, Default)]
pub struct RecoverySummary {
    /// Checkpoint id the recovery restored from (0 = genesis).
    pub snapshot_id: u64,
    /// Snapshot bytes restored across all ranks.
    pub snapshot_bytes: u64,
    /// Redo-log bytes replayed across all ranks.
    pub log_bytes: u64,
    /// Redo records parsed across all ranks.
    pub records: u64,
    /// Records applied (the rest were idempotently skipped).
    pub applied: u64,
    /// Records that failed to apply (should be zero).
    pub errors: u64,
    /// Slowest rank's simulated restore+replay seconds.
    pub max_sim_restore_s: f64,
    /// Slowest rank's wall-clock restore+replay seconds.
    pub max_wall_restore_s: f64,
    /// Ranks that finished restoring so far.
    pub ranks_restored: usize,
    /// `Some(P)` when this recovery **resharded** a `P`-rank snapshot
    /// onto a different live rank count (elastic restore).
    pub resharded_from: Option<usize>,
}

/// Whole-server snapshot: per-rank plus aggregates.
#[derive(Debug, Clone)]
pub struct ServerMetrics {
    /// One entry per fabric rank.
    pub per_rank: Vec<RankMetrics>,
    /// Wall-clock seconds since the server started accepting requests.
    pub wall_elapsed_s: f64,
    /// Successful collective checkpoints triggered through the server.
    pub checkpoints: u64,
    /// Collective maintenance passes submitted through the server
    /// (explicit [`crate::GdiServer::maintenance`] calls plus passes
    /// scheduled by `ServerOptions::maintenance_interval`).
    pub maintenance_runs: u64,
    /// Crash-recovery stats, when this server was booted via
    /// [`crate::GdiServer::recover`].
    pub recovery: Option<RecoverySummary>,
    /// Is the server currently in degraded read-only mode (entered on a
    /// failed checkpoint or observed store write errors; exits on the
    /// next successful checkpoint)?
    pub degraded: bool,
    /// Times the server *entered* degraded read-only mode.
    pub degraded_entries: u64,
    /// Write submissions rejected with [`crate::SubmitError::ReadOnly`]
    /// while degraded.
    pub write_rejects: u64,
    /// Retries performed by [`crate::Session::execute_idempotent`].
    pub retries: u64,
    /// Storage-side fault injections fired on the shared fault plane
    /// (see `gda::faults`); 0 when persistence is off or no fault armed.
    pub fault_hits: u64,
    /// Fabric execution backend the serve loops ran on (`Sim` = LogGP
    /// virtual time, `Wall` = real clock). `None` until the first serve
    /// loop starts.
    pub backend: Option<rma::BackendKind>,
}

impl ServerMetrics {
    pub fn committed(&self) -> u64 {
        self.per_rank.iter().map(|r| r.committed).sum()
    }

    pub fn aborted(&self) -> u64 {
        self.per_rank.iter().map(|r| r.aborted).sum()
    }

    pub fn rejected(&self) -> u64 {
        self.per_rank.iter().map(|r| r.rejected).sum()
    }

    pub fn abort_fraction(&self) -> f64 {
        let (c, a) = (self.committed(), self.aborted());
        if c + a == 0 {
            0.0
        } else {
            a as f64 / (c + a) as f64
        }
    }

    /// Deadline-shed requests over all ranks.
    pub fn deadline_misses(&self) -> u64 {
        self.per_rank.iter().map(|r| r.deadline_misses).sum()
    }

    /// Idempotency dedup-window hits over all ranks.
    pub fn dedup_hits(&self) -> u64 {
        self.per_rank.iter().map(|r| r.dedup_hits).sum()
    }

    /// Merged latency histogram over all ranks.
    pub fn latency(&self) -> LatencyHist {
        let mut h = LatencyHist::new();
        for r in &self.per_rank {
            h.merge(&r.latency);
        }
        h
    }

    /// Committed ops per wall-clock second.
    pub fn wall_throughput_ops(&self) -> f64 {
        if self.wall_elapsed_s <= 0.0 {
            0.0
        } else {
            self.committed() as f64 / self.wall_elapsed_s
        }
    }

    /// Sum a fabric-report counter over all serving ranks (reports are
    /// captured when serving stops).
    fn fabric_sum(&self, field: impl Fn(&RankReport) -> u64) -> u64 {
        self.per_rank
            .iter()
            .filter_map(|r| r.fabric.as_ref().map(&field))
            .sum()
    }

    /// Fabric-side fault injections fired (quiesce/collective points of
    /// the shared fault plane) over all serving ranks.
    pub fn fabric_fault_injections(&self) -> u64 {
        self.fabric_sum(|f| f.fault_injections)
    }

    /// Translation-cache hits over all serving ranks.
    pub fn cache_hits(&self) -> u64 {
        self.fabric_sum(|f| f.cache_hits)
    }

    /// Translation-cache misses over all serving ranks.
    pub fn cache_misses(&self) -> u64 {
        self.fabric_sum(|f| f.cache_misses)
    }

    /// Translation-cache invalidations over all serving ranks.
    pub fn cache_invalidations(&self) -> u64 {
        self.fabric_sum(|f| f.cache_invalidations)
    }

    /// OLAP scan-view builds (full raw-window sweeps) over all serving
    /// ranks.
    pub fn scan_builds(&self) -> u64 {
        self.fabric_sum(|f| f.scan_builds)
    }

    /// OLAP jobs served from a revalidated cached scan view.
    pub fn scan_reuses(&self) -> u64 {
        self.fabric_sum(|f| f.scan_reuses)
    }

    /// Scan views delta-patched from the redo-log tail.
    pub fn scan_patches(&self) -> u64 {
        self.fabric_sum(|f| f.scan_patches)
    }

    /// Declarative-query executions over all serving ranks (the `query`
    /// crate's collective executor; each execution counts once per rank).
    pub fn query_execs(&self) -> u64 {
        self.fabric_sum(|f| f.query_execs)
    }

    /// Bindings surviving query stages over all serving ranks.
    pub fn query_rows(&self) -> u64 {
        self.fabric_sum(|f| f.query_rows)
    }

    /// Adjacency entries inspected by query expand stages over all
    /// serving ranks.
    pub fn query_expands(&self) -> u64 {
        self.fabric_sum(|f| f.query_expands)
    }

    /// Bytes routed through query stage-level exchanges over all
    /// serving ranks.
    pub fn query_bytes(&self) -> u64 {
        self.fabric_sum(|f| f.query_bytes)
    }

    /// Snapshot epochs pinned by read-only transactions over all
    /// serving ranks (MVCC snapshot-isolation read path).
    pub fn snapshot_pins(&self) -> u64 {
        self.fabric_sum(|f| f.snapshot_pins)
    }

    /// Objects resolved through the lock-free validated snapshot read
    /// path (including version-chain walks) over all serving ranks.
    pub fn snapshot_reads(&self) -> u64 {
        self.fabric_sum(|f| f.snapshot_reads)
    }

    /// Read-epoch watermark advances performed by committing writers
    /// over all serving ranks.
    pub fn watermark_advances(&self) -> u64 {
        self.fabric_sum(|f| f.watermark_advances)
    }

    /// Pre-images archived onto version chains by committing writers
    /// over all serving ranks.
    pub fn version_archives(&self) -> u64 {
        self.fabric_sum(|f| f.version_archives)
    }

    /// Archived versions freed by chain truncation below the snapshot
    /// floor over all serving ranks.
    pub fn chain_truncations(&self) -> u64 {
        self.fabric_sum(|f| f.chain_truncations)
    }

    /// Engine-level maintenance passes over all serving ranks (each
    /// collective pass counts once per rank).
    pub fn maintenance_passes(&self) -> u64 {
        self.fabric_sum(|f| f.maintenance_passes)
    }

    /// Archived MVCC versions reclaimed by the maintenance vacuum over
    /// all serving ranks.
    pub fn vacuumed_versions(&self) -> u64 {
        self.fabric_sum(|f| f.vacuumed_versions)
    }

    /// Holder chains repacked by maintenance compaction over all
    /// serving ranks.
    pub fn compacted_chains(&self) -> u64 {
        self.fabric_sum(|f| f.compacted_chains)
    }

    /// Continuation blocks moved by maintenance compaction over all
    /// serving ranks.
    pub fn compacted_blocks(&self) -> u64 {
        self.fabric_sum(|f| f.compacted_blocks)
    }

    /// Snapshot-chain bytes checksum-verified by maintenance over all
    /// serving ranks.
    pub fn verified_bytes(&self) -> u64 {
        self.fabric_sum(|f| f.verified_bytes)
    }

    /// Checksum/readability errors the snapshot verifier flagged over
    /// all serving ranks (should be zero on a healthy store).
    pub fn verify_errors(&self) -> u64 {
        self.fabric_sum(|f| f.verify_errors)
    }

    /// Incremental (delta) checkpoints published over all serving ranks
    /// (each collective delta checkpoint counts once per rank).
    pub fn delta_checkpoints(&self) -> u64 {
        self.fabric_sum(|f| f.delta_checkpoints)
    }

    /// Dirty chunks written by delta checkpoints over all serving ranks.
    pub fn delta_chunks(&self) -> u64 {
        self.fabric_sum(|f| f.delta_chunks)
    }

    /// Translation-cache hit fraction (0 when the cache was never probed).
    pub fn cache_hit_fraction(&self) -> f64 {
        gda::CacheStats {
            hits: self.cache_hits(),
            misses: self.cache_misses(),
            ..Default::default()
        }
        .hit_fraction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_monotone() {
        let mut h = LatencyHist::new();
        for i in 1..=1000u64 {
            h.add(i as f64 * 100.0);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.percentile_ns(50.0);
        let p95 = h.percentile_ns(95.0);
        let p99 = h.percentile_ns(99.0);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(h.mean_ns() > 0.0);
        assert!(h.max_ns() >= 100_000.0 - 1e-9);
    }

    /// Regression: a reported percentile used to be the bucket's
    /// power-of-two upper bound, exceeding `max_ns` (a single 100 ns
    /// sample reported p99 = 128).
    #[test]
    fn percentile_never_exceeds_max() {
        let mut h = LatencyHist::new();
        h.add(100.0);
        assert_eq!(h.percentile_ns(99.0), 100.0);
        let mut h = LatencyHist::new();
        for i in 0..500u64 {
            h.add((i * 37 % 9000) as f64 + 1.0);
        }
        for p in [1.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            assert!(
                h.percentile_ns(p) <= h.max_ns(),
                "p{p} = {} > max {}",
                h.percentile_ns(p),
                h.max_ns()
            );
        }
        // monotonicity survives the clamp
        assert!(h.percentile_ns(50.0) <= h.percentile_ns(99.0));
    }

    #[test]
    fn histogram_merge() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        a.add(10.0);
        b.add(1e6);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_ns(), 1e6);
    }
}

//! # `server` — the GDI multi-session service layer
//!
//! The paper's engine (GDI-RMA, the [`gda`] crate) is driven rank-by-rank
//! from inside fabric closures. This crate adds the missing front-end: a
//! service layer that multiplexes thousands of concurrent client
//! *sessions* onto the engine and amortizes commit costs, turning the
//! reproduction into a system that serves traffic.
//!
//! * **Sessions** ([`Session`]) are lightweight handles issuing OLTP ops
//!   ([`Op`]), read-only queries and collective OLAP jobs
//!   ([`GdiServer::submit_olap`]). Every accepted submission yields a
//!   [`Ticket`] that resolves to exactly one [`OpOutcome`] — commit or
//!   abort, never a lost ack.
//! * **Routing**: each op is routed to the fabric rank that owns its
//!   vertex (the engine's round-robin partitioning) through a bounded
//!   MPSC queue per rank.
//! * **Request batching**: a serving rank drains up to
//!   [`ServerOptions::max_batch`] requests per cycle
//!   ([`rma::RankCtx::record_drain`] charges the amortized poll cost) and
//!   coalesces them: reads share one read-only transaction, writes share
//!   one grouped read-write transaction.
//! * **Group commit**: the write group closes with a single commit whose
//!   write-back runs as one non-blocking RMA batch
//!   ([`gda::GdaRank::begin_grouped`]); per-session outcomes are fanned
//!   back individually, with an exactly-once fallback discipline (see
//!   `batch.rs`).
//! * **Admission control**: the queue bound plus an
//!   [`AdmissionPolicy`] — block (backpressure) or reject (load
//!   shedding) — with live per-rank throughput, latency-percentile and
//!   abort-rate metrics ([`GdiServer::metrics`]) built on
//!   [`rma::CommStats`] fabric counters.
//!
//! ## Shape of a serving process
//!
//! ```text
//! sessions (any threads)          fabric ranks (inside fabric.run)
//!   session.execute(op) ──► queue[route(op)] ──► serve_rank: drain
//!   ticket.wait() ◄──────── outcomes fanned ◄─── batch → group commit
//! ```
//!
//! The server is created outside the fabric; every rank calls
//! [`GdiServer::serve_rank`] inside `fabric.run` (after loading), client
//! threads submit concurrently, and [`GdiServer::shutdown`] drains and
//! stops the loops. See `workloads::traffic` for the Table-3 session
//! driver and `gdi-bench`'s `server_throughput` for the batched-versus-
//! unbatched comparison.

pub mod batch;
pub mod metrics;
pub mod queue;
pub mod request;
pub mod server;

pub use metrics::{LatencyHist, RankMetrics, RecoverySummary, ServerMetrics};
pub use request::{Op, OpOutcome, OpReply, Ticket};
pub use server::{
    AdmissionPolicy, GdiServer, OlapJobFn, RoutePolicy, ServeSummary, ServerOptions, Session,
    SubmitError,
};

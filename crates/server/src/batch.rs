//! Batch execution: coalescing compatible client ops into shared engine
//! transactions and fanning per-session outcomes back.
//!
//! One drain cycle yields one batch. Reads execute first inside a shared
//! read-only transaction; writes execute in grouped read-write
//! transactions closed by **one** commit each (group commit). The serial
//! order "all reads, then the write groups" is what every session is
//! acknowledged against, so the result is serializable.
//!
//! ## Prepare-then-mutate, and the exactly-once discipline
//!
//! Inside a write group every op runs in two phases: *prepare* (resolve
//! ids, take every write lock via [`Transaction::prepare_write`], no
//! mutation) and *mutate* (cache-only updates that can no longer
//! conflict). A prepare failure — usually a cross-rank lock conflict —
//! leaves the shared transaction untouched, so the batcher simply
//! acknowledges that op as aborted and keeps the group going: no group
//! abort, no re-execution, no double-apply.
//!
//! Two rare paths remain:
//! * an error that *does* poison the shared transaction (engine aborts
//!   it): the group aborts — zero visible effects — and every op without
//!   an outcome yet re-executes individually;
//! * a failed group *commit* (resource exhaustion mid-write-back): every
//!   grouped op is acknowledged [`OpOutcome::Indeterminate`] without
//!   re-execution, because the engine does not guarantee which objects of
//!   a failed commit persisted and re-running could double-apply. The
//!   batcher keeps this path nearly unreachable by deduplicating same-id
//!   `AddVertex` ops (the one commit-time error a front-end can provoke)
//!   out of the group.

use std::sync::atomic::Ordering;
use std::time::Instant;

use gda::{DPtr, GdaRank, Transaction};
use gdi::{AccessMode, EdgeOrientation, GdiError, TxStatus};
use parking_lot::Mutex;
use rustc_hash::FxHashSet;

use crate::metrics::RankCounters;
use crate::request::{Op, OpOutcome, OpReply, Request};
use crate::server::{DedupWindow, ServerOptions};

/// Shared per-rank execution context: outcome counters plus the
/// server-wide idempotency window committed outcomes are recorded into.
struct BatchCtx<'a> {
    counters: &'a RankCounters,
    dedup: &'a Mutex<DedupWindow>,
}

/// Apply one op inside an open transaction (unbatched path: ordinary
/// abort-on-critical-error semantics).
fn apply_op(tx: &Transaction, op: &Op) -> Result<OpReply, GdiError> {
    match op {
        Op::GetVertexProps { v, ptype } => {
            let id = tx.translate_vertex_id(*v)?;
            match ptype {
                Some(p) => Ok(OpReply::Props(tx.properties(id, *p)?)),
                None => Ok(OpReply::Labels(tx.labels(id)?)),
            }
        }
        Op::CountEdges { v } => {
            let id = tx.translate_vertex_id(*v)?;
            Ok(OpReply::Count(tx.edge_count(id, EdgeOrientation::Any)?))
        }
        Op::GetEdges { v } => {
            let id = tx.translate_vertex_id(*v)?;
            Ok(OpReply::Count(tx.edges(id, EdgeOrientation::Any)?.len()))
        }
        Op::AddVertex { v, label, prop } => {
            let id = tx.create_vertex(*v)?;
            if let Some(l) = label {
                tx.add_label(id, *l)?;
            }
            if let Some((p, value)) = prop {
                tx.add_property(id, *p, value)?;
            }
            Ok(OpReply::Unit)
        }
        Op::DeleteVertex { v } => {
            let id = tx.translate_vertex_id(*v)?;
            tx.delete_vertex(id)?;
            Ok(OpReply::Unit)
        }
        Op::UpdateVertexProp { v, ptype, value } => {
            let id = tx.translate_vertex_id(*v)?;
            tx.update_property(id, *ptype, value)?;
            Ok(OpReply::Unit)
        }
        Op::AddEdge { from, to, label } => {
            let a = tx.translate_vertex_id(*from)?;
            // `to` is the one vertex the request does not route by: its
            // owner rank's write-through never reaches this rank, so the
            // translation must revalidate even in a pinned drain cycle
            let b = tx.translate_vertex_id_fresh(*to)?;
            tx.add_edge(a, b, *label, true)?;
            Ok(OpReply::Unit)
        }
    }
}

/// Result of applying one op inside a *shared* (grouped) transaction.
enum GroupApply {
    /// Applied; commits with the group.
    Done(OpReply),
    /// Not applied, transaction untouched: acknowledge the abort and
    /// keep the group going.
    Skip(GdiError),
}

/// Undo a create after a post-create validation failure, keeping the op
/// all-or-nothing inside the shared transaction. The vertex is
/// transaction-local (created, unlocked by nobody else), so the delete
/// is a cache-only operation that cannot conflict.
fn rollback_create(tx: &Transaction, id: DPtr, e: GdiError) -> Result<GroupApply, GdiError> {
    tx.delete_vertex(id)?;
    Ok(GroupApply::Skip(e))
}

/// Prepare-then-mutate application of one write op in a shared grouped
/// transaction. `Err` means the shared transaction may be poisoned (the
/// caller aborts the group); `Ok(Skip)` means the op failed cleanly.
fn apply_grouped(tx: &Transaction, op: &Op) -> Result<GroupApply, GdiError> {
    macro_rules! prep {
        ($e:expr) => {
            match $e {
                Ok(v) => v,
                // prepare-phase failure: nothing mutated, skip this op
                Err(e) => return Ok(GroupApply::Skip(e)),
            }
        };
    }
    match op {
        Op::AddVertex { v, label, prop } => {
            let id = prep!(tx.create_vertex(*v));
            if let Some(l) = label {
                if let Err(e) = tx.add_label(id, *l) {
                    return rollback_create(tx, id, e);
                }
            }
            if let Some((p, value)) = prop {
                if let Err(e) = tx.add_property(id, *p, value) {
                    return rollback_create(tx, id, e);
                }
            }
            Ok(GroupApply::Done(OpReply::Unit))
        }
        Op::DeleteVertex { v } => {
            let id = prep!(tx.translate_vertex_id(*v));
            // probe-lock the deletion's whole write-set (the engine owns
            // the enumeration) so the delete itself cannot conflict
            prep!(tx.prepare_delete_vertex(id));
            tx.delete_vertex(id)?;
            Ok(GroupApply::Done(OpReply::Unit))
        }
        Op::UpdateVertexProp { v, ptype, value } => {
            let id = prep!(tx.translate_vertex_id(*v));
            prep!(tx.prepare_write(id));
            prep!(tx.update_property(id, *ptype, value));
            Ok(GroupApply::Done(OpReply::Unit))
        }
        Op::AddEdge { from, to, label } => {
            let a = prep!(tx.translate_vertex_id(*from));
            // non-routed endpoint: revalidate past the pinned snapshot
            let b = prep!(tx.translate_vertex_id_fresh(*to));
            prep!(tx.prepare_write(a));
            prep!(tx.prepare_write(b));
            tx.add_edge(a, b, *label, true)?;
            Ok(GroupApply::Done(OpReply::Unit))
        }
        // reads never enter write groups
        Op::GetVertexProps { .. } | Op::CountEdges { .. } | Op::GetEdges { .. } => {
            Err(GdiError::InvalidArgument("read op in a write group"))
        }
    }
}

/// Classify a failed *write* commit: pre-write-back aborts
/// (StaleMetadata, collective validation) are provably effect-free,
/// while mid-write-back failures (resource exhaustion) may have
/// persisted earlier objects — the commit-uncertain case.
fn failed_commit_outcome(e: GdiError) -> OpOutcome {
    match e {
        GdiError::StaleMetadata | GdiError::ValidationFailed => OpOutcome::Aborted(e),
        _ => OpOutcome::Indeterminate(e),
    }
}

/// One transaction per request: the unbatched path, also the fallback
/// when a group poisons.
fn run_individual(eng: &GdaRank, req: &Request) -> OpOutcome {
    let read = req.op.is_read();
    let mode = if read {
        AccessMode::ReadOnly
    } else {
        AccessMode::ReadWrite
    };
    let tx = eng.begin(mode);
    match apply_op(&tx, &req.op) {
        Ok(reply) => match tx.commit() {
            Ok(()) => OpOutcome::Committed(reply),
            // reads have no effects, so their failed commit is a clean
            // abort; failed write commits are classified by error
            Err(e) if read => OpOutcome::Aborted(e),
            Err(e) => failed_commit_outcome(e),
        },
        Err(e) => {
            tx.abort();
            OpOutcome::Aborted(e)
        }
    }
}

fn fulfill(bc: &BatchCtx, req: &Request, outcome: OpOutcome, grouped: bool, t0: Instant) {
    // record decided-and-applied outcomes for the token's retries;
    // aborts stay absent (no effects — a retry may honestly re-execute)
    if let (Some(token), true) = (req.token, outcome.is_committed()) {
        bc.dedup.lock().record(token, outcome.clone());
    }
    bc.counters.complete(outcome.is_committed(), grouped, t0);
    req.ticket.fulfill(outcome);
}

/// Execute one drained batch. `group_commit = false` serves every request
/// in its own transaction (the baseline the throughput bench compares
/// against).
///
/// The whole drain cycle shares one translation-cache epoch check
/// ([`GdaRank::cache_begin_cycle`]): the owner-rank epoch words are
/// snapshotted once per batch instead of revalidated per op, and this
/// rank's own commits stay exact through the cache's write-through.
/// Pinning costs one remote `aget` per rank, so it only pays off once a
/// batch carries at least that many ops — tiny drains (the unbatched
/// baseline, an idle server) keep per-op revalidation instead.
pub(crate) fn execute_batch(
    eng: &GdaRank,
    counters: &RankCounters,
    batch: Vec<Request>,
    opts: &ServerOptions,
    dedup: &Mutex<DedupWindow>,
) -> ReadTiming {
    let bc = BatchCtx { counters, dedup };
    // triage before execution: requests that outlived the per-op
    // deadline are shed (provably unexecuted, safe to retry); tokened
    // requests whose outcome is already decided in the dedup window are
    // answered from it (a retry after a lost ack) — never re-applied
    let mut live: Vec<Request> = Vec::with_capacity(batch.len());
    for req in batch {
        if let Some(d) = opts.deadline {
            if req.submitted.elapsed() > d {
                counters.deadline_misses.fetch_add(1, Ordering::Relaxed);
                req.ticket.fulfill(OpOutcome::DeadlineExceeded);
                continue;
            }
        }
        if let Some(token) = req.token {
            if let Some(prev) = dedup.lock().get(token) {
                counters.dedup_hits.fetch_add(1, Ordering::Relaxed);
                req.ticket.fulfill(prev);
                continue;
            }
        }
        live.push(req);
    }
    if live.is_empty() {
        return ReadTiming::default();
    }
    let pin = live.len() >= eng.nranks();
    if pin {
        eng.cache_begin_cycle();
    }
    let timing = execute_batch_inner(eng, &bc, live, opts.group_commit, opts.write_group);
    if pin {
        eng.cache_end_cycle();
    }
    timing
}

/// Active-clock time a batch spent inside **read** requests (simulated ns
/// on the LogGP backend, wall ns otherwise) and how many it served — the
/// per-class service-time split the read-path benches gate on, which the
/// blended per-op number can't show (a handful of write commits amortize
/// MVCC bookkeeping that would otherwise drown the read-side win).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ReadTiming {
    pub read_ns: f64,
    pub read_ops: u64,
}

impl ReadTiming {
    fn add(&mut self, ns: f64, ops: u64) {
        self.read_ns += ns;
        self.read_ops += ops;
    }
}

fn execute_batch_inner(
    eng: &GdaRank,
    bc: &BatchCtx,
    batch: Vec<Request>,
    group_commit: bool,
    write_group: usize,
) -> ReadTiming {
    let mut timing = ReadTiming::default();
    if !group_commit || batch.len() == 1 {
        for req in &batch {
            let t0 = eng.ctx().now_ns();
            let out = run_individual(eng, req);
            fulfill(bc, req, out, false, req.submitted);
            if req.op.is_read() {
                timing.add(eng.ctx().now_ns() - t0, 1);
            }
        }
        return timing;
    }

    let mut reads: Vec<&Request> = Vec::new();
    let mut writes: Vec<&Request> = Vec::new();
    let mut solo: Vec<&Request> = Vec::new();
    let mut created: FxHashSet<u64> = FxHashSet::default();
    for req in &batch {
        if req.op.is_read() {
            reads.push(req);
        } else if let Some(app) = req.op.creates_vertex() {
            // only the first create of an app id may join a group; a
            // duplicate would fail at commit time (DHT insert) and poison
            // the whole group's outcome
            if created.insert(app.0) {
                writes.push(req);
            } else {
                solo.push(req);
            }
        } else {
            writes.push(req);
        }
    }

    // ---- shared read-only transaction --------------------------------
    if !reads.is_empty() {
        let read_t0 = eng.ctx().now_ns();
        let tx = eng.begin(AccessMode::ReadOnly);
        // outcomes are buffered and acknowledged only after the shared
        // transaction passes commit-time validation (§3.8 staleness) —
        // acking earlier would bypass a check the direct API surfaces
        let mut buffered: Vec<(&Request, OpOutcome)> = Vec::with_capacity(reads.len());
        for req in &reads {
            if tx.status() != TxStatus::Active {
                // a critical error (read-lock conflict) killed the shared
                // transaction; the remaining reads fall back individually
                let out = run_individual(eng, req);
                fulfill(bc, req, out, false, req.submitted);
                continue;
            }
            match apply_op(&tx, &req.op) {
                Ok(reply) => buffered.push((req, OpOutcome::Committed(reply))),
                Err(e) if tx.status() == TxStatus::Active => {
                    // honest per-op failure (NotFound etc.), tx unharmed
                    buffered.push((req, OpOutcome::Aborted(e)));
                }
                Err(_) => {
                    // this read's lock conflict poisoned the shared tx:
                    // give it the same individual retry the reads behind
                    // it will get
                    let out = run_individual(eng, req);
                    fulfill(bc, req, out, false, req.submitted);
                }
            }
        }
        let validated = tx.status() != TxStatus::Active || tx.commit().is_ok();
        for (req, outcome) in buffered {
            if validated || !outcome.is_committed() {
                fulfill(bc, req, outcome, true, req.submitted);
            } else {
                // stale-metadata commit failure: reads are effect-free,
                // so re-run against a fresh snapshot
                let out = run_individual(eng, req);
                fulfill(bc, req, out, false, req.submitted);
            }
        }
        timing.add(eng.ctx().now_ns() - read_t0, reads.len() as u64);
    }

    // ---- grouped write transactions (group commit) --------------------
    // bounded sub-groups keep the write-lock footprint (and thus the
    // cross-rank conflict window) proportional to `write_group`, not to
    // whatever the drain returned; `write_group == 1` degenerates to the
    // per-request path inside execute_write_group
    for chunk in writes.chunks(write_group.max(1)) {
        execute_write_group(eng, bc, chunk);
    }

    // ---- deduplicated creates, after the groups made theirs visible ---
    for req in &solo {
        let out = run_individual(eng, req);
        fulfill(bc, req, out, false, req.submitted);
    }
    timing
}

/// One write group: a single grouped transaction, one commit, outcomes
/// fanned back per session (see the module docs for the discipline).
fn execute_write_group(eng: &GdaRank, bc: &BatchCtx, writes: &[&Request]) {
    if writes.is_empty() {
        return;
    }
    if writes.len() == 1 {
        let req = writes[0];
        let out = run_individual(eng, req);
        fulfill(bc, req, out, false, req.submitted);
        return;
    }
    let tx = eng.begin_grouped(AccessMode::ReadWrite);
    let mut done: Vec<(&Request, OpReply)> = Vec::with_capacity(writes.len());
    let mut poison_at: Option<usize> = None;
    for (i, req) in writes.iter().enumerate() {
        match apply_grouped(&tx, &req.op) {
            Ok(GroupApply::Done(reply)) if tx.status() == TxStatus::Active => {
                done.push((req, reply));
            }
            Ok(GroupApply::Skip(e)) if tx.status() == TxStatus::Active => {
                // clean conflict: this op aborts, the group lives on
                fulfill(bc, req, OpOutcome::Aborted(e), true, req.submitted);
            }
            // the shared transaction was poisoned (engine-level abort)
            _ => {
                poison_at = Some(i);
                break;
            }
        }
    }
    match poison_at {
        None => match tx.commit() {
            Ok(()) => {
                for (req, reply) in done {
                    fulfill(bc, req, OpOutcome::Committed(reply), true, req.submitted);
                }
            }
            Err(e) => match failed_commit_outcome(e) {
                OpOutcome::Aborted(_) => {
                    // pre-write-back abort (stale metadata / validation):
                    // provably zero effects, so every applied op gets its
                    // honest individual re-run
                    for (req, _) in done {
                        let out = run_individual(eng, req);
                        fulfill(bc, req, out, false, req.submitted);
                    }
                }
                uncertain => {
                    // partial persistence is possible and re-running
                    // could double-apply: report commit-uncertain
                    for (req, _) in done {
                        fulfill(bc, req, uncertain.clone(), true, req.submitted);
                    }
                }
            },
        },
        Some(i) => {
            // group aborted: zero visible effects. Every op without an
            // outcome yet (applied ones and the unprocessed tail) gets
            // its honest individual execution.
            tx.abort();
            for (req, _) in done {
                let out = run_individual(eng, req);
                fulfill(bc, req, out, false, req.submitted);
            }
            for req in &writes[i..] {
                let out = run_individual(eng, req);
                fulfill(bc, req, out, false, req.submitted);
            }
        }
    }
}

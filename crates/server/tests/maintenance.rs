//! Server-level background maintenance: explicit collective passes
//! ([`GdiServer::maintenance`]), scheduled passes between drain cycles
//! ([`ServerOptions::maintenance_interval`]), and the maintenance
//! counters surfaced through [`server::ServerMetrics`].

use gda::{GdaConfig, GdaDb};
use gdi::{AppVertexId, Datatype, EntityType, Multiplicity, PTypeId, PropertyValue, SizeType};
use rma::CostModel;
use server::{GdiServer, Op, ServerOptions};

/// Register a byte-blob vertex property type collectively and return it.
fn setup_blob_ptype(db: &std::sync::Arc<GdaDb>, fabric: &rma::Fabric) -> PTypeId {
    let ids = fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let pt = if ctx.rank() == 0 {
            eng.create_ptype(
                "blob",
                Datatype::Byte,
                EntityType::Vertex,
                Multiplicity::Single,
                SizeType::NoLimit,
                0,
            )
            .unwrap()
            .0 as u64
        } else {
            0
        };
        let pt = ctx.allreduce_max_u64(pt);
        eng.refresh_meta();
        pt
    });
    PTypeId(ids[0] as u32)
}

#[test]
fn explicit_maintenance_reclaims_mvcc_garbage_while_serving() {
    let cfg = GdaConfig::tiny(); // mvcc on, chain limit 4
    let (db, fabric) = GdaDb::with_fabric("srv-maint", cfg, 2, CostModel::default());
    let blob = setup_blob_ptype(&db, &fabric);
    let server = GdiServer::new(db.clone(), ServerOptions::default());
    let mut report = None;
    std::thread::scope(|s| {
        let srv = &server;
        let ranks = s.spawn(move || fabric.run(|ctx| srv.serve_rank(ctx)));
        let session = server.session();
        for v in 1..=4u64 {
            let out = session
                .execute(Op::AddVertex {
                    v: AppVertexId(v),
                    label: None,
                    prop: None,
                })
                .unwrap();
            assert!(out.is_committed(), "{out:?}");
        }
        // every overwrite archives a pre-image onto the version chain;
        // the commit path only truncates past the chain limit, so the
        // cold remainder is exactly what the vacuum must reclaim
        for round in 0..6u64 {
            for v in 1..=4u64 {
                let out = session
                    .execute(Op::UpdateVertexProp {
                        v: AppVertexId(v),
                        ptype: blob,
                        value: PropertyValue::Bytes(vec![round as u8; 8]),
                    })
                    .unwrap();
                assert!(out.is_committed(), "{out:?}");
            }
        }
        report = Some(server.maintenance().unwrap());
        server.shutdown();
        ranks.join().unwrap();
    });
    let report = report.unwrap();
    assert!(report.vacuumed_versions >= 1, "{report:?}");
    assert!(report.vacuumed_blocks >= 1, "{report:?}");
    assert_eq!(report.verify_errors, 0, "{report:?}");

    let m = server.metrics();
    assert_eq!(m.maintenance_runs, 1);
    // engine-level counters: one collective pass counted once per rank
    assert_eq!(m.maintenance_passes(), 2);
    assert!(m.vacuumed_versions() >= report.vacuumed_versions);
    assert_eq!(m.verify_errors(), 0);
    // the overwritten vertices stay readable after the vacuum
    assert!(m.committed() >= 4 + 24);
}

#[test]
fn scheduled_maintenance_runs_between_drain_cycles() {
    let cfg = GdaConfig::tiny();
    let (db, fabric) = GdaDb::with_fabric("srv-maint-sched", cfg, 2, CostModel::default());
    let blob = setup_blob_ptype(&db, &fabric);
    let opts = ServerOptions {
        maintenance_interval: Some(1),
        max_batch: 4,
        ..ServerOptions::default()
    };
    let server = GdiServer::new(db.clone(), opts);
    std::thread::scope(|s| {
        let srv = &server;
        let ranks = s.spawn(move || fabric.run(|ctx| srv.serve_rank(ctx)));
        let session = server.session();
        // even app ids route to rank 0, so rank 0 drains batches and
        // its cadence fires after each one
        let out = session
            .execute(Op::AddVertex {
                v: AppVertexId(2),
                label: None,
                prop: None,
            })
            .unwrap();
        assert!(out.is_committed(), "{out:?}");
        for round in 0..8u64 {
            let out = session
                .execute(Op::UpdateVertexProp {
                    v: AppVertexId(2),
                    ptype: blob,
                    value: PropertyValue::Bytes(vec![round as u8; 8]),
                })
                .unwrap();
            assert!(out.is_committed(), "{out:?}");
        }
        server.shutdown();
        ranks.join().unwrap();
    });
    let m = server.metrics();
    assert!(m.maintenance_runs >= 1, "cadence never fired: {m:?}");
    // every scheduled run executed collectively on both ranks
    assert_eq!(m.maintenance_passes(), 2 * m.maintenance_runs);
    assert_eq!(m.verify_errors(), 0);
    // the vacuum kept the hot vertex's chain bounded without touching
    // its live version (all later reads committed above)
    assert!(m.vacuumed_versions() >= 1, "{m:?}");
}

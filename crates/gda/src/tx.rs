//! Transactions and the graph-data CRUD routines (§5.6).
//!
//! A [`Transaction`] holds all per-transaction state the paper describes:
//! a hashmap from internal ids to cached *holder* objects (so the same
//! vertex is never fetched twice), the set of acquired distributed RW
//! locks, and the dirty-object list written back at commit. All changes
//! are **visible only locally** until commit; commit writes dirty blocks,
//! updates the internal DHT and the explicit indexes, and releases locks —
//! two-phase locking end to end, giving serializability for graph data.
//!
//! Conflicts do not block indefinitely: lock acquisition is bounded, and a
//! failed acquisition aborts the transaction with
//! `GDI_ERROR_LOCK_CONFLICT` (a transaction-critical error). This is the
//! mechanism behind the failed-transaction percentages in the paper's
//! Fig. 4.
//!
//! Collective transactions replicate their state per process (each rank
//! holds its own `Transaction`) and close with collective communication:
//! an abort-vote allreduce before write-back, then a barrier (§5.6).

use std::cell::{Cell, RefCell};

use rustc_hash::{FxHashMap, FxHashSet};

use gdi::{
    AccessMode, AppVertexId, Constraint, Direction, EdgeOrientation, GdiError, GdiResult, LabelId,
    PTypeId, PropertyValue, TxKind, TxStatus,
};

use crate::db::GdaRank;
use crate::dptr::{owner_rank, DPtr, EdgeUid};
use crate::hio;
use crate::holder::{EdgeRecord, Holder};
use crate::index::{holder_matches, IndexId, Posting};
use crate::locks::LockKind;

/// Cached state of one object (vertex holder or heavy-edge holder) inside a
/// transaction.
#[derive(Debug)]
struct CachedObj {
    holder: Holder,
    blocks: Vec<DPtr>,
    lock: Option<LockKind>,
    dirty: bool,
    created: bool,
    deleted: bool,
    /// Did this transaction change the object's **topology** — its
    /// membership (create/delete) or its edge-record list? Commit bumps
    /// the topology-epoch word of every rank holding a topo-dirty
    /// object, which is what invalidates cached OLAP scan views
    /// (`gda::scan`). Property/label-only writes leave it false, so a
    /// GNN layer's feature updates never force a view rebuild.
    topo: bool,
    /// The holder bytes exactly as fetched (pre-image). Captured only by
    /// MVCC-eligible writers: a dirty object's pre-image is archived
    /// onto its version chain at commit, so pinned snapshots keep
    /// reading the overwritten version.
    orig: Option<Vec<u8>>,
}

/// A GDI transaction executing on one rank.
pub struct Transaction<'r, 'd, 'c, 'f> {
    eng: &'r GdaRank<'d, 'c, 'f>,
    kind: TxKind,
    mode: AccessMode,
    status: Cell<TxStatus>,
    /// Metadata epoch snapshot at start (staleness detection, §3.8).
    epoch: u64,
    used_meta: Cell<bool>,
    /// Grouped commit: write-back runs inside a non-blocking RMA batch so
    /// block write latencies overlap (the engine half of the service
    /// layer's group commit; see [`crate::db::GdaRank::begin_grouped`]).
    grouped: Cell<bool>,
    /// MVCC: the snapshot epoch pinned at `begin` (local read-only
    /// transactions under `cfg.mvcc`). A pinned transaction takes no
    /// locks and reads validated version chains at this epoch — it can
    /// neither abort on conflict nor block a writer.
    snap: Cell<Option<u64>>,
    cache: RefCell<FxHashMap<u64, CachedObj>>,
}

impl<'r, 'd, 'c, 'f> Transaction<'r, 'd, 'c, 'f> {
    pub(crate) fn new(eng: &'r GdaRank<'d, 'c, 'f>, kind: TxKind, mode: AccessMode) -> Self {
        eng.refresh_meta();
        // snapshot-pinning is the default read path: every local
        // read-only transaction under `cfg.mvcc` pins the watermark at
        // begin. (Collective read-only transactions already run the
        // paper's no-concurrent-writer fast path and skip both.)
        let snap = if eng.cfg().mvcc && kind == TxKind::Local && mode == AccessMode::ReadOnly {
            Some(eng.pin_snapshot())
        } else {
            None
        };
        Self {
            eng,
            kind,
            mode,
            status: Cell::new(TxStatus::Active),
            epoch: eng.meta_epoch(),
            used_meta: Cell::new(false),
            grouped: Cell::new(false),
            snap: Cell::new(snap),
            cache: RefCell::new(FxHashMap::default()),
        }
    }

    /// The snapshot epoch this transaction pinned at `begin`, if it is
    /// a snapshot (MVCC) reader.
    pub fn snapshot_epoch(&self) -> Option<u64> {
        self.snap.get()
    }

    /// Is this transaction an MVCC-eligible writer — one whose commit
    /// allocates an epoch and archives overwritten versions? (Collective
    /// transactions stay at epoch 0: bulk loads are visible to every
    /// snapshot and assume no concurrent readers.)
    fn mvcc_writer(&self) -> bool {
        self.eng.cfg().mvcc && self.kind == TxKind::Local && self.mode != AccessMode::ReadOnly
    }

    /// Drop the pinned snapshot (transaction close; idempotent).
    fn unpin(&self) {
        if let Some(s) = self.snap.take() {
            self.eng.unpin_snapshot(s);
        }
    }

    /// Enable grouped (batched) commit for this transaction: the dirty
    /// write-back at commit is issued as one non-blocking RMA batch, so the
    /// per-block network latencies overlap and each touched rank is flushed
    /// once for the whole group. Entry point for service layers that
    /// coalesce many client operations into one engine transaction.
    pub fn enable_grouped_commit(&self) {
        self.grouped.set(true);
    }

    /// Is grouped commit enabled?
    pub fn is_grouped(&self) -> bool {
        self.grouped.get()
    }

    /// `GDI_GetTypeOfTransaction`.
    pub fn kind(&self) -> TxKind {
        self.kind
    }

    /// Declared access mode.
    pub fn mode(&self) -> AccessMode {
        self.mode
    }

    /// Current lifecycle status.
    pub fn status(&self) -> TxStatus {
        self.status.get()
    }

    // ------------------------------------------------------------------
    // infrastructure
    // ------------------------------------------------------------------

    fn check_active(&self) -> GdiResult<()> {
        if self.status.get().is_active() {
            Ok(())
        } else {
            Err(GdiError::TransactionClosed)
        }
    }

    fn check_writable(&self) -> GdiResult<()> {
        self.check_active()?;
        if self.mode == AccessMode::ReadOnly {
            self.abort_inner();
            return Err(GdiError::ReadOnlyViolation);
        }
        Ok(())
    }

    /// Propagate an error; transaction-critical errors abort the
    /// transaction on the spot (§3.3).
    fn fail<T>(&self, e: GdiError) -> GdiResult<T> {
        if e.is_transaction_critical() && self.status.get().is_active() {
            self.abort_inner();
        }
        Err(e)
    }

    /// Lock kind needed on first touch.
    fn entry_lock(&self, write: bool) -> Option<LockKind> {
        // A pinned snapshot reader never locks: it reads validated
        // version chains at its epoch instead (see `snapshot_fetch`).
        if self.snap.get().is_some() {
            return None;
        }
        match (self.kind, self.mode) {
            // Collective read-only transactions skip locking entirely: the
            // paper's optimized read path ("read-only transactions that can
            // assume that no participating process modifies the data").
            (TxKind::Collective, AccessMode::ReadOnly) => None,
            (_, AccessMode::ReadOnly) => Some(LockKind::Read),
            _ if write => Some(LockKind::Write),
            // Under MVCC, writer conflicts are write-write only: a local
            // read-write transaction reads lock-free (validated seqlock
            // copies of the committed version) and only its first *write*
            // touch of an object takes the write lock — so two
            // transactions with overlapping read sets but disjoint write
            // sets both commit (snapshot isolation admits write skew).
            _ if self.kind == TxKind::Local && self.eng.cfg().mvcc => None,
            _ => Some(LockKind::Read),
        }
    }

    /// Snapshot read of `id` at pinned epoch `snap`: a validated
    /// (seqlock) copy of the current version, then — when that version
    /// committed after the snapshot — a walk down the archived `prev`
    /// chain to the newest version with `commit_epoch ≤ snap`. Never
    /// takes a lock, never aborts on conflict; an object with no
    /// version at the snapshot (created later) is simply `NotFound`.
    fn snapshot_fetch(&self, id: DPtr, snap: u64) -> GdiResult<Holder> {
        let (bytes, _stamp) = hio::read_chain_validated(self.eng.ctx, self.eng.cfg(), id)?;
        let mut holder =
            Holder::try_decode(&bytes).ok_or(GdiError::NotFound("object (stale internal id)"))?;
        // The walk is bounded by the live holder's recorded archive
        // depth and requires strictly decreasing commit epochs of the
        // same object: a `prev` that reaches freed (possibly reused)
        // space — a truncated tail, or a vacuum racing this read — must
        // read as *chain end*, never decode as a stranger's bytes.
        let mut steps = holder.depth as usize;
        while holder.commit_epoch > snap {
            if holder.prev == 0 || steps == 0 {
                return Err(GdiError::NotFound("object (no version at snapshot)"));
            }
            steps -= 1;
            let prev = DPtr::from_raw(holder.prev);
            // archives reachable from a pinned snapshot are immutable
            // (truncation and vacuum free only below the snapshot floor
            // ≤ our pinned epoch); any validated-read failure therefore
            // means the link left the live chain — chain end, not error
            let Some(next) = hio::read_chain_validated(self.eng.ctx, self.eng.cfg(), prev)
                .ok()
                .and_then(|(bytes, _stamp)| Holder::try_decode(&bytes))
                .filter(|h| h.commit_epoch < holder.commit_epoch && h.app_id == holder.app_id)
            else {
                return Err(GdiError::NotFound("object (no version at snapshot)"));
            };
            holder = next;
        }
        self.eng.ctx().record_snapshot_read();
        Ok(holder)
    }

    /// Ensure `id` is cached with at least the requested access. Fetches
    /// blocks and acquires the distributed lock on first touch; upgrades
    /// read→write on first mutation. A transaction-critical failure
    /// (lock conflict) aborts the transaction per §3.3.
    fn ensure_cached(&self, id: DPtr, write: bool) -> GdiResult<()> {
        self.ensure_cached_policy(id, write, true)
    }

    /// [`Transaction::ensure_cached`] with an abort policy: when
    /// `abort_on_critical` is false, a failed lock acquisition is
    /// reported without poisoning the transaction — the probe behaviour
    /// [`Transaction::prepare_write`] exposes to batchers.
    fn ensure_cached_policy(
        &self,
        id: DPtr,
        write: bool,
        abort_on_critical: bool,
    ) -> GdiResult<()> {
        self.check_active()?;
        if id.is_null() {
            return Err(GdiError::InvalidArgument("null internal id"));
        }
        let mut cache = self.cache.borrow_mut();
        if let Some(obj) = cache.get_mut(&id.raw()) {
            if obj.deleted {
                return Err(GdiError::NotFound("object deleted in this transaction"));
            }
            if write && obj.lock == Some(LockKind::Read) {
                match self.eng.lm.upgrade(id) {
                    Ok(()) => obj.lock = Some(LockKind::Write),
                    Err(e) => {
                        drop(cache);
                        if abort_on_critical {
                            return self.fail(e);
                        }
                        return Err(e);
                    }
                }
            } else if write && obj.lock.is_none() && !obj.created && self.snap.get().is_none() {
                // MVCC writer's lock-free first-touch read turning into a
                // write intent: take the write lock *now* (write-write
                // conflict detection), then refetch — the lockless copy
                // may be stale and carries no block list or pre-image
                if let Err(e) = self.eng.lm.acquire_write(id) {
                    drop(cache);
                    if abort_on_critical {
                        return self.fail(e);
                    }
                    return Err(e);
                }
                let refetched = hio::read_chain(self.eng.ctx, self.eng.cfg(), id).and_then(
                    |(bytes, blocks)| {
                        Holder::try_decode(&bytes)
                            .map(|h| (h, blocks, bytes))
                            .ok_or(GdiError::NotFound("object (stale internal id)"))
                    },
                );
                match refetched {
                    Ok((holder, blocks, bytes)) => {
                        obj.holder = holder;
                        obj.blocks = blocks;
                        obj.orig = Some(bytes);
                        obj.lock = Some(LockKind::Write);
                    }
                    Err(e) => {
                        // concurrently deleted under our nose: release and
                        // surface — nothing to write
                        self.eng.lm.release(id, LockKind::Write);
                        drop(cache);
                        if abort_on_critical {
                            return self.fail(e);
                        }
                        return Err(e);
                    }
                }
            }
            return Ok(());
        }
        drop(cache);
        // pinned snapshot readers bypass locking and the in-place read
        // entirely: a validated version-chain read at the pinned epoch
        if let Some(snap) = self.snap.get() {
            let holder = self.snapshot_fetch(id, snap)?;
            self.cache.borrow_mut().insert(
                id.raw(),
                CachedObj {
                    holder,
                    // block list deliberately empty: a snapshot reader
                    // never writes back or frees anything
                    blocks: Vec::new(),
                    lock: None,
                    dirty: false,
                    created: false,
                    deleted: false,
                    topo: false,
                    orig: None,
                },
            );
            return Ok(());
        }
        let lock = self.entry_lock(write);
        // MVCC writer's lock-free read: no lock is held, so a plain chain
        // read could tear against a concurrent 3-phase overwrite — use
        // the validated seqlock copy of the committed version instead.
        // Blocks and pre-image stay empty; a later write touch upgrades
        // via the refetch path above.
        if lock.is_none() && !write && self.mvcc_writer() {
            let (bytes, _stamp) = hio::read_chain_validated(self.eng.ctx, self.eng.cfg(), id)?;
            let holder = Holder::try_decode(&bytes)
                .ok_or(GdiError::NotFound("object (stale internal id)"))?;
            self.cache.borrow_mut().insert(
                id.raw(),
                CachedObj {
                    holder,
                    blocks: Vec::new(),
                    lock: None,
                    dirty: false,
                    created: false,
                    deleted: false,
                    topo: false,
                    orig: None,
                },
            );
            return Ok(());
        }
        if let Some(kind) = lock {
            let res = match kind {
                LockKind::Read => self.eng.lm.acquire_read(id),
                LockKind::Write => self.eng.lm.acquire_write(id),
            };
            if let Err(e) = res {
                if abort_on_critical {
                    return self.fail(e);
                }
                return Err(e);
            }
        }
        let keep_orig = self.mvcc_writer();
        let fetched =
            hio::read_chain(self.eng.ctx, self.eng.cfg(), id).and_then(|(bytes, blocks)| {
                Holder::try_decode(&bytes)
                    .map(|h| (h, blocks, bytes))
                    .ok_or(GdiError::NotFound("object (stale internal id)"))
            });
        let (holder, blocks, bytes) = match fetched {
            Ok(x) => x,
            Err(e) => {
                if let Some(kind) = lock {
                    self.eng.lm.release(id, kind);
                }
                return Err(e);
            }
        };
        self.cache.borrow_mut().insert(
            id.raw(),
            CachedObj {
                holder,
                blocks,
                lock,
                dirty: false,
                created: false,
                deleted: false,
                topo: false,
                orig: keep_orig.then_some(bytes),
            },
        );
        Ok(())
    }

    /// Batch-fetch every uncached holder in `ids` with one pipelined
    /// non-blocking batch per chain level ([`hio::read_chains`]),
    /// acquiring the usual first-touch read locks. Equivalent to
    /// calling [`Transaction::ensure_cached`] per id — same lock, abort
    /// and error semantics — but the block reads of all candidates
    /// overlap instead of paying one blocking round trip each.
    fn prefetch_holders(&self, ids: &[DPtr]) -> GdiResult<()> {
        self.check_active()?;
        let mut want: Vec<DPtr> = Vec::new();
        {
            let cache = self.cache.borrow();
            let mut seen = FxHashSet::default();
            for &id in ids {
                if id.is_null() || cache.contains_key(&id.raw()) || !seen.insert(id.raw()) {
                    continue;
                }
                want.push(id);
            }
        }
        if want.is_empty() {
            return Ok(());
        }
        // snapshot readers and MVCC writers read lock-free: one pipelined
        // validated batch over all candidates' current versions
        // (`hio::read_chains_validated`), then — for pinned readers only —
        // a per-object archive walk for the rare candidate whose current
        // version postdates the snapshot
        if self.snap.get().is_some() || self.mvcc_writer() {
            let snap = self.snap.get();
            let fetched = hio::read_chains_validated(self.eng.ctx, self.eng.cfg(), &want);
            let mut first_err = None;
            for (&id, res) in want.iter().zip(fetched) {
                let resolved = res
                    .and_then(|(bytes, _stamp)| {
                        Holder::try_decode(&bytes)
                            .ok_or(GdiError::NotFound("object (stale internal id)"))
                    })
                    .and_then(|holder| match snap {
                        Some(s) if holder.commit_epoch > s => self.snapshot_fetch(id, s),
                        _ => {
                            if snap.is_some() {
                                self.eng.ctx().record_snapshot_read();
                            }
                            Ok(holder)
                        }
                    });
                match resolved {
                    Ok(holder) => {
                        self.cache.borrow_mut().insert(
                            id.raw(),
                            CachedObj {
                                holder,
                                // lock-free read entries: no block list, no
                                // lock, no pre-image (a write touch upgrades
                                // via the refetch path in `ensure_cached`)
                                blocks: Vec::new(),
                                lock: None,
                                dirty: false,
                                created: false,
                                deleted: false,
                                topo: false,
                                orig: None,
                            },
                        );
                    }
                    // keep the error of the *first* failing candidate (what
                    // the sequential path would have surfaced)
                    Err(e) if first_err.is_none() => first_err = Some(e),
                    Err(_) => {}
                }
            }
            return match first_err {
                None => Ok(()),
                Some(e) => Err(e),
            };
        }
        let lock = self.entry_lock(false);
        if let Some(kind) = lock {
            for (i, &id) in want.iter().enumerate() {
                let res = match kind {
                    LockKind::Read => self.eng.lm.acquire_read(id),
                    LockKind::Write => self.eng.lm.acquire_write(id),
                };
                if let Err(e) = res {
                    for &held in &want[..i] {
                        self.eng.lm.release(held, kind);
                    }
                    return self.fail(e);
                }
            }
        }
        let keep_orig = self.mvcc_writer();
        let fetched = hio::read_chains(self.eng.ctx, self.eng.cfg(), &want);
        let mut first_err = None;
        let mut cache = self.cache.borrow_mut();
        for (&id, res) in want.iter().zip(fetched) {
            let decoded = res.and_then(|(bytes, blocks)| {
                Holder::try_decode(&bytes)
                    .map(|h| (h, blocks, bytes))
                    .ok_or(GdiError::NotFound("object (stale internal id)"))
            });
            match decoded {
                Ok((holder, blocks, bytes)) => {
                    cache.insert(
                        id.raw(),
                        CachedObj {
                            holder,
                            blocks,
                            lock,
                            dirty: false,
                            created: false,
                            deleted: false,
                            topo: false,
                            orig: keep_orig.then_some(bytes),
                        },
                    );
                }
                Err(e) => {
                    if let Some(kind) = lock {
                        self.eng.lm.release(id, kind);
                    }
                    // keep the error of the *first* failing candidate
                    // (what the sequential path would have surfaced)
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        drop(cache);
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Read access to a cached holder.
    fn with_holder<R>(&self, id: DPtr, f: impl FnOnce(&Holder) -> R) -> GdiResult<R> {
        self.ensure_cached(id, false)?;
        let cache = self.cache.borrow();
        Ok(f(&cache.get(&id.raw()).unwrap().holder))
    }

    /// Write access to a cached holder (marks it dirty).
    fn with_holder_mut<R>(&self, id: DPtr, f: impl FnOnce(&mut Holder) -> R) -> GdiResult<R> {
        self.check_writable()?;
        self.ensure_cached(id, true)?;
        let mut cache = self.cache.borrow_mut();
        let obj = cache.get_mut(&id.raw()).unwrap();
        obj.dirty = true;
        Ok(f(&mut obj.holder))
    }

    /// [`Transaction::with_holder_mut`] for **topology** mutations
    /// (edge-record changes): additionally flags the object so commit
    /// bumps its rank's topology-epoch word (scan-view invalidation).
    fn with_holder_topo<R>(&self, id: DPtr, f: impl FnOnce(&mut Holder) -> R) -> GdiResult<R> {
        let r = self.with_holder_mut(id, f)?;
        if let Some(obj) = self.cache.borrow_mut().get_mut(&id.raw()) {
            obj.topo = true;
        }
        Ok(r)
    }

    // ------------------------------------------------------------------
    // vertex id translation & creation
    // ------------------------------------------------------------------

    /// `GDI_TranslateVertexID`: application id → internal id via the
    /// offloaded DHT (§5.7), fronted by the per-rank epoch-validated
    /// translation cache (`crate::cache`). Valid under both access modes:
    /// revalidation observes any epoch bump that preceded the
    /// transaction, so a vertex deleted before this transaction began can
    /// never translate.
    pub fn translate_vertex_id(&self, app: AppVertexId) -> GdiResult<DPtr> {
        self.check_active()?;
        match self.eng.translate(app) {
            Some(id) => Ok(id),
            None => Err(GdiError::NotFound("vertex (application id)")),
        }
    }

    /// [`Transaction::translate_vertex_id`] that revalidates the owner
    /// rank's epoch remotely even while the cache is pinned to a drain
    /// cycle. Service layers use it for vertices a request does **not**
    /// route by (an edge's target endpoint): those get no write-through
    /// on this rank, so the pinned snapshot cannot vouch for them.
    pub fn translate_vertex_id_fresh(&self, app: AppVertexId) -> GdiResult<DPtr> {
        self.check_active()?;
        match self.eng.translate_fresh(app) {
            Some(id) => Ok(id),
            None => Err(GdiError::NotFound("vertex (application id)")),
        }
    }

    /// `GDI_AssociateVertex`: make the vertex accessible through this
    /// transaction (fetches and caches its holder).
    pub fn associate_vertex(&self, id: DPtr) -> GdiResult<()> {
        self.ensure_cached(id, false)
    }

    /// Batch-friendly entry point: acquire the write lock on `id` and
    /// cache its holder *without mutating anything*. A batcher that
    /// prepares every object an op touches before issuing the first
    /// mutation gets all-or-nothing ops inside a shared transaction — and
    /// unlike the ordinary routines, a failed preparation (even a lock
    /// conflict) does **not** poison the transaction: it is a probe, so
    /// the batch can skip the op and keep going (see `server::batch`).
    pub fn prepare_write(&self, id: DPtr) -> GdiResult<()> {
        self.check_active()?;
        if self.mode == AccessMode::ReadOnly {
            return Err(GdiError::ReadOnlyViolation);
        }
        self.ensure_cached_policy(id, true, false)
    }

    /// Probe-lock the full write-set of [`Transaction::delete_vertex`]:
    /// the vertex, every mirror holder, and every heavy edge holder.
    /// Lives next to `delete_vertex` so the enumeration cannot drift from
    /// what the deletion actually touches. Same non-poisoning semantics
    /// as [`Transaction::prepare_write`]; after it succeeds, the deletion
    /// itself cannot hit a lock conflict.
    pub fn prepare_delete_vertex(&self, id: DPtr) -> GdiResult<()> {
        self.prepare_write(id)?;
        let targets: Vec<(DPtr, DPtr)> = self.with_holder(id, |h| {
            h.live_edges()
                .map(|(_, r)| (r.target, r.edge_holder))
                .collect()
        })?;
        for (target, edge_holder) in targets {
            if target != id {
                self.prepare_write(target)?;
            }
            if !edge_holder.is_null() {
                self.prepare_write(edge_holder)?;
            }
        }
        Ok(())
    }

    /// `GDI_CreateVertex`. The vertex's primary block (and hence its
    /// internal id) is allocated immediately on its round-robin owner rank;
    /// visibility (DHT entry, index postings) happens at commit.
    pub fn create_vertex(&self, app: AppVertexId) -> GdiResult<DPtr> {
        self.check_writable()?;
        if self.eng.translate(app).is_some() {
            return Err(GdiError::AlreadyExists("vertex (application id)"));
        }
        let target = owner_rank(app, self.eng.nranks());
        let primary = match self.eng.bm.acquire(target) {
            Ok(p) => p,
            Err(e) => return self.fail(e),
        };
        if let Err(e) = self.eng.lm.acquire_write(primary) {
            self.eng.bm.release(primary);
            return self.fail(e);
        }
        self.cache.borrow_mut().insert(
            primary.raw(),
            CachedObj {
                holder: Holder::new_vertex(app.0),
                blocks: vec![primary],
                lock: Some(LockKind::Write),
                dirty: true,
                created: true,
                deleted: false,
                topo: true,
                orig: None,
            },
        );
        Ok(primary)
    }

    /// `GDI_GetVertexApplicationID` (reverse of translation).
    pub fn vertex_app_id(&self, id: DPtr) -> GdiResult<AppVertexId> {
        self.with_holder(id, |h| AppVertexId(h.app_id))
    }

    /// `GDI_DeleteVertex`: removes the vertex, its lightweight edges, the
    /// mirror records at all neighbours, and any heavy-edge holders.
    pub fn delete_vertex(&self, id: DPtr) -> GdiResult<()> {
        self.check_writable()?;
        self.ensure_cached(id, true)?;
        let edges: Vec<EdgeRecord> = {
            let cache = self.cache.borrow();
            cache
                .get(&id.raw())
                .unwrap()
                .holder
                .live_edges()
                .map(|(_, r)| *r)
                .collect()
        };
        for rec in edges {
            if !rec.edge_holder.is_null() {
                self.delete_object(rec.edge_holder)?;
            }
            if rec.target == id {
                continue; // self-loop: both records die with the holder
            }
            self.ensure_cached(rec.target, true)?;
            let mut cache = self.cache.borrow_mut();
            let nbr = cache.get_mut(&rec.target.raw()).unwrap();
            if let Some(slot) = find_mirror_slot(&nbr.holder, id, &rec) {
                nbr.holder.remove_edge(slot);
                nbr.dirty = true;
                nbr.topo = true;
            }
        }
        self.delete_object(id)
    }

    /// Mark a cached object deleted.
    fn delete_object(&self, id: DPtr) -> GdiResult<()> {
        self.ensure_cached(id, true)?;
        let mut cache = self.cache.borrow_mut();
        let obj = cache.get_mut(&id.raw()).unwrap();
        obj.deleted = true;
        obj.dirty = true;
        obj.topo = true;
        Ok(())
    }

    // ------------------------------------------------------------------
    // labels
    // ------------------------------------------------------------------

    /// `GDI_AddLabelToVertex`.
    pub fn add_label(&self, id: DPtr, label: LabelId) -> GdiResult<()> {
        self.used_meta.set(true);
        if self.eng.meta().label_name(label).is_none() {
            return Err(GdiError::NotFound("label"));
        }
        self.with_holder_mut(id, |h| h.add_label(label)).map(|_| ())
    }

    /// `GDI_RemoveLabelFromVertex`.
    pub fn remove_label(&self, id: DPtr, label: LabelId) -> GdiResult<()> {
        self.with_holder_mut(id, |h| {
            if h.remove_label(label) {
                Ok(())
            } else {
                Err(GdiError::NotFound("label on vertex"))
            }
        })?
    }

    /// `GDI_GetAllLabelsOfVertex`.
    pub fn labels(&self, id: DPtr) -> GdiResult<Vec<LabelId>> {
        self.with_holder(id, |h| h.labels())
    }

    /// Does the element carry the label?
    pub fn has_label(&self, id: DPtr, label: LabelId) -> GdiResult<bool> {
        self.with_holder(id, |h| h.has_label(label))
    }

    // ------------------------------------------------------------------
    // properties
    // ------------------------------------------------------------------

    fn validate_property(
        &self,
        ptype: PTypeId,
        value: &PropertyValue,
        on_edge: bool,
    ) -> GdiResult<Vec<u8>> {
        self.used_meta.set(true);
        let meta = self.eng.meta();
        let def = meta
            .ptype(ptype)
            .ok_or(GdiError::NotFound("property type"))?;
        if (on_edge && !def.entity.allows_edge()) || (!on_edge && !def.entity.allows_vertex()) {
            return Err(GdiError::TypeMismatch);
        }
        let bytes = value.encode();
        let eb = def.dtype.elem_bytes();
        if !bytes.len().is_multiple_of(eb) {
            return Err(GdiError::TypeMismatch);
        }
        if !def.stype.validate(bytes.len() / eb, def.count) {
            return Err(GdiError::SizeExceeded);
        }
        Ok(bytes)
    }

    fn decode_property(&self, ptype: PTypeId, raw: &[u8]) -> Option<PropertyValue> {
        let meta = self.eng.meta();
        let def = meta.ptype(ptype)?;
        PropertyValue::decode(def.dtype, raw).ok()
    }

    /// `GDI_AddPropertyToVertex`. For `Single`-multiplicity types, adding a
    /// second entry is an error (use [`Transaction::update_property`]).
    pub fn add_property(&self, id: DPtr, ptype: PTypeId, value: &PropertyValue) -> GdiResult<()> {
        let bytes = self.validate_property(ptype, value, false)?;
        let single = {
            let meta = self.eng.meta();
            meta.ptype(ptype).unwrap().mult == gdi::Multiplicity::Single
        };
        self.with_holder_mut(id, |h| {
            if single && !h.properties_raw(ptype).is_empty() {
                Err(GdiError::AlreadyExists("single-valued property"))
            } else {
                h.add_property(ptype, bytes);
                Ok(())
            }
        })?
    }

    /// `GDI_UpdatePropertyOfVertex`: set/replace the (first) entry.
    pub fn update_property(
        &self,
        id: DPtr,
        ptype: PTypeId,
        value: &PropertyValue,
    ) -> GdiResult<()> {
        let bytes = self.validate_property(ptype, value, false)?;
        self.with_holder_mut(id, |h| h.set_property(ptype, bytes))
    }

    /// `GDI_RemovePropertyFromVertex` (all entries of the type). Returns
    /// the number removed.
    pub fn remove_properties(&self, id: DPtr, ptype: PTypeId) -> GdiResult<usize> {
        self.with_holder_mut(id, |h| h.remove_property(ptype))
    }

    /// `GDI_RemoveAllPropertiesFromVertex`.
    pub fn remove_all_properties(&self, id: DPtr) -> GdiResult<usize> {
        self.with_holder_mut(id, |h| h.remove_all_properties())
    }

    /// `GDI_GetPropertiesOfVertex`: first entry of the type, decoded.
    pub fn property(&self, id: DPtr, ptype: PTypeId) -> GdiResult<Option<PropertyValue>> {
        self.with_holder(id, |h| {
            h.properties_raw(ptype)
                .first()
                .and_then(|raw| self.decode_property(ptype, raw))
        })
    }

    /// All entries of the type, decoded.
    pub fn properties(&self, id: DPtr, ptype: PTypeId) -> GdiResult<Vec<PropertyValue>> {
        self.with_holder(id, |h| {
            h.properties_raw(ptype)
                .into_iter()
                .filter_map(|raw| self.decode_property(ptype, raw))
                .collect()
        })
    }

    /// `GDI_GetAllPropertyTypesOfVertex`.
    pub fn ptypes(&self, id: DPtr) -> GdiResult<Vec<PTypeId>> {
        self.with_holder(id, |h| h.ptypes())
    }

    // ------------------------------------------------------------------
    // edges
    // ------------------------------------------------------------------

    /// `GDI_CreateEdge`: adds a lightweight edge (≤1 label, no properties)
    /// between two vertices. Directed edges store an `Out` record at the
    /// origin and an `In` record at the target; undirected edges store an
    /// `Undirected` record at both endpoints. Returns the edge UID based at
    /// the origin.
    pub fn add_edge(
        &self,
        origin: DPtr,
        target: DPtr,
        label: Option<LabelId>,
        directed: bool,
    ) -> GdiResult<EdgeUid> {
        self.check_writable()?;
        let lbl = label.map(|l| l.0).unwrap_or(0);
        if let Some(l) = label {
            self.used_meta.set(true);
            if self.eng.meta().label_name(l).is_none() {
                return Err(GdiError::NotFound("edge label"));
            }
        }
        let (od, td) = if directed {
            (Direction::Out, Direction::In)
        } else {
            (Direction::Undirected, Direction::Undirected)
        };
        let slot = self.with_holder_topo(origin, |h| {
            h.push_edge(EdgeRecord::lightweight(target, lbl, od))
        })?;
        if origin != target {
            self.with_holder_topo(target, |h| {
                h.push_edge(EdgeRecord::lightweight(origin, lbl, td));
            })?;
        } else if directed {
            // self-loop on a directed edge: record both directions
            self.with_holder_topo(origin, |h| {
                h.push_edge(EdgeRecord::lightweight(origin, lbl, td));
            })?;
        }
        Ok(EdgeUid::new(origin, slot))
    }

    /// Read the record behind an edge UID.
    fn edge_record(&self, e: EdgeUid) -> GdiResult<EdgeRecord> {
        self.with_holder(e.vertex, |h| {
            h.edges
                .get(e.slot as usize)
                .copied()
                .filter(|r| !r.is_tombstone())
        })?
        .ok_or(GdiError::NotFound("edge"))
    }

    /// Internal id of the edge's heavy holder, if it has one (batch-
    /// friendly: lets a batcher [`Transaction::prepare_write`] every
    /// object a vertex deletion will touch, heavy edges included).
    pub fn edge_holder_id(&self, e: EdgeUid) -> GdiResult<Option<DPtr>> {
        let rec = self.edge_record(e)?;
        Ok(if rec.edge_holder.is_null() {
            None
        } else {
            Some(rec.edge_holder)
        })
    }

    /// `GDI_DeleteEdge`: tombstones both endpoint records and deletes any
    /// heavy-edge holder.
    pub fn delete_edge(&self, e: EdgeUid) -> GdiResult<()> {
        self.check_writable()?;
        let rec = self.edge_record(e)?;
        self.with_holder_topo(e.vertex, |h| h.remove_edge(e.slot))?;
        if rec.target != e.vertex {
            self.ensure_cached(rec.target, true)?;
            let mut cache = self.cache.borrow_mut();
            let nbr = cache.get_mut(&rec.target.raw()).unwrap();
            if let Some(slot) = find_mirror_slot(&nbr.holder, e.vertex, &rec) {
                nbr.holder.remove_edge(slot);
                nbr.dirty = true;
                nbr.topo = true;
            }
        } else {
            // self-loop: remove the sibling record in the same holder
            self.with_holder_topo(e.vertex, |h| {
                let sib = h
                    .live_edges()
                    .find(|(s, r)| {
                        *s != e.slot && r.target == e.vertex && r.edge_holder == rec.edge_holder
                    })
                    .map(|(s, _)| s);
                if let Some(s) = sib {
                    h.remove_edge(s);
                }
            })?;
        }
        if !rec.edge_holder.is_null() {
            self.delete_object(rec.edge_holder)?;
        }
        Ok(())
    }

    /// `GDI_GetEdgesOfVertex`: edge UIDs incident to `id` matching the
    /// orientation selector.
    pub fn edges(&self, id: DPtr, orient: EdgeOrientation) -> GdiResult<Vec<EdgeUid>> {
        self.with_holder(id, |h| {
            h.live_edges()
                .filter(|(_, r)| orient.matches(r.dir))
                .map(|(s, _)| EdgeUid::new(id, s))
                .collect()
        })
    }

    /// Count edges without materializing UIDs.
    pub fn edge_count(&self, id: DPtr, orient: EdgeOrientation) -> GdiResult<usize> {
        self.with_holder(id, |h| {
            h.live_edges()
                .filter(|(_, r)| orient.matches(r.dir))
                .count()
        })
    }

    /// `GDI_GetNeighborVerticesOfVertex`, optionally filtered by edge
    /// label.
    pub fn neighbors(
        &self,
        id: DPtr,
        orient: EdgeOrientation,
        label: Option<LabelId>,
    ) -> GdiResult<Vec<DPtr>> {
        self.with_holder(id, |h| {
            h.live_edges()
                .filter(|(_, r)| orient.matches(r.dir))
                .filter(|(_, r)| label.map(|l| r.label == l.0).unwrap_or(true))
                .map(|(_, r)| r.target)
                .collect()
        })
    }

    /// `GDI_GetNeighborVerticesOfVertex` with a *constraint object*
    /// (Listing 3, lines 9–10): expand over edges matching `edge_label`,
    /// keep only neighbors whose holders satisfy the DNF `constraint`.
    /// Fetches each candidate neighbor through the transaction cache (the
    /// "let the storage handle the filtering" path of §3.1). The
    /// candidate holders are fetched as **one pipelined non-blocking
    /// batch** ([`crate::hio::read_chains`]) — one network latency per
    /// chain level across all candidates, instead of one blocking chain
    /// walk per neighbor.
    pub fn neighbors_matching(
        &self,
        id: DPtr,
        orient: EdgeOrientation,
        edge_label: Option<LabelId>,
        constraint: &Constraint,
    ) -> GdiResult<Vec<DPtr>> {
        let candidates = self.neighbors(id, orient, edge_label)?;
        self.prefetch_holders(&candidates)?;
        let mut out = Vec::new();
        for nbr in candidates {
            let keep = self.with_holder(nbr, |h| {
                holder_matches(h, constraint, |pt, raw| self.decode_property(pt, raw))
            })?;
            if keep {
                out.push(nbr);
            }
        }
        Ok(out)
    }

    /// `GDI_GetVerticesOfEdge`: (origin, target) internal ids.
    pub fn edge_endpoints(&self, e: EdgeUid) -> GdiResult<(DPtr, DPtr)> {
        let rec = self.edge_record(e)?;
        Ok(match rec.dir {
            Direction::Out | Direction::Undirected => (e.vertex, rec.target),
            Direction::In => (rec.target, e.vertex),
        })
    }

    /// `GDI_GetDirectionOfEdge` relative to the base vertex.
    pub fn edge_direction(&self, e: EdgeUid) -> GdiResult<Direction> {
        Ok(self.edge_record(e)?.dir)
    }

    /// `GDI_GetAllLabelsOfEdge`: the lightweight label plus any labels on a
    /// heavy-edge holder.
    pub fn edge_labels(&self, e: EdgeUid) -> GdiResult<Vec<LabelId>> {
        let rec = self.edge_record(e)?;
        let mut out = Vec::new();
        if rec.label != 0 {
            out.push(LabelId(rec.label));
        }
        if !rec.edge_holder.is_null() {
            out.extend(self.with_holder(rec.edge_holder, |h| h.labels())?);
        }
        Ok(out)
    }

    /// `GDI_AddLabelToEdge`. The first label is stored inline in the
    /// lightweight record (both mirrors); further labels promote the edge
    /// to a heavy-edge holder.
    pub fn add_edge_label(&self, e: EdgeUid, label: LabelId) -> GdiResult<()> {
        self.check_writable()?;
        self.used_meta.set(true);
        if self.eng.meta().label_name(label).is_none() {
            return Err(GdiError::NotFound("label"));
        }
        let rec = self.edge_record(e)?;
        if rec.label == 0 {
            self.update_edge_records(e, &rec, |r| r.label = label.0)
        } else {
            let holder = self.ensure_edge_holder(e, &rec)?;
            self.with_holder_mut(holder, |h| h.add_label(label))
                .map(|_| ())
        }
    }

    /// `GDI_AddPropertyToEdge` / update: stores the property on the edge's
    /// heavy holder, creating it on demand.
    pub fn set_edge_property(
        &self,
        e: EdgeUid,
        ptype: PTypeId,
        value: &PropertyValue,
    ) -> GdiResult<()> {
        let bytes = self.validate_property(ptype, value, true)?;
        let rec = self.edge_record(e)?;
        let holder = self.ensure_edge_holder(e, &rec)?;
        self.with_holder_mut(holder, |h| h.set_property(ptype, bytes))
    }

    /// `GDI_GetPropertiesOfEdge`: first entry of the type.
    pub fn edge_property(&self, e: EdgeUid, ptype: PTypeId) -> GdiResult<Option<PropertyValue>> {
        let rec = self.edge_record(e)?;
        if rec.edge_holder.is_null() {
            return Ok(None);
        }
        self.with_holder(rec.edge_holder, |h| {
            h.properties_raw(ptype)
                .first()
                .and_then(|raw| self.decode_property(ptype, raw))
        })
    }

    /// `GDI_RemovePropertyFromEdge`: remove all entries of `ptype` from the
    /// edge's heavy holder. Returns the number removed (0 if the edge never
    /// had a heavy holder).
    pub fn remove_edge_properties(&self, e: EdgeUid, ptype: PTypeId) -> GdiResult<usize> {
        self.check_writable()?;
        let rec = self.edge_record(e)?;
        if rec.edge_holder.is_null() {
            return Ok(0);
        }
        self.with_holder_mut(rec.edge_holder, |h| h.remove_property(ptype))
    }

    /// `GDI_GetAllPropertyTypesOfEdge`.
    pub fn edge_ptypes(&self, e: EdgeUid) -> GdiResult<Vec<PTypeId>> {
        let rec = self.edge_record(e)?;
        if rec.edge_holder.is_null() {
            return Ok(Vec::new());
        }
        self.with_holder(rec.edge_holder, |h| h.ptypes())
    }

    /// `GDI_SetOriginVertexOfEdge` / `GDI_SetTargetVertexOfEdge` analog:
    /// flip the direction of a directed edge (swap origin/target). The
    /// paper exposes endpoint mutation; flipping covers its use case while
    /// keeping mirror records consistent.
    pub fn flip_edge(&self, e: EdgeUid) -> GdiResult<()> {
        self.check_writable()?;
        let rec = self.edge_record(e)?;
        if rec.dir == Direction::Undirected {
            return Err(GdiError::InvalidArgument("cannot flip an undirected edge"));
        }
        self.update_edge_records(e, &rec, |r| r.dir = r.dir.reverse())
    }

    /// Create (if needed) the heavy holder of an edge and link it from both
    /// endpoint records.
    fn ensure_edge_holder(&self, e: EdgeUid, rec: &EdgeRecord) -> GdiResult<DPtr> {
        if !rec.edge_holder.is_null() {
            return Ok(rec.edge_holder);
        }
        let target_rank = e.vertex.rank();
        let primary = match self.eng.bm.acquire(target_rank) {
            Ok(p) => p,
            Err(err) => return self.fail(err),
        };
        if let Err(err) = self.eng.lm.acquire_write(primary) {
            self.eng.bm.release(primary);
            return self.fail(err);
        }
        let (origin, target) = match rec.dir {
            Direction::Out | Direction::Undirected => (e.vertex, rec.target),
            Direction::In => (rec.target, e.vertex),
        };
        self.cache.borrow_mut().insert(
            primary.raw(),
            CachedObj {
                holder: Holder::new_edge(origin, target),
                blocks: vec![primary],
                lock: Some(LockKind::Write),
                dirty: true,
                created: true,
                deleted: false,
                topo: true,
                orig: None,
            },
        );
        self.update_edge_records(e, rec, |r| r.edge_holder = primary)?;
        Ok(primary)
    }

    /// Apply a mutation to an edge's record at the base vertex *and* its
    /// mirror at the other endpoint.
    fn update_edge_records(
        &self,
        e: EdgeUid,
        rec: &EdgeRecord,
        f: impl Fn(&mut EdgeRecord),
    ) -> GdiResult<()> {
        self.with_holder_topo(e.vertex, |h| f(&mut h.edges[e.slot as usize]))?;
        if rec.target != e.vertex {
            self.ensure_cached(rec.target, true)?;
            let mut cache = self.cache.borrow_mut();
            let nbr = cache.get_mut(&rec.target.raw()).unwrap();
            if let Some(slot) = find_mirror_slot(&nbr.holder, e.vertex, rec) {
                f(&mut nbr.holder.edges[slot as usize]);
                nbr.dirty = true;
                nbr.topo = true;
            }
        } else {
            self.with_holder_topo(e.vertex, |h| {
                let sib = h
                    .live_edges()
                    .find(|(s, r)| {
                        *s != e.slot && r.target == e.vertex && r.edge_holder == rec.edge_holder
                    })
                    .map(|(s, _)| s);
                if let Some(s) = sib {
                    f(&mut h.edges[s as usize]);
                }
            })?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // index scans
    // ------------------------------------------------------------------

    /// Scan this rank's partition of an explicit index, filtered by a DNF
    /// constraint (fetches candidate holders through the transaction
    /// cache). The workhorse of Listings 2 and 3.
    pub fn local_index_scan(
        &self,
        index: IndexId,
        constraint: &Constraint,
    ) -> GdiResult<Vec<Posting>> {
        self.check_active()?;
        if constraint.is_stale(self.eng.meta_epoch()) && constraint.epoch != 0 {
            return self.fail(GdiError::StaleMetadata);
        }
        let postings = self.eng.local_index_vertices(index);
        let mut out = Vec::new();
        for p in postings {
            let keep = self.with_holder(p.vertex, |h| {
                holder_matches(h, constraint, |pt, raw| self.decode_property(pt, raw))
            })?;
            if keep {
                out.push(p);
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // MVCC version-chain maintenance (commit-path helpers)
    // ------------------------------------------------------------------

    /// Write a pre-image (`bytes` exactly as fetched, still carrying its
    /// version, commit epoch and `prev`) to fresh blocks on `id`'s rank:
    /// the version-chain archive of one overwritten holder. Single-phase
    /// — the archive is unreachable until the committing writer
    /// publishes the new version's `prev` pointing at it.
    fn archive_version(&self, id: DPtr, bytes: &[u8]) -> GdiResult<DPtr> {
        let primary = self.eng.bm.acquire(id.rank())?;
        let mut blocks = vec![primary];
        match hio::write_chain(self.eng.ctx, &self.eng.bm, bytes, &mut blocks) {
            Ok(()) => Ok(primary),
            Err(e) => {
                hio::free_chain(&self.eng.bm, &blocks);
                Err(e)
            }
        }
    }

    /// Truncate an archive chain below the snapshot `floor`: walking
    /// newest → oldest from `head`, keep every version with
    /// `commit_epoch > floor` **plus the first with epoch ≤ floor** (the
    /// version every snapshot ≥ floor resolves to), free the strictly
    /// older rest — then **seal the cut**: the last kept archive's
    /// `prev` still names the first freed block, so it is zeroed in
    /// place (one aligned word write into the archive's primary block;
    /// archives never change otherwise, so no reader can tear on it).
    /// An unsealed cut is a dangling pointer into freed — eventually
    /// reused — space, and every later walk of this chain (a pinned
    /// reader, the maintenance vacuum, the delete path's
    /// [`Self::free_archives`]) would need to *guess* where the chain
    /// ends. Returns the number of archives kept. Caller holds the
    /// object's write lock, so the chain cannot change underneath.
    ///
    /// `live` bounds the walk to the holder's recorded archive depth,
    /// defence in depth against a chain whose seal never made it to the
    /// window (a crash between the frees and the word write): walking
    /// by pointers alone could double-free or cycle.
    fn truncate_chain(&self, head: u64, floor: u64, live: usize) -> usize {
        let mut kept = 0usize;
        let mut freed = 0u64;
        let mut cut = false;
        let mut cur = head;
        let mut seen = 0usize;
        let mut tail: Option<DPtr> = None;
        while cur != 0 && seen < live {
            seen += 1;
            let dp = DPtr::from_raw(cur);
            let Ok((bytes, blocks)) = hio::read_chain(self.eng.ctx, self.eng.cfg(), dp) else {
                break;
            };
            let Some(h) = Holder::try_decode(&bytes) else {
                break;
            };
            if cut {
                hio::free_chain(&self.eng.bm, &blocks);
                freed += 1;
            } else {
                kept += 1;
                if h.commit_epoch <= floor {
                    cut = true;
                    tail = Some(dp);
                }
            }
            cur = h.prev;
        }
        if freed > 0 {
            if let Some(dp) = tail {
                crate::maint::seal_chain_tail(self.eng.ctx, dp);
            }
            self.eng.ctx().record_chain_truncation(freed);
        }
        kept
    }

    /// Free an entire archive chain (delete path — the object itself is
    /// going away, so no snapshot resolution below it remains possible;
    /// a pinned reader racing this already accepts `NotFound`, the
    /// documented non-versioned-delete scope). Returns archives freed.
    ///
    /// `live` bounds the walk to the holder's recorded depth for the
    /// same reason as [`Self::truncate_chain`]: the tail `prev` of a
    /// previously truncated chain dangles into freed space.
    fn free_archives(&self, head: u64, live: usize) -> u64 {
        let mut freed = 0u64;
        let mut cur = head;
        let mut seen = 0usize;
        while cur != 0 && seen < live {
            seen += 1;
            let dp = DPtr::from_raw(cur);
            let Ok((bytes, blocks)) = hio::read_chain(self.eng.ctx, self.eng.cfg(), dp) else {
                break;
            };
            let Some(h) = Holder::try_decode(&bytes) else {
                break;
            };
            hio::free_chain(&self.eng.bm, &blocks);
            freed += 1;
            cur = h.prev;
        }
        if freed > 0 {
            self.eng.ctx().record_chain_truncation(freed);
        }
        freed
    }

    // ------------------------------------------------------------------
    // commit / abort (§5.6)
    // ------------------------------------------------------------------

    /// `GDI_CloseTransaction` / `GDI_CloseCollectiveTransaction` with
    /// commit semantics.
    pub fn commit(self) -> GdiResult<()> {
        self.check_active()?;
        // metadata staleness check (§3.8): eventual consistency requires
        // transactions that relied on metadata to detect concurrent changes
        if self.used_meta.get() && self.eng.meta_epoch() != self.epoch {
            self.abort_inner();
            if self.kind == TxKind::Collective {
                let _ = self.eng.ctx().allreduce_any(true);
            }
            return Err(GdiError::StaleMetadata);
        }
        if self.kind == TxKind::Collective {
            // abort vote before any write-back: either all commit or none
            let anyone_aborted = self.eng.ctx().allreduce_any(false);
            if anyone_aborted {
                self.abort_inner();
                return Err(GdiError::ValidationFailed);
            }
        }
        let mut cache = self.cache.borrow_mut();
        let mvcc = self.eng.cfg().mvcc;
        // MVCC: one commit epoch for the whole (possibly grouped)
        // transaction, allocated only when there is something to
        // publish. Every allocated epoch is published at the end of
        // this function — even on a failed commit — because watermark
        // publication is strictly in epoch order and a silent gap would
        // wedge every later commit.
        let epoch =
            if self.mvcc_writer() && cache.values().any(|o| o.dirty || o.created || o.deleted) {
                Some(self.eng.alloc_commit_epoch())
            } else {
                None
            };
        // snapshot floor for commit-time chain truncation, computed at
        // most once per commit and only when some chain hits its limit
        // (`None` inside = a pin was mid-registration; skip this round)
        let mut floor: Option<Option<u64>> = None;
        let mut touched: FxHashSet<usize> = FxHashSet::default();
        // ranks whose *topology* this commit changed (membership or edge
        // lists): their topology-epoch word is bumped after the
        // write-back so cached OLAP scan views revalidate (`gda::scan`)
        let mut topo_touched: FxHashSet<usize> = FxHashSet::default();
        let mut result = Ok(());
        // durability: effects of this commit, at holder granularity,
        // appended to the rank's redo log after the write-back (only the
        // objects actually persisted — a partially failed commit logs
        // exactly what it made visible)
        let logging = self.eng.persist_enabled();
        let mut redo: Vec<crate::persist::RedoRecord> = Vec::new();
        // Has any object been written back (or freed) already? Once one
        // has, persisted holders may reference a created object's blocks
        // (mirror edge records), so reclaiming those blocks on a later
        // failure could hand them to a new owner while stale references
        // resolve to them — silent corruption. In that case we leak the
        // blocks instead (bounded: only failed commits); reclaiming is
        // safe only while nothing has been persisted yet.
        let mut wrote_any = false;
        // grouped commit: overlap the write-back transfers of all dirty
        // objects in one non-blocking batch (one deferred latency + one
        // flush per touched rank instead of per-object costs)
        if self.grouped.get() {
            self.eng.ctx().begin_nb_batch();
        }
        for (&raw, obj) in cache.iter_mut() {
            let id = DPtr::from_raw(raw);
            if result.is_err() {
                // the commit already failed: write back nothing further;
                // reclaim never-published creations only when nothing was
                // persisted before the failure (see `wrote_any` above)
                if obj.created && !wrote_any {
                    hio::free_chain(&self.eng.bm, &obj.blocks);
                }
                continue;
            }
            if obj.deleted {
                if !obj.created {
                    // remove from DHT and indexes, then free storage; the
                    // traced delete bumps the owner's epoch and feeds the
                    // write-through negative cache entry
                    if !obj.holder.is_edge {
                        if let Some(word) = self.eng.dht.delete_traced(obj.holder.app_id) {
                            self.eng.tcache.note_delete(obj.holder.app_id, word);
                        }
                        self.eng
                            .indexes()
                            .reindex_vertex(id, AppVertexId(obj.holder.app_id), None);
                    }
                }
                hio::free_chain(&self.eng.bm, &obj.blocks);
                if mvcc && !obj.created && obj.holder.prev != 0 {
                    self.free_archives(obj.holder.prev, obj.holder.depth as usize);
                }
                if logging && !obj.created {
                    // the logged version also caps the owner's stamp
                    // counter: a recreate of this app id must stamp
                    // strictly above it even when this version predates
                    // persistence (and so was never stamped), or replay
                    // would refuse the recreate as older than its
                    // tombstone
                    self.eng.advance_version_stamp(id, obj.holder.version);
                    redo.push(crate::persist::RedoRecord::Delete {
                        primary: raw,
                        app_id: obj.holder.app_id,
                        is_edge: obj.holder.is_edge,
                        version: obj.holder.version,
                    });
                }
                touched.insert(id.rank());
                topo_touched.insert(id.rank());
                wrote_any = true;
            } else if obj.dirty || obj.created {
                // a persisted write versions the holder with a commit
                // stamp from its owner rank — strictly monotone per
                // object across incarnations, the replay ordering
                // authority. Pre-persistence in-memory bumps can outrun
                // the counter (persistence enabled mid-life): then the
                // counter must be raised along with the written version,
                // or a later incarnation of this app id could stamp
                // *below* it and lose to its tombstone at replay.
                // under MVCC every write takes an owner-rank stamp too:
                // version doubles as the seqlock publication stamp, so
                // it must be unique per rank across objects and
                // incarnations (a reused block must never revalidate
                // under a stale stamp)
                obj.holder.version = if logging || mvcc {
                    let stamp = self.eng.next_version_stamp(id);
                    let want = obj.holder.version + 1;
                    if want > stamp {
                        self.eng.advance_version_stamp(id, want);
                        want
                    } else {
                        stamp
                    }
                } else {
                    obj.holder.version + 1
                };
                if let Some(e) = epoch {
                    if obj.created {
                        obj.holder.prev = 0;
                        obj.holder.depth = 0;
                    } else {
                        // bound the chain before it grows: when the new
                        // archive would push the depth past the limit,
                        // free every version no snapshot can still read
                        if obj.holder.depth as usize + 1 > self.eng.cfg().mvcc_chain_limit
                            && obj.holder.prev != 0
                        {
                            let f = *floor.get_or_insert_with(|| self.eng.snapshot_floor());
                            if let Some(f) = f {
                                let kept = self.truncate_chain(
                                    obj.holder.prev,
                                    f,
                                    obj.holder.depth as usize,
                                );
                                obj.holder.depth = kept.min(u8::MAX as usize) as u8;
                            }
                        }
                        let pre = obj
                            .orig
                            .as_deref()
                            .expect("MVCC writer cached a pre-existing object without pre-image");
                        match self.archive_version(id, pre) {
                            Ok(head) => {
                                obj.holder.prev = head.raw();
                                obj.holder.depth = obj.holder.depth.saturating_add(1);
                                self.eng.ctx().record_version_archive();
                            }
                            Err(e) => {
                                result = Err(e);
                                continue;
                            }
                        }
                    }
                    obj.holder.commit_epoch = e;
                }
                obj.holder.compact_edges();
                let bytes = obj.holder.encode();
                // pre-existing objects are republished with the 3-phase
                // seqlock overwrite so concurrent validated snapshot
                // reads can never assemble a torn mix of versions;
                // created objects are unreachable until the DHT insert
                // below and write single-phase
                let write_res = if mvcc && !obj.created {
                    hio::overwrite_chain(self.eng.ctx, &self.eng.bm, &bytes, &mut obj.blocks)
                } else {
                    hio::write_chain(self.eng.ctx, &self.eng.bm, &bytes, &mut obj.blocks)
                };
                if let Err(e) = write_res {
                    result = Err(e);
                    if obj.created && !wrote_any {
                        // nothing persisted references this object yet
                        // and it is not in the DHT: safe to reclaim
                        hio::free_chain(&self.eng.bm, &obj.blocks);
                    }
                    continue;
                }
                wrote_any = true;
                if obj.created && !obj.holder.is_edge {
                    match self.eng.dht.insert_traced(obj.holder.app_id, raw) {
                        Ok(word) => self.eng.tcache.note_insert(obj.holder.app_id, raw, word),
                        Err(e) => {
                            result = Err(e);
                            // written (wrote_any is set): persisted mirrors
                            // may point here, so the blocks must leak rather
                            // than be reused
                            continue;
                        }
                    }
                }
                if !obj.holder.is_edge {
                    self.eng.indexes().reindex_vertex(
                        id,
                        AppVertexId(obj.holder.app_id),
                        Some(&obj.holder.labels()),
                    );
                }
                if logging {
                    redo.push(crate::persist::RedoRecord::Upsert {
                        primary: raw,
                        app_id: obj.holder.app_id,
                        is_edge: obj.holder.is_edge,
                        version: obj.holder.version,
                        bytes,
                    });
                }
                touched.insert(id.rank());
                if obj.topo {
                    topo_touched.insert(id.rank());
                }
            }
        }
        for r in touched {
            self.eng.ctx().flush(r);
        }
        if self.grouped.get() {
            self.eng.ctx().end_nb_batch();
        }
        // topology-epoch bumps strictly *after* the data write-back: a
        // scan view built against the old epoch can never have read new
        // bytes it would then fail to revalidate (one fadd per touched
        // rank per commit; property-only commits bump nothing)
        for r in topo_touched {
            self.eng.bump_topology_epoch(r);
        }
        // one redo append per commit: a grouped commit logs the whole
        // group in one frame, amortizing the device overhead
        self.eng.log_commit(redo);
        // MVCC epoch publication: strictly in epoch order (spin until
        // the watermark reaches e-1, then CAS), and unconditional —
        // a failed commit publishes too, or every later epoch would
        // spin forever behind the gap. Runs *after* the redo append:
        // log-before-publish keeps a fuzzy checkpoint's recovered
        // watermark consistent with the images it restores.
        if let Some(e) = epoch {
            self.eng.publish_watermark(e);
            self.eng.set_last_commit_epoch(e);
        }
        // release all locks (end of phase two)
        for (&raw, obj) in cache.iter() {
            if let Some(kind) = obj.lock {
                self.eng.lm.release(DPtr::from_raw(raw), kind);
            }
        }
        cache.clear();
        drop(cache);
        self.unpin();
        self.status.set(TxStatus::Committed);
        if self.kind == TxKind::Collective {
            self.eng.ctx().barrier();
        }
        result
    }

    /// `GDI_CloseTransaction` with abort semantics: no effects are visible.
    pub fn abort(self) {
        if self.status.get().is_active() {
            self.abort_inner();
        }
    }

    fn abort_inner(&self) {
        let mut cache = self.cache.borrow_mut();
        for (&raw, obj) in cache.iter() {
            if obj.created {
                // blocks were acquired eagerly; give them back
                hio::free_chain(&self.eng.bm, &obj.blocks);
            }
            if let Some(kind) = obj.lock {
                self.eng.lm.release(DPtr::from_raw(raw), kind);
            }
        }
        cache.clear();
        drop(cache);
        self.unpin();
        self.status.set(TxStatus::Aborted);
    }
}

impl Drop for Transaction<'_, '_, '_, '_> {
    fn drop(&mut self) {
        if self.status.get().is_active() {
            self.abort_inner();
        }
    }
}

/// Locate the mirror record of an edge at the opposite endpoint: same
/// remote vertex, reversed direction, same label and heavy-holder link.
fn find_mirror_slot(holder: &Holder, remote: DPtr, rec: &EdgeRecord) -> Option<u32> {
    holder
        .live_edges()
        .find(|(_, r)| {
            r.target == remote
                && r.dir == rec.dir.reverse()
                && r.label == rec.label
                && r.edge_holder == rec.edge_holder
        })
        .map(|(s, _)| s)
}

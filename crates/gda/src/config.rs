//! GDA configuration and window layout.
//!
//! GDA uses four symmetric windows per rank (§5.5 describes the first
//! three; the fourth hosts the internal DHT index of §5.7):
//!
//! | window | contents |
//! |---|---|
//! | **data**   | the BGDL block pool: `blocks_per_rank` fixed-size blocks |
//! | **usage**  | the free-list links: word *i* = next free block after *i* |
//! | **system** | word 0 = tagged free-list head; word *i* = RW lock of block *i*; then the commit-stamp counter (persistence), the topology-epoch word (OLAP scan views), the commit-epoch counter + read-epoch watermark (rank 0, MVCC) and the per-rank min-active-snapshot word |
//! | **index**  | DHT: word 0 = tagged heap free head; word 1 = epoch word (`delete:32 \| insert:32`); buckets; 3-word heap entries |

use rma::{BackendKind, CostModel, Fabric, FabricBuilder, WinId};

/// Window id of the data window.
pub const WIN_DATA: WinId = WinId(0);
/// Window id of the usage (free-list) window.
pub const WIN_USAGE: WinId = WinId(1);
/// Window id of the system (head + locks) window.
pub const WIN_SYSTEM: WinId = WinId(2);
/// Window id of the internal-index (DHT) window.
pub const WIN_INDEX: WinId = WinId(3);

/// Tunable GDA parameters.
#[derive(Debug, Clone, Copy)]
pub struct GdaConfig {
    /// BGDL block size in bytes (tunable communication/storage tradeoff,
    /// §5.5). Must be a multiple of 8 and at least 64.
    pub block_size: usize,
    /// Number of blocks in each rank's data window (block 0 is reserved so
    /// that offset 0 can serve as the null `DPtr`).
    pub blocks_per_rank: usize,
    /// Buckets of the internal DHT per rank.
    pub dht_buckets_per_rank: usize,
    /// Heap entries (3 words each) of the internal DHT per rank.
    pub dht_heap_per_rank: usize,
    /// Bounded lock acquisition attempts before a transaction aborts with
    /// `GDI_ERROR_LOCK_CONFLICT` (the source of the paper's failed-
    /// transaction percentages).
    pub max_lock_retries: usize,
    /// Enable the per-rank, epoch-validated app-id → `DPtr` translation
    /// cache in front of `Dht::lookup` (see `gda::cache`).
    pub translation_cache: bool,
    /// Maximum resident entries of the translation cache (per rank).
    pub translation_cache_capacity: usize,
    /// Enable MVCC snapshot-isolation reads: read-only transactions pin
    /// the global read-epoch watermark at `begin` and read lock-free
    /// validated version chains — they never take locks, never abort,
    /// and never block writers. Writers keep the locking path (write-
    /// write conflict detection only) and archive the overwritten
    /// version at commit. Disable to fall back to the 2PL read path
    /// (the pre-MVCC behavior, kept as the bench comparison axis).
    pub mvcc: bool,
    /// Maximum archived versions kept per object before commit-time
    /// truncation frees archives older than the snapshot floor.
    pub mvcc_chain_limit: usize,
}

impl Default for GdaConfig {
    fn default() -> Self {
        Self {
            block_size: 512,
            blocks_per_rank: 8192,
            dht_buckets_per_rank: 4096,
            dht_heap_per_rank: 8192,
            max_lock_retries: 48,
            translation_cache: true,
            translation_cache_capacity: 8192,
            mvcc: true,
            mvcc_chain_limit: 4,
        }
    }
}

impl GdaConfig {
    /// A small configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            block_size: 128,
            blocks_per_rank: 256,
            dht_buckets_per_rank: 64,
            dht_heap_per_rank: 256,
            max_lock_retries: 48,
            translation_cache: true,
            translation_cache_capacity: 128,
            mvcc: true,
            mvcc_chain_limit: 4,
        }
    }

    /// Size a configuration to hold roughly `vertices` vertices and `edges`
    /// edge records per rank with property payload `payload_hint` bytes per
    /// vertex.
    pub fn sized_for(vertices: usize, edges: usize, payload_hint: usize) -> Self {
        let mut cfg = Self::default();
        let per_vertex = 80 + payload_hint + 8;
        let edge_bytes = edges * crate::holder::EDGE_RECORD_BYTES * 2;
        let bytes = vertices * per_vertex + edge_bytes;
        // ×3 (not ×2) headroom: version-chain archives hold the previous
        // version of every overwritten holder until truncation
        let blocks = (bytes / (cfg.block_size - 16)).max(64) * 3 + vertices * 2;
        cfg.blocks_per_rank = blocks.next_power_of_two();
        cfg.dht_buckets_per_rank = (vertices.max(16)).next_power_of_two();
        cfg.dht_heap_per_rank = (vertices.max(16) * 2).next_power_of_two();
        cfg.translation_cache_capacity = (vertices.max(64) * 2).next_power_of_two();
        cfg
    }

    /// Validate invariants.
    pub fn validate(&self) {
        assert!(self.block_size >= 64, "block size too small");
        assert!(
            self.block_size.is_multiple_of(8),
            "block size must be word aligned"
        );
        assert!(self.blocks_per_rank >= 2, "need at least one usable block");
        assert!(self.dht_buckets_per_rank >= 1);
        assert!(self.dht_heap_per_rank >= 1);
        assert!(
            !self.translation_cache || self.translation_cache_capacity >= 1,
            "an enabled translation cache needs a positive capacity"
        );
    }

    /// Bytes of the data window.
    pub fn data_bytes(&self) -> usize {
        (self.blocks_per_rank + 1) * self.block_size
    }

    /// Bytes of the usage window.
    pub fn usage_bytes(&self) -> usize {
        (self.blocks_per_rank + 1) * 8
    }

    /// Bytes of the system window (head word + one lock word per block +
    /// the commit-stamp counter word + the topology-epoch word + the
    /// commit-epoch counter + the read-epoch watermark + the per-rank
    /// min-active-snapshot word + the per-rank watermark shadow).
    pub fn system_bytes(&self) -> usize {
        (self.blocks_per_rank + 7) * 8
    }

    /// System-window word index of the per-rank **commit-stamp
    /// counter**: a monotone counter the persistence layer `fadd`s to
    /// version every persisted holder write, making object versions
    /// strictly monotone across delete/recreate incarnations (the
    /// redo-replay ordering authority; see `gda::persist`).
    pub fn stamp_word(&self) -> usize {
        self.blocks_per_rank + 1
    }

    /// System-window word index of the per-rank **topology-epoch
    /// counter**: bumped once per commit (and once per collective bulk
    /// load) on every rank whose window received a *topology* change —
    /// vertex created/deleted or an edge list mutated. Property- and
    /// vertex-label-only commits leave it alone. The epoch stamp that
    /// validates cached OLAP scan views (see `gda::scan`): a view built
    /// from rank `r`'s raw windows is trustworthy exactly while `r`'s
    /// topology word is unchanged.
    pub fn topo_word(&self) -> usize {
        self.blocks_per_rank + 2
    }

    /// System-window word index of the **commit-epoch counter** (live on
    /// rank 0 only): every local read-write commit under
    /// [`GdaConfig::mvcc`] `fadd`s it to allocate its commit epoch `e`.
    /// Collective (bulk-load) transactions allocate no epoch — their
    /// holders stay at epoch 0, visible to every snapshot.
    pub fn epoch_counter_word(&self) -> usize {
        self.blocks_per_rank + 3
    }

    /// System-window word index of the global **read-epoch watermark**
    /// (live on rank 0 only): the highest commit epoch whose writes —
    /// and those of *all* lower epochs — are fully flushed. Commits
    /// publish their epoch in order (spin until `W == e-1`, then CAS),
    /// so a snapshot pinned at `s = W` observes the exact committed
    /// state as of epoch `s`.
    pub fn watermark_word(&self) -> usize {
        self.blocks_per_rank + 4
    }

    /// System-window word index of this rank's **min-active-snapshot**
    /// word: the smallest snapshot epoch any live read-only transaction
    /// on the rank has pinned. `u64::MAX` = none active; `0` = a pin is
    /// in progress (registration marker — truncation skips the round).
    /// The chain truncator takes the minimum over all ranks (and the
    /// watermark) as the version-retention floor.
    pub fn snap_word(&self) -> usize {
        self.blocks_per_rank + 5
    }

    /// System-window word index of this rank's **watermark shadow**: a
    /// rank-local replica of the global read-epoch watermark. The
    /// in-order publication section refreshes every rank's shadow
    /// *before* the authoritative CAS on rank 0, so at any instant
    /// `shadow ≥ W` on every rank — which lets a snapshot pin read its
    /// local shadow (one local atomic instead of a remote round trip)
    /// and still pin an epoch no truncation floor can have passed.
    /// Writers pay `P` shadow stores per commit; pins are free of
    /// network latency — the right trade for read-mostly traffic.
    pub fn wmark_shadow_word(&self) -> usize {
        self.blocks_per_rank + 6
    }

    /// Bytes of the index window (tagged heap head + epoch word + buckets
    /// + heap).
    pub fn index_bytes(&self) -> usize {
        (2 + self.dht_buckets_per_rank + 3 * (self.dht_heap_per_rank + 1)) * 8
    }

    /// Build a fabric with the four GDA windows registered. The execution
    /// backend follows the process default (`GDI_FABRIC_BACKEND`, else
    /// simulated); use [`GdaConfig::build_fabric_on`] to pin one.
    pub fn build_fabric(&self, nranks: usize, cost: CostModel) -> Fabric {
        self.validate();
        self.fabric_builder(nranks, cost).build()
    }

    /// Like [`GdaConfig::build_fabric`] but pinned to an explicit fabric
    /// execution backend, ignoring `GDI_FABRIC_BACKEND`.
    pub fn build_fabric_on(&self, nranks: usize, cost: CostModel, backend: BackendKind) -> Fabric {
        self.validate();
        self.fabric_builder(nranks, cost).backend(backend).build()
    }

    /// Like [`GdaConfig::build_fabric`] with an optional backend pin and
    /// an optional shared fault-injection plane (see [`crate::faults`]):
    /// the shape [`crate::persist::recover`] uses so the fabric it boots
    /// probes the same registry as the persistence store.
    pub fn build_fabric_shared(
        &self,
        nranks: usize,
        cost: CostModel,
        backend: Option<BackendKind>,
        faults: Option<std::sync::Arc<rma::FaultPlane>>,
    ) -> Fabric {
        self.validate();
        let mut b = self.fabric_builder(nranks, cost);
        if let Some(backend) = backend {
            b = b.backend(backend);
        }
        if let Some(plane) = faults {
            b = b.faults(plane);
        }
        b.build()
    }

    fn fabric_builder(&self, nranks: usize, cost: CostModel) -> FabricBuilder {
        // one dirty-tracking chunk = one BGDL block: a delta checkpoint
        // ships exactly the blocks commits touched since the last one
        FabricBuilder::new(nranks)
            .cost(cost)
            .dirty_chunk(self.block_size)
            .window(self.data_bytes())
            .window(self.usage_bytes())
            .window(self.system_bytes())
            .window(self.index_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_valid() {
        GdaConfig::default().validate();
        GdaConfig::tiny().validate();
    }

    #[test]
    fn window_sizing() {
        let c = GdaConfig::tiny();
        assert_eq!(c.data_bytes(), 257 * 128);
        assert_eq!(c.usage_bytes(), 257 * 8);
        assert_eq!(c.system_bytes(), 263 * 8);
        assert_eq!(c.stamp_word(), 257);
        assert_eq!(c.topo_word(), 258);
        assert_eq!(c.epoch_counter_word(), 259);
        assert_eq!(c.watermark_word(), 260);
        assert_eq!(c.snap_word(), 261);
        assert_eq!(c.wmark_shadow_word(), 262);
        assert_eq!(c.index_bytes(), (2 + 64 + 3 * 257) * 8);
    }

    #[test]
    #[should_panic(expected = "word aligned")]
    fn misaligned_block_size_rejected() {
        let c = GdaConfig {
            block_size: 100,
            ..GdaConfig::tiny()
        };
        c.validate();
    }

    #[test]
    fn fabric_builds_with_windows() {
        let c = GdaConfig::tiny();
        let f = c.build_fabric(2, CostModel::zero());
        assert_eq!(f.nranks(), 2);
        f.run(|ctx| {
            assert_eq!(ctx.win_len_bytes(WIN_DATA), c.data_bytes());
            assert_eq!(ctx.win_len_bytes(WIN_USAGE), c.usage_bytes());
            assert_eq!(ctx.win_len_bytes(WIN_SYSTEM), c.system_bytes());
            assert_eq!(ctx.win_len_bytes(WIN_INDEX), c.index_bytes());
        });
    }

    #[test]
    fn sized_for_scales_with_input() {
        let small = GdaConfig::sized_for(100, 1000, 32);
        let big = GdaConfig::sized_for(10_000, 100_000, 32);
        assert!(big.blocks_per_rank > small.blocks_per_rank);
        assert!(big.dht_buckets_per_rank > small.dht_buckets_per_rank);
    }
}

//! Background maintenance: collective, quiesced passes that keep a
//! long-running database's storage bounded and its published
//! checkpoints trustworthy. Runnable between server drain cycles
//! (`server::GdiServer` schedules them) or directly via
//! [`crate::db::GdaRank::maintenance`].
//!
//! One pass runs four sub-passes, in order:
//!
//! 1. **MVCC version vacuum** — the commit path truncates an archive
//!    chain only when the chain *grows past* `mvcc_chain_limit`
//!    ([`crate::tx`]), so a hot object's garbage is bounded but a
//!    **cold** object — overwritten a few times, then never again —
//!    keeps its archives forever. The vacuum sweeps every local
//!    primary and frees all archived versions no pinned snapshot can
//!    still resolve to (strictly below the global snapshot floor),
//!    patching the live holder's recorded depth and `prev` **in
//!    place** (two aligned word writes; no version bump — the seqlock
//!    stamp is unchanged and both words flip atomically, so a racing
//!    pinned reader sees either the old or the new link, never a torn
//!    one). Every truncation *seals* the cut by zeroing the last kept
//!    archive's `prev` (`seal_chain_tail`), so no later walk follows
//!    a freed link into reused space.
//! 2. **Free-list vacuum** — rebuild the rank's block free list in
//!    ascending order ([`crate::blocks::BlockManager::vacuum_free_list`])
//!    so subsequent allocation packs live data at the front of the
//!    window.
//! 3. **Holder-chain compaction** — relocate multi-block holders'
//!    *continuation* blocks (never the primary: it is the object's
//!    identity) to lower-numbered free blocks. Logical content is
//!    unchanged, so no redo record is written; the moved blocks reach
//!    durability through the dirty map at the next delta checkpoint,
//!    and a crash before that recovers the (equivalent)
//!    pre-compaction layout.
//! 4. **Checksum verification** — re-read every file of the published
//!    snapshot chain and validate its trailing checksum
//!    ([`crate::persist`]), surfacing silent corruption *before* the
//!    next recovery depends on the file.
//!
//! The pass requires quiescence: no transaction may be open anywhere
//! except **pinned read-only snapshots** — those never write back
//! cached holder state (which would resurrect a vacuumed `prev`) and
//! their pins hold the snapshot floor down, which the vacuum respects.

use rustc_hash::FxHashSet;

use gdi::GdiResult;
use rma::RankCtx;

use crate::config::{GdaConfig, WIN_DATA, WIN_INDEX};
use crate::db::GdaRank;
use crate::dht;
use crate::dptr::DPtr;
use crate::hio::{self, BLOCK_PAYLOAD_OFFSET};
use crate::holder::{Holder, DEPTH_MASK, FLAGS_WORD_OFFSET, PREV_OFFSET};

/// What one collective maintenance pass did, globally (every field is
/// an allreduced sum; identical on every rank).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// The snapshot floor the vacuum ran against (0 when the vacuum
    /// was skipped because a pin was mid-registration).
    pub floor: u64,
    /// Objects whose archive chain the vacuum touched.
    pub vacuumed_objects: u64,
    /// Archived versions freed by the vacuum.
    pub vacuumed_versions: u64,
    /// Blocks returned to the free lists by the vacuum.
    pub vacuumed_blocks: u64,
    /// Free blocks across all ranks after the free-list vacuum.
    pub free_blocks: u64,
    /// Holder chains whose continuation blocks were relocated.
    pub compacted_chains: u64,
    /// Continuation blocks moved to lower addresses.
    pub compacted_blocks: u64,
    /// Snapshot-chain bytes re-read and checksum-verified.
    pub verified_bytes: u64,
    /// Checksum/readability failures found in the published chain.
    pub verify_errors: u64,
}

/// Seal a truncated archive chain: zero the `prev` field of the last
/// kept archive, in place (one aligned word write into the archive's
/// primary block — `prev` sits entirely inside the first block's
/// payload, after the 48-byte header start). Shared by the commit-path
/// truncation ([`crate::tx`]) and the vacuum.
pub(crate) fn seal_chain_tail(ctx: &RankCtx, dp: DPtr) {
    let word = (dp.offset() as usize + BLOCK_PAYLOAD_OFFSET + PREV_OFFSET) / 8;
    ctx.put_u64(WIN_DATA, dp.rank(), word, 0);
    ctx.flush(dp.rank());
}

/// Patch a live holder's archive bookkeeping in place: rewrite the
/// depth bits inside the flags word and (when `prev` is given) the
/// `prev` pointer, without touching the seqlock stamp or the version.
/// Safe against concurrent pinned readers: each write is one aligned
/// word, and any old/new combination of the two words yields a valid
/// (possibly shorter) walk — see the module docs.
fn patch_live_holder(ctx: &RankCtx, id: DPtr, depth: u8, prev: Option<u64>) {
    let base = id.offset() as usize + BLOCK_PAYLOAD_OFFSET;
    let fw = (base + FLAGS_WORD_OFFSET) / 8;
    let word = ctx.get_u64(WIN_DATA, id.rank(), fw);
    let flags = ((word >> 32) as u32 & !DEPTH_MASK) | ((depth as u32) << 16);
    ctx.put_u64(
        WIN_DATA,
        id.rank(),
        fw,
        (word & 0xFFFF_FFFF) | ((flags as u64) << 32),
    );
    if let Some(p) = prev {
        let pw = (base + PREV_OFFSET) / 8;
        ctx.put_u64(WIN_DATA, id.rank(), pw, p);
    }
    ctx.flush(id.rank());
}

/// Vacuum one object's archive chain against `floor`. Returns
/// `(versions_freed, blocks_freed)`; `(0, 0)` when nothing was
/// reclaimable.
fn vacuum_object(eng: &GdaRank, id: DPtr, h: &Holder, floor: u64) -> (u64, u64) {
    if h.prev == 0 || h.depth == 0 {
        return (0, 0);
    }
    let ctx = eng.ctx();
    let mut versions = 0u64;
    let mut blocks_freed = 0u64;
    if h.commit_epoch <= floor {
        // every snapshot ≥ floor resolves to the live version itself:
        // the whole archive chain is unreachable garbage
        let mut cur = h.prev;
        let mut seen = 0usize;
        while cur != 0 && seen < h.depth as usize {
            seen += 1;
            let Ok((bytes, blocks)) = hio::read_chain(ctx, eng.cfg(), DPtr::from_raw(cur)) else {
                break;
            };
            let Some(a) = Holder::try_decode(&bytes) else {
                break;
            };
            hio::free_chain(&eng.bm, &blocks);
            versions += 1;
            blocks_freed += blocks.len() as u64;
            cur = a.prev;
        }
        patch_live_holder(ctx, id, 0, Some(0));
        return (versions, blocks_freed);
    }
    // the live version is above the floor: keep every archive a pinned
    // snapshot could still need (epoch > floor, plus the first at or
    // below it), free the strictly older rest, seal the cut
    let mut kept = 0usize;
    let mut cut = false;
    let mut tail: Option<DPtr> = None;
    let mut cur = h.prev;
    let mut seen = 0usize;
    while cur != 0 && seen < h.depth as usize {
        seen += 1;
        let dp = DPtr::from_raw(cur);
        let Ok((bytes, blocks)) = hio::read_chain(ctx, eng.cfg(), dp) else {
            break;
        };
        let Some(a) = Holder::try_decode(&bytes) else {
            break;
        };
        if cut {
            hio::free_chain(&eng.bm, &blocks);
            versions += 1;
            blocks_freed += blocks.len() as u64;
        } else {
            kept += 1;
            if a.commit_epoch <= floor {
                cut = true;
                tail = Some(dp);
            }
        }
        cur = a.prev;
    }
    if versions > 0 {
        if let Some(dp) = tail {
            seal_chain_tail(ctx, dp);
        }
        patch_live_holder(ctx, id, kept.min(u8::MAX as usize) as u8, None);
    }
    (versions, blocks_freed)
}

/// Relocate the continuation blocks of one holder chain to
/// lower-numbered blocks when the free list offers them. Returns the
/// number of blocks moved (0 = chain untouched).
fn compact_chain(eng: &GdaRank, bytes: &[u8], blocks: &[DPtr]) -> u64 {
    if blocks.len() < 2 {
        return 0;
    }
    let bm = &eng.bm;
    let me = blocks[0].rank();
    let mut newb = blocks.to_vec();
    let mut replaced = Vec::new();
    for slot in newb.iter_mut().skip(1) {
        let Ok(cand) = bm.acquire(me) else {
            break;
        };
        if cand.offset() < slot.offset() {
            replaced.push(std::mem::replace(slot, cand));
        } else {
            bm.release(cand);
        }
    }
    if replaced.is_empty() {
        return 0;
    }
    if hio::write_chain(eng.ctx(), bm, bytes, &mut newb).is_err() {
        // rewrite failed mid-way: the primary still chains to a valid
        // image only if nothing was written — write_chain only errs
        // acquiring blocks, which cannot happen here (the chain never
        // grows), so this arm is unreachable; keep the old layout
        for dp in replaced {
            let _ = dp;
        }
        return 0;
    }
    let moved = replaced.len() as u64;
    // old continuation blocks go back to the pool only after the new
    // chain is fully published
    for dp in replaced {
        bm.release(dp);
    }
    moved
}

/// Collective: one full maintenance pass (see the module docs for the
/// four sub-passes and the quiescence requirement). Every rank must
/// call this together; returns the globally aggregated report.
pub(crate) fn maintenance_rank(eng: &GdaRank) -> GdiResult<MaintenanceReport> {
    let ctx = eng.ctx();
    let cfg: &GdaConfig = eng.cfg();
    let me = eng.rank();
    let nranks = eng.nranks();
    ctx.quiesce();

    // -- agree on the vacuum floor ------------------------------------
    // A pin mid-registration (snap word 0) makes the floor unknowable;
    // skip the vacuum for this pass rather than guess. All ranks must
    // agree — a pin can finish registering between two ranks' reads.
    let local_floor = eng.snapshot_floor();
    let skip_vacuum = ctx.allreduce_any(local_floor.is_none());
    let floor = if skip_vacuum {
        0
    } else {
        ctx.allreduce_min_u64(local_floor.unwrap_or(u64::MAX))
    };

    // -- enumerate the primaries this rank owns -----------------------
    // DHT partitions are keyed by app id, not by primary placement:
    // decode the local partition, then route every (app, primary) pair
    // to the rank that owns the primary (the scan sweep's idiom).
    let mut img = vec![0u8; ctx.win_len_bytes(WIN_INDEX)];
    ctx.get_bytes(WIN_INDEX, me, 0, &mut img);
    let pairs = dht::decode_partition(cfg, &img);
    ctx.charge_cpu(pairs.len() as u64 + cfg.dht_buckets_per_rank as u64);
    let mut rows: Vec<Vec<u64>> = vec![Vec::new(); nranks];
    for (_, raw) in pairs {
        rows[DPtr::from_raw(raw).rank()].push(raw);
    }
    let mut mine: Vec<u64> = ctx.alltoallv(rows).into_iter().flatten().collect();
    mine.sort_unstable();

    // -- pass 1: MVCC version vacuum ----------------------------------
    // Heavy-edge holders are not in the DHT; they are discovered off
    // the local vertices' edge records (a heavy edge's holder lives on
    // an endpoint's rank, so every local edge holder is referenced by
    // at least one local vertex).
    let mut vacuumed_objects = 0u64;
    let mut vacuumed_versions = 0u64;
    let mut vacuumed_blocks = 0u64;
    let mut edge_holders: FxHashSet<u64> = FxHashSet::default();
    let mut chains: Vec<(Vec<u8>, Vec<DPtr>)> = Vec::new();
    for &raw in &mine {
        let id = DPtr::from_raw(raw);
        let Ok((bytes, blocks)) = hio::read_chain(ctx, cfg, id) else {
            continue;
        };
        let Some(h) = Holder::try_decode(&bytes) else {
            continue;
        };
        for (_, e) in h.live_edges() {
            if !e.edge_holder.is_null() && e.edge_holder.rank() == me {
                edge_holders.insert(e.edge_holder.raw());
            }
        }
        if !skip_vacuum {
            let (v, b) = vacuum_object(eng, id, &h, floor);
            if v > 0 {
                vacuumed_objects += 1;
                vacuumed_versions += v;
                vacuumed_blocks += b;
            }
        }
        chains.push((bytes, blocks));
    }
    let mut eh: Vec<u64> = edge_holders.into_iter().collect();
    eh.sort_unstable();
    for raw in eh {
        let id = DPtr::from_raw(raw);
        let Ok((bytes, blocks)) = hio::read_chain(ctx, cfg, id) else {
            continue;
        };
        let Some(h) = Holder::try_decode(&bytes) else {
            continue;
        };
        if !skip_vacuum {
            let (v, b) = vacuum_object(eng, id, &h, floor);
            if v > 0 {
                vacuumed_objects += 1;
                vacuumed_versions += v;
                vacuumed_blocks += b;
            }
        }
        chains.push((bytes, blocks));
    }
    if vacuumed_versions > 0 {
        ctx.record_vacuum(vacuumed_versions);
    }

    // -- pass 2: free-list vacuum -------------------------------------
    // Before compaction, so `acquire` below hands out the lowest free
    // blocks first.
    let free_blocks = eng.bm.vacuum_free_list(me) as u64;

    // -- pass 3: holder-chain compaction ------------------------------
    // Largest offsets first: draining the high end of the window first
    // maximizes how far the live data packs down in one pass.
    let mut compacted_chains = 0u64;
    let mut compacted_blocks = 0u64;
    chains.retain(|(_, blocks)| blocks.len() > 1);
    chains.sort_unstable_by_key(|(_, blocks)| {
        std::cmp::Reverse(blocks.iter().map(|b| b.offset()).max().unwrap_or(0))
    });
    for (bytes, blocks) in &chains {
        let moved = compact_chain(eng, bytes, blocks);
        if moved > 0 {
            compacted_chains += 1;
            compacted_blocks += moved;
            ctx.record_compaction(moved);
        }
    }

    // -- pass 4: checksum verification of the published chain ---------
    let (verified_bytes, verify_errors) = match eng.persistence() {
        Some(store) => crate::persist::verify_rank_chain(&store, me),
        None => (0, 0),
    };
    if verified_bytes > 0 || verify_errors > 0 {
        ctx.record_verify(verified_bytes, verify_errors);
    }

    ctx.record_maintenance_pass();
    ctx.barrier();
    Ok(MaintenanceReport {
        floor,
        vacuumed_objects: ctx.allreduce_sum_u64(vacuumed_objects),
        vacuumed_versions: ctx.allreduce_sum_u64(vacuumed_versions),
        vacuumed_blocks: ctx.allreduce_sum_u64(vacuumed_blocks),
        free_blocks: ctx.allreduce_sum_u64(free_blocks),
        compacted_chains: ctx.allreduce_sum_u64(compacted_chains),
        compacted_blocks: ctx.allreduce_sum_u64(compacted_blocks),
        verified_bytes: ctx.allreduce_sum_u64(verified_bytes),
        verify_errors: ctx.allreduce_sum_u64(verify_errors),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::GdaDb;
    use crate::persist::{recover, PersistOptions};
    use gdi::{
        AccessMode, AppVertexId, Datatype, EntityType, Multiplicity, PTypeId, PropertyValue,
        SizeType,
    };
    use rma::CostModel;

    fn prop_bytes(n: usize) -> PropertyValue {
        PropertyValue::Bytes(vec![7u8; n])
    }

    /// Register the unlimited-size byte property the tests write.
    fn blob_ptype(eng: &GdaRank) -> PTypeId {
        eng.create_ptype(
            "blob",
            Datatype::Byte,
            EntityType::Vertex,
            Multiplicity::Single,
            SizeType::NoLimit,
            0,
        )
        .unwrap()
    }

    /// The bug family this PR fixes, end to end: cold objects
    /// overwritten a few times leak archives forever (the commit path
    /// truncates only chains that *grow* past the limit); the vacuum
    /// reclaims them down to the snapshot floor, and pool accounting
    /// proves it.
    #[test]
    fn vacuum_reclaims_cold_archives() {
        let cfg = GdaConfig::tiny();
        let (db, fabric) = GdaDb::with_fabric("vac", cfg, 2, CostModel::zero());
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            let blob = if ctx.rank() == 0 {
                Some(blob_ptype(&eng))
            } else {
                None
            };
            let blob = PTypeId(ctx.allreduce_max_u64(blob.map(|p| p.0 as u64).unwrap_or(0)) as u32);
            eng.refresh_meta();
            let owner = if ctx.rank() == 0 {
                let tx = eng.begin(AccessMode::ReadWrite);
                let v = tx.create_vertex(AppVertexId(1)).unwrap();
                tx.commit().unwrap();
                // three overwrites: depth 3, below mvcc_chain_limit
                // (4), so the commit path never truncates — the chain
                // is leaked garbage once the watermark moves past it
                for i in 0..3u64 {
                    let tx = eng.begin(AccessMode::ReadWrite);
                    let v = tx.translate_vertex_id(AppVertexId(1)).unwrap();
                    tx.update_property(v, blob, &prop_bytes(8 + i as usize))
                        .unwrap();
                    tx.commit().unwrap();
                }
                v.rank()
            } else {
                0
            };
            let owner = ctx.allreduce_max_u64(owner as u64) as usize;
            let before = eng.bm.count_free(owner);
            let rep = eng.maintenance().unwrap();
            assert_eq!(rep.vacuumed_objects, 1, "{rep:?}");
            assert_eq!(rep.vacuumed_versions, 3, "{rep:?}");
            assert!(rep.vacuumed_blocks >= 3);
            assert_eq!(
                eng.bm.count_free(owner),
                before + rep.vacuumed_blocks as usize,
                "every freed archive block is back in the pool"
            );
            // the patched holder reads back clean and live
            eng.refresh_meta();
            let tx = eng.begin(AccessMode::ReadOnly);
            let v = tx.translate_vertex_id(AppVertexId(1)).unwrap();
            assert_eq!(
                tx.property(v, blob).unwrap(),
                Some(prop_bytes(10)),
                "live version intact after vacuum"
            );
            tx.commit().unwrap();
            // a second pass finds nothing: the vacuum converges
            let rep2 = eng.maintenance().unwrap();
            assert_eq!(rep2.vacuumed_versions, 0, "{rep2:?}");
            // ... and a delete after the vacuum drains the pool fully
            // (the in-place patch kept depth == surviving archives, so
            // the delete path double-frees nothing)
            if ctx.rank() == 0 {
                let tx = eng.begin(AccessMode::ReadWrite);
                let v = tx.translate_vertex_id(AppVertexId(1)).unwrap();
                tx.delete_vertex(v).unwrap();
                tx.commit().unwrap();
            }
            ctx.barrier();
            assert_eq!(eng.bm.count_free(0), cfg.blocks_per_rank);
            assert_eq!(eng.bm.count_free(1), cfg.blocks_per_rank);
        });
    }

    /// A pinned snapshot reader holds the floor down: the vacuum must
    /// keep every version the pin can still resolve to, and reclaim
    /// the rest only after the pin is gone. The reader's bounded walk
    /// never decodes a freed block while racing the vacuum.
    #[test]
    fn vacuum_respects_pinned_snapshots() {
        let cfg = GdaConfig::tiny();
        let (db, fabric) = GdaDb::with_fabric("vacpin", cfg, 1, CostModel::zero());
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            let blob = blob_ptype(&eng);
            let tx = eng.begin(AccessMode::ReadWrite);
            let v = tx.create_vertex(AppVertexId(1)).unwrap();
            tx.update_property(v, blob, &prop_bytes(8)).unwrap();
            tx.commit().unwrap();
            // a local read-only transaction under MVCC pins the
            // watermark at begin; overwrite twice behind the pin
            let pinned = eng.begin(AccessMode::ReadOnly);
            assert!(pinned.snapshot_epoch().is_some());
            for i in 1..3usize {
                let tx = eng.begin(AccessMode::ReadWrite);
                let v = tx.translate_vertex_id(AppVertexId(1)).unwrap();
                tx.update_property(v, blob, &prop_bytes(8 + i)).unwrap();
                tx.commit().unwrap();
            }
            let rep = eng.maintenance().unwrap();
            // the pinned version must survive the vacuum; only
            // archives strictly below the pin's resolution point go
            let v = pinned.translate_vertex_id(AppVertexId(1)).unwrap();
            assert_eq!(
                pinned.property(v, blob).unwrap(),
                Some(prop_bytes(8)),
                "pin reads its snapshot across a vacuum"
            );
            pinned.commit().unwrap();
            // pin released: the next pass reclaims the remaining chain
            let rep2 = eng.maintenance().unwrap();
            assert!(
                rep.vacuumed_versions + rep2.vacuumed_versions >= 2,
                "{rep:?} then {rep2:?}"
            );
            let tx = eng.begin(AccessMode::ReadWrite);
            let v = tx.translate_vertex_id(AppVertexId(1)).unwrap();
            tx.delete_vertex(v).unwrap();
            tx.commit().unwrap();
            assert_eq!(eng.bm.count_free(0), cfg.blocks_per_rank);
        });
    }

    /// Compaction migrates continuation blocks downwards after churn
    /// opens holes at the front of the window, and the relocated
    /// chains stay readable (and recoverable).
    #[test]
    fn compaction_packs_continuation_blocks() {
        let td_base = std::env::temp_dir().join(format!("gda-maint-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&td_base);
        let cfg = GdaConfig::tiny();
        {
            let (db, fabric) = GdaDb::with_fabric("cmp", cfg, 1, CostModel::zero());
            db.enable_persistence(PersistOptions::new(&td_base))
                .unwrap();
            fabric.run(|ctx| {
                let eng = db.attach(ctx);
                eng.init_collective();
                let blob = blob_ptype(&eng);
                // small vertices filling the front of the window...
                let tx = eng.begin(AccessMode::ReadWrite);
                for i in 0..30u64 {
                    tx.create_vertex(AppVertexId(i)).unwrap();
                }
                tx.commit().unwrap();
                // ...then a fat multi-block vertex allocated above them
                let tx = eng.begin(AccessMode::ReadWrite);
                let v = tx.create_vertex(AppVertexId(1000)).unwrap();
                tx.update_property(v, blob, &prop_bytes(300)).unwrap();
                tx.commit().unwrap();
                // churn: delete the small vertices, opening holes below
                let tx = eng.begin(AccessMode::ReadWrite);
                for i in 0..30u64 {
                    let v = tx.translate_vertex_id(AppVertexId(i)).unwrap();
                    tx.delete_vertex(v).unwrap();
                }
                tx.commit().unwrap();
                let rep = eng.maintenance().unwrap();
                assert!(rep.compacted_chains >= 1, "{rep:?}");
                assert!(rep.compacted_blocks >= 1, "{rep:?}");
                // the fat vertex survived the move
                let tx = eng.begin(AccessMode::ReadOnly);
                let v = tx.translate_vertex_id(AppVertexId(1000)).unwrap();
                assert_eq!(tx.property(v, blob).unwrap(), Some(prop_bytes(300)));
                tx.commit().unwrap();
                // converged: a second pass moves nothing further
                let rep2 = eng.maintenance().unwrap();
                assert_eq!(rep2.compacted_blocks, 0, "{rep2:?}");
                eng.checkpoint().unwrap();
            });
        }
        // the compacted layout recovers
        let (db, fabric, plan) = recover(PersistOptions::new(&td_base), CostModel::zero()).unwrap();
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            let rec = plan.restore_rank(&eng).unwrap();
            assert_eq!(rec.errors, 0, "{rec:?}");
            let tx = eng.begin(AccessMode::ReadOnly);
            let v = tx.translate_vertex_id(AppVertexId(1000)).unwrap();
            let blob = PTypeId(3);
            assert_eq!(tx.property(v, blob).unwrap(), Some(prop_bytes(300)));
            tx.commit().unwrap();
        });
        let _ = std::fs::remove_dir_all(&td_base);
    }

    /// The verifier walks the published chain and reports corruption
    /// without failing the pass.
    #[test]
    fn verifier_flags_corrupted_snapshot_files() {
        let td_base = std::env::temp_dir().join(format!("gda-verify-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&td_base);
        let cfg = GdaConfig::tiny();
        let (db, fabric) = GdaDb::with_fabric("vfy", cfg, 1, CostModel::zero());
        db.enable_persistence(PersistOptions::new(&td_base))
            .unwrap();
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            let tx = eng.begin(AccessMode::ReadWrite);
            tx.create_vertex(AppVertexId(1)).unwrap();
            tx.commit().unwrap();
            eng.checkpoint().unwrap();
            let rep = eng.maintenance().unwrap();
            assert!(rep.verified_bytes > 0, "{rep:?}");
            assert_eq!(rep.verify_errors, 0, "{rep:?}");
            // flip one byte mid-file: the next pass must notice
            let snap = td_base.join("ckpt-1").join("rank-0.snap");
            let mut bytes = std::fs::read(&snap).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xFF;
            std::fs::write(&snap, &bytes).unwrap();
            let rep = eng.maintenance().unwrap();
            assert!(rep.verify_errors > 0, "{rep:?}");
        });
        let _ = std::fs::remove_dir_all(&td_base);
    }
}
